"""Table III: the five Twitter dataset summaries.

The simulation targets the paper's crawl statistics; this benchmark
regenerates the summary table at a sub-scale (full scale with
``REPRO_FULL_TRIALS=1``) and checks every count lands near its scaled
target.
"""

from repro.datasets import (
    DATASET_ORDER,
    format_table,
    relative_errors,
    simulate_dataset,
    target_row,
)
from repro.eval.experiments import full_trials


def _summaries(scale):
    rows = []
    errors = []
    for index, name in enumerate(DATASET_ORDER):
        dataset = simulate_dataset(name, scale=scale, seed=(2015, index))
        summary = dataset.summary()
        rows.append(summary)
        errors.append(relative_errors(summary, target_row(name)))
    return rows, errors


def test_table3_dataset_summaries(benchmark):
    scale = 1.0 if full_trials() else 0.1
    rows, errors = benchmark.pedantic(_summaries, args=(scale,), rounds=1, iterations=1)
    print("\n" + format_table(rows))
    print("\ntargets (paper Table III):")
    print(format_table([target_row(name) for name in DATASET_ORDER]))
    for name, row_errors in zip(DATASET_ORDER, errors):
        # Assertions / claims / originals are matched by construction.
        if scale == 1.0:
            assert row_errors["n_assertions"] < 0.02, name
            assert row_errors["n_total_claims"] < 0.02, name
            assert row_errors["n_original_claims"] < 0.02, name
            # Distinct sources are a statistical outcome of the
            # activity model; they land within 20% of the target.
            assert row_errors["n_sources"] < 0.20, name
        else:
            # At sub-scale, the relative errors are against the FULL
            # targets, so only sanity-check proportionality by hand.
            target = target_row(name)
            measured = rows[DATASET_ORDER.index(name)]
            assert measured.n_assertions > 0
            assert measured.n_total_claims >= measured.n_original_claims
            ratio = measured.n_total_claims / measured.n_assertions
            paper_ratio = target.n_total_claims / target.n_assertions
            assert abs(ratio - paper_ratio) / paper_ratio < 0.25, name
