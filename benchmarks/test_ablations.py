"""Ablation benchmarks for the reproduction's design decisions.

DESIGN.md documents four consequential choices made while resolving the
paper's ambiguities; each ablation here measures the alternative so the
decision stays evidence-backed:

1. Gibbs estimator mode — consistent posterior-mean vs the pseudocode's
   literal ratio (DESIGN.md §5.1);
2. EM initialisation — staged vs support vs the paper's random
   (DESIGN.md §5a);
3. EM-Social masking — drop whole dependent cells vs drop only the
   dependent claims while keeping dependent silences;
4. generator mode — model-faithful cells vs literal pool sampling
   (DESIGN.md §3);
5. dependency ancestry policy — direct followees (the paper's Figure 1
   semantics) vs transitive follow chains, on the empirical simulation.
"""

import numpy as np

from repro.bounds import GibbsConfig, exact_bound, gibbs_bound
from repro.core import EMConfig, EMExtEstimator, SensingProblem
from repro.eval import score_result
from repro.synthetic import GeneratorConfig, SyntheticGenerator, empirical_parameters


def _datasets(config, n_trials, seed):
    return SyntheticGenerator(config, seed=seed).generate_many(n_trials)


# ---------------------------------------------------------------------------
# 1. Gibbs estimator mode
# ---------------------------------------------------------------------------

def _gibbs_mode_errors(n_trials=4):
    errors = {"posterior-mean": [], "ratio": []}
    for index, dataset in enumerate(_datasets(GeneratorConfig(), n_trials, seed=10)):
        params = empirical_parameters(dataset.problem).clamp(1e-4)
        dependency = dataset.problem.dependency.values
        exact = exact_bound(dependency, params).total
        for mode in errors:
            approx = gibbs_bound(
                dependency, params,
                config=GibbsConfig(
                    mode=mode, min_sweeps=2000, max_sweeps=4000, tolerance=1e-5
                ),
                seed=index,
            ).total
            errors[mode].append(abs(approx - exact))
    return {mode: float(np.mean(v)) for mode, v in errors.items()}


def test_ablation_gibbs_estimator_mode(benchmark):
    errors = benchmark.pedantic(_gibbs_mode_errors, rounds=1, iterations=1)
    print(f"\nmean |approx - exact|: {errors}")
    # The literal pseudocode accumulator is biased; the consistent
    # estimator must not be (meaningfully) worse.
    assert errors["posterior-mean"] <= errors["ratio"] + 0.002
    assert errors["posterior-mean"] < 0.01


# ---------------------------------------------------------------------------
# 2. EM initialisation strategy
# ---------------------------------------------------------------------------

def _init_strategy_accuracy(n_trials=8):
    accuracy = {"staged": [], "support": [], "random": []}
    datasets = _datasets(GeneratorConfig.estimator_defaults(), n_trials, seed=20)
    for dataset in datasets:
        blind = dataset.problem.without_truth()
        for strategy in accuracy:
            result = EMExtEstimator(
                EMConfig(init_strategy=strategy), seed=0
            ).fit(blind)
            accuracy[strategy].append(
                score_result(result, dataset.problem.truth).accuracy
            )
    return {strategy: float(np.mean(v)) for strategy, v in accuracy.items()}


def test_ablation_init_strategy(benchmark):
    accuracy = benchmark.pedantic(_init_strategy_accuracy, rounds=1, iterations=1)
    print(f"\nmean accuracy by init strategy: {accuracy}")
    # The staged warm start is why the default beats the paper's
    # literal random initialisation at the paper's own scale.
    assert accuracy["staged"] >= accuracy["random"] - 0.01
    assert accuracy["staged"] >= accuracy["support"] - 0.03


# ---------------------------------------------------------------------------
# 3. EM-Social masking choice
# ---------------------------------------------------------------------------

class _EMSocialClaimsOnly:
    """The rejected alternative: mask dependent claims, keep dependent
    silences as independent evidence."""

    def __init__(self, seed):
        from repro.baselines.em_independent import EMSocial

        class _Variant(EMSocial):
            algorithm_name = "em-social-claims-only"

            def _mask(self, problem):
                sc = problem.claims.values
                dep = problem.dependency.values
                return 1.0 - (sc & dep).astype(np.float64)

        self._finder = _Variant(seed=seed)

    def fit(self, problem: SensingProblem):
        return self._finder.fit(problem)


def _masking_accuracy(n_trials=8):
    from repro.baselines import EMSocial

    accuracy = {"cells": [], "claims-only": []}
    datasets = _datasets(GeneratorConfig.estimator_defaults(), n_trials, seed=30)
    for dataset in datasets:
        blind = dataset.problem.without_truth()
        cells = EMSocial(seed=0).fit(blind)
        claims_only = _EMSocialClaimsOnly(seed=0).fit(blind)
        accuracy["cells"].append(score_result(cells, dataset.problem.truth).accuracy)
        accuracy["claims-only"].append(
            score_result(claims_only, dataset.problem.truth).accuracy
        )
    return {name: float(np.mean(v)) for name, v in accuracy.items()}


def test_ablation_em_social_masking(benchmark):
    accuracy = benchmark.pedantic(_masking_accuracy, rounds=1, iterations=1)
    print(f"\nmean accuracy by masking choice: {accuracy}")
    # Keeping dependent silences as independent evidence biases the
    # estimator toward "false"; whole-cell masking must win.
    assert accuracy["cells"] >= accuracy["claims-only"]


# ---------------------------------------------------------------------------
# 3b. Per-source vs pooled parameters
# ---------------------------------------------------------------------------

def _pooled_vs_per_source(config, n_trials, seed):
    from repro.baselines import PooledEMExt
    from repro.core import EMExtEstimator

    accuracy = {"per-source": [], "pooled": []}
    for dataset in _datasets(config, n_trials, seed=seed):
        blind = dataset.problem.without_truth()
        truth = dataset.problem.truth
        ext = EMExtEstimator(seed=0).fit(blind)
        pooled = PooledEMExt().fit(blind)
        accuracy["per-source"].append(float((ext.decisions == truth).mean()))
        accuracy["pooled"].append(float((pooled.decisions == truth).mean()))
    return {name: float(np.mean(v)) for name, v in accuracy.items()}


def _per_source_regimes():
    paper_scale = _pooled_vs_per_source(
        GeneratorConfig.estimator_defaults(), n_trials=8, seed=35
    )
    heterogeneous = _pooled_vs_per_source(
        GeneratorConfig(
            n_sources=40, n_assertions=200, n_trees=40,
            p_indep_true=(0.45, 0.95),
        ),
        n_trials=4,
        seed=36,
    )
    return {"paper-scale": paper_scale, "heterogeneous-rich": heterogeneous}


def test_ablation_per_source_parameters(benchmark):
    regimes = benchmark.pedantic(_per_source_regimes, rounds=1, iterations=1)
    print(f"\nmean accuracy, per-source vs pooled θ, by regime: {regimes}")
    # Honest finding: at the paper's own scale (m = 50 for 4n + 1 free
    # parameters, mild heterogeneity) the 5-parameter pooled model is
    # *more* accurate — the per-source estimates are underdetermined.
    assert regimes["paper-scale"]["pooled"] >= (
        regimes["paper-scale"]["per-source"] - 0.01
    )
    # Per-source modelling earns its parameters once sources are widely
    # heterogeneous and assertions are plentiful.
    assert regimes["heterogeneous-rich"]["per-source"] >= (
        regimes["heterogeneous-rich"]["pooled"] - 0.01
    )


# ---------------------------------------------------------------------------
# 4. Generator mode
# ---------------------------------------------------------------------------

def _generator_mode_discrimination(n_trials=6):
    """Pooled discrimination odds mean(a)/mean(b) implied by each mode.

    Pooled (not per-source) because sparse per-source rate estimates hit
    zero and a mean of clamped ratios explodes.
    """
    odds = {}
    for mode in ("cell", "pool"):
        values = []
        config = GeneratorConfig(mode=mode, p_indep_true=(2 / 3, 2 / 3))
        for dataset in _datasets(config, n_trials, seed=40):
            params = empirical_parameters(dataset.problem)
            values.append(float(params.a.mean() / max(params.b.mean(), 1e-9)))
        odds[mode] = float(np.mean(values))
    return odds


def test_ablation_generator_mode(benchmark):
    odds = benchmark.pedantic(_generator_mode_discrimination, rounds=1, iterations=1)
    print(f"\nmean empirical a/b odds by generator mode (knob = 2.0): {odds}")
    # Cell mode realises the paper's odds knob; pool mode dilutes it
    # toward (or past) 1 because the unequal pool sizes cancel the bias.
    assert abs(odds["cell"] - 2.0) < 0.5
    assert odds["cell"] > odds["pool"]


# ---------------------------------------------------------------------------
# 5. Dependency ancestry policy
# ---------------------------------------------------------------------------

def _ancestry_policy_comparison(n_seeds=3):
    from repro.core import EMConfig, EMExtEstimator
    from repro.datasets import simulate_dataset
    from repro.pipeline import SimulatedGrader, grade_top_k

    ratios = {"direct": [], "transitive": []}
    dependent_fraction = {"direct": [], "transitive": []}
    for seed in range(n_seeds):
        dataset = simulate_dataset("kirkuk", scale=0.25, seed=seed)
        for policy in ratios:
            evaluation = dataset.evaluation_slice(policy=policy)
            dependent_fraction[policy].append(
                evaluation.problem.dependent_claim_fraction()
            )
            result = EMExtEstimator(EMConfig(smoothing=1.0), seed=0).fit(
                evaluation.problem.without_truth()
            )
            grader = SimulatedGrader(evaluation.labels, seed=seed)
            report = grade_top_k({"em-ext": result}, grader, k=100, seed=seed)
            ratios[policy].append(report["em-ext"].true_ratio)
    return {
        "true_ratio": {k: float(np.mean(v)) for k, v in ratios.items()},
        "dependent_claim_fraction": {
            k: float(np.mean(v)) for k, v in dependent_fraction.items()
        },
    }


def test_ablation_ancestry_policy(benchmark):
    outcome = benchmark.pedantic(_ancestry_policy_comparison, rounds=1, iterations=1)
    print(f"\nancestry policy comparison: {outcome}")
    fractions = outcome["dependent_claim_fraction"]
    # Transitive ancestry can only widen the dependent set.
    assert fractions["transitive"] >= fractions["direct"] - 1e-9
    # Both policies stay in the same accuracy band — the paper's direct
    # semantics are not load-bearing for the empirical result.
    ratios = outcome["true_ratio"]
    assert abs(ratios["direct"] - ratios["transitive"]) < 0.08
