"""Micro-benchmarks: optimised kernels vs the frozen pre-optimisation code.

Every hot path that ``repro.kernels`` rewrote is timed here against its
verbatim historical copy from :mod:`repro.kernels.reference` — same
inputs, same seeds, interleaved runs, best-of-N wall clock — and the
results land in ``BENCH_kernels.json`` (path overridable via
``REPRO_BENCH_OUT``) together with :func:`repro.eval.machine_info`.

Agreement is asserted unconditionally, at the tolerance each rewrite
earns:

* dense E-step / M-step / full EM-Ext fits — **bit for bit** (the
  table-gather kernels select the identical float values with the same
  reduction order);
* exact bound — ``1e-10`` (Gray-code enumeration reorders the float
  summation, nothing else);
* Gibbs bound — ``0.02`` (the blocked sampler draws a different, equally
  valid chain than the historical scan sampler).

Speedups are *reported* unconditionally but *enforced* only when
``REPRO_BENCH_ENFORCE=1`` (the CI benchmark job sets it): each measured
speedup must stay within ``REGRESSION_FACTOR`` (1.5x) of the committed
``benchmarks/kernel_baseline.json`` figure, so a change that quietly
gives back the optimisation fails the job without flaking on machines
that are merely slower overall (ratios travel; absolute seconds do not).
"""

import json
import math
import os
import time

import numpy as np
import pytest

from repro import observability
from repro.bounds import GibbsConfig, exact_bound, gibbs_bound
from repro.core.em_ext import EMConfig
from repro.core.model import SourceParameters
from repro.engine import initialisation
from repro.engine.backends import DenseBackend
from repro.engine.driver import EMDriver
from repro.eval import execution_info, machine_info
from repro.kernels.reference import (
    ReferenceDenseBackend,
    reference_exact_bound,
    reference_gibbs_bound,
)
from repro.synthetic import GeneratorConfig, generate_dataset

pytestmark = pytest.mark.slow

SEED = 777
#: n = 24 puts the Gibbs bound at the size Figure 6 uses past the exact
#: cutover; n = 20 keeps the exact bound's 2^n sweep affordable.
GIBBS_N_SOURCES = 24
EXACT_N_SOURCES = 20
#: Fig. 7 estimator sizes (n = 20..50, m = 50 via estimator defaults).
FIT_SIZES = ((20, 50), (35, 50), (50, 50))
GIBBS_CONFIG = GibbsConfig(burn_in=200, min_sweeps=1500, max_sweeps=1500)
GIBBS_TOLERANCE = 0.02
EXACT_TOLERANCE = 1e-10
#: A kernel "regresses" when its speedup falls more than this factor
#: below the committed baseline figure.
REGRESSION_FACTOR = 1.5

_DEFAULT_OUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_kernels.json")
_BASELINE_PATH = os.path.join(os.path.dirname(__file__), "kernel_baseline.json")


def _time_pair(old_fn, new_fn, reps):
    """Interleave old/new calls; return (old_best, new_best, old, new).

    Interleaving makes both sides see the same thermal / frequency /
    cache conditions; best-of-N discards scheduler noise.  The returned
    outputs come from the final repetition of each side.
    """
    old_best = new_best = math.inf
    old_out = new_out = None
    for _ in range(reps):
        start = time.perf_counter()
        old_out = old_fn()
        old_best = min(old_best, time.perf_counter() - start)
        start = time.perf_counter()
        new_out = new_fn()
        new_best = min(new_best, time.perf_counter() - start)
    return old_best, new_best, old_out, new_out


def _row(old_seconds, new_seconds, parity):
    return {
        "old_seconds": round(old_seconds, 6),
        "new_seconds": round(new_seconds, 6),
        "speedup": round(old_seconds / new_seconds, 3),
        "parity": parity,
    }


def _bound_problem(n_sources):
    config = GeneratorConfig.paper_defaults(
        n_sources=n_sources, n_assertions=50
    )
    dependency = generate_dataset(config, seed=SEED).problem.dependency.values
    params = SourceParameters.random(n_sources, seed=SEED).clamp(1e-3)
    return dependency, params


def _fit(backend, em_config):
    driver = EMDriver.from_config(em_config)
    return driver.fit(
        backend,
        lambda index, rng: initialisation.staged_initialisation(
            backend, tolerance=em_config.tolerance
        ),
        None,
    )


def _bench_gibbs(rows):
    dependency, params = _bound_problem(GIBBS_N_SOURCES)
    old_s, new_s, old, new = _time_pair(
        lambda: reference_gibbs_bound(
            dependency, params, config=GIBBS_CONFIG, seed=SEED
        ),
        lambda: gibbs_bound(dependency, params, config=GIBBS_CONFIG, seed=SEED),
        reps=3,
    )
    diff = abs(old.total - new.total)
    assert diff <= GIBBS_TOLERANCE, (
        f"Gibbs bound drifted from the scan-sampler baseline: "
        f"|{new.total} - {old.total}| = {diff} > {GIBBS_TOLERANCE}"
    )
    rows[f"gibbs_bound_n{GIBBS_N_SOURCES}"] = _row(
        old_s, new_s, f"|total diff| = {diff:.2e} <= {GIBBS_TOLERANCE}"
    )


def _bench_exact(rows):
    dependency, params = _bound_problem(EXACT_N_SOURCES)
    old_s, new_s, old, new = _time_pair(
        lambda: reference_exact_bound(dependency, params),
        lambda: exact_bound(dependency, params),
        reps=3,
    )
    produced = np.array([new.total, new.false_positive, new.false_negative])
    expected = np.array([old.total, old.false_positive, old.false_negative])
    assert np.allclose(produced, expected, atol=EXACT_TOLERANCE, rtol=0), (
        f"exact bound drifted beyond summation-order error: "
        f"max abs diff {np.max(np.abs(produced - expected))}"
    )
    rows[f"exact_bound_n{EXACT_N_SOURCES}"] = _row(
        old_s,
        new_s,
        f"max abs diff = {np.max(np.abs(produced - expected)):.2e} "
        f"<= {EXACT_TOLERANCE}",
    )


def _bench_engine_steps(rows):
    n, m = 50, 50
    config = GeneratorConfig.estimator_defaults(n_sources=n, n_assertions=m)
    problem = generate_dataset(config, seed=SEED).problem
    old_backend = ReferenceDenseBackend(problem)
    new_backend = DenseBackend(problem)
    params = SourceParameters.random(n, seed=SEED).clamp(EMConfig().epsilon)
    epsilon = EMConfig().epsilon

    # A fresh (equal-valued) params object per call keeps the optimised
    # backend's identity-keyed column cache honest: every timed call
    # pays the full table build + gather, never a cache hit.
    old_s, new_s, old, new = _time_pair(
        lambda: old_backend.e_step(params.clamp(epsilon)),
        lambda: new_backend.e_step(params.clamp(epsilon)),
        reps=25,
    )
    assert np.array_equal(old[0], new[0]), "E-step posterior not bitwise equal"
    assert old[1] == new[1], "E-step log likelihood not bitwise equal"
    rows[f"dense_e_step_n{n}_m{m}"] = _row(old_s, new_s, "bitwise")

    posterior = new[0]
    old_s, new_s, old_p, new_p = _time_pair(
        lambda: old_backend.m_step(posterior, params),
        lambda: new_backend.m_step(posterior, params),
        reps=25,
    )
    for name in ("a", "b", "f", "g"):
        assert np.array_equal(getattr(old_p, name), getattr(new_p, name)), (
            f"M-step rate {name} not bitwise equal"
        )
    assert old_p.z == new_p.z, "M-step z not bitwise equal"
    rows[f"dense_m_step_n{n}_m{m}"] = _row(old_s, new_s, "bitwise")


def _bench_fits(rows):
    em_config = EMConfig()
    for n, m in FIT_SIZES:
        config = GeneratorConfig.estimator_defaults(n_sources=n, n_assertions=m)
        problem = generate_dataset(config, seed=SEED + n).problem
        old_backend = ReferenceDenseBackend(problem)
        new_backend = DenseBackend(problem)
        old_s, new_s, old, new = _time_pair(
            lambda: _fit(old_backend, em_config),
            lambda: _fit(new_backend, em_config),
            reps=25,
        )
        assert old.n_iterations == new.n_iterations, (
            f"fit n={n}: iteration counts diverged "
            f"({old.n_iterations} vs {new.n_iterations})"
        )
        assert np.array_equal(old.posterior, new.posterior), (
            f"fit n={n}: posterior not bitwise equal"
        )
        rows[f"fit_em_ext_n{n}_m{m}"] = _row(
            old_s, new_s, f"bitwise ({new.n_iterations} iterations)"
        )


def _enforce_baseline(rows):
    with open(_BASELINE_PATH) as handle:
        baseline = json.load(handle)["speedups"]
    failures = []
    for name, expected in baseline.items():
        measured = rows[name]["speedup"]
        if measured * REGRESSION_FACTOR < expected:
            failures.append(
                f"{name}: measured {measured}x < baseline {expected}x "
                f"/ {REGRESSION_FACTOR}"
            )
    assert not failures, "kernel speedup regression:\n" + "\n".join(failures)


def test_kernel_micro_writes_bench_json():
    rows = {}
    # Collect the run's own metrics (cache hit rates, sweep counts,
    # dedup ratios) alongside the timings — the snapshot rides along in
    # the report under "metrics".
    with observability.observe(root_name="bench.kernels") as session:
        _bench_gibbs(rows)
        _bench_exact(rows)
        _bench_engine_steps(rows)
        _bench_fits(rows)

    report = {
        "experiment": "optimised kernels vs frozen pre-optimisation code",
        "method": "interleaved old/new, best wall-clock over N repetitions",
        "config": {
            "seed": SEED,
            "gibbs": {
                "n_sources": GIBBS_N_SOURCES,
                "burn_in": GIBBS_CONFIG.burn_in,
                "sweeps": GIBBS_CONFIG.max_sweeps,
                "tolerance": GIBBS_TOLERANCE,
            },
            "exact": {
                "n_sources": EXACT_N_SOURCES,
                "tolerance": EXACT_TOLERANCE,
            },
            "fits": [
                {"n_sources": n, "n_assertions": m} for n, m in FIT_SIZES
            ],
        },
        "machine": machine_info(),
        # Scalar, single-process exhibit: the execution block pins that
        # down so its rows compare honestly against batched trajectories.
        "execution": execution_info(),
        "kernels": rows,
        "speedups": {name: row["speedup"] for name, row in rows.items()},
        "metrics": session.metrics_dict(),
    }
    out_path = os.environ.get("REPRO_BENCH_OUT", _DEFAULT_OUT)
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    print(f"\nkernel micro-benchmarks -> {os.path.abspath(out_path)}")
    for name, row in rows.items():
        print(
            f"  {name:>24}: {row['old_seconds'] * 1e3:9.3f}ms -> "
            f"{row['new_seconds'] * 1e3:9.3f}ms "
            f"({row['speedup']:6.2f}x, {row['parity']})"
        )

    if os.environ.get("REPRO_BENCH_ENFORCE") == "1":
        _enforce_baseline(rows)
