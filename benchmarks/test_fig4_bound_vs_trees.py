"""Figure 4: exact vs approximate bound as the number of dependency
trees τ varies from 1 (one root followed by everyone) to 11.

Paper shape: the approximation stays within ~0.0127 of exact across the
whole dependency spectrum.
"""

from repro.eval import figure4_bound_vs_trees, format_bound_comparison


def test_fig4_bound_vs_trees(benchmark):
    rows = benchmark.pedantic(figure4_bound_vs_trees, rounds=1, iterations=1)
    print("\n" + format_bound_comparison(rows, x_label="tau"))
    assert [r.value for r in rows] == [float(t) for t in range(1, 12)]
    for row in rows:
        assert row.absolute_difference < 0.02, row
        assert row.exact_false_positive + row.exact_false_negative > 0
