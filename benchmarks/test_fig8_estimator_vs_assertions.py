"""Figure 8: estimator accuracy as the assertion count grows (n = 100).

Paper shape: more assertions improve every algorithm, and EM-Ext's gap
to the Optimal ceiling shrinks as assertions accumulate (the parameters
become identifiable).
"""

import numpy as np

from repro.eval import OPTIMAL_KEY, figure8_estimator_vs_assertions, format_sweep


def series_mean(values):
    return float(np.mean(values))


def test_fig8_estimator_vs_assertions(benchmark):
    sweep = benchmark.pedantic(
        figure8_estimator_vs_assertions,
        kwargs={"n_trials": None},
        rounds=1,
        iterations=1,
    )
    print("\naccuracy:\n" + format_sweep(sweep, "accuracy"))

    ext = sweep.curve("em-ext")
    optimal = sweep.curve(OPTIMAL_KEY)

    # Growth: the second half of the sweep beats the first half for
    # every estimator.
    for name in ("em", "em-social", "em-ext"):
        curve = sweep.curve(name)
        half = len(curve) // 2
        assert series_mean(curve[half:]) >= series_mean(curve[:half]) - 0.02, name

    # The EM-Ext → Optimal gap shrinks with more assertions.
    gaps = [ceiling - accuracy for accuracy, ceiling in zip(ext, optimal)]
    half = len(gaps) // 2
    assert series_mean(gaps[half:]) <= series_mean(gaps[:half]) + 0.02
