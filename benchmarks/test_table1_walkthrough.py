"""Table I: the 3-source error-bound walk-through (Section III-A).

The paper enumerates all eight claim patterns of a 3-source example and
derives ``Err = 0.26980433``.  This benchmark recomputes the bound from
the table's per-pattern likelihoods and checks the exact value.
"""

import pytest

from repro.eval import TABLE1_EXPECTED_BOUND, table1_walkthrough


def test_table1_walkthrough(benchmark):
    result = benchmark(table1_walkthrough)
    print(
        f"\nTable I bound: {result.total:.8f} "
        f"(paper: {TABLE1_EXPECTED_BOUND:.8f}) "
        f"FP share {result.false_positive:.8f}, FN share {result.false_negative:.8f}"
    )
    # This is the one exhibit that reproduces to the digit: the paper
    # publishes the full input table.
    assert result.total == pytest.approx(TABLE1_EXPECTED_BOUND, abs=1e-8)
    assert result.false_positive + result.false_negative == pytest.approx(result.total)
