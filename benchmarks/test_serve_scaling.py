"""Estimation-service throughput vs the serial direct-fit baseline.

Replays a seeded 200-request trace of Fig. 7-sized problems (n = 20,
m = 50) through :class:`repro.serve.EstimationService` and through the
per-request serial baseline, and writes the measurements to
``BENCH_serve.json`` (path overridable via ``REPRO_BENCH_OUT``).  The
trace is the same construction ``repro serve --generate-trace`` writes,
so the benchmark measures exactly the workload the CLI demonstrates.

Parity is asserted unconditionally: every batched response must be
bit-for-bit the direct fit the request stands for (the ISSUE's
acceptance criterion).  The ≥ 2× throughput floor is *reported*
unconditionally but *enforced* only under ``REPRO_BENCH_ENFORCE=1``,
the same split as the other benchmark gates — speedups on loaded CI
runners are informative, not falsifiable.

Two side rows ride along: a ``distinct=20`` replay where 90 % of
requests are exact repeats (the result cache answers them without a
single fit), and the service's own counters from an observed replay so
occupancy and cache hit rates land in the exhibit.
"""

import json
import os

import pytest

from repro import observability
from repro.eval import machine_info
from repro.serve import (
    MODE_BATCHED,
    MODE_SERIAL,
    ServiceConfig,
    generate_trace,
    load_trace,
    replay_trace,
)

pytestmark = pytest.mark.slow

SEED = 2016
N_REQUESTS = int(os.environ.get("REPRO_SERVE_REQUESTS", "200"))
#: The ISSUE's acceptance floor, enforced under REPRO_BENCH_ENFORCE=1.
MIN_SPEEDUP = 2.0

_DEFAULT_OUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_serve.json")


def _write_trace(tmp_path, **kwargs):
    path = str(tmp_path / "trace.jsonl")
    generate_trace(
        path,
        n_requests=N_REQUESTS,
        seed=SEED,
        n_sources=20,
        n_assertions=50,
        **kwargs,
    )
    return load_trace(path)


def _observed_counters(requests, config):
    """One untimed batched replay under a session, for the exhibit."""
    with observability.observe(root_name="bench.serve") as session:
        replay_trace(requests, mode=MODE_BATCHED, service_config=config)
        snapshot = session.metrics.snapshot()
    counters = snapshot["counters"]
    occupancy = snapshot["histograms"].get("serve.batch.occupancy", {})
    return {
        "requests": counters.get("serve.requests", 0),
        "batched": counters.get("serve.batched", 0),
        "fallbacks": counters.get("serve.fallbacks", 0),
        "cache_hits": counters.get("serve.cache.hits", 0),
        "cache_misses": counters.get("serve.cache.misses", 0),
        "batch_occupancy": occupancy,
    }


def test_serve_scaling_writes_bench_json(tmp_path):
    config = ServiceConfig(max_batch_size=32, max_queue_depth=256)
    requests = _write_trace(tmp_path)

    serial = replay_trace(requests, mode=MODE_SERIAL)
    batched = replay_trace(
        requests, mode=MODE_BATCHED, service_config=config, verify=True
    )

    # Parity is the contract, not a benchmark figure: every response
    # must replay its direct fit bit-for-bit, always.
    assert batched.n_errors == 0, "batched replay produced errors"
    assert batched.n_verified == len(requests)
    assert batched.n_mismatches == 0, (
        f"bitwise mismatches: {batched.mismatched_ids}"
    )

    speedup = serial.wall_seconds / batched.wall_seconds
    rows = {MODE_SERIAL: serial.to_row(), MODE_BATCHED: batched.to_row()}

    # Side row: 90 % repeated requests — the second drain answers the
    # repeats from the result cache, so this measures the cache path.
    repeats = _write_trace(tmp_path, distinct_problems=max(1, N_REQUESTS // 10))
    cache_service = ServiceConfig(
        max_batch_size=32, max_queue_depth=max(2, N_REQUESTS // 2)
    )
    cached = replay_trace(
        repeats, mode=MODE_BATCHED, service_config=cache_service, verify=True
    )
    assert cached.n_mismatches == 0, "cached responses must replay exactly"
    rows["batched_with_repeats"] = cached.to_row()

    report = {
        "schema": "repro.bench-serve/v1",
        "experiment": "serve_scaling",
        "method": (
            "closed-loop replay of one seeded trace, batched service vs "
            "per-request direct fits; parity verified bit-for-bit"
        ),
        "config": {
            "n_requests": N_REQUESTS,
            "seed": SEED,
            "n_sources": 20,
            "n_assertions": 50,
            "max_batch_size": config.max_batch_size,
            "max_queue_depth": config.max_queue_depth,
            "init_strategy": "random",
        },
        "machine": machine_info(),
        "rows": rows,
        "counters": _observed_counters(requests, config),
        "speedup": round(speedup, 3),
        "parity": {
            "verified": batched.n_verified + cached.n_verified,
            "mismatches": 0,
        },
    }
    out_path = os.environ.get("REPRO_BENCH_OUT", _DEFAULT_OUT)
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    print(f"\nserve scaling -> {os.path.abspath(out_path)}")
    print(f"  {serial.summary()}")
    print(f"  {batched.summary()}")
    print(f"  repeats: {cached.summary()}")
    print(f"  speedup (serial wall / batched wall): {speedup:.2f}x")

    if os.environ.get("REPRO_BENCH_ENFORCE") == "1":
        assert speedup >= MIN_SPEEDUP, (
            f"serve throughput {speedup:.2f}x below the "
            f"{MIN_SPEEDUP}x acceptance floor"
        )
