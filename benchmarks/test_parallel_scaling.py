"""Scaling of the parallel execution layer: serial vs n_jobs in {1, 2, 4}.

Runs the same reference simulation sweep under every worker count,
asserts bit-for-bit parity, and writes the timings to
``BENCH_parallel.json`` (path overridable via ``REPRO_BENCH_OUT``).

The numbers are *honest*: on a single-core runner the process backend
adds fork/pickle overhead and the speedup column sits at or below 1.0;
the >= 1.5x at ``n_jobs=4`` shows up on multi-core CI runners and
workstations.  Parity is asserted unconditionally; speedup is reported,
not asserted, because it is a property of the machine.
"""

import json
import os
import time

import pytest

from repro import observability
from repro.eval import execution_info, machine_info, run_simulation
from repro.parallel import ParallelConfig, cpu_count
from repro.synthetic import GeneratorConfig

pytestmark = [
    pytest.mark.slow,
    # On a single-core box the fan-out rows measure fork/pickle
    # overhead, not scaling; reporting ~1× "speedups" from such a
    # machine is misleading, so the exhibit only runs with >= 2 CPUs.
    pytest.mark.skipif(
        (os.cpu_count() or 1) < 2,
        reason="parallel scaling is meaningless on < 2 CPUs",
    ),
]

#: Heavy enough that per-trial work dominates dispatch overhead: 24
#: sources puts the Optimal ceiling on the Gibbs sampler, so each trial
#: carries a real chain run besides its three EM fits.
CONFIG = GeneratorConfig(n_sources=24, n_assertions=50, n_trees=(8, 10))
N_TRIALS = 8
SEED = 2016

_DEFAULT_OUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_parallel.json")


def _series_dict(result):
    return {
        name: (
            tuple(series.accuracy),
            tuple(series.false_positive_rate),
            tuple(series.false_negative_rate),
        )
        for name, series in result.series.items()
    }


def _timed_run(parallel):
    start = time.perf_counter()
    result = run_simulation(
        CONFIG,
        algorithms=("em", "em-ext"),
        n_trials=N_TRIALS,
        seed=SEED,
        include_optimal=True,
        parallel=parallel,
    )
    return time.perf_counter() - start, result


def test_parallel_scaling_writes_bench_json():
    variants = [
        ("serial", None),
        ("n_jobs=1", ParallelConfig(n_jobs=1)),
        ("n_jobs=2", ParallelConfig(n_jobs=2)),
        ("n_jobs=4", ParallelConfig(n_jobs=4)),
    ]
    timings = {}
    reference = None
    # One observability session over the whole exhibit: the snapshot
    # (merged across all variants, including the fan-out workers')
    # rides along in the report under "metrics".
    with observability.observe(root_name="bench.parallel") as session:
        for label, parallel in variants:
            seconds, result = _timed_run(parallel)
            timings[label] = seconds
            if reference is None:
                reference = _series_dict(result)
            else:
                # The scaling exhibit is only meaningful because every
                # row computes the *identical* result.
                assert _series_dict(result) == reference, label

    serial_seconds = timings["serial"]
    report = {
        "experiment": "run_simulation scaling, serial vs process fan-out",
        "config": {
            "n_sources": CONFIG.n_sources,
            "n_assertions": CONFIG.n_assertions,
            "n_trials": N_TRIALS,
            "algorithms": ["em", "em-ext"],
            "include_optimal": True,
            "seed": SEED,
        },
        "machine": machine_info(),
        # One execution block per variant: the "speedup" column is only
        # interpretable next to the worker count that produced it.
        "execution": {
            label: execution_info(
                n_jobs=parallel.n_jobs if parallel is not None else None
            )
            for label, parallel in variants
        },
        "timings_seconds": {k: round(v, 4) for k, v in timings.items()},
        "speedup_vs_serial": {
            k: round(serial_seconds / v, 3) for k, v in timings.items()
        },
        "parity": "all variants produced bit-identical series",
        "metrics": session.metrics_dict(),
    }
    out_path = os.environ.get("REPRO_BENCH_OUT", _DEFAULT_OUT)
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    print(f"\nparallel scaling ({cpu_count()} cores) -> {os.path.abspath(out_path)}")
    for label, _ in variants:
        print(
            f"  {label:>8}: {timings[label]:7.2f}s "
            f"(speedup {serial_seconds / timings[label]:5.2f}x)"
        )

    # Sanity, not speedup: every variant finished and was timed.
    assert all(v > 0 for v in timings.values())
