"""Figure 10: estimator accuracy as the dependent discrimination odds
``p_depT/(1 − p_depT)`` sweep 1.1 → 2.0 with independent odds fixed
at 2.

Paper shapes:
* rising dependent odds help everyone except EM-Social (it deletes the
  dependent claims carrying that information);
* near odds = 1 dependent claims are uninformative, so EM-Ext ≈
  EM-Social;
* when dependent odds reach the independent odds, dependent and
  independent claims behave alike, so plain EM (more data per
  parameter) matches or slightly beats EM-Social.
"""

import numpy as np

from repro.eval import figure10_estimator_vs_odds, format_sweep


def test_fig10_estimator_vs_odds(benchmark):
    sweep = benchmark.pedantic(figure10_estimator_vs_odds, rounds=1, iterations=1)
    print("\naccuracy:\n" + format_sweep(sweep, "accuracy"))

    values = sweep.values
    ext = np.array(sweep.curve("em-ext"))
    em = np.array(sweep.curve("em"))
    social = np.array(sweep.curve("em-social"))

    low = values.index(1.1)
    high = values.index(2.0)

    # Rising dependent odds help EM and EM-Ext (top third vs bottom third).
    third = len(values) // 3
    for curve, name in ((ext, "em-ext"), (em, "em")):
        assert curve[-third:].mean() >= curve[:third].mean() - 0.02, name
    # EM-Social cannot benefit: its curve stays comparatively flat.
    social_gain = social[-third:].mean() - social[:third].mean()
    em_gain = em[-third:].mean() - em[:third].mean()
    assert social_gain <= em_gain + 0.02

    # Near odds 1: EM-Ext ≈ EM-Social (dependent claims carry nothing).
    assert abs(ext[low] - social[low]) < 0.06
    # At odds parity: EM performs similarly or better than EM-Social.
    assert em[high] >= social[high] - 0.04
    # EM-Ext leads on the sweep average.
    assert ext.mean() >= max(em.mean(), social.mean()) - 0.01
