"""Figure 9: estimator accuracy as the number of dependency trees τ
varies (τ = 1 → one root followed by everyone; τ = 11 → weak
dependency).

Paper shape: EM-Ext outperforms the other two algorithms across the
board.
"""

import numpy as np

from repro.eval import OPTIMAL_KEY, figure9_estimator_vs_trees, format_sweep


def test_fig9_estimator_vs_trees(benchmark):
    sweep = benchmark.pedantic(figure9_estimator_vs_trees, rounds=1, iterations=1)
    print("\naccuracy:\n" + format_sweep(sweep, "accuracy"))

    ext = np.array(sweep.curve("em-ext"))
    em = np.array(sweep.curve("em"))
    social = np.array(sweep.curve("em-social"))
    optimal = np.array(sweep.curve(OPTIMAL_KEY))

    # Across the board: EM-Ext at least matches both baselines on the
    # sweep average, and never falls far behind pointwise.
    assert ext.mean() >= em.mean() - 0.01
    assert ext.mean() >= social.mean() - 0.01
    assert (ext >= em - 0.06).all()
    assert (ext >= social - 0.06).all()
    # And stays below the bound.
    assert (ext <= optimal + 0.03).all()
