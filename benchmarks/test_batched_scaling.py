"""Batched tensor engine vs the serial restart loop (Fig. 7 sizes).

Times ``EMDriver.fit`` with ``restart_mode="serial"`` against
``restart_mode="batched"`` on Fig. 7-sized problems (n = 20..50, m = 50
via the estimator defaults) at R ∈ {8, 16} random restarts — same
seeds, interleaved runs, best-of-N wall clock — and writes the timings
to ``BENCH_batched.json`` (path overridable via ``REPRO_BENCH_OUT``).

Parity is asserted unconditionally and bitwise: every row's batched fit
must reproduce the serial scores, parameters, log-likelihood, trace and
restart selection exactly.

The headline number is the **Fig. 7 sweep aggregate** (total serial
seconds over the n sweep divided by total batched seconds), because the
per-size speedup is capped by *lane occupancy*: a batch can never beat
``total lane iterations / max lane iterations``, and at n = 50 one
straggler restart typically runs ~3× the median iteration count, capping
that row near 2.5× no matter how fast the kernels are.  The per-size
rows and their measured occupancy histograms ride along so the
aggregate is never mistaken for a uniform per-size claim.

Speedups are *reported* unconditionally but *enforced* only when
``REPRO_BENCH_ENFORCE=1`` (the CI benchmark job sets it): the sweep
aggregates must clear the absolute floor in
``benchmarks/batched_baseline.json`` (3× — the batched engine's
acceptance target) and every row must stay within ``REGRESSION_FACTOR``
(1.5×) of its committed baseline figure.

A harness row (``run_simulation`` with ``trial_mode="batched"``) and —
on multi-core machines only — a lanes-×-workers row
(``restart_mode="batched"`` under a two-worker pool) demonstrate that
the lane speedup survives composition; both are reported, not gated,
because the pool rows measure fork overhead on single-core runners.
"""

import json
import math
import os
import time

import numpy as np
import pytest

from repro import observability
from repro.core.em_ext import EMConfig, EMExtEstimator
from repro.eval import execution_info, machine_info, run_simulation
from repro.parallel import ParallelConfig
from repro.synthetic import GeneratorConfig, generate_dataset

pytestmark = pytest.mark.slow

SEED = 2016
#: Fig. 7 sweep: n = 20..50 over the estimator defaults (m = 50).
FIT_SIZES = (20, 35, 50)
RESTART_COUNTS = (8, 16)
REPS = 3
#: A row "regresses" when its speedup falls more than this factor below
#: the committed baseline figure.
REGRESSION_FACTOR = 1.5

_DEFAULT_OUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_batched.json")
_BASELINE_PATH = os.path.join(os.path.dirname(__file__), "batched_baseline.json")


def _time_pair(old_fn, new_fn, reps):
    """Interleave serial/batched calls; return (old_best, new_best, old, new)."""
    old_best = new_best = math.inf
    old_out = new_out = None
    for _ in range(reps):
        start = time.perf_counter()
        old_out = old_fn()
        old_best = min(old_best, time.perf_counter() - start)
        start = time.perf_counter()
        new_out = new_fn()
        new_best = min(new_best, time.perf_counter() - start)
    return old_best, new_best, old_out, new_out


def _problem(n_sources):
    config = GeneratorConfig.estimator_defaults(n_sources=n_sources)
    return generate_dataset(config, seed=SEED + n_sources).problem.without_truth()


def _fit(problem, n_restarts, restart_mode, parallel=None):
    config = EMConfig(
        n_restarts=n_restarts,
        init_strategy="random",
        restart_mode=restart_mode,
    )
    estimator = EMExtEstimator(config, seed=SEED)
    if parallel is not None:
        # The estimator API has no parallel knob; go through the driver
        # exactly as EMExtEstimator.fit does, with a ParallelConfig.
        from repro.data.coerce import coerce_problem
        from repro.data.protocol import FORMAT_DENSE
        from repro.engine.backends import make_backend
        from repro.engine.driver import EMDriver

        dense = coerce_problem(problem, needs=(FORMAT_DENSE,))
        backend = make_backend(
            dense, smoothing=config.smoothing, epsilon=config.epsilon
        )
        driver = EMDriver.from_config(config, parallel=parallel)
        return driver.fit(backend, estimator._initialiser(backend), SEED)
    return estimator.fit(problem)


def _assert_bitwise(serial, batched, label):
    assert np.array_equal(serial.scores, batched.scores), f"{label}: scores"
    assert serial.log_likelihood == batched.log_likelihood, f"{label}: ll"
    for name in ("a", "b", "f", "g"):
        assert np.array_equal(
            getattr(serial.parameters, name), getattr(batched.parameters, name)
        ), f"{label}: rate {name}"
    assert serial.parameters.z == batched.parameters.z, f"{label}: z"
    assert serial.health.selected == batched.health.selected, f"{label}: selection"
    assert serial.trace.log_likelihoods == batched.trace.log_likelihoods, (
        f"{label}: trace"
    )


def _occupancy(problem, n_restarts):
    """One untimed batched fit under a session, for the occupancy block."""
    with observability.observe(root_name="bench.batched.occupancy") as session:
        _fit(problem, n_restarts, "batched")
    return session.metrics.snapshot()


def _row(serial_seconds, batched_seconds, parity, execution):
    return {
        "serial_seconds": round(serial_seconds, 6),
        "batched_seconds": round(batched_seconds, 6),
        "speedup": round(serial_seconds / batched_seconds, 3),
        "parity": parity,
        "execution": execution,
    }


def _bench_restart_rows(rows):
    """Per-size serial-vs-batched rows plus the Fig. 7 sweep aggregates."""
    for n_restarts in RESTART_COUNTS:
        serial_total = batched_total = 0.0
        for n in FIT_SIZES:
            problem = _problem(n)
            serial_s, batched_s, serial, batched = _time_pair(
                lambda: _fit(problem, n_restarts, "serial"),
                lambda: _fit(problem, n_restarts, "batched"),
                reps=REPS,
            )
            label = f"fit_n{n}_m50_r{n_restarts}"
            _assert_bitwise(serial, batched, label)
            serial_total += serial_s
            batched_total += batched_s
            rows[label] = _row(
                serial_s,
                batched_s,
                f"bitwise ({batched.n_iterations} iterations, "
                f"restart {batched.health.selected} selected)",
                execution_info(
                    batch_size=n_restarts, metrics=_occupancy(problem, n_restarts)
                ),
            )
        rows[f"fig7_aggregate_r{n_restarts}"] = {
            "serial_seconds": round(serial_total, 6),
            "batched_seconds": round(batched_total, 6),
            "speedup": round(serial_total / batched_total, 3),
            "parity": "aggregate of bitwise-asserted rows",
            "execution": execution_info(batch_size=n_restarts),
        }


def _series_dict(result):
    return {
        name: tuple(series.accuracy) for name, series in result.series.items()
    }


def _bench_harness_row(rows):
    """run_simulation trial packs: serial vs ``trial_mode="batched"``."""
    config = GeneratorConfig.estimator_defaults(n_sources=20)
    kwargs = dict(
        algorithms=("em-ext",),
        n_trials=16,
        seed=SEED,
        include_optimal=False,
        em_config=EMConfig(init_strategy="random"),
    )
    serial_s, batched_s, serial, batched = _time_pair(
        lambda: run_simulation(config, **kwargs),
        lambda: run_simulation(config, trial_mode="batched", **kwargs),
        reps=REPS,
    )
    assert _series_dict(serial) == _series_dict(batched), "harness series"
    rows["harness_trials_n20_t16"] = _row(
        serial_s,
        batched_s,
        "bit-identical series",
        execution_info(batch_size=16),
    )


def _bench_parallel_row(rows):
    """Lane batching × process fan-out (multi-core machines only)."""
    n, n_restarts = 20, 16
    problem = _problem(n)
    serial_s, combined_s, serial, combined = _time_pair(
        lambda: _fit(problem, n_restarts, "serial"),
        lambda: _fit(problem, n_restarts, "batched", ParallelConfig(n_jobs=2)),
        reps=REPS,
    )
    serial_result = serial
    # Driver outcomes lack the EstimationResult wrapper; compare fields.
    assert np.array_equal(serial_result.scores, combined.posterior), (
        "parallel+batched: posterior"
    )
    assert serial_result.log_likelihood == combined.log_likelihood, (
        "parallel+batched: ll"
    )
    rows[f"fit_n{n}_m50_r{n_restarts}_jobs2"] = _row(
        serial_s,
        combined_s,
        "bitwise (lanes split into per-worker packs)",
        execution_info(n_jobs=2, batch_size=n_restarts // 2),
    )


def _enforce_baseline(rows):
    with open(_BASELINE_PATH) as handle:
        baseline = json.load(handle)
    failures = []
    floor = baseline["min_aggregate_speedup"]
    for n_restarts in RESTART_COUNTS:
        name = f"fig7_aggregate_r{n_restarts}"
        measured = rows[name]["speedup"]
        if measured < floor:
            failures.append(
                f"{name}: aggregate {measured}x below the {floor}x acceptance floor"
            )
    for name, expected in baseline["speedups"].items():
        if name not in rows:
            continue  # the parallel row is machine-dependent
        measured = rows[name]["speedup"]
        if measured * REGRESSION_FACTOR < expected:
            failures.append(
                f"{name}: measured {measured}x < baseline {expected}x "
                f"/ {REGRESSION_FACTOR}"
            )
    assert not failures, "batched speedup regression:\n" + "\n".join(failures)


def test_batched_scaling_writes_bench_json():
    rows = {}
    _bench_restart_rows(rows)
    _bench_harness_row(rows)
    if (os.cpu_count() or 1) >= 2:
        _bench_parallel_row(rows)

    report = {
        "experiment": "batched lane engine vs serial restart loop",
        "method": (
            "interleaved serial/batched, best wall-clock over "
            f"{REPS} repetitions; occupancy from an untimed extra run"
        ),
        "config": {
            "seed": SEED,
            "fit_sizes": [
                {"n_sources": n, "n_assertions": 50} for n in FIT_SIZES
            ],
            "restart_counts": list(RESTART_COUNTS),
            "init_strategy": "random",
        },
        "machine": machine_info(),
        "rows": rows,
        "speedups": {name: row["speedup"] for name, row in rows.items()},
        "parity": "batched lanes bitwise-equal to serial restarts",
    }
    out_path = os.environ.get("REPRO_BENCH_OUT", _DEFAULT_OUT)
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    print(f"\nbatched scaling -> {os.path.abspath(out_path)}")
    for name, row in rows.items():
        occupancy = (row.get("execution") or {}).get("lane_occupancy")
        mean = f", mean occupancy {occupancy['mean']}" if occupancy else ""
        print(
            f"  {name:>24}: {row['serial_seconds']:7.3f}s -> "
            f"{row['batched_seconds']:7.3f}s "
            f"({row['speedup']:5.2f}x{mean})"
        )

    if os.environ.get("REPRO_BENCH_ENFORCE") == "1":
        _enforce_baseline(rows)
