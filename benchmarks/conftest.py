"""Benchmark-suite conftest.

Each benchmark prints the table/figure it regenerated; pytest normally
swallows stdout of passing tests, so an autouse fixture re-emits the
captured exhibit through the uncaptured stream — ``pytest benchmarks/
--benchmark-only | tee bench_output.txt`` then records every exhibit.
"""

import sys

import pytest


@pytest.fixture(autouse=True)
def show_exhibits(capsys):
    """Re-emit each benchmark's printed exhibit after the test body."""
    yield
    captured = capsys.readouterr()
    if captured.out:
        with capsys.disabled():
            sys.stdout.write(captured.out)
            sys.stdout.flush()
