"""Figure 11: empirical top-100 grading accuracy of seven algorithms on
the five (simulated) 2015 Twitter datasets.

Paper shapes: EM-Ext delivers the best overall accuracy; the EM family
clearly beats the iterative heuristics (Sums, Average·Log, TruthFinder)
and Voting, which over-trust rumour cascades; the heuristics are
high-variance across datasets.
"""

import numpy as np

from repro.baselines import EMPIRICAL_ALGORITHMS
from repro.eval import figure11_empirical, figure11_matrix, format_empirical
from repro.eval.experiments import full_trials


def test_fig11_empirical_accuracy(benchmark):
    kwargs = {
        "n_seeds": 3 if full_trials() else 2,
        "target_assertions": 1000 if full_trials() else 700,
        "seed": 0,
    }
    cells = benchmark.pedantic(
        figure11_empirical, kwargs=kwargs, rounds=1, iterations=1
    )
    print("\n" + format_empirical(cells))
    matrix = figure11_matrix(cells)
    means = {
        name: float(np.mean(list(matrix[name].values())))
        for name in EMPIRICAL_ALGORITHMS
    }
    print("\nper-algorithm means:", {k: round(v, 3) for k, v in means.items()})

    heuristics = ("voting", "sums", "average-log", "truthfinder")
    best_heuristic = max(means[name] for name in heuristics)

    # EM-Ext leads overall (small tolerance for the reduced seed count).
    for name in EMPIRICAL_ALGORITHMS:
        if name != "em-ext":
            assert means["em-ext"] >= means[name] - 0.02, name
    # The dependency-aware EM family beats every heuristic.
    assert means["em-ext"] > best_heuristic
    assert means["em-social"] > best_heuristic
    # Every ratio is a valid fraction.
    for cell in cells:
        assert 0.0 <= cell.true_ratio <= 1.0
