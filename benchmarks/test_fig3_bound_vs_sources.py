"""Figure 3: exact vs approximate error bound as the source count grows.

Paper shape: the Gibbs approximation tracks the exact bound closely for
every n (max reported deviation 0.0064 at n = 20).
"""

from repro.eval import figure3_bound_vs_sources, format_bound_comparison


def test_fig3_bound_vs_sources(benchmark):
    rows = benchmark.pedantic(figure3_bound_vs_sources, rounds=1, iterations=1)
    print("\n" + format_bound_comparison(rows, x_label="n"))
    values = [r.value for r in rows]
    # Full grid 5..25 with REPRO_FULL_TRIALS=1, 5..20 at CI scale.
    assert values[:4] == [5.0, 10.0, 15.0, 20.0]
    for row in rows:
        # Bounds are valid probabilities below the prior-guess ceiling.
        assert 0.0 <= row.exact_total <= 0.5
        # Shape claim: the approximation stays tight (paper: ≤ 0.0064;
        # we allow a small multiple at reduced trial counts).
        assert row.absolute_difference < 0.02, row
    # More informative sources → lower Bayes risk at the high end.
    assert rows[-1].exact_total < rows[0].exact_total
