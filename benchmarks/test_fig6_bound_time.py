"""Figure 6: bound computation time, exact vs Gibbs approximation.

Paper shape: exact enumeration explodes exponentially with the source
count and quickly becomes intractable; the Gibbs approximation's cost
stays roughly flat.
"""

from repro.eval import figure6_bound_timing, format_timing


def test_fig6_bound_computation_time(benchmark):
    rows = benchmark.pedantic(figure6_bound_timing, rounds=1, iterations=1)
    print("\n" + format_timing(rows))
    exact_times = [r.exact_seconds for r in rows if r.exact_seconds is not None]
    gibbs_times = [r.gibbs_seconds for r in rows]
    # Exponential blow-up: the largest exact computation dwarfs the smallest.
    assert exact_times[-1] > 20 * exact_times[0]
    # The approximation is far cheaper than exact at the crossover and
    # stays within a modest band across all n.
    last_exact_row = [r for r in rows if r.exact_seconds is not None][-1]
    assert last_exact_row.gibbs_seconds < last_exact_row.exact_seconds
    assert max(gibbs_times) < 60 * max(min(gibbs_times), 1e-3)
    # Beyond the cutoff only the approximation is feasible (the figure's
    # point): the largest n has no exact measurement.
    assert rows[-1].exact_seconds is None
