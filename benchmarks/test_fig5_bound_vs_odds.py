"""Figure 5: exact vs approximate bound as the dependent-claim
discrimination odds ``p_depT / (1 − p_depT)`` sweep 1.1 → 2.0 with the
independent odds pinned at 2.

Paper shape: approximation within ~0.0116 everywhere; the bound falls
as dependent claims become more discriminative.
"""

from repro.eval import figure5_bound_vs_odds, format_bound_comparison


def test_fig5_bound_vs_odds(benchmark):
    rows = benchmark.pedantic(figure5_bound_vs_odds, rounds=1, iterations=1)
    print("\n" + format_bound_comparison(rows, x_label="dep-odds"))
    assert len(rows) == 10
    for row in rows:
        assert row.absolute_difference < 0.02, row
    # More discriminative dependent claims → easier problem: the bound
    # at odds 2.0 sits below the bound at odds 1.1.
    assert rows[-1].exact_total < rows[0].exact_total + 0.01
