"""Figure 7: estimator accuracy / FP / FN as the source count grows.

Paper shape: more sources help every algorithm except plain EM, whose
false-positive handling is the worst of the three because it cannot
discount cascades; EM-Ext tracks the Optimal ceiling most closely and
its FN rate resembles the bound's.
"""

import numpy as np

from repro.eval import OPTIMAL_KEY, figure7_estimator_vs_sources, format_sweep


def series_mean(values):
    return float(np.mean(values))


def test_fig7_estimator_vs_sources(benchmark):
    sweep = benchmark.pedantic(figure7_estimator_vs_sources, rounds=1, iterations=1)
    print("\naccuracy:\n" + format_sweep(sweep, "accuracy"))
    print("\nfalse positives:\n" + format_sweep(sweep, "false_positive_rate"))
    print("\nfalse negatives:\n" + format_sweep(sweep, "false_negative_rate"))

    accuracy = {name: sweep.curve(name) for name in ("em", "em-social", "em-ext", OPTIMAL_KEY)}
    fp = {name: sweep.curve(name, "false_positive_rate") for name in ("em", "em-ext")}

    # The Optimal bound dominates every estimator at every point.
    for name in ("em", "em-social", "em-ext"):
        for point_accuracy, ceiling in zip(accuracy[name], accuracy[OPTIMAL_KEY]):
            assert point_accuracy <= ceiling + 0.03, name

    # EM-Ext is the best estimator on average and closest to Optimal.
    assert series_mean(accuracy["em-ext"]) >= series_mean(accuracy["em"]) - 0.01
    assert series_mean(accuracy["em-ext"]) >= series_mean(accuracy["em-social"]) - 0.01

    # EM's inability to discount dependent claims shows as the largest
    # false-positive rate.
    assert series_mean(fp["em"]) > series_mean(fp["em-ext"])

    # More sources improve EM-Ext (first vs last sweep point).
    assert accuracy["em-ext"][-1] >= accuracy["em-ext"][0] - 0.02
