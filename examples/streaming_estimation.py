"""Streaming fact-finding over a live claim stream (extension).

Claims arrive in hourly batches; the streaming estimator keeps decayed
sufficient statistics for every source, so each batch is judged with
everything learned from the past instead of from scratch.

Run:
    python examples/streaming_estimation.py
"""

import numpy as np

from repro import EMExtEstimator, GeneratorConfig
from repro.extensions import StreamingEMExt
from repro.synthetic import SyntheticGenerator


def main() -> None:
    n_sources = 30
    config = GeneratorConfig(n_sources=n_sources, n_assertions=40, n_trees=(10, 12))
    generator = SyntheticGenerator(config, seed=8)
    batches = generator.generate_many(10)

    stream = StreamingEMExt(n_sources=n_sources, decay=0.98, seed=0)
    print(f"{'batch':>6} {'streaming acc':>14} {'cold-start acc':>15}")
    streaming_history = []
    cold_history = []
    for index, dataset in enumerate(batches):
        blind = dataset.problem.without_truth()
        truth = dataset.problem.truth

        result = stream.partial_fit(blind)
        streaming_accuracy = float((result.decisions == truth).mean())

        # Baseline: refit EM-Ext from scratch on this batch alone.
        cold = EMExtEstimator(seed=0).fit(blind)
        cold_accuracy = float((cold.decisions == truth).mean())

        streaming_history.append(streaming_accuracy)
        cold_history.append(cold_accuracy)
        print(f"{index:>6} {streaming_accuracy:>14.3f} {cold_accuracy:>15.3f}")

    print(
        f"\nlate-stream mean (batches 5+): streaming "
        f"{np.mean(streaming_history[5:]):.3f} vs cold-start "
        f"{np.mean(cold_history[5:]):.3f}"
    )
    print(
        "the streaming estimator amortises source-behaviour learning "
        "across batches,\nwhile the cold-start baseline relearns "
        f"{4 * n_sources + 1} parameters per batch."
    )


if __name__ == "__main__":
    main()
