"""Exploring the fundamental error bound (Section III).

Shows: exact vs Gibbs-approximated bounds with their FP/FN split, how
the dependency structure (number of trees τ) moves the bound, and
Cramér–Rao confidence intervals on the parameters a fitted estimator
reports.

Run:
    python examples/error_bound_analysis.py
"""

import time

import numpy as np

from repro import EMExtEstimator, GeneratorConfig, generate_dataset
from repro.bounds import GibbsConfig, exact_bound, gibbs_bound, parameter_confidence
from repro.synthetic import empirical_parameters


def bound_vs_trees() -> None:
    print("bound vs dependency structure (tau = number of trees):")
    print(f"{'tau':>4} {'exact':>8} {'gibbs':>8} {'|diff|':>8} {'FP':>8} {'FN':>8}")
    for tau in (1, 3, 5, 8, 12, 20):
        config = GeneratorConfig(n_trees=(tau, tau))
        dataset = generate_dataset(config, seed=tau)
        params = empirical_parameters(dataset.problem).clamp(1e-4)
        dependency = dataset.problem.dependency.values
        exact = exact_bound(dependency, params)
        approx = gibbs_bound(
            dependency, params,
            config=GibbsConfig(min_sweeps=800, max_sweeps=4000), seed=tau,
        )
        print(
            f"{tau:>4} {exact.total:>8.4f} {approx.total:>8.4f} "
            f"{abs(exact.total - approx.total):>8.4f} "
            f"{exact.false_positive:>8.4f} {exact.false_negative:>8.4f}"
        )


def tractability() -> None:
    print("\nexact enumeration cost explodes; Gibbs stays flat:")
    print(f"{'n':>4} {'exact (s)':>10} {'gibbs (s)':>10}")
    for n in (10, 16, 22):
        config = GeneratorConfig(n_sources=n, n_trees=(min(8, n), min(8, n)))
        dataset = generate_dataset(config, seed=n)
        params = empirical_parameters(dataset.problem).clamp(1e-4)
        dependency = dataset.problem.dependency.values
        start = time.perf_counter()
        exact_bound(dependency, params)
        exact_seconds = time.perf_counter() - start
        start = time.perf_counter()
        gibbs_bound(dependency, params, seed=n)
        gibbs_seconds = time.perf_counter() - start
        print(f"{n:>4} {exact_seconds:>10.3f} {gibbs_seconds:>10.3f}")


def parameter_intervals() -> None:
    print("\nCramér-Rao confidence intervals on fitted parameters:")
    dataset = generate_dataset(GeneratorConfig(n_assertions=200), seed=0)
    blind = dataset.problem.without_truth()
    result = EMExtEstimator(seed=0).fit(blind)
    confidence = parameter_confidence(
        blind, result.parameters, result.scores, confidence=0.95
    )
    widths_a = confidence.interval_width("a")
    widths_f = confidence.interval_width("f")
    print(
        f"  a: mean 95% interval width {widths_a.mean():.3f} "
        f"(dense independent partitions)"
    )
    print(
        f"  f: mean 95% interval width "
        f"{widths_f[np.isfinite(widths_f)].mean():.3f} "
        f"(sparser dependent partitions are less certain)"
    )


def main() -> None:
    bound_vs_trees()
    tractability()
    parameter_intervals()


if __name__ == "__main__":
    main()
