"""Quickstart: generate a synthetic social-sensing workload, run the
dependency-aware EM-Ext estimator, and compare it with the baselines
and the fundamental error bound.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro import (
    EMExtEstimator,
    EMIndependent,
    EMSocial,
    GeneratorConfig,
    exact_bound,
    generate_dataset,
)
from repro.eval import score_result
from repro.synthetic import empirical_parameters


def main() -> None:
    # 1. A Section V-A workload: 20 sources in 8-10 dependency trees
    #    jointly reporting 50 assertions.
    dataset = generate_dataset(GeneratorConfig(), seed=42)
    problem = dataset.problem
    print(
        f"workload: {problem.n_sources} sources x {problem.n_assertions} "
        f"assertions, {problem.claims.n_claims} claims "
        f"({problem.dependent_claim_fraction():.0%} dependent)"
    )

    # 2. Estimators never see the ground truth.
    blind = problem.without_truth()
    estimators = [
        EMExtEstimator(seed=0),   # the paper's contribution
        EMIndependent(seed=0),    # EM, IPSN 2012 (assumes independence)
        EMSocial(seed=0),         # EM-Social, IPSN 2014 (drops dependents)
    ]
    print(f"\n{'algorithm':<12} {'accuracy':>9} {'FP rate':>9} {'FN rate':>9}")
    for estimator in estimators:
        result = estimator.fit(blind)
        metrics = score_result(result, problem.truth)
        print(
            f"{estimator.algorithm_name:<12} {metrics.accuracy:>9.3f} "
            f"{metrics.false_positive_rate:>9.3f} "
            f"{metrics.false_negative_rate:>9.3f}"
        )

    # 3. The fundamental error bound: the accuracy ceiling of the
    #    *optimal* estimator that knows every source parameter exactly.
    oracle = empirical_parameters(problem).clamp(1e-4)
    bound = exact_bound(problem.dependency.values, oracle)
    print(
        f"\noptimal ceiling (1 - Err): {bound.optimal_accuracy:.3f} "
        f"(Err = {bound.total:.4f}; FP share {bound.false_positive:.4f}, "
        f"FN share {bound.false_negative:.4f})"
    )

    # 4. Inspect what EM-Ext learned about the sources.
    result = EMExtEstimator(seed=0).fit(blind)
    params = result.parameters
    print(
        f"\nlearned source behaviour (population means): "
        f"a={params.a.mean():.2f} b={params.b.mean():.2f} "
        f"f={params.f.mean():.2f} g={params.g.mean():.2f} z={params.z:.2f}"
    )
    top = result.top_k(5)
    print(f"five most credible assertions: {np.array(top)} "
          f"(posteriors {np.round(result.scores[top], 3)})")


if __name__ == "__main__":
    main()
