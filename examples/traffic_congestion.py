"""The paper's Figure 1 scenario, built from the network substrate.

John follows Sally on Twitter but not Heather.  Sally and Heather
independently report congestion; John repeats Sally's report (a
*dependent* claim) and independently reports University Ave.  This
script assembles that event stream, extracts the dependency indicators,
and shows how the dependency-aware posterior differs from the
independence-assuming one.

Run:
    python examples/traffic_congestion.py
"""

import numpy as np

from repro import FollowGraph, SensingProblem, SourceParameters, posterior_truth
from repro.network import EventLog, Post, build_problem, dependency_summary

JOHN, SALLY, HEATHER = 0, 1, 2
MAIN_ST, UNIVERSITY_AVE = 0, 1
NAMES = {JOHN: "John", SALLY: "Sally", HEATHER: "Heather"}
STREETS = {MAIN_ST: "Main Street", UNIVERSITY_AVE: "University Ave"}


def main() -> None:
    # Who influences whom: an edge follower -> followee.
    graph = FollowGraph.from_edges(3, [(JOHN, SALLY)])

    # The morning's tweets, in the paper's order (t1 < t2 < t3).
    log = EventLog(
        posts=[
            Post(post_id=0, source=SALLY, assertion=MAIN_ST, time=1.0,
                 text="Main Street, Urbana, IL is congested"),
            Post(post_id=1, source=HEATHER, assertion=UNIVERSITY_AVE, time=1.0,
                 text="University Ave., Urbana, IL is congested"),
            Post(post_id=2, source=JOHN, assertion=MAIN_ST, time=2.0),
            Post(post_id=3, source=JOHN, assertion=UNIVERSITY_AVE, time=3.0),
        ]
    )

    problem = build_problem(log, graph, n_assertions=2)
    print("source-claim matrix SC:")
    print(problem.claims.values)
    print("\ndependency indicators D (1 = the paper's D_ij = 1):")
    print(problem.dependency.values)
    print("\nsummary:", dependency_summary(problem))

    # A channel model for the three commuters: John repeats without
    # verifying half the time, so his dependent claims discriminate
    # poorly (f close to g); everyone's independent claims are good.
    params = SourceParameters(
        a=np.array([0.7, 0.8, 0.8]),
        b=np.array([0.15, 0.1, 0.1]),
        f=np.array([0.65, 0.5, 0.5]),
        g=np.array([0.45, 0.5, 0.5]),
        z=0.5,
    )

    aware = posterior_truth(problem, params)
    naive = posterior_truth(
        SensingProblem.independent(problem.claims.values), params
    )
    print(f"\n{'street':<16} {'P(true) dep-aware':>18} {'P(true) naive':>15}")
    for street in (MAIN_ST, UNIVERSITY_AVE):
        print(
            f"{STREETS[street]:<16} {aware[street]:>18.3f} {naive[street]:>15.3f}"
        )
    print(
        "\nBoth streets have two supporters, so the naive model rates them "
        "equally;\nthe dependency-aware model discounts John's repeat of "
        "Sally and trusts\nUniversity Ave (independently corroborated) more."
    )


if __name__ == "__main__":
    main()
