"""Breaking-news fact-finding: the Section V-C flow on a simulated
Paris Attack crawl.

Simulates the platform at a reduced scale, feeds the evaluation day's
raw tweets (text only) through the Apollo-style pipeline — ingestion,
token clustering, dependency extraction from retweets — runs all seven
algorithms of Figure 11, and grades each one's top assertions with the
paper's merge/anonymise protocol.

Run:
    python examples/breaking_news_pipeline.py
"""

from repro.baselines import EMPIRICAL_ALGORITHMS, make_fact_finder
from repro.core import EMConfig
from repro.datasets import simulate_dataset
from repro.pipeline import ApolloPipeline, SimulatedGrader, grade_top_k


def main() -> None:
    dataset = simulate_dataset("paris_attack", scale=0.03, seed=7)
    summary = dataset.summary()
    print(
        f"simulated crawl: {summary.n_sources} sources, "
        f"{summary.n_assertions} assertions, {summary.n_total_claims} claims "
        f"({summary.n_original_claims} original)"
    )

    # --- Text-level pipeline: cluster raw tweets into assertions -------
    tweets = dataset.evaluation_tweets()
    report = ApolloPipeline("em-ext", seed=0).run(tweets)
    built = report.built
    print(
        f"\nevaluation day: {len(tweets)} tweets from "
        f"{built.problem.n_sources} sources clustered into "
        f"{built.problem.n_assertions} assertions "
        f"({built.problem.dependent_claim_fraction():.0%} of claims dependent)"
    )
    print("\nmost credible assertions (EM-Ext):")
    for row in report.top(5):
        print(
            f"  [{row.score:.2f}] ({row.n_supporters} supporters) "
            f"{row.representative_text}"
        )

    # --- Matrix-level comparison: all seven algorithms, graded ---------
    evaluation = dataset.evaluation_slice()
    blind = evaluation.problem.without_truth()
    results = {}
    for name in EMPIRICAL_ALGORITHMS:
        if name == "em-ext":
            finder = make_fact_finder(name, seed=0, config=EMConfig(smoothing=1.0))
        elif name in ("em", "em-social"):
            finder = make_fact_finder(name, seed=0, smoothing=1.0)
        else:
            finder = make_fact_finder(name)
        results[name] = finder.fit(blind)

    grader = SimulatedGrader(evaluation.labels, seed=1)
    reports = grade_top_k(results, grader, k=100, seed=2)
    print(f"\n{'algorithm':<12} {'top-100 true ratio':>18}")
    for name in EMPIRICAL_ALGORITHMS:
        print(f"{name:<12} {reports[name].true_ratio:>18.3f}")


if __name__ == "__main__":
    main()
