"""Fact-finding at crawl scale with the format-polymorphic data layer.

The dense matrices of a Table III-size crawl do not fit in memory
(Paris Attack: 38 844 × 23 513 cells ≈ 7 GB as float64); a
``repro.data.CsrProblem`` stores only claims and dependent cells (int8
data arrays) and runs the same dependency-aware EM.  This example
simulates a half-scale Ukraine crawl (~1 850 assertions over 40 days),
asks the dataset for its evaluation day directly in CSR format, and
fact-finds it — no dense matrices are ever materialised (an accidental
densification over the budget would raise ``MemoryBudgetError``).

Requires scipy (``pip install -e '.[sparse]'``).

Run:
    python examples/full_scale_sparse.py
"""

import time

from repro.core import EMConfig
from repro.datasets import AssertionLabel, simulate_dataset, summarize_cascades
from repro.sparse import SparseEMExt


def main() -> None:
    start = time.perf_counter()
    dataset = simulate_dataset("ukraine", scale=0.5, seed=11)
    summary = dataset.summary()
    print(
        f"simulated {summary.name}: {summary.n_sources} sources, "
        f"{summary.n_assertions} assertions, {summary.n_total_claims} claims "
        f"({time.perf_counter() - start:.1f}s)"
    )
    cascades = summarize_cascades(dataset.tweets)
    print(
        f"cascades: {cascades.n_cascades} ({cascades.n_singletons} singletons), "
        f"largest {cascades.max_size}, retweet share "
        f"{cascades.retweet_fraction:.0%}"
    )

    # The dataset hands back a CsrProblem directly; every estimator and
    # bound accepts it through the shared Problem protocol.
    evaluation = dataset.evaluation_slice(output_format="csr")
    problem = evaluation.problem
    density = problem.n_claims / (problem.n_sources * problem.n_assertions)
    print(
        f"\nevaluation day: {problem.n_sources} x "
        f"{problem.n_assertions} cells at {density:.2%} density, "
        f"{problem.dependent_claim_fraction():.0%} of claims dependent"
    )

    start = time.perf_counter()
    result = SparseEMExt(EMConfig(smoothing=1.0)).fit(problem.without_truth())
    elapsed = time.perf_counter() - start
    print(
        f"sparse EM-Ext: {result.n_iterations} iterations in {elapsed:.1f}s "
        f"(converged={result.converged})"
    )

    truth = problem.truth
    top = result.top_k(100)
    labels = [evaluation.labels[j] for j in top]
    n_true = sum(1 for label in labels if label is AssertionLabel.TRUE)
    print(
        f"top-100 true ratio: {n_true / 100:.2f} "
        f"(base rate {float(truth.mean()):.2f})"
    )
    accuracy = float((result.decisions == truth).mean())
    print(f"decision accuracy vs binary truth: {accuracy:.3f}")


if __name__ == "__main__":
    main()
