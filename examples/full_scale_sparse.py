"""Fact-finding at crawl scale with the sparse substrate.

The dense matrices of a Table III-size crawl do not fit in memory
(Paris Attack: 38 844 × 23 513 cells ≈ 7 GB as float64); the sparse
substrate stores only claims and dependent cells and runs the same
dependency-aware EM.  This example simulates a half-scale Ukraine crawl
(~1 850 assertions over 40 days), extracts sparse matrices straight
from the event stream, and fact-finds the evaluation day.

Requires scipy (``pip install -e '.[sparse]'``).

Run:
    python examples/full_scale_sparse.py
"""

import time


from repro.core import EMConfig
from repro.datasets import AssertionLabel, simulate_dataset, summarize_cascades
from repro.sparse import SparseEMExt, SparseSensingProblem


def main() -> None:
    start = time.perf_counter()
    dataset = simulate_dataset("ukraine", scale=0.5, seed=11)
    summary = dataset.summary()
    print(
        f"simulated {summary.name}: {summary.n_sources} sources, "
        f"{summary.n_assertions} assertions, {summary.n_total_claims} claims "
        f"({time.perf_counter() - start:.1f}s)"
    )
    cascades = summarize_cascades(dataset.tweets)
    print(
        f"cascades: {cascades.n_cascades} ({cascades.n_singletons} singletons), "
        f"largest {cascades.max_size}, retweet share "
        f"{cascades.retweet_fraction:.0%}"
    )

    evaluation = dataset.evaluation_slice()
    sparse_problem = SparseSensingProblem.from_dense(evaluation.problem)
    density = sparse_problem.n_claims / (
        sparse_problem.n_sources * sparse_problem.n_assertions
    )
    print(
        f"\nevaluation day: {sparse_problem.n_sources} x "
        f"{sparse_problem.n_assertions} cells at {density:.2%} density, "
        f"{sparse_problem.dependent_claim_fraction():.0%} of claims dependent"
    )

    start = time.perf_counter()
    result = SparseEMExt(EMConfig(smoothing=1.0)).fit(
        sparse_problem.without_truth()
    )
    elapsed = time.perf_counter() - start
    print(
        f"sparse EM-Ext: {result.n_iterations} iterations in {elapsed:.1f}s "
        f"(converged={result.converged})"
    )

    truth = evaluation.problem.truth
    top = result.top_k(100)
    labels = [evaluation.labels[j] for j in top]
    n_true = sum(1 for label in labels if label is AssertionLabel.TRUE)
    print(
        f"top-100 true ratio: {n_true / 100:.2f} "
        f"(base rate {float(truth.mean()):.2f})"
    )
    accuracy = float((result.decisions == truth).mean())
    print(f"decision accuracy vs binary truth: {accuracy:.3f}")


if __name__ == "__main__":
    main()
