"""Ordered process fan-out with fault and hang containment.

:func:`parallel_imap` is the one primitive every parallel entry point in
the library uses: map a picklable top-level function over a task list
and yield the results *in task order*, streaming — result ``k`` is
yielded as soon as tasks ``0..k`` are done, while later tasks are still
running.  Ordered streaming is what lets the simulation harness keep
its per-trial checkpointing loop unchanged under parallelism.

Failure semantics:

* a worker exception is re-raised in the parent on the failing task's
  turn (the pool is terminated first, so no orphaned work keeps
  burning CPU) — callers that want softer behaviour catch inside the
  worker function, exactly as the serial code catches around the call;
* a result that does not arrive within ``config.timeout_seconds``
  *kills* the pool (``terminate``, not ``join``) and raises
  :class:`WorkerTimeoutError`, so a wedged or deadlocked worker can
  never hang the parent sweep.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Iterator, List, Sequence, TypeVar

from repro.parallel.config import BACKEND_SERIAL, ParallelConfig
from repro.utils.errors import ReproError

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")


class WorkerTimeoutError(ReproError):
    """A worker result did not arrive within the configured timeout."""


def _run_chunk(payload):
    """Map one chunk of tasks in a worker (pool entry point).

    Chunking is done here rather than via ``imap``'s ``chunksize``
    because the stdlib wraps chunked results in a plain generator that
    has no timed ``next`` — and the timeout guard needs one.
    """
    fn, chunk = payload
    return [fn(task) for task in chunk]


def parallel_imap(
    fn: Callable[[TaskT], ResultT],
    tasks: Sequence[TaskT],
    *,
    config: ParallelConfig,
) -> Iterator[ResultT]:
    """Yield ``fn(task)`` for every task, in order, possibly from workers.

    ``fn`` must be a module-level (picklable) function when the process
    backend is used.  With ``config.backend == "serial"`` or a single
    effective worker the tasks run in-process through the *same* code
    path, which is what makes ``n_jobs=1`` vs ``n_jobs=k`` parity tests
    meaningful.
    """
    tasks = list(tasks)
    if not tasks:
        return
    jobs = config.effective_jobs(len(tasks))
    if config.backend == BACKEND_SERIAL or jobs <= 1:
        for task in tasks:
            yield fn(task)
        return
    size = config.chunk_size
    chunks = [tasks[i : i + size] for i in range(0, len(tasks), size)]
    context = multiprocessing.get_context(config.start_method)
    pool = context.Pool(processes=jobs)
    terminated = False
    try:
        iterator = pool.imap(_run_chunk, [(fn, chunk) for chunk in chunks])
        for _ in range(len(chunks)):
            try:
                if config.timeout_seconds is None:
                    results = iterator.next()
                else:
                    results = iterator.next(config.timeout_seconds)
            except multiprocessing.TimeoutError:
                pool.terminate()
                terminated = True
                raise WorkerTimeoutError(
                    f"no worker result within {config.timeout_seconds}s "
                    f"(pool of {jobs} terminated)"
                ) from None
            except Exception:
                # Worker-raised exception: stop the remaining work before
                # re-raising, so fail-fast semantics match the serial path.
                pool.terminate()
                terminated = True
                raise
            yield from results
    except GeneratorExit:
        # The consumer abandoned the stream (e.g. its own error path);
        # don't make close() wait for work nobody will read.
        pool.terminate()
        terminated = True
        raise
    finally:
        if not terminated:
            pool.close()
        pool.join()


def parallel_map(
    fn: Callable[[TaskT], ResultT],
    tasks: Sequence[TaskT],
    *,
    config: ParallelConfig,
) -> List[ResultT]:
    """Eager form of :func:`parallel_imap`."""
    return list(parallel_imap(fn, tasks, config=config))


__all__ = ["WorkerTimeoutError", "parallel_imap", "parallel_map"]
