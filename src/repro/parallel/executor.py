"""Ordered process fan-out with fault and hang containment.

:func:`parallel_imap` is the one primitive every parallel entry point in
the library uses: map a picklable top-level function over a task list
and yield the results *in task order*, streaming — result ``k`` is
yielded as soon as tasks ``0..k`` are done, while later tasks are still
running.  Ordered streaming is what lets the simulation harness keep
its per-trial checkpointing loop unchanged under parallelism.

Failure semantics:

* a worker exception is re-raised in the parent on the failing task's
  turn (the pool is terminated first, so no orphaned work keeps
  burning CPU) — callers that want softer behaviour catch inside the
  worker function, exactly as the serial code catches around the call;
* with ``config.timeout_seconds`` set, each chunk gets a *soft
  deadline* supervised through worker heartbeats: workers stamp a
  shared array before every task, and a chunk whose heartbeat goes
  silent past the timeout is treated as wedged.  The wedged pool is
  terminated (``terminate``, not ``join``), unfinished healthy chunks
  are resubmitted to a fresh pool, and the wedged chunk itself is
  retried up to ``config.max_resubmits`` times.  A chunk that exhausts
  its resubmissions surfaces as :class:`WorkerTimeoutError` — raised
  at its in-order turn, or routed through the caller's ``on_timeout``
  hook (one call per task, its return value yielded in the task's
  place) so a sweep can degrade per-trial instead of aborting.

The supervised path changes *when* results are computed, never *what*:
on a fault-free run the chunks, their order and every task's arguments
are identical to the unsupervised path, so serial parity is preserved
(pinned in ``tests/parallel/test_serial_parity.py``).
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Callable, Iterator, List, Optional, Sequence, Tuple, TypeVar

from repro.parallel.config import BACKEND_SERIAL, ParallelConfig
from repro.utils.errors import ReproError

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")

#: ``on_timeout(global_task_index, task, error) -> substitute result``.
TimeoutHook = Callable[[int, TaskT, "WorkerTimeoutError"], ResultT]


class WorkerTimeoutError(ReproError):
    """A chunk's heartbeat went silent past the configured timeout.

    Carries enough context to turn the wedge into per-trial failure
    records: which chunk wedged, the global indices of the tasks it
    held, how long the parent waited and how many resubmissions were
    burned before giving up.
    """

    def __init__(
        self,
        message: str,
        *,
        chunk_index: Optional[int] = None,
        task_indices: Tuple[int, ...] = (),
        elapsed_seconds: float = 0.0,
        n_resubmits: int = 0,
    ) -> None:
        super().__init__(message)
        self.chunk_index = chunk_index
        self.task_indices = tuple(task_indices)
        self.elapsed_seconds = elapsed_seconds
        self.n_resubmits = n_resubmits


def _run_chunk(payload):
    """Map one chunk of tasks in a worker (pool entry point).

    Chunking is done here rather than via ``imap``'s ``chunksize``
    because the stdlib wraps chunked results in a plain generator that
    has no timed ``next`` — and the timeout guard needs one.
    """
    fn, chunk = payload
    return [fn(task) for task in chunk]


# -- supervised (heartbeat) path -------------------------------------------

#: Per-process shared heartbeat array, installed by the pool initializer.
_HEARTBEATS = None


def _init_heartbeats(array) -> None:
    global _HEARTBEATS
    _HEARTBEATS = array


def _run_chunk_supervised(payload):
    """Like :func:`_run_chunk`, but stamps a heartbeat before each task.

    ``time.monotonic`` is system-wide on the platforms the process
    backend supports, so the parent compares worker stamps directly
    against its own clock.
    """
    index, fn, chunk = payload
    results = []
    for task in chunk:
        if _HEARTBEATS is not None:
            _HEARTBEATS[index] = time.monotonic()
        results.append(fn(task))
    if _HEARTBEATS is not None:
        _HEARTBEATS[index] = time.monotonic()
    return results


def _supervised_imap(
    fn: Callable[[TaskT], ResultT],
    chunks: List[List[TaskT]],
    offsets: List[int],
    jobs: int,
    config: ParallelConfig,
    on_timeout: Optional[TimeoutHook],
) -> Iterator[ResultT]:
    """Heartbeat-supervised ordered fan-out with bounded resubmission."""
    timeout = float(config.timeout_seconds)  # type: ignore[arg-type]
    poll = max(0.01, min(timeout / 4.0, 0.25))
    n = len(chunks)
    context = multiprocessing.get_context(config.start_method)
    heartbeats = context.Array("d", n)

    resubmits = [0] * n
    results: dict = {}  # chunk index -> list of task results
    worker_errors: dict = {}  # chunk index -> exception from the worker
    failures: dict = {}  # chunk index -> WorkerTimeoutError
    pending = set(range(n))
    last_beat = [0.0] * n
    now = time.monotonic()
    progress_at = [now] * n  # last time chunk i demonstrably advanced
    last_progress = now  # last time *anything* advanced

    def make_pool():
        return context.Pool(
            processes=jobs,
            initializer=_init_heartbeats,
            initargs=(heartbeats,),
        )

    def submit(pool, indices):
        return {
            i: pool.apply_async(_run_chunk_supervised, ((i, fn, chunks[i]),))
            for i in sorted(indices)
        }

    pool = make_pool()
    handles = submit(pool, pending)
    alive = True
    try:
        next_index = 0
        while next_index < n:
            if next_index in results:
                yield from results.pop(next_index)
                next_index += 1
                continue
            if next_index in worker_errors:
                # Fail-fast parity with the serial path: stop the
                # remaining work before re-raising.
                if alive:
                    pool.terminate()
                    alive = False
                raise worker_errors[next_index]
            if next_index in failures:
                error = failures[next_index]
                if on_timeout is None:
                    if alive:
                        pool.terminate()
                        alive = False
                    raise error
                for step, task in enumerate(chunks[next_index]):
                    yield on_timeout(offsets[next_index] + step, task, error)
                next_index += 1
                continue

            handles[next_index].wait(poll)

            # Harvest everything that finished, in any order.
            progressed = False
            for i in sorted(pending):
                handle = handles.get(i)
                if handle is None or not handle.ready():
                    continue
                pending.discard(i)
                progressed = True
                try:
                    results[i] = handle.get()
                except Exception as error:  # worker-raised
                    worker_errors[i] = error

            # Observe heartbeats.
            now = time.monotonic()
            for i in sorted(pending):
                beat = heartbeats[i]
                if beat > last_beat[i]:
                    last_beat[i] = beat
                    progress_at[i] = now
                    progressed = True
            if progressed:
                last_progress = now
                continue
            if now - last_progress <= timeout:
                continue

            # Wedge: nothing progressed for a full timeout.  Started
            # chunks whose own heartbeat is stale are the culprits;
            # when none has even started, blame the chunk being waited
            # on (the whole pool is starved).
            stale = {
                i
                for i in pending
                if last_beat[i] > 0.0 and now - progress_at[i] > timeout
            }
            if not stale:
                stale = {min(i for i in pending)}
            pool.terminate()
            pool.join()
            alive = False
            for i in sorted(stale):
                resubmits[i] += 1
                if resubmits[i] > config.max_resubmits:
                    pending.discard(i)
                    failures[i] = WorkerTimeoutError(
                        f"chunk {i} (tasks {offsets[i]}..."
                        f"{offsets[i] + len(chunks[i]) - 1}) made no progress "
                        f"within {timeout:g}s after {resubmits[i] - 1} "
                        f"resubmission(s); pool of {jobs} terminated",
                        chunk_index=i,
                        task_indices=tuple(
                            range(offsets[i], offsets[i] + len(chunks[i]))
                        ),
                        elapsed_seconds=now - progress_at[i],
                        n_resubmits=resubmits[i] - 1,
                    )
            if pending:
                now = time.monotonic()
                for i in pending:
                    heartbeats[i] = 0.0
                    last_beat[i] = 0.0
                    progress_at[i] = now
                last_progress = now
                pool = make_pool()
                alive = True
                handles = submit(pool, pending)
            else:
                handles = {}
    except GeneratorExit:
        if alive:
            pool.terminate()
            alive = False
        raise
    finally:
        if alive:
            pool.close()
        pool.join()


def parallel_imap(
    fn: Callable[[TaskT], ResultT],
    tasks: Sequence[TaskT],
    *,
    config: ParallelConfig,
    on_timeout: Optional[TimeoutHook] = None,
) -> Iterator[ResultT]:
    """Yield ``fn(task)`` for every task, in order, possibly from workers.

    ``fn`` must be a module-level (picklable) function when the process
    backend is used.  With ``config.backend == "serial"`` or a single
    effective worker the tasks run in-process through the *same* code
    path, which is what makes ``n_jobs=1`` vs ``n_jobs=k`` parity tests
    meaningful.

    ``on_timeout`` (supervised path only — requires
    ``config.timeout_seconds``) is called once per task of a chunk that
    exhausted its resubmissions, as ``on_timeout(global_index, task,
    error)``; its return value is yielded in the task's place, so a
    wedged chunk degrades into substitute results instead of aborting
    the sweep.  Without the hook the :class:`WorkerTimeoutError` is
    raised at the wedged chunk's in-order turn.
    """
    tasks = list(tasks)
    if not tasks:
        return
    jobs = config.effective_jobs(len(tasks))
    if config.backend == BACKEND_SERIAL or jobs <= 1:
        for task in tasks:
            yield fn(task)
        return
    size = config.chunk_size
    chunks = [tasks[i : i + size] for i in range(0, len(tasks), size)]
    if config.timeout_seconds is not None:
        offsets = list(range(0, len(tasks), size))
        yield from _supervised_imap(fn, chunks, offsets, jobs, config, on_timeout)
        return
    context = multiprocessing.get_context(config.start_method)
    pool = context.Pool(processes=jobs)
    terminated = False
    try:
        iterator = pool.imap(_run_chunk, [(fn, chunk) for chunk in chunks])
        for _ in range(len(chunks)):
            try:
                results = iterator.next()
            except Exception:
                # Worker-raised exception: stop the remaining work before
                # re-raising, so fail-fast semantics match the serial path.
                pool.terminate()
                terminated = True
                raise
            yield from results
    except GeneratorExit:
        # The consumer abandoned the stream (e.g. its own error path);
        # don't make close() wait for work nobody will read.
        pool.terminate()
        terminated = True
        raise
    finally:
        if not terminated:
            pool.close()
        pool.join()


def parallel_map(
    fn: Callable[[TaskT], ResultT],
    tasks: Sequence[TaskT],
    *,
    config: ParallelConfig,
    on_timeout: Optional[TimeoutHook] = None,
) -> List[ResultT]:
    """Eager form of :func:`parallel_imap`."""
    return list(parallel_imap(fn, tasks, config=config, on_timeout=on_timeout))


__all__ = ["TimeoutHook", "WorkerTimeoutError", "parallel_imap", "parallel_map"]
