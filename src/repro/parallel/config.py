"""Configuration of the process-based execution layer.

One :class:`ParallelConfig` describes *how* a fan-out runs — worker
count, backend, chunking, worker start method and the per-result
timeout guard — while the call sites (:func:`repro.eval.harness.run_simulation`,
:func:`repro.bounds.gibbs.gibbs_bound`,
:class:`repro.engine.driver.EMDriver`) decide *what* is fanned out.

The determinism contract (docs/ARCHITECTURE.md "Parallelism") is
deliberately not configurable: every parallel entry point draws its
random numbers in the parent, in the same order as the serial path, and
ships explicit seeds or generators to the workers, so results are
bit-for-bit independent of ``n_jobs``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.utils.errors import ValidationError
from repro.utils.validation import (
    check_in_choices,
    check_nonnegative_int,
    check_positive_int,
)

#: Backend names.
BACKEND_PROCESS = "process"
BACKEND_SERIAL = "serial"
_BACKENDS = (BACKEND_PROCESS, BACKEND_SERIAL)

#: Worker start methods (``None`` means the platform default).
_START_METHODS = ("fork", "spawn", "forkserver")


def cpu_count() -> int:
    """Usable CPU count (affinity-aware where the platform supports it)."""
    if hasattr(os, "sched_getaffinity"):
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class ParallelConfig:
    """How a fan-out executes.

    Attributes
    ----------
    n_jobs:
        Worker process count; ``-1`` means one per available core.
        ``1`` keeps the work in-process (same code path as any other
        job count, minus the pool).
    backend:
        ``"process"`` (worker processes) or ``"serial"`` (in-process
        execution of the *same* sharded code path — useful for
        debugging a parallel run without processes in the way).
    chunk_size:
        Tasks handed to a worker per dispatch.  ``1`` (default) gives
        the best load balance for heterogeneous tasks (EM fits whose
        iteration counts differ); raise it when tasks are tiny and
        dispatch overhead dominates.
    start_method:
        ``multiprocessing`` start method, or ``None`` for the platform
        default (``fork`` on Linux).  ``fork`` is required when workers
        must see parent-process state created after import time, e.g.
        algorithms registered with
        :func:`repro.resilience.faults.temporary_algorithm`.
    timeout_seconds:
        Hang guard: a per-chunk *soft deadline*.  Workers heartbeat the
        parent before every task; a chunk whose heartbeat goes silent
        for this long is treated as wedged — the pool is terminated
        (workers killed, not joined), healthy chunks are resubmitted to
        a fresh pool, and the wedged chunk is retried up to
        ``max_resubmits`` times before it surfaces as a
        :class:`~repro.parallel.executor.WorkerTimeoutError` — so a
        wedged worker can never hang the parent.  ``None`` (default)
        disables the guard.
    max_resubmits:
        How many times a wedged chunk is resubmitted to a rebuilt pool
        before it is declared failed.  ``0`` (default) fails a wedged
        chunk on first detection — the historical kill-the-pool
        behaviour.  Only meaningful with ``timeout_seconds`` set.
    """

    n_jobs: int = 1
    backend: str = BACKEND_PROCESS
    chunk_size: int = 1
    start_method: Optional[str] = None
    timeout_seconds: Optional[float] = None
    max_resubmits: int = 0

    def __post_init__(self) -> None:
        if self.n_jobs != -1:
            check_positive_int(self.n_jobs, "n_jobs")
        check_in_choices(self.backend, "backend", _BACKENDS)
        check_positive_int(self.chunk_size, "chunk_size")
        if self.start_method is not None:
            check_in_choices(self.start_method, "start_method", _START_METHODS)
        if self.timeout_seconds is not None and not self.timeout_seconds > 0:
            raise ValidationError(
                f"timeout_seconds must be positive, got {self.timeout_seconds}"
            )
        check_nonnegative_int(self.max_resubmits, "max_resubmits")

    @classmethod
    def serial(cls) -> "ParallelConfig":
        """In-process execution of the sharded code path."""
        return cls(n_jobs=1, backend=BACKEND_SERIAL)

    @classmethod
    def processes(
        cls, n_jobs: int = -1, **kwargs
    ) -> "ParallelConfig":
        """Process fan-out across ``n_jobs`` workers (default: all cores)."""
        return cls(n_jobs=n_jobs, backend=BACKEND_PROCESS, **kwargs)

    def resolve_jobs(self) -> int:
        """The concrete worker count (``-1`` resolved to the core count)."""
        return cpu_count() if self.n_jobs == -1 else self.n_jobs

    def effective_jobs(self, n_tasks: int) -> int:
        """Workers actually useful for ``n_tasks`` tasks."""
        if self.backend == BACKEND_SERIAL:
            return 1
        return max(1, min(self.resolve_jobs(), n_tasks))


__all__ = [
    "BACKEND_PROCESS",
    "BACKEND_SERIAL",
    "ParallelConfig",
    "cpu_count",
]
