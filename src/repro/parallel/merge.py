"""Merging per-worker ledgers and telemetry back into the parent.

Workers cannot append to the parent's :class:`TrialFailure` ledger or
call the parent's telemetry callbacks directly, so every worker returns
its locally accumulated records and the parent merges them *in task
order* — which, because :func:`repro.parallel.executor.parallel_imap`
yields in task order, reproduces exactly the sequence a serial run
would have appended.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

RecordT = TypeVar("RecordT")


def merge_ledgers(ledgers: Iterable[Sequence[RecordT]]) -> List[RecordT]:
    """Concatenate per-worker record lists in the order given.

    Used for :class:`~repro.resilience.policy.TrialFailure` ledgers and
    :class:`~repro.engine.health.RestartReport` lists; feeding the
    per-task ledgers in task order yields the serial append order.
    """
    merged: List[RecordT] = []
    for ledger in ledgers:
        merged.extend(ledger)
    return merged


def replay_events(
    events: Iterable[RecordT],
    callbacks: Sequence[Optional[Callable[[RecordT], object]]],
) -> None:
    """Deliver worker-recorded telemetry events to parent-side callbacks.

    Events are replayed after the fact, so a callback's early-stop
    return value (the :class:`~repro.engine.driver.IterationCallback`
    protocol) cannot influence the already-finished worker run; the
    returned values are ignored.  ``None`` entries are skipped so call
    sites can pass an optional recorder straight through.
    """
    callbacks = [callback for callback in callbacks if callback is not None]
    if not callbacks:
        return
    for event in events:
        for callback in callbacks:
            callback(event)


def merge_counters(counters: Iterable[dict]) -> dict:
    """Sum integer-valued counter dicts (e.g. per-worker failure counts)."""
    merged: dict = {}
    for counter in counters:
        for key, value in counter.items():
            merged[key] = merged.get(key, 0) + value
    return merged


__all__ = ["merge_counters", "merge_ledgers", "replay_events"]
