"""Process-based parallel execution layer.

The paper's evaluation is embarrassingly parallel three times over:
Section V-B sweeps hundreds of Monte-Carlo trials per parameter point,
Algorithm 1 runs one Gibbs chain per distinct dependency column, and
multi-restart EM runs independent restarts.  This package fans each of
those out across worker processes under one configuration object,
without giving up the library's determinism guarantee:

* :mod:`repro.parallel.config` — :class:`ParallelConfig`
  (``n_jobs`` / ``backend`` / ``chunk_size`` / ``start_method`` /
  ``timeout_seconds``);
* :mod:`repro.parallel.executor` — :func:`parallel_imap` /
  :func:`parallel_map`, the ordered streaming fan-out with worker-fault
  propagation and a pool-killing timeout guard;
* :mod:`repro.parallel.merge` — merging per-worker failure ledgers and
  telemetry event streams back into the parent in serial order.

**Determinism contract.**  Every parallel entry point draws its random
numbers in the *parent*, in the same order as the serial code path
(dataset generation, ``SeedSequence``-derived trial/restart/chain
seeds), ships explicit seeds or generators to workers, and consumes
results in task order.  A run with ``n_jobs=8`` is therefore
bit-for-bit identical to ``n_jobs=1`` — pinned by
``tests/parallel/test_parity.py``.

Entry points: :func:`repro.eval.harness.run_simulation` (``parallel=``),
:func:`repro.bounds.gibbs.gibbs_bound` (``parallel=``),
:class:`repro.engine.driver.EMDriver` (``parallel=``), and the CLI's
``--n-jobs`` flag.
"""

from repro.parallel.config import ParallelConfig, cpu_count
from repro.parallel.executor import WorkerTimeoutError, parallel_imap, parallel_map
from repro.parallel.merge import merge_counters, merge_ledgers, replay_events

__all__ = [
    "ParallelConfig",
    "WorkerTimeoutError",
    "cpu_count",
    "merge_counters",
    "merge_ledgers",
    "parallel_imap",
    "parallel_map",
    "replay_events",
]
