"""Opt-in ``cProfile`` stage wrapper.

Deterministic profiling for one stage of a run: wrap the stage in
:func:`profile_stage` and get a ``pstats`` text report written to disk.
Unlike tracing and metrics this *does* perturb timings (cProfile hooks
every call), so it is never enabled implicitly — only by an explicit
``--profile-out`` flag or a direct call.  Results stay bit-for-bit
identical either way: profiling observes the interpreter, not the
numerics.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from contextlib import contextmanager
from typing import Iterator, Optional


@contextmanager
def profile_stage(
    out_path: Optional[str],
    *,
    sort: str = "cumulative",
    limit: int = 40,
) -> Iterator[Optional[cProfile.Profile]]:
    """Profile the block and write a ``pstats`` text report to ``out_path``.

    With ``out_path=None`` the block runs unprofiled (the common case:
    callers pass the CLI flag through unconditionally).  Yields the
    live profiler, or ``None`` when disabled.
    """
    if out_path is None:
        yield None
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats(sort).print_stats(limit)
        with open(out_path, "w", encoding="utf-8") as handle:
            handle.write(buffer.getvalue())


__all__ = ["profile_stage"]
