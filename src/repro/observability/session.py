"""The process-global observability session and its no-op fast path.

Observability is **off by default**.  Instrumented call sites go
through the module helpers here (:func:`count`, :func:`observe_value`,
:func:`span`, ...), which cost one global load and a ``None`` check
when no session is active — cheap enough for hot loops like Gibbs
sweeps and cache probes.

:func:`observe` installs a fresh :class:`ObservabilitySession` (a
tracer plus a metrics registry) for the duration of a block and
restores whatever was active before, so sessions nest: the CLI opens
one around a whole experiment, and worker entry points open their *own*
session around each task so their records can be shipped back to the
parent instead of vanishing into a forked copy of the parent's.

The contract every instrumentation point must honour: recording never
reads or writes numerics or RNG state.  That is what makes enabling
observability bit-for-bit transparent — pinned by the Hypothesis suite
in ``tests/observability/test_transparency.py``.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from typing import ContextManager, Iterator, Optional

from repro.observability.metrics import (
    MetricsRegistry,
    Number,
    metrics_document,
    write_metrics_json,
)
from repro.observability.tracing import (
    Span,
    Tracer,
    trace_document,
    write_trace_json,
)


class ObservabilitySession:
    """One tracer and one metrics registry, collected together."""

    __slots__ = ("tracer", "metrics")

    def __init__(self, root_name: str = "session") -> None:
        self.tracer = Tracer(root_name)
        self.metrics = MetricsRegistry()

    def finish(self) -> Span:
        """Close the root span; returns it.  Idempotent."""
        return self.tracer.finish()

    # -- export ------------------------------------------------------------

    def export_spans(self) -> list:
        """The root's finished child trees — picklable, for worker replay."""
        self.finish()
        return list(self.tracer.root.children)

    def trace_dict(self) -> dict:
        """Versioned JSON-ready trace document (finishes the root)."""
        return trace_document(self.finish())

    def metrics_dict(self) -> dict:
        """Versioned JSON-ready metrics document."""
        return metrics_document(self.metrics.snapshot())

    def write_trace(self, path: str) -> None:
        write_trace_json(path, self.finish())

    def write_metrics(self, path: str) -> None:
        write_metrics_json(path, self.metrics.snapshot())


#: The active session, or None.  Module-global on purpose: instrumented
#: call sites must not thread a handle through every signature.
_ACTIVE: Optional[ObservabilitySession] = None

#: Shared no-op context manager handed out by :func:`span` when
#: observability is off (``nullcontext`` is reusable and reentrant).
_NULL_SPAN: ContextManager[None] = nullcontext(None)


def active() -> Optional[ObservabilitySession]:
    """The currently installed session, or None."""
    return _ACTIVE


def enabled() -> bool:
    """True when an observability session is active in this process."""
    return _ACTIVE is not None


@contextmanager
def observe(root_name: str = "session") -> Iterator[ObservabilitySession]:
    """Install a fresh session for the duration of the block.

    The previous session (if any) is restored on exit, so sessions
    nest; the new session's root span is closed on exit.
    """
    global _ACTIVE
    previous = _ACTIVE
    session = ObservabilitySession(root_name)
    _ACTIVE = session
    try:
        yield session
    finally:
        session.finish()
        _ACTIVE = previous


# -- instrumentation helpers (no-ops when disabled) ------------------------


def count(name: str, value: Number = 1) -> None:
    """Increment counter ``name`` on the active session, if any."""
    session = _ACTIVE
    if session is not None:
        session.metrics.increment(name, value)


def observe_value(name: str, value: Number) -> None:
    """Fold ``value`` into histogram ``name`` on the active session."""
    session = _ACTIVE
    if session is not None:
        session.metrics.observe(name, value)


def set_gauge(name: str, value: Number) -> None:
    """Set gauge ``name`` on the active session, if any."""
    session = _ACTIVE
    if session is not None:
        session.metrics.set_gauge(name, value)


def span(name: str, **attributes) -> ContextManager[Optional[Span]]:
    """Context manager opening a span on the active session's tracer.

    Yields the open :class:`Span` (so callers may annotate it), or
    ``None`` when observability is off.
    """
    session = _ACTIVE
    if session is None:
        return _NULL_SPAN
    return session.tracer.span(name, **attributes)


def graft(spans: list) -> None:
    """Attach worker span trees under the active session's current span."""
    session = _ACTIVE
    if session is not None and spans:
        session.tracer.graft(spans)


def merge_metrics(snapshot: Optional[dict]) -> None:
    """Fold a worker's metrics snapshot into the active session."""
    session = _ACTIVE
    if session is not None and snapshot:
        session.metrics.merge(snapshot)


__all__ = [
    "ObservabilitySession",
    "active",
    "count",
    "enabled",
    "graft",
    "merge_metrics",
    "observe",
    "observe_value",
    "set_gauge",
    "span",
]
