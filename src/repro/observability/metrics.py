"""Counters, gauges and histogram summaries for the hot paths.

The registry is a plain in-memory accumulator: no locks, no background
threads, no sampling.  Hot paths already *compute* most of what we want
to see — cache probes, dedup ratios, sweep counts, restart tallies —
and then discard it; the registry is where those observations land when
an :func:`repro.observability.observe` session is active.

Design constraints (shared with :mod:`repro.observability.tracing`):

* **stdlib only** — kernels import this module, and kernels must stay
  import-light;
* **bitwise transparent** — recording never touches numerics or RNG
  state, so enabling metrics cannot change any result;
* **pickle-safe** — a :meth:`MetricsRegistry.snapshot` is a plain dict
  of plain scalars, so workers can ship their registries back to the
  parent, which merges them in task order with
  :meth:`MetricsRegistry.merge`.

Histograms are kept as constant-size summaries (count/sum/min/max)
rather than bucketed distributions: enough for rates ("sweeps per
second"), averages ("restarts per fit") and extremes, with O(1) cost
per observation and a trivially associative merge.
"""

from __future__ import annotations

import json
from typing import Dict, Mapping, Union

Number = Union[int, float]

#: Version tag embedded in exported metric documents.
METRICS_SCHEMA = "repro.metrics/v1"


class MetricsRegistry:
    """In-memory counters, gauges and histogram summaries.

    Not thread-safe: the library's execution model is single-threaded
    per process (parallelism is process-based), and each process owns
    its own registry.
    """

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, Number] = {}
        self.gauges: Dict[str, Number] = {}
        self.histograms: Dict[str, Dict[str, Number]] = {}

    # -- recording ---------------------------------------------------------

    def increment(self, name: str, value: Number = 1) -> None:
        """Add ``value`` (default 1) to counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: Number) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self.gauges[name] = value

    def observe(self, name: str, value: Number) -> None:
        """Fold ``value`` into histogram summary ``name``."""
        summary = self.histograms.get(name)
        if summary is None:
            self.histograms[name] = {
                "count": 1,
                "sum": value,
                "min": value,
                "max": value,
            }
            return
        summary["count"] += 1
        summary["sum"] += value
        if value < summary["min"]:
            summary["min"] = value
        if value > summary["max"]:
            summary["max"] = value

    # -- reading -----------------------------------------------------------

    def counter(self, name: str) -> Number:
        """Current value of counter ``name`` (0 when never incremented)."""
        return self.counters.get(name, 0)

    def snapshot(self) -> Dict[str, Dict]:
        """Plain-dict copy of the registry, safe to pickle or JSON-dump."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {name: dict(s) for name, s in self.histograms.items()},
        }

    def merge(self, snapshot: Mapping[str, Mapping]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker) into this registry.

        Counters add, histograms combine their summaries, gauges take
        the snapshot's value (last write wins — callers merge snapshots
        in task order, mirroring how worker telemetry is replayed).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.increment(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.set_gauge(name, value)
        for name, other in snapshot.get("histograms", {}).items():
            summary = self.histograms.get(name)
            if summary is None:
                self.histograms[name] = dict(other)
                continue
            summary["count"] += other["count"]
            summary["sum"] += other["sum"]
            if other["min"] < summary["min"]:
                summary["min"] = other["min"]
            if other["max"] > summary["max"]:
                summary["max"] = other["max"]

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, histograms={len(self.histograms)})"
        )


def hit_rate(
    snapshot: Mapping[str, Mapping], prefix: str = "kernels.params_cache"
) -> float:
    """Hit rate of a ``<prefix>.hits`` / ``<prefix>.misses`` counter pair.

    Returns 0.0 when the pair was never touched, so callers can print
    the rate unconditionally.
    """
    counters = snapshot.get("counters", snapshot)
    hits = counters.get(f"{prefix}.hits", 0)
    misses = counters.get(f"{prefix}.misses", 0)
    total = hits + misses
    return hits / total if total else 0.0


def metrics_document(snapshot: Mapping[str, Mapping]) -> Dict:
    """Wrap a snapshot in the versioned on-disk metrics document."""
    return {
        "schema": METRICS_SCHEMA,
        "counters": dict(snapshot.get("counters", {})),
        "gauges": dict(snapshot.get("gauges", {})),
        "histograms": {
            name: dict(s) for name, s in snapshot.get("histograms", {}).items()
        },
        "derived": {
            "kernels.params_cache.hit_rate": hit_rate(snapshot),
        },
    }


def write_metrics_json(path: str, snapshot: Mapping[str, Mapping]) -> None:
    """Write a snapshot to ``path`` as the versioned metrics document."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(metrics_document(snapshot), handle, indent=2, sort_keys=True)
        handle.write("\n")


__all__ = [
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "hit_rate",
    "metrics_document",
    "write_metrics_json",
]
