"""Structured tracing: lightweight spans with parent/child links.

A :class:`Span` records a named interval on ``time.perf_counter`` plus
free-form attributes and nested children.  A :class:`Tracer` maintains
the open-span stack for one process and guarantees a *single root*: the
synthetic ``"session"`` span opened at construction, closed by
:meth:`Tracer.finish`.

Worker processes run their own tracer and ship their finished span
trees back to the parent (spans are plain picklable dataclasses); the
parent *grafts* them under its current span in task order — the same
replay discipline the telemetry events use.  Grafted spans keep their
originating ``pid``, and because ``perf_counter`` clocks are not
comparable across processes, well-formedness (children nested inside
parent intervals) is only enforced between spans of the same pid —
:func:`validate_span_tree` encodes exactly that contract and is what
the transparency test wall runs against every emitted tree.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.utils.errors import ValidationError

#: Version tag embedded in exported trace documents.
TRACE_SCHEMA = "repro.trace/v1"


@dataclass
class Span:
    """One named interval in a span tree.

    ``start``/``end`` are ``time.perf_counter`` stamps — monotonic and
    high-resolution, but only meaningful relative to other spans with
    the same ``pid``.
    """

    name: str
    start: float
    pid: int
    attributes: Dict = field(default_factory=dict)
    end: Optional[float] = None
    children: List["Span"] = field(default_factory=list)

    @property
    def duration_seconds(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def to_dict(self) -> Dict:
        """JSON-ready plain-dict form (recursive)."""
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration_seconds": self.duration_seconds,
            "pid": self.pid,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "Span":
        return cls(
            name=payload["name"],
            start=payload["start"],
            pid=payload["pid"],
            attributes=dict(payload.get("attributes", {})),
            end=payload.get("end"),
            children=[cls.from_dict(c) for c in payload.get("children", [])],
        )


class Tracer:
    """Open-span stack for one process; guarantees a single root span."""

    __slots__ = ("_root", "_stack")

    def __init__(self, root_name: str = "session") -> None:
        self._root = Span(name=root_name, start=time.perf_counter(), pid=os.getpid())
        self._stack: List[Span] = [self._root]

    @property
    def root(self) -> Span:
        return self._root

    @property
    def current(self) -> Span:
        return self._stack[-1]

    @contextmanager
    def span(self, name: str, **attributes) -> Iterator[Span]:
        """Open a child of the current span for the duration of the block."""
        child = Span(
            name=name,
            start=time.perf_counter(),
            pid=os.getpid(),
            attributes=attributes,
        )
        self.current.children.append(child)
        self._stack.append(child)
        try:
            yield child
        finally:
            child.end = time.perf_counter()
            self._stack.pop()

    def graft(self, spans: List[Span]) -> None:
        """Attach finished span trees (e.g. from a worker) under the
        current span, preserving their order."""
        self.current.children.extend(spans)

    def finish(self) -> Span:
        """Close the root span and return it.  Idempotent."""
        if self._root.end is None:
            self._root.end = time.perf_counter()
        return self._root


def validate_span_tree(root: Span) -> List[str]:
    """Structural checks on a finished span tree; returns problem strings.

    Enforced invariants:

    * every span is closed (``end`` set) with a non-negative duration;
    * every span has a non-empty name;
    * a child whose ``pid`` matches its parent's lies inside the
      parent's interval (grafted foreign-pid subtrees carry their own
      clock, so containment is only checked within a pid).

    An empty list means the tree is well-formed.
    """
    problems: List[str] = []

    def visit(span: Span, path: str) -> None:
        if not span.name:
            problems.append(f"{path}: empty span name")
        if span.end is None:
            problems.append(f"{path}: span never closed")
        elif span.end < span.start:
            problems.append(
                f"{path}: negative duration ({span.end - span.start:g}s)"
            )
        for index, child in enumerate(span.children):
            child_path = f"{path}/{child.name or '?'}[{index}]"
            if (
                child.pid == span.pid
                and span.end is not None
                and child.end is not None
            ):
                if child.start < span.start or child.end > span.end:
                    problems.append(
                        f"{child_path}: not contained in parent interval"
                    )
            visit(child, child_path)

    visit(root, root.name or "?")
    return problems


def trace_document(root: Span) -> Dict:
    """Wrap a finished span tree in the versioned on-disk trace document."""
    if root.end is None:
        raise ValidationError("cannot export an unfinished span tree")
    return {"schema": TRACE_SCHEMA, "root": root.to_dict()}


def write_trace_json(path: str, root: Span) -> None:
    """Write a finished span tree to ``path`` as the trace document."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace_document(root), handle, indent=2)
        handle.write("\n")


__all__ = [
    "TRACE_SCHEMA",
    "Span",
    "Tracer",
    "trace_document",
    "validate_span_tree",
    "write_trace_json",
]
