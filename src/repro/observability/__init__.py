"""Observability: tracing, metrics and profiling hooks — off by default.

The package is a stdlib-only leaf (kernels and the resilience
supervisor import it), organised as:

* :mod:`repro.observability.tracing` — spans, the per-process tracer,
  span-tree validation and JSON export;
* :mod:`repro.observability.metrics` — counters / gauges / histogram
  summaries with snapshot-and-merge for worker replay;
* :mod:`repro.observability.session` — the process-global session and
  the cheap no-op helpers instrumented call sites use;
* :mod:`repro.observability.profiling` — the opt-in cProfile wrapper.

Everything recorded here is *bitwise transparent*: enabling a session
changes no numeric output and no RNG stream, only what gets observed.
The guarantee is pinned by ``tests/observability/test_transparency.py``
and the serial-vs-parallel parity wall in ``tests/parallel/``.
"""

from repro.observability.metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    hit_rate,
    metrics_document,
    write_metrics_json,
)
from repro.observability.profiling import profile_stage
from repro.observability.session import (
    ObservabilitySession,
    active,
    count,
    enabled,
    graft,
    merge_metrics,
    observe,
    observe_value,
    set_gauge,
    span,
)
from repro.observability.tracing import (
    TRACE_SCHEMA,
    Span,
    Tracer,
    trace_document,
    validate_span_tree,
    write_trace_json,
)

__all__ = [
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "ObservabilitySession",
    "Span",
    "TRACE_SCHEMA",
    "Tracer",
    "active",
    "count",
    "enabled",
    "graft",
    "hit_rate",
    "merge_metrics",
    "metrics_document",
    "observe",
    "observe_value",
    "profile_stage",
    "set_gauge",
    "span",
    "trace_document",
    "validate_span_tree",
    "write_metrics_json",
    "write_trace_json",
]
