"""Shared utilities: seeded randomness, validation helpers, exceptions."""

from repro.utils.errors import (
    ConvergenceError,
    DataError,
    ReproError,
    ValidationError,
)
from repro.utils.rng import RandomState, spawn_rngs
from repro.utils.validation import (
    check_binary_matrix,
    check_probability,
    check_probability_array,
    check_same_shape,
)

__all__ = [
    "ConvergenceError",
    "DataError",
    "RandomState",
    "ReproError",
    "ValidationError",
    "check_binary_matrix",
    "check_probability",
    "check_probability_array",
    "check_same_shape",
    "spawn_rngs",
]
