"""Input validation helpers shared across the library.

These functions raise :class:`~repro.utils.errors.ValidationError` with
actionable messages.  They are used at every public API boundary so that
malformed inputs fail fast instead of producing silently wrong
estimates.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.errors import ValidationError


def check_probability(value: float, name: str, *, inclusive: bool = True) -> float:
    """Validate that ``value`` is a probability in ``[0, 1]``.

    With ``inclusive=False`` the open interval ``(0, 1)`` is required,
    which is what iterative estimators need to avoid log(0).
    """
    value = float(value)
    if np.isnan(value):
        raise ValidationError(f"{name} must be a probability, got NaN")
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValidationError(f"{name} must be in [0, 1], got {value}")
    else:
        if not 0.0 < value < 1.0:
            raise ValidationError(f"{name} must be in (0, 1), got {value}")
    return value


def check_probability_array(values: np.ndarray, name: str) -> np.ndarray:
    """Validate an array of probabilities; returns a float64 copy."""
    array = np.asarray(values, dtype=np.float64)
    if array.size and (np.isnan(array).any() or array.min() < 0.0 or array.max() > 1.0):
        raise ValidationError(f"{name} must contain probabilities in [0, 1]")
    return array


def check_binary_matrix(matrix: np.ndarray, name: str) -> np.ndarray:
    """Validate a 2-D 0/1 matrix; returns an int8 copy."""
    array = np.asarray(matrix)
    if array.ndim != 2:
        raise ValidationError(f"{name} must be 2-D, got shape {array.shape}")
    if array.size and not np.isin(array, (0, 1)).all():
        raise ValidationError(f"{name} must contain only 0/1 entries")
    return array.astype(np.int8)


def check_same_shape(a: np.ndarray, b: np.ndarray, names: Tuple[str, str]) -> None:
    """Validate that two arrays share a shape."""
    if a.shape != b.shape:
        raise ValidationError(
            f"{names[0]} and {names[1]} must have the same shape; "
            f"got {a.shape} vs {b.shape}"
        )


def check_positive_int(value: int, name: str) -> int:
    """Validate a strictly positive integer.

    Booleans are rejected even though ``bool`` is an ``int`` subtype —
    ``n_iterations=True`` is always a caller bug, not a count of 1.
    NumPy booleans (``np.True_``) are rejected for the same reason:
    they are *not* ``bool`` subclasses, so an ``isinstance(value, bool)``
    check alone lets them slip through as a count of 1.
    """
    if (
        isinstance(value, (bool, np.bool_))
        or int(value) != value
        or value <= 0
    ):
        raise ValidationError(f"{name} must be a positive integer, got {value!r}")
    return int(value)


def check_nonnegative_int(value: int, name: str) -> int:
    """Validate a non-negative integer (booleans rejected, as above)."""
    if (
        isinstance(value, (bool, np.bool_))
        or int(value) != value
        or value < 0
    ):
        raise ValidationError(f"{name} must be a non-negative integer, got {value!r}")
    return int(value)


def check_id_list(
    ids: Optional[Sequence[str]],
    expected: int,
    name: str,
    *,
    prefix: str,
) -> List[str]:
    """Validate (or default) an identifier list for one matrix axis.

    ``None`` produces the canonical synthetic ids ``f"{prefix}{k}"``;
    explicit ids must match the axis length and be unique.
    """
    if ids is None:
        return [f"{prefix}{k}" for k in range(expected)]
    id_list = list(ids)
    if len(id_list) != expected:
        raise ValidationError(
            f"{name} has {len(id_list)} entries but the matrix implies {expected}"
        )
    if len(set(id_list)) != len(id_list):
        raise ValidationError(f"{name} contains duplicates")
    return id_list


def check_in_choices(value: str, name: str, choices: Iterable[str]) -> str:
    """Validate a string option against a closed set of choices."""
    options = tuple(choices)
    if value not in options:
        raise ValidationError(f"{name} must be one of {options}, got {value!r}")
    return value


__all__ = [
    "check_binary_matrix",
    "check_id_list",
    "check_in_choices",
    "check_nonnegative_int",
    "check_positive_int",
    "check_probability",
    "check_probability_array",
    "check_same_shape",
]
