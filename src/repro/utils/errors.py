"""Exception hierarchy for the :mod:`repro` library.

Every exception raised intentionally by the library derives from
:class:`ReproError`, so downstream users can catch library failures with
a single ``except`` clause while still distinguishing validation
problems from numerical ones.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An input failed structural or range validation.

    Inherits from :class:`ValueError` so that generic callers treating
    bad arguments as value errors keep working.
    """


class DataError(ReproError):
    """A dataset or event stream is malformed or internally inconsistent."""


class MemoryBudgetError(ReproError, MemoryError):
    """A requested densification would exceed the configured memory budget.

    Raised by :meth:`repro.data.CsrProblem.dense_view` (and everything
    routed through :func:`repro.data.coerce_problem`) *before* any large
    allocation happens, instead of silently materialising multi-GB
    matrices.  Inherits from :class:`MemoryError` so generic callers
    treating memory exhaustion specially keep working.
    """

    def __init__(self, message: str, *, required_bytes: int = 0, budget_bytes: int = 0):
        super().__init__(message)
        self.required_bytes = required_bytes
        self.budget_bytes = budget_bytes


class ConvergenceError(ReproError):
    """An iterative algorithm failed to converge within its budget."""

    def __init__(self, message: str, iterations: int = 0, residual: float = float("nan")):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class DeadlineExceeded(ReproError):
    """A supervised computation ran past its cooperative deadline.

    Raised by long-running loops (EM iterations, Gibbs sweeps, Gray-code
    enumeration) when a :class:`repro.resilience.supervisor.Deadline`
    expires.  Carries structured partial-progress information so the
    caller — typically :func:`repro.bounds.cascade.bound_cascade` — can
    degrade gracefully instead of losing the work silently.

    Attributes
    ----------
    context:
        Name of the loop that hit the deadline (e.g. ``"gibbs-sweep"``).
    elapsed_seconds / budget_seconds:
        Wall-clock spent vs. the configured budget.
    progress:
        Loop-specific partial-progress payload (iteration counts,
        running estimates, pattern counts, ...).
    """

    def __init__(
        self,
        message: str,
        *,
        context: str = "",
        elapsed_seconds: float = 0.0,
        budget_seconds: float = 0.0,
        progress: dict = None,
    ):
        super().__init__(message)
        self.context = context
        self.elapsed_seconds = elapsed_seconds
        self.budget_seconds = budget_seconds
        self.progress = dict(progress) if progress else {}


class CircuitOpenError(ReproError):
    """A call was refused because its circuit breaker is open.

    Raised (or recorded as a ledger entry) when a
    :class:`repro.resilience.supervisor.CircuitBreaker` has tripped for
    a consistently-failing operation and the cooldown has not elapsed.
    """


class ServiceOverloaded(ReproError):
    """An estimation service refused to admit a request.

    Raised by :meth:`repro.serve.EstimationService.submit` when the
    pending queue is at its configured depth limit — backpressure is
    surfaced to the caller immediately instead of letting the queue
    (and every queued request's latency) grow without bound.

    Attributes
    ----------
    queue_depth / max_queue_depth:
        Pending requests at refusal time vs. the configured limit.
    """

    def __init__(
        self, message: str, *, queue_depth: int = 0, max_queue_depth: int = 0
    ):
        super().__init__(message)
        self.queue_depth = queue_depth
        self.max_queue_depth = max_queue_depth
