"""Exception hierarchy for the :mod:`repro` library.

Every exception raised intentionally by the library derives from
:class:`ReproError`, so downstream users can catch library failures with
a single ``except`` clause while still distinguishing validation
problems from numerical ones.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An input failed structural or range validation.

    Inherits from :class:`ValueError` so that generic callers treating
    bad arguments as value errors keep working.
    """


class DataError(ReproError):
    """A dataset or event stream is malformed or internally inconsistent."""


class MemoryBudgetError(ReproError, MemoryError):
    """A requested densification would exceed the configured memory budget.

    Raised by :meth:`repro.data.CsrProblem.dense_view` (and everything
    routed through :func:`repro.data.coerce_problem`) *before* any large
    allocation happens, instead of silently materialising multi-GB
    matrices.  Inherits from :class:`MemoryError` so generic callers
    treating memory exhaustion specially keep working.
    """

    def __init__(self, message: str, *, required_bytes: int = 0, budget_bytes: int = 0):
        super().__init__(message)
        self.required_bytes = required_bytes
        self.budget_bytes = budget_bytes


class ConvergenceError(ReproError):
    """An iterative algorithm failed to converge within its budget."""

    def __init__(self, message: str, iterations: int = 0, residual: float = float("nan")):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual
