"""Seeded randomness helpers.

All stochastic code in the library takes either an integer seed or a
:class:`numpy.random.Generator`.  :func:`RandomState` normalises the two,
and :func:`spawn_rngs` derives independent child generators for repeated
trials so experiments are reproducible *and* trials are statistically
independent.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def RandomState(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (fresh entropy), an integer, or an existing
    generator (returned unchanged, so callers can thread one generator
    through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    Uses numpy's ``SeedSequence.spawn`` machinery so children never
    overlap, regardless of how many draws each one performs.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Spawn from the generator's bit stream deterministically.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a fresh integer seed from ``rng`` (for handing to sub-systems)."""
    return int(rng.integers(0, 2**63 - 1))


__all__ = ["RandomState", "SeedLike", "derive_seed", "spawn_rngs"]
