"""CSV export of experiment results.

The library reports exhibits as text tables; downstream users plotting
with their own tooling want machine-readable series.  These writers
produce plain CSV with stable column orders.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from repro.eval.experiments import BoundComparisonRow, EmpiricalCell, TimingRow
from repro.eval.harness import SweepResult
from repro.utils.errors import ValidationError

PathLike = Union[str, Path]


def _write_rows(path: PathLike, header: Sequence[str], rows: Iterable[Sequence]) -> int:
    count = 0
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for row in rows:
            writer.writerow(row)
            count += 1
    return count


def bound_comparison_to_csv(
    rows: Sequence[BoundComparisonRow], path: PathLike, *, x_label: str = "x"
) -> int:
    """Write a Figures 3–5 sweep; returns the number of data rows."""
    return _write_rows(
        path,
        (
            x_label, "exact_total", "gibbs_total", "absolute_difference",
            "exact_false_positive", "exact_false_negative",
            "gibbs_false_positive", "gibbs_false_negative",
        ),
        (
            (
                row.value, row.exact_total, row.gibbs_total,
                row.absolute_difference,
                row.exact_false_positive, row.exact_false_negative,
                row.gibbs_false_positive, row.gibbs_false_negative,
            )
            for row in rows
        ),
    )


def timing_to_csv(rows: Sequence[TimingRow], path: PathLike) -> int:
    """Write the Figure 6 timing sweep."""
    return _write_rows(
        path,
        ("n_sources", "exact_seconds", "gibbs_seconds"),
        (
            (
                row.n_sources,
                "" if row.exact_seconds is None else row.exact_seconds,
                row.gibbs_seconds,
            )
            for row in rows
        ),
    )


def sweep_to_csv(
    sweep: SweepResult,
    path: PathLike,
    *,
    metrics: Sequence[str] = ("accuracy", "false_positive_rate", "false_negative_rate"),
    algorithms: Optional[Sequence[str]] = None,
) -> int:
    """Write a Figures 7–10 sweep in long format.

    Columns: parameter value, algorithm, then one column per metric.
    """
    algorithms = list(algorithms) if algorithms else sweep.algorithms()
    if not algorithms:
        raise ValidationError("sweep has no common algorithms to export")
    curves = {
        (name, metric): sweep.curve(name, metric)
        for name in algorithms
        for metric in metrics
    }

    def _rows():
        for index, value in enumerate(sweep.values):
            for name in algorithms:
                yield (value, name) + tuple(
                    curves[(name, metric)][index] for metric in metrics
                )

    return _write_rows(path, (sweep.parameter, "algorithm") + tuple(metrics), _rows())


def empirical_to_csv(cells: Sequence[EmpiricalCell], path: PathLike) -> int:
    """Write Figure 11 cells in long format."""
    return _write_rows(
        path,
        ("dataset", "algorithm", "true_ratio"),
        ((cell.dataset, cell.algorithm, cell.true_ratio) for cell in cells),
    )


__all__ = [
    "bound_comparison_to_csv",
    "empirical_to_csv",
    "sweep_to_csv",
    "timing_to_csv",
]
