"""Plain-text rendering of experiment results.

The paper presents its evaluation as figures; a terminal library
presents the same series as aligned text tables.  These helpers are
what the benchmark suite prints.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.eval.experiments import BoundComparisonRow, EmpiricalCell, TimingRow
from repro.eval.harness import SweepResult


def _table(header: Sequence[str], rows: List[Sequence[str]]) -> str:
    all_rows = [list(header)] + [list(r) for r in rows]
    widths = [max(len(str(row[c])) for row in all_rows) for c in range(len(header))]
    lines = []
    for index, row in enumerate(all_rows):
        line = "  ".join(str(cell).rjust(width) for cell, width in zip(row, widths))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("-" * len(line))
    return "\n".join(lines)


def format_bound_comparison(
    rows: List[BoundComparisonRow], x_label: str = "x"
) -> str:
    """Render a Figures 3–5 sweep as a table."""
    return _table(
        (x_label, "exact", "approx", "|diff|", "exact FP", "exact FN"),
        [
            (
                f"{r.value:g}",
                f"{r.exact_total:.4f}",
                f"{r.gibbs_total:.4f}",
                f"{r.absolute_difference:.4f}",
                f"{r.exact_false_positive:.4f}",
                f"{r.exact_false_negative:.4f}",
            )
            for r in rows
        ],
    )


def format_timing(rows: List[TimingRow]) -> str:
    """Render the Figure 6 timing sweep."""
    return _table(
        ("n", "exact (s)", "gibbs (s)"),
        [
            (
                str(r.n_sources),
                "-" if r.exact_seconds is None else f"{r.exact_seconds:.3f}",
                f"{r.gibbs_seconds:.3f}",
            )
            for r in rows
        ],
    )


def format_sweep(
    sweep: SweepResult,
    metric: str = "accuracy",
    algorithms: Optional[Sequence[str]] = None,
) -> str:
    """Render a Figures 7–10 sweep: one column per algorithm."""
    algorithms = list(algorithms) if algorithms else sweep.algorithms()
    header = [sweep.parameter] + list(algorithms)
    rows = []
    curves = {name: sweep.curve(name, metric) for name in algorithms}
    for index, value in enumerate(sweep.values):
        rows.append(
            [f"{value:g}"] + [f"{curves[name][index]:.4f}" for name in algorithms]
        )
    return _table(header, rows)


def format_empirical(cells: List[EmpiricalCell]) -> str:
    """Render Figure 11 as a dataset × algorithm matrix."""
    datasets: List[str] = []
    algorithms: List[str] = []
    values: Dict[str, Dict[str, float]] = {}
    for cell in cells:
        if cell.dataset not in datasets:
            datasets.append(cell.dataset)
        if cell.algorithm not in algorithms:
            algorithms.append(cell.algorithm)
        values.setdefault(cell.dataset, {})[cell.algorithm] = cell.true_ratio
    header = ["dataset"] + algorithms
    rows = [
        [name] + [f"{values[name].get(alg, float('nan')):.3f}" for alg in algorithms]
        for name in datasets
    ]
    return _table(header, rows)


__all__ = [
    "format_bound_comparison",
    "format_empirical",
    "format_sweep",
    "format_timing",
]
