"""Repeated-trial simulation harness (Section V-B's experiment loop).

One *trial* = generate a synthetic dataset, run every algorithm on it
(without ground truth), score against ground truth, and optionally
compute the "Optimal" ceiling (``1 − Err`` from the error bound with
oracle parameters).  The harness repeats trials with independent seeds
and aggregates means and standard deviations — the paper uses 20 trials
for bound experiments and 300 for estimator experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines import make_fact_finder
from repro.bounds import GibbsConfig, MAX_EXACT_SOURCES, exact_bound, gibbs_bound
from repro.core.em_ext import EMConfig
from repro.engine.driver import TelemetryRecorder
from repro.eval.metrics import ClassificationMetrics, score_result
from repro.synthetic import GeneratorConfig, SyntheticGenerator, empirical_parameters
from repro.utils.errors import ValidationError
from repro.utils.rng import RandomState, SeedLike, derive_seed

#: Registry key used for the transformed error bound in result tables.
OPTIMAL_KEY = "optimal"


@dataclass
class AlgorithmSeries:
    """Per-trial metric series of one algorithm."""

    accuracy: List[float] = field(default_factory=list)
    false_positive_rate: List[float] = field(default_factory=list)
    false_negative_rate: List[float] = field(default_factory=list)

    def record(self, metrics: ClassificationMetrics) -> None:
        """Append one trial's metrics."""
        self.accuracy.append(metrics.accuracy)
        self.false_positive_rate.append(metrics.false_positive_rate)
        self.false_negative_rate.append(metrics.false_negative_rate)

    def mean(self, metric: str = "accuracy") -> float:
        """Mean of a metric series."""
        return float(np.mean(getattr(self, metric))) if getattr(self, metric) else float("nan")

    def std(self, metric: str = "accuracy") -> float:
        """Standard deviation of a metric series."""
        series = getattr(self, metric)
        return float(np.std(series)) if series else float("nan")


@dataclass
class SimulationResult:
    """Aggregated outcome of one repeated-trial experiment point."""

    config: GeneratorConfig
    n_trials: int
    series: Dict[str, AlgorithmSeries]

    def mean_accuracy(self, algorithm: str) -> float:
        """Mean accuracy of one algorithm (or ``"optimal"``)."""
        return self.series[algorithm].mean("accuracy")

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Nested dict: algorithm → metric → mean."""
        return {
            name: {
                "accuracy": s.mean("accuracy"),
                "false_positive_rate": s.mean("false_positive_rate"),
                "false_negative_rate": s.mean("false_negative_rate"),
            }
            for name, s in self.series.items()
        }


def _optimal_metrics(problem, bound_config, exact_limit, seed) -> ClassificationMetrics:
    """The bound's accuracy ceiling expressed as pseudo-metrics."""
    params = empirical_parameters(problem).clamp(1e-4)
    dependency = problem.dependency.values
    if problem.n_sources <= exact_limit:
        bound = exact_bound(dependency, params)
    else:
        bound = gibbs_bound(dependency, params, config=bound_config, seed=seed)
    n_true = int(problem.truth.sum())
    n_false = problem.n_assertions - n_true
    z = params.z
    # Convert probability mass into the paper's per-class rates.
    fp_rate = bound.false_positive / (1.0 - z) if z < 1.0 else 0.0
    fn_rate = bound.false_negative / z if z > 0.0 else 0.0
    return ClassificationMetrics(
        accuracy=1.0 - bound.total,
        false_positive_rate=fp_rate,
        false_negative_rate=fn_rate,
        n_assertions=problem.n_assertions,
        n_true=n_true,
        n_false=n_false,
    )


def run_simulation(
    config: GeneratorConfig,
    *,
    algorithms: Sequence[str] = ("em", "em-social", "em-ext"),
    n_trials: int = 20,
    seed: SeedLike = None,
    include_optimal: bool = True,
    bound_config: Optional[GibbsConfig] = None,
    em_config: Optional[EMConfig] = None,
    exact_limit: int = 20,
    telemetry: Optional[TelemetryRecorder] = None,
) -> SimulationResult:
    """Run the Section V-B experiment loop at one parameter point.

    ``exact_limit`` selects the bound backend: exact enumeration up to
    that many sources, Gibbs above (both bounded by
    :data:`MAX_EXACT_SOURCES`).

    ``telemetry`` (a :class:`~repro.engine.driver.TelemetryRecorder`, or
    any per-iteration callback) is attached to every EM-family estimator
    the harness constructs, so iteration timings and log-likelihood
    deltas accumulate across all trials of the experiment point.
    """
    if n_trials <= 0:
        raise ValidationError(f"n_trials must be positive, got {n_trials}")
    exact_limit = min(exact_limit, MAX_EXACT_SOURCES)
    bound_config = bound_config or GibbsConfig(min_sweeps=400, max_sweeps=4000)
    rng = RandomState(seed)
    generator = SyntheticGenerator(config, seed=derive_seed(rng))
    series: Dict[str, AlgorithmSeries] = {name: AlgorithmSeries() for name in algorithms}
    if include_optimal:
        series[OPTIMAL_KEY] = AlgorithmSeries()
    for _ in range(n_trials):
        dataset = generator.generate()
        problem = dataset.problem
        blind = problem.without_truth()
        trial_seed = derive_seed(rng)
        for name in algorithms:
            finder = _make(name, trial_seed, em_config, telemetry)
            result = finder.fit(blind)
            series[name].record(score_result(result, problem.truth))
        if include_optimal:
            series[OPTIMAL_KEY].record(
                _optimal_metrics(problem, bound_config, exact_limit, derive_seed(rng))
            )
    return SimulationResult(config=config, n_trials=n_trials, series=series)


def _make(
    name: str,
    seed: int,
    em_config: Optional[EMConfig],
    telemetry: Optional[TelemetryRecorder] = None,
):
    callbacks = (telemetry,) if telemetry is not None else ()
    if name == "em-ext":
        return make_fact_finder(name, seed=seed, config=em_config, callbacks=callbacks)
    if name in ("em", "em-social"):
        kwargs = {"seed": seed, "callbacks": callbacks}
        if em_config is not None:
            kwargs["smoothing"] = em_config.smoothing
        return make_fact_finder(name, **kwargs)
    return make_fact_finder(name)


@dataclass
class SweepResult:
    """Results of a one-dimensional parameter sweep (one figure's x-axis)."""

    parameter: str
    values: List[float]
    points: List[SimulationResult]

    def curve(self, algorithm: str, metric: str = "accuracy") -> List[float]:
        """The mean-metric series of one algorithm along the sweep."""
        return [p.series[algorithm].mean(metric) for p in self.points]

    def algorithms(self) -> List[str]:
        """Algorithm keys present at every sweep point."""
        if not self.points:
            return []
        keys = set(self.points[0].series)
        for point in self.points[1:]:
            keys &= set(point.series)
        return sorted(keys)


def run_sweep(
    parameter: str,
    values: Sequence,
    config_factory,
    *,
    seed: SeedLike = None,
    **simulation_kwargs,
) -> SweepResult:
    """Sweep one knob: ``config_factory(value)`` builds each point's config."""
    rng = RandomState(seed)
    points = []
    for value in values:
        points.append(
            run_simulation(
                config_factory(value), seed=derive_seed(rng), **simulation_kwargs
            )
        )
    return SweepResult(
        parameter=parameter, values=[float(v) for v in values], points=points
    )


__all__ = [
    "AlgorithmSeries",
    "OPTIMAL_KEY",
    "SimulationResult",
    "SweepResult",
    "run_simulation",
    "run_sweep",
]
