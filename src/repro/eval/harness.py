"""Repeated-trial simulation harness (Section V-B's experiment loop).

One *trial* = generate a synthetic dataset, run every algorithm on it
(without ground truth), score against ground truth, and optionally
compute the "Optimal" ceiling (``1 − Err`` from the error bound with
oracle parameters).  The harness repeats trials with independent seeds
and aggregates means and standard deviations — the paper uses 20 trials
for bound experiments and 300 for estimator experiments.

Fault tolerance
---------------
Long sweeps must survive individual failures.  Two orthogonal layers:

* a :class:`~repro.resilience.policy.FailurePolicy` decides what
  happens when one algorithm fails inside one trial (``fail_fast`` —
  historical behaviour and default — ``skip``, or ``retry`` with
  deterministic reseeding); every skip/retry lands in the result's
  :attr:`SimulationResult.failures` ledger instead of disappearing;
* ``checkpoint_path`` enables periodic *atomic* checkpointing, so an
  interrupted sweep resumes from the last completed trial and — because
  the harness replays the master RNG draws of completed trials — ends
  bit-for-bit identical to an uninterrupted run with the same seed.

Parallelism
-----------
Trials are independent given their seeds, so ``parallel`` (a
:class:`~repro.parallel.ParallelConfig`) fans the per-trial fitting and
scoring out across worker processes.  The parent performs *every*
master-RNG draw — dataset generation and trial/optimal seed derivation
— in trial order before dispatch, and consumes worker results in trial
order, so a parallel sweep is bit-for-bit identical to a serial one and
composes unchanged with the failure policy, the ledger, and
checkpoint/resume (the checkpoint loop sees the same ordered stream of
completed trials).  Worker-side telemetry events are replayed into the
parent's recorder in that same order.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro import observability
from repro.baselines import ALGORITHM_REGISTRY, make_fact_finder
from repro.bounds import (
    GibbsConfig,
    MAX_EXACT_SOURCES,
    bound_cascade,
    exact_bound,
    gibbs_bound,
)
from repro.core.em_ext import EMConfig
from repro.data.coerce import coerce_problem
from repro.data.protocol import FORMATS, FORMAT_DENSE
from repro.engine.driver import TelemetryRecorder
from repro.eval.metrics import ClassificationMetrics, score_result
from repro.parallel import ParallelConfig, parallel_imap, replay_events
from repro.resilience.checkpoint import (
    load_checkpoint,
    save_checkpoint,
    simulation_fingerprint,
)
from repro.resilience.policy import (
    ACTION_RETRIED,
    ACTION_SHORT_CIRCUITED,
    ACTION_SKIPPED,
    ACTION_TIMED_OUT,
    FAIL_FAST,
    FailurePolicy,
    TrialFailure,
    retry_seed,
)
from repro.resilience.supervisor import BreakerConfig, CircuitBreaker, Deadline
from repro.synthetic import GeneratorConfig, SyntheticGenerator, empirical_parameters
from repro.utils.errors import DataError, ValidationError
from repro.utils.rng import RandomState, SeedLike, derive_seed

#: Registry key used for the transformed error bound in result tables.
OPTIMAL_KEY = "optimal"


@dataclass
class AlgorithmSeries:
    """Per-trial metric series of one algorithm."""

    accuracy: List[float] = field(default_factory=list)
    false_positive_rate: List[float] = field(default_factory=list)
    false_negative_rate: List[float] = field(default_factory=list)

    def record(self, metrics: ClassificationMetrics) -> None:
        """Append one trial's metrics."""
        self.accuracy.append(metrics.accuracy)
        self.false_positive_rate.append(metrics.false_positive_rate)
        self.false_negative_rate.append(metrics.false_negative_rate)

    def mean(self, metric: str = "accuracy") -> float:
        """Mean of a metric series."""
        return float(np.mean(getattr(self, metric))) if getattr(self, metric) else float("nan")

    def std(self, metric: str = "accuracy") -> float:
        """Standard deviation of a metric series."""
        series = getattr(self, metric)
        return float(np.std(series)) if series else float("nan")


@dataclass
class SimulationResult:
    """Aggregated outcome of one repeated-trial experiment point.

    ``failures`` is the per-algorithm failure ledger: one
    :class:`~repro.resilience.policy.TrialFailure` per skipped or
    retried fit (empty for fault-free runs and under ``fail_fast``).
    """

    config: GeneratorConfig
    n_trials: int
    series: Dict[str, AlgorithmSeries]
    failures: List[TrialFailure] = field(default_factory=list)

    def mean_accuracy(self, algorithm: str) -> float:
        """Mean accuracy of one algorithm (or ``"optimal"``)."""
        return self.series[algorithm].mean("accuracy")

    def failure_counts(self) -> Dict[str, Dict[str, int]]:
        """Ledger digest: algorithm → action (``retried``/``skipped``) → count."""
        counts: Dict[str, Dict[str, int]] = {}
        for failure in self.failures:
            per_algorithm = counts.setdefault(failure.algorithm, {})
            per_algorithm[failure.action] = per_algorithm.get(failure.action, 0) + 1
        return counts

    def n_skipped(self, algorithm: str) -> int:
        """Trials whose metrics are missing for ``algorithm`` (skipped fits)."""
        return sum(
            1
            for failure in self.failures
            if failure.algorithm == algorithm and failure.action == ACTION_SKIPPED
        )

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Nested dict: algorithm → metric → mean."""
        return {
            name: {
                "accuracy": s.mean("accuracy"),
                "false_positive_rate": s.mean("false_positive_rate"),
                "false_negative_rate": s.mean("false_negative_rate"),
            }
            for name, s in self.series.items()
        }


def _optimal_metrics(
    problem, bound_config, exact_limit, seed, deadline_seconds=None
) -> ClassificationMetrics:
    """The bound's accuracy ceiling expressed as pseudo-metrics.

    With ``deadline_seconds`` set the bound runs through
    :func:`repro.bounds.bound_cascade` under a fresh
    :class:`~repro.resilience.supervisor.Deadline` — a blown budget
    degrades to a cheaper tier instead of hanging the trial.
    """
    problem = coerce_problem(problem, needs=FORMAT_DENSE)
    params = empirical_parameters(problem).clamp(1e-4)
    dependency = problem.dependency.values
    if deadline_seconds is not None:
        outcome = bound_cascade(
            dependency,
            params,
            deadline=Deadline.after(deadline_seconds),
            config=bound_config,
            seed=seed,
        )
        bound = outcome.bound
    elif problem.n_sources <= exact_limit:
        bound = exact_bound(dependency, params)
    else:
        bound = gibbs_bound(dependency, params, config=bound_config, seed=seed)
    n_true = int(problem.truth.sum())
    n_false = problem.n_assertions - n_true
    z = params.z
    # Convert probability mass into the paper's per-class rates.
    fp_rate = bound.false_positive / (1.0 - z) if z < 1.0 else 0.0
    fn_rate = bound.false_negative / z if z > 0.0 else 0.0
    return ClassificationMetrics(
        accuracy=1.0 - bound.total,
        false_positive_rate=fp_rate,
        false_negative_rate=fn_rate,
        n_assertions=problem.n_assertions,
        n_true=n_true,
        n_false=n_false,
    )


@dataclass(frozen=True)
class _TrialTask:
    """One trial's parent-derived inputs (picklable worker payload)."""

    trial: int
    problem: object  # sensing problem (either storage format) with truth
    trial_seed: int
    optimal_seed: Optional[int]


@dataclass(frozen=True)
class _TrialSpec:
    """Trial-invariant fitting instructions shared by every task."""

    algorithms: Sequence[str]
    include_optimal: bool
    policy: FailurePolicy
    em_config: Optional[EMConfig]
    bound_config: GibbsConfig
    exact_limit: int
    record_events: bool
    bound_deadline_seconds: Optional[float] = None
    #: Set when the parent has an observability session open and the
    #: trials run in workers: each worker collects its own session and
    #: ships spans + metrics back for in-order replay.
    record_observability: bool = False


@dataclass
class _TrialOutcome:
    """What one trial produced: metrics, ledger entries, telemetry."""

    trial: int
    metrics: List  # [(name, Optional[ClassificationMetrics]), ...]
    failures: List[TrialFailure]
    events: List
    #: Worker-side observability payload (empty on the serial path,
    #: where records land in the parent's ambient session directly).
    spans: List = field(default_factory=list)
    obs_metrics: Optional[dict] = None


def _run_trial(
    task: _TrialTask, spec: _TrialSpec, telemetry=None, breakers=None, prefit=None
) -> _TrialOutcome:
    """Fit and score every algorithm of one trial (runs in a worker).

    Failure handling is worker-local: under ``skip``/``retry`` the
    ledger entries come back inside the outcome; under ``fail_fast``
    the exception propagates (and, in a pool, is re-raised in the
    parent on this trial's turn).

    ``breakers`` (serial path only — breaker state spans trials and
    cannot live in a worker) maps algorithm names to
    :class:`~repro.resilience.supervisor.CircuitBreaker` instances; a
    fit whose breaker is open is short-circuited into the ledger
    without running.

    ``prefit`` (serial path only, set by ``trial_mode="batched"``) maps
    algorithm names to ``(result, events)`` pairs computed ahead of
    time as batched lanes.  Because ``retry_seed(base, 0) == base``,
    attempt 0 of a prefit algorithm consumes the lane result — which is
    bit-for-bit the scalar fit — and replays its telemetry; retry
    attempts reseed and fall through to the scalar path.
    """
    problem = task.problem
    blind = problem.without_truth()
    recorder = TelemetryRecorder() if spec.record_events else None
    callbacks = telemetry if telemetry is not None else recorder
    prefit = prefit or {}
    failures: List[TrialFailure] = []
    metrics_by_name = []

    def _supervised(name, base_seed, fit):
        with observability.span("harness.fit", algorithm=name):
            breaker = breakers.get(name) if breakers is not None else None
            if breaker is not None and not breaker.allow():
                failures.append(
                    TrialFailure(
                        trial=task.trial,
                        algorithm=name,
                        attempt=0,
                        error_type="CircuitOpenError",
                        message=str(breaker.call_refused_error(name))[:500],
                        action=ACTION_SHORT_CIRCUITED,
                    )
                )
                observability.count(f"harness.failures.{ACTION_SHORT_CIRCUITED}")
                return None
            metrics = _attempt(fit, task.trial, name, base_seed, spec.policy, failures)
            if breaker is not None:
                if metrics is not None:
                    breaker.record_success()
                else:
                    breaker.record_failure()
            return metrics

    with observability.span("harness.trial", trial=task.trial):
        observability.count("harness.trials")
        for name in spec.algorithms:

            def _fit_and_score(fit_seed: int, name: str = name) -> ClassificationMetrics:
                if name in prefit and fit_seed == task.trial_seed:
                    result, lane_events = prefit[name]
                    observability.count("harness.batched.prefit_hits")
                    if callbacks is not None:
                        replay_events(lane_events, (callbacks,))
                else:
                    finder = _make(name, fit_seed, spec.em_config, callbacks)
                    result = finder.fit(blind)
                if not np.all(np.isfinite(result.scores)):
                    raise DataError(
                        f"{name} produced non-finite scores on trial {task.trial}"
                    )
                return score_result(result, problem.truth)

            metrics = _supervised(name, task.trial_seed, _fit_and_score)
            metrics_by_name.append((name, metrics))
        if spec.include_optimal:
            metrics = _supervised(
                OPTIMAL_KEY,
                task.optimal_seed,
                lambda s: _optimal_metrics(
                    problem,
                    spec.bound_config,
                    spec.exact_limit,
                    s,
                    spec.bound_deadline_seconds,
                ),
            )
            metrics_by_name.append((OPTIMAL_KEY, metrics))
    return _TrialOutcome(
        trial=task.trial,
        metrics=metrics_by_name,
        failures=failures,
        events=list(recorder.events) if recorder is not None else [],
    )


def _trial_worker(payload) -> _TrialOutcome:
    """Pool entry point: unpack one ``(task, spec)`` payload.

    With ``spec.record_observability`` set the trial runs under its own
    worker session (never the forked copy of the parent's) and the
    outcome carries the session's span trees and metrics snapshot for
    in-order replay in the parent — the same discipline as telemetry
    events.
    """
    task, spec = payload
    if spec.record_observability:
        with observability.observe() as session:
            outcome = _run_trial(task, spec)
        outcome.spans = session.export_spans()
        outcome.obs_metrics = session.metrics.snapshot()
        return outcome
    return _run_trial(task, spec)


def _timed_out_outcome(index, payload, error) -> _TrialOutcome:
    """Substitute outcome for a trial lost to a wedged worker.

    Used as :func:`repro.parallel.parallel_imap`'s ``on_timeout`` hook
    when the failure policy is softer than ``fail_fast``: the wedge
    becomes one ``timed_out`` ledger entry per algorithm (carrying the
    trial's seed so the trial is reproducible in isolation) and the
    sweep keeps going.
    """
    task, spec = payload
    names = list(spec.algorithms)
    if spec.include_optimal:
        names.append(OPTIMAL_KEY)
    message = (
        f"trial {task.trial} (seed {task.trial_seed}) lost to a wedged "
        f"worker: {error}"
    )
    observability.count(f"harness.failures.{ACTION_TIMED_OUT}", len(names))
    return _TrialOutcome(
        trial=task.trial,
        metrics=[(name, None) for name in names],
        failures=[
            TrialFailure(
                trial=task.trial,
                algorithm=name,
                attempt=0,
                error_type=type(error).__name__,
                message=message[:500],
                action=ACTION_TIMED_OUT,
            )
            for name in names
        ],
        events=[],
    )


def run_simulation(
    config: GeneratorConfig,
    *,
    algorithms: Sequence[str] = ("em", "em-social", "em-ext"),
    n_trials: int = 20,
    seed: SeedLike = None,
    include_optimal: bool = True,
    bound_config: Optional[GibbsConfig] = None,
    em_config: Optional[EMConfig] = None,
    exact_limit: int = 20,
    telemetry: Optional[TelemetryRecorder] = None,
    failure_policy: Optional[FailurePolicy] = None,
    checkpoint_path: Optional[str] = None,
    checkpoint_interval: int = 1,
    parallel: Optional[ParallelConfig] = None,
    problem_format: str = FORMAT_DENSE,
    breaker_config: Optional[BreakerConfig] = None,
    bound_deadline_seconds: Optional[float] = None,
    trial_mode: str = "serial",
    batch_size: Optional[int] = None,
) -> SimulationResult:
    """Run the Section V-B experiment loop at one parameter point.

    ``exact_limit`` selects the bound backend: exact enumeration up to
    that many sources, Gibbs above (both bounded by
    :data:`MAX_EXACT_SOURCES`).

    ``telemetry`` (a :class:`~repro.engine.driver.TelemetryRecorder`, or
    any per-iteration callback) is attached to every EM-family estimator
    the harness constructs, so iteration timings and log-likelihood
    deltas accumulate across all trials of the experiment point.

    ``failure_policy`` governs per-(trial, algorithm) failures; see
    :class:`~repro.resilience.policy.FailurePolicy`.  The default
    ``fail_fast`` reproduces the historical behaviour exactly.

    ``checkpoint_path`` enables atomic checkpointing every
    ``checkpoint_interval`` trials (requires an integer ``seed``, since
    resume must re-derive the trial seeds).  If the file already holds a
    checkpoint of *this* experiment, the run resumes after its last
    completed trial and produces results identical to an uninterrupted
    run; a checkpoint of a different experiment raises
    :class:`~repro.utils.errors.DataError`.

    ``parallel`` (a :class:`~repro.parallel.ParallelConfig`) fans the
    per-trial fits out across worker processes; results are bit-for-bit
    identical for any ``n_jobs`` (see the module docstring for the
    determinism contract) and compose with every option above.

    ``problem_format`` selects the storage format the generated
    problems are handed to the algorithms in (``"dense"`` — the
    historical default — or ``"csr"``); every registered algorithm
    coerces its input as needed, so this exercises the sparse path
    end-to-end without changing the experiment's statistics.

    ``breaker_config`` (a
    :class:`~repro.resilience.supervisor.BreakerConfig`) wraps every
    algorithm's per-trial fit in its own
    :class:`~repro.resilience.supervisor.CircuitBreaker`: an algorithm
    that keeps failing is short-circuited (``short_circuited`` ledger
    entries) instead of burning a full fit per trial, with half-open
    probes giving it a way back.  Breaker state spans trials, so it is
    supported only on the serial path (combining it with ``parallel``
    raises :class:`~repro.utils.errors.ValidationError`).

    ``bound_deadline_seconds`` budgets each trial's "optimal" bound
    evaluation: the bound runs through
    :func:`repro.bounds.bound_cascade`, degrading exact → gibbs →
    analytic rather than hanging the trial.

    When ``parallel`` sets ``timeout_seconds`` and the failure policy
    is softer than ``fail_fast``, a trial lost to a wedged worker
    surfaces as ``timed_out`` ledger entries (the executor resubmits
    wedged chunks up to ``parallel.max_resubmits`` first) and the sweep
    continues; under ``fail_fast`` the
    :class:`~repro.parallel.WorkerTimeoutError` propagates.

    ``trial_mode="batched"`` fits every trial's ``em-ext`` ahead of the
    trial loop as stacked lanes of shared tensor passes
    (:func:`repro.core.em_ext.fit_em_ext_batch`'s machinery), packing
    ``batch_size`` trials — default sized to keep packs near 64 lanes —
    per pass.  Results are bit-for-bit the serial ones: attempt 0 of
    each trial's ``em-ext`` consumes the lane result (exact because
    ``retry_seed(base, 0) == base``), while a lane whose fit faulted is
    *ejected* — absent from the prefit map — so the trial re-runs on
    the scalar path, deterministically reproducing the fault under the
    failure policy and recording the usual ledger entry.  Lane packs
    run in the parent and need the dense format, so ``parallel`` and
    ``problem_format="csr"`` are rejected; telemetry events replay with
    the scalar deltas and log-likelihoods (shared pass wall times), and
    an early-stop request cannot reach an already-finished lane.
    """
    if n_trials <= 0:
        raise ValidationError(f"n_trials must be positive, got {n_trials}")
    if problem_format not in FORMATS:
        raise ValidationError(
            f"problem_format must be one of {FORMATS}, got {problem_format!r}"
        )
    if checkpoint_interval <= 0:
        raise ValidationError(
            f"checkpoint_interval must be positive, got {checkpoint_interval}"
        )
    policy = failure_policy or FailurePolicy.fail_fast()
    if breaker_config is not None and parallel is not None:
        raise ValidationError(
            "circuit breakers keep state across trials and are supported "
            "only on the serial path; drop breaker_config or parallel"
        )
    if bound_deadline_seconds is not None and not bound_deadline_seconds > 0:
        raise ValidationError(
            "bound_deadline_seconds must be positive, got "
            f"{bound_deadline_seconds}"
        )
    if trial_mode not in ("serial", "batched"):
        raise ValidationError(
            f"trial_mode must be 'serial' or 'batched', got {trial_mode!r}"
        )
    if batch_size is not None and batch_size <= 0:
        raise ValidationError(f"batch_size must be positive, got {batch_size}")
    if trial_mode == "batched":
        if parallel is not None:
            raise ValidationError(
                "batched trial packs run in the parent process; drop "
                "trial_mode='batched' or parallel"
            )
        if problem_format != FORMAT_DENSE:
            raise ValidationError(
                "batched trial packs require the dense problem format, got "
                f"{problem_format!r}"
            )
    exact_limit = min(exact_limit, MAX_EXACT_SOURCES)
    bound_config = bound_config or GibbsConfig(min_sweeps=400, max_sweeps=4000)
    rng = RandomState(seed)
    generator = SyntheticGenerator(config, seed=derive_seed(rng))
    series: Dict[str, AlgorithmSeries] = {name: AlgorithmSeries() for name in algorithms}
    if include_optimal:
        series[OPTIMAL_KEY] = AlgorithmSeries()
    failures: List[TrialFailure] = []

    fingerprint = None
    start_trial = 0
    if checkpoint_path is not None:
        if not isinstance(seed, (int, np.integer)):
            raise ValidationError(
                "checkpointing requires an integer seed (resume must re-derive "
                f"trial seeds), got {type(seed).__name__}"
            )
        fingerprint = simulation_fingerprint(
            config,
            algorithms=algorithms,
            n_trials=n_trials,
            seed=int(seed),
            include_optimal=include_optimal,
            problem_format=problem_format,
        )
        if os.path.exists(checkpoint_path):
            state = load_checkpoint(checkpoint_path, fingerprint)
            start_trial = min(state.completed_trials, n_trials)
            for name, metrics in state.series.items():
                if name not in series:
                    raise DataError(
                        f"checkpoint holds series for unknown algorithm {name!r}"
                    )
                series[name] = AlgorithmSeries(
                    accuracy=list(metrics.get("accuracy", [])),
                    false_positive_rate=list(metrics.get("false_positive_rate", [])),
                    false_negative_rate=list(metrics.get("false_negative_rate", [])),
                )
            failures = list(state.failures)
            # Replay the completed trials' master-RNG draws (dataset
            # generation and seed derivations) without fitting, so the
            # remaining trials see exactly the stream an uninterrupted
            # run would have.
            for _ in range(start_trial):
                generator.generate()
                derive_seed(rng)
                if include_optimal:
                    derive_seed(rng)

    # Every master-RNG draw happens here, in trial order, regardless of
    # how the fitting work is executed afterwards — this is the whole
    # determinism contract of the parallel path.
    tasks: List[_TrialTask] = []
    for trial in range(start_trial, n_trials):
        dataset = generator.generate()
        problem = dataset.problem
        if problem_format != FORMAT_DENSE:
            problem = problem.csr_view()
        tasks.append(
            _TrialTask(
                trial=trial,
                problem=problem,
                trial_seed=derive_seed(rng),
                optimal_seed=derive_seed(rng) if include_optimal else None,
            )
        )
    spec = _TrialSpec(
        algorithms=tuple(algorithms),
        include_optimal=include_optimal,
        policy=policy,
        em_config=em_config,
        bound_config=bound_config,
        exact_limit=exact_limit,
        record_events=parallel is not None and telemetry is not None,
        bound_deadline_seconds=bound_deadline_seconds,
        record_observability=parallel is not None and observability.enabled(),
    )
    prefit_by_trial: Dict[int, Dict[str, tuple]] = {}
    if trial_mode == "batched" and "em-ext" in spec.algorithms and tasks:
        prefit_by_trial = _prefit_em_ext_packs(
            tasks,
            em_config or EMConfig(),
            batch_size,
            collect_events=telemetry is not None,
        )
    if parallel is None:
        breakers = None
        if breaker_config is not None:
            names = list(algorithms) + ([OPTIMAL_KEY] if include_optimal else [])
            breakers = {name: CircuitBreaker(breaker_config) for name in names}
        # Serial path: the estimators call the caller's telemetry
        # callback live (preserving its early-stop protocol).
        outcomes = (
            _run_trial(task, spec, telemetry, breakers, prefit_by_trial.get(task.trial))
            for task in tasks
        )
    else:
        on_timeout = (
            _timed_out_outcome
            if parallel.timeout_seconds is not None and policy.mode != FAIL_FAST
            else None
        )
        outcomes = parallel_imap(
            _trial_worker,
            [(task, spec) for task in tasks],
            config=parallel,
            on_timeout=on_timeout,
        )
    # The consumption loop drives the (lazy) serial generator or drains
    # the pool, so both paths' trial spans land under this one — worker
    # trees are grafted here, in trial order, like telemetry events.
    with observability.span(
        "harness.run_simulation", n_trials=n_trials, n_tasks=len(tasks)
    ):
        for outcome in outcomes:
            if spec.record_events:
                replay_events(outcome.events, (telemetry,))
            if spec.record_observability:
                observability.graft(outcome.spans)
                observability.merge_metrics(outcome.obs_metrics)
            for name, metrics in outcome.metrics:
                if metrics is not None:
                    series[name].record(metrics)
            failures.extend(outcome.failures)
            trial = outcome.trial
            if checkpoint_path is not None and (
                (trial + 1) % checkpoint_interval == 0 or trial + 1 == n_trials
            ):
                save_checkpoint(
                    checkpoint_path,
                    fingerprint=fingerprint,
                    completed_trials=trial + 1,
                    series={
                        name: {
                            "accuracy": s.accuracy,
                            "false_positive_rate": s.false_positive_rate,
                            "false_negative_rate": s.false_negative_rate,
                        }
                        for name, s in series.items()
                    },
                    failures=failures,
                )
    return SimulationResult(
        config=config, n_trials=n_trials, series=series, failures=failures
    )


def _prefit_em_ext_packs(
    tasks: Sequence[_TrialTask],
    em_config: EMConfig,
    batch_size: Optional[int],
    *,
    collect_events: bool,
) -> Dict[int, Dict[str, tuple]]:
    """Fit every trial's ``em-ext`` as lanes of stacked tensor packs.

    Returns ``trial → {"em-ext": (result, events)}`` for the lanes that
    completed.  A faulted lane — or a pack whose setup failed outright —
    is simply absent: ``_run_trial`` then re-runs that trial on the
    scalar path, which deterministically reproduces the fault under the
    failure policy and records the usual ledger entry (the ejection
    contract).  Ejections are counted on ``harness.batched.ejections``.
    """
    from repro.core.em_ext import _batch_lane_outcomes

    if batch_size is None:
        # Default pack size targets ~64 lanes per tensor pass: enough
        # occupancy to amortise per-pass dispatch, small enough that
        # the (lanes, n, m) stacks stay cache- and memory-friendly.
        batch_size = max(1, 64 // max(1, em_config.n_restarts))
    prefit: Dict[int, Dict[str, tuple]] = {}
    with observability.span(
        "harness.batched_prefit", n_trials=len(tasks), batch_size=batch_size
    ):
        for start in range(0, len(tasks), batch_size):
            pack = tasks[start : start + batch_size]
            try:
                outcomes = _batch_lane_outcomes(
                    [task.problem.without_truth() for task in pack],
                    [task.trial_seed for task in pack],
                    em_config,
                    collect_events=collect_events,
                )
            except Exception:
                # Pack-level fault (e.g. shape drift): eject every lane.
                observability.count("harness.batched.ejections", len(pack))
                continue
            for task, (result, events, error) in zip(pack, outcomes):
                if error is not None or result is None:
                    observability.count("harness.batched.ejections")
                    continue
                prefit[task.trial] = {"em-ext": (result, events)}
    return prefit


def _attempt(
    fit: Callable[[int], ClassificationMetrics],
    trial: int,
    name: str,
    base_seed: int,
    policy: FailurePolicy,
    failures: List[TrialFailure],
) -> Optional[ClassificationMetrics]:
    """Run one (trial, algorithm) fit under the failure policy.

    Returns the metrics, or ``None`` when every attempt failed and the
    policy said to skip.  Retry attempts are reseeded deterministically
    from ``base_seed`` alone, so they never perturb the master RNG —
    and pause first for the policy's (equally deterministic)
    exponential-backoff delay, when one is configured.
    """
    for attempt in range(policy.attempts):
        if attempt:
            delay = policy.delay_before(attempt, base_seed)
            if delay > 0:
                observability.count("harness.backoff.delays")
                observability.observe_value("harness.backoff.seconds", delay)
                time.sleep(delay)
        try:
            return fit(retry_seed(base_seed, attempt))
        except Exception as error:
            if policy.mode == FAIL_FAST:
                raise
            action = (
                ACTION_RETRIED if attempt + 1 < policy.attempts else ACTION_SKIPPED
            )
            failures.append(
                TrialFailure(
                    trial=trial,
                    algorithm=name,
                    attempt=attempt,
                    error_type=type(error).__name__,
                    message=str(error)[:500],
                    action=action,
                )
            )
            observability.count(f"harness.failures.{action}")
    return None


def _make(
    name: str,
    seed: int,
    em_config: Optional[EMConfig],
    telemetry: Optional[TelemetryRecorder] = None,
):
    callbacks = (telemetry,) if telemetry is not None else ()
    if name == "em-ext":
        return make_fact_finder(name, seed=seed, config=em_config, callbacks=callbacks)
    if name in ("em", "em-social"):
        kwargs = {"seed": seed, "callbacks": callbacks}
        if em_config is not None:
            kwargs["smoothing"] = em_config.smoothing
        return make_fact_finder(name, **kwargs)
    cls = ALGORITHM_REGISTRY.get(name)
    if cls is not None and getattr(cls, "accepts_trial_seed", False):
        # Seed-aware algorithms outside the EM family (e.g. chaos
        # wrappers from the fault-injection toolkit) still get the
        # deterministic per-trial seed.
        return make_fact_finder(name, seed=seed)
    return make_fact_finder(name)


@dataclass
class SweepResult:
    """Results of a one-dimensional parameter sweep (one figure's x-axis)."""

    parameter: str
    values: List[float]
    points: List[SimulationResult]

    def curve(self, algorithm: str, metric: str = "accuracy") -> List[float]:
        """The mean-metric series of one algorithm along the sweep."""
        return [p.series[algorithm].mean(metric) for p in self.points]

    def algorithms(self) -> List[str]:
        """Algorithm keys present at every sweep point."""
        if not self.points:
            return []
        keys = set(self.points[0].series)
        for point in self.points[1:]:
            keys &= set(point.series)
        return sorted(keys)


def run_sweep(
    parameter: str,
    values: Sequence,
    config_factory,
    *,
    seed: SeedLike = None,
    **simulation_kwargs,
) -> SweepResult:
    """Sweep one knob: ``config_factory(value)`` builds each point's config."""
    rng = RandomState(seed)
    points = []
    for value in values:
        points.append(
            run_simulation(
                config_factory(value), seed=derive_seed(rng), **simulation_kwargs
            )
        )
    return SweepResult(
        parameter=parameter, values=[float(v) for v in values], points=points
    )


__all__ = [
    "AlgorithmSeries",
    "OPTIMAL_KEY",
    "SimulationResult",
    "SweepResult",
    "run_simulation",
    "run_sweep",
]
