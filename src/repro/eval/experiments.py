"""Named experiment definitions — one per table/figure of the paper.

Each function regenerates the data behind one exhibit and returns
structured rows; the benchmark suite prints and sanity-checks them, and
EXPERIMENTS.md records paper-vs-measured outcomes.

Trial counts default to CI-friendly values; set the environment
variable ``REPRO_FULL_TRIALS=1`` to use the paper's counts (20 for
bound experiments, 300 for estimator experiments).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.baselines import EMPIRICAL_ALGORITHMS, make_fact_finder
from repro.bounds import (
    BoundResult,
    GibbsConfig,
    bound_from_pattern_table,
    exact_bound,
    gibbs_bound,
)
from repro.core.em_ext import EMConfig
from repro.datasets import DATASET_ORDER, get_spec, simulate_dataset
from repro.engine.driver import TelemetryRecorder
from repro.eval.harness import SweepResult, run_sweep
from repro.parallel import ParallelConfig
from repro.pipeline import SimulatedGrader, grade_top_k
from repro.synthetic import GeneratorConfig, SyntheticGenerator, empirical_parameters
from repro.utils.rng import RandomState, SeedLike, derive_seed

#: Table I of the paper: P(SC_j | C_j) for the 3-source walk-through,
#: patterns ordered 000, 001, 010, 011, 100, 101, 110, 111 (the paper
#: writes the pattern as S1 S2 S3).
TABLE1_P_GIVEN_TRUE = np.array(
    [
        0.18546216, 0.17606773, 0.00033244, 0.01971855,
        0.24427898, 0.19063986, 0.02321803, 0.16028224,
    ]
)
TABLE1_P_GIVEN_FALSE = np.array(
    [
        0.05851677, 0.05300123, 0.12803859, 0.16032756,
        0.14231588, 0.08222352, 0.18716734, 0.18840910,
    ]
)
#: The bound the paper derives from Table I.
TABLE1_EXPECTED_BOUND = 0.26980433


def full_trials() -> bool:
    """Whether the paper's full trial counts were requested."""
    return os.environ.get("REPRO_FULL_TRIALS", "0") not in ("0", "", "false")


def bound_trials(default: int = 4) -> int:
    """Trial count for bound experiments (paper: 20)."""
    return 20 if full_trials() else default


def estimator_trials(default: int = 6) -> int:
    """Trial count for estimator experiments (paper: 300)."""
    return 300 if full_trials() else default


def table1_walkthrough() -> BoundResult:
    """Reproduce Table I's walk-through bound (Section III-A)."""
    return bound_from_pattern_table(
        TABLE1_P_GIVEN_TRUE, TABLE1_P_GIVEN_FALSE, z=0.5
    )


@dataclass
class BoundComparisonRow:
    """One x-axis point of Figures 3–5."""

    value: float
    exact_total: float
    exact_false_positive: float
    exact_false_negative: float
    gibbs_total: float
    gibbs_false_positive: float
    gibbs_false_negative: float

    @property
    def absolute_difference(self) -> float:
        """|exact − approximate| — the quantity Figures 3–5 report."""
        return abs(self.exact_total - self.gibbs_total)


def bound_comparison_sweep(
    values: Sequence,
    config_factory: Callable[[float], GeneratorConfig],
    *,
    n_trials: Optional[int] = None,
    seed: SeedLike = 0,
    gibbs_config: Optional[GibbsConfig] = None,
    parallel: Optional[ParallelConfig] = None,
) -> List[BoundComparisonRow]:
    """Shared engine of Figures 3–5: exact vs Gibbs bound along a sweep.

    For each x value, ``n_trials`` synthetic datasets are generated;
    both bounds are computed with oracle (empirically measured)
    parameters and averaged.  ``parallel`` shards each Gibbs bound's
    chains across worker processes
    (:func:`repro.bounds.gibbs.gibbs_bound`'s sharded mode).
    """
    n_trials = n_trials if n_trials is not None else bound_trials()
    gibbs_config = gibbs_config or GibbsConfig(min_sweeps=600, max_sweeps=6000)
    rng = RandomState(seed)
    rows = []
    for value in values:
        config = config_factory(value)
        generator = SyntheticGenerator(config, seed=derive_seed(rng))
        exact_parts = np.zeros(3)
        gibbs_parts = np.zeros(3)
        for _ in range(n_trials):
            dataset = generator.generate()
            params = empirical_parameters(dataset.problem).clamp(1e-4)
            dependency = dataset.problem.dependency.values
            exact = exact_bound(dependency, params)
            approx = gibbs_bound(
                dependency,
                params,
                config=gibbs_config,
                seed=derive_seed(rng),
                parallel=parallel,
            )
            exact_parts += (
                exact.total, exact.false_positive, exact.false_negative
            )
            gibbs_parts += (
                approx.total, approx.false_positive, approx.false_negative
            )
        exact_parts /= n_trials
        gibbs_parts /= n_trials
        rows.append(
            BoundComparisonRow(
                value=float(value),
                exact_total=exact_parts[0],
                exact_false_positive=exact_parts[1],
                exact_false_negative=exact_parts[2],
                gibbs_total=gibbs_parts[0],
                gibbs_false_positive=gibbs_parts[1],
                gibbs_false_negative=gibbs_parts[2],
            )
        )
    return rows


def figure3_bound_vs_sources(**kwargs) -> List[BoundComparisonRow]:
    """Figure 3: bound precision as n = 5..25 step 5.

    The n = 25 point costs ~2^25 pattern evaluations per distinct
    dependency column and is only included with ``REPRO_FULL_TRIALS=1``
    (the CI-scale sweep stops at 20).
    """
    top = 30 if full_trials() else 25
    return bound_comparison_sweep(
        values=range(5, top, 5),
        config_factory=lambda n: GeneratorConfig.paper_defaults(
            n_sources=int(n), n_trees=(min(8, int(n)), min(10, int(n)))
        ),
        **kwargs,
    )


def figure4_bound_vs_trees(**kwargs) -> List[BoundComparisonRow]:
    """Figure 4: bound precision as τ = 1..11."""
    return bound_comparison_sweep(
        values=range(1, 12),
        config_factory=lambda tau: GeneratorConfig.paper_defaults(
            n_trees=(int(tau), int(tau))
        ),
        **kwargs,
    )


def figure5_bound_vs_odds(**kwargs) -> List[BoundComparisonRow]:
    """Figure 5: bound precision as dependent odds = 1.1..2.0 (indep odds 2)."""
    return bound_comparison_sweep(
        values=[round(1.1 + 0.1 * k, 1) for k in range(10)],
        config_factory=lambda odds: GeneratorConfig.paper_defaults()
        .with_independent_odds(2.0)
        .with_dependent_odds(float(odds)),
        **kwargs,
    )


@dataclass
class TimingRow:
    """One x-axis point of Figure 6 (seconds per bound computation)."""

    n_sources: int
    exact_seconds: Optional[float]
    gibbs_seconds: float


def figure6_bound_timing(
    n_values: Sequence[int] = None,
    *,
    exact_cutoff: int = None,
    seed: SeedLike = 0,
    gibbs_config: Optional[GibbsConfig] = None,
) -> List[TimingRow]:
    """Figure 6: computation time of exact vs approximate bound.

    Exact enumeration is skipped above ``exact_cutoff`` sources (the
    figure's whole point is that it becomes intractable).  Defaults
    scale with ``REPRO_FULL_TRIALS``.
    """
    if n_values is None:
        n_values = (5, 10, 15, 20, 22, 26) if full_trials() else (5, 10, 15, 20, 24)
    if exact_cutoff is None:
        exact_cutoff = 22 if full_trials() else 20
    gibbs_config = gibbs_config or GibbsConfig(min_sweeps=600, max_sweeps=6000)
    rng = RandomState(seed)
    rows = []
    for n in n_values:
        config = GeneratorConfig.paper_defaults(
            n_sources=int(n), n_trees=(min(8, int(n)), min(10, int(n)))
        )
        dataset = SyntheticGenerator(config, seed=derive_seed(rng)).generate()
        params = empirical_parameters(dataset.problem).clamp(1e-4)
        dependency = dataset.problem.dependency.values
        exact_seconds = None
        if n <= exact_cutoff:
            start = time.perf_counter()
            exact_bound(dependency, params)
            exact_seconds = time.perf_counter() - start
        start = time.perf_counter()
        gibbs_bound(dependency, params, config=gibbs_config, seed=derive_seed(rng))
        gibbs_seconds = time.perf_counter() - start
        rows.append(
            TimingRow(
                n_sources=int(n),
                exact_seconds=exact_seconds,
                gibbs_seconds=gibbs_seconds,
            )
        )
    return rows


def _estimator_sweep(
    parameter: str,
    values: Sequence,
    config_factory: Callable,
    *,
    n_trials: Optional[int] = None,
    seed: SeedLike = 0,
    include_optimal: bool = True,
    telemetry: Optional[TelemetryRecorder] = None,
    parallel: Optional[ParallelConfig] = None,
    trial_mode: str = "serial",
    batch_size: Optional[int] = None,
) -> SweepResult:
    bound_config = (
        GibbsConfig(min_sweeps=400, max_sweeps=4000)
        if full_trials()
        else GibbsConfig(min_sweeps=300, max_sweeps=1200)
    )
    return run_sweep(
        parameter,
        values,
        config_factory,
        seed=seed,
        algorithms=("em", "em-social", "em-ext"),
        n_trials=n_trials if n_trials is not None else estimator_trials(),
        include_optimal=include_optimal,
        bound_config=bound_config,
        telemetry=telemetry,
        parallel=parallel,
        trial_mode=trial_mode,
        batch_size=batch_size,
    )


def figure7_estimator_vs_sources(**kwargs) -> SweepResult:
    """Figure 7: estimator accuracy/FP/FN as n = 20..50 step 5."""
    return _estimator_sweep(
        "n_sources",
        range(20, 55, 5),
        lambda n: GeneratorConfig.estimator_defaults(n_sources=int(n)),
        **kwargs,
    )


def figure8_estimator_vs_assertions(**kwargs) -> SweepResult:
    """Figure 8: accuracy as m = 10..100 step 10, with n = 100.

    The CI-scale run subsamples the grid (step 20); the full grid runs
    with ``REPRO_FULL_TRIALS=1``.
    """
    step = 10 if full_trials() else 20
    return _estimator_sweep(
        "n_assertions",
        range(10, 110, step),
        lambda m: GeneratorConfig.estimator_defaults(
            n_sources=100, n_assertions=int(m)
        ),
        **kwargs,
    )


def figure9_estimator_vs_trees(**kwargs) -> SweepResult:
    """Figure 9: accuracy as τ = 1..11."""
    return _estimator_sweep(
        "n_trees",
        range(1, 12),
        lambda tau: GeneratorConfig.estimator_defaults(n_trees=(int(tau), int(tau))),
        **kwargs,
    )


def figure10_estimator_vs_odds(**kwargs) -> SweepResult:
    """Figure 10: accuracy as dependent odds = 1.1..2.0 (indep odds 2)."""
    return _estimator_sweep(
        "dependent_odds",
        [round(1.1 + 0.1 * k, 1) for k in range(10)],
        lambda odds: GeneratorConfig.estimator_defaults()
        .with_independent_odds(2.0)
        .with_dependent_odds(float(odds)),
        **kwargs,
    )


@dataclass
class EmpiricalCell:
    """One (dataset, algorithm) cell of Figure 11."""

    dataset: str
    algorithm: str
    true_ratio: float


def figure11_empirical(
    datasets: Sequence[str] = tuple(DATASET_ORDER),
    *,
    algorithms: Sequence[str] = tuple(EMPIRICAL_ALGORITHMS),
    n_seeds: int = 3,
    target_assertions: int = 1000,
    k: int = 100,
    smoothing: float = 1.0,
    seed: SeedLike = 0,
) -> List[EmpiricalCell]:
    """Figure 11: top-k grading accuracy of all algorithms per dataset.

    Each dataset is simulated ``n_seeds`` times at a scale that keeps
    about ``target_assertions`` assertion clusters; the reported ratio
    is the mean over seeds.  ``smoothing`` configures the EM family's
    hierarchical shrinkage, which field-data sparsity requires.
    """
    rng = RandomState(seed)
    cells = []
    for dataset_name in datasets:
        spec = get_spec(dataset_name)
        scale = min(1.0, target_assertions / spec.n_assertions)
        totals = {name: 0.0 for name in algorithms}
        for _ in range(n_seeds):
            sim_seed = derive_seed(rng)
            dataset = simulate_dataset(dataset_name, scale=scale, seed=sim_seed)
            evaluation = dataset.evaluation_slice()
            blind = evaluation.problem.without_truth()
            results = {}
            for name in algorithms:
                finder = _empirical_finder(name, smoothing, derive_seed(rng))
                results[name] = finder.fit(blind)
            grader = SimulatedGrader(evaluation.labels, seed=derive_seed(rng))
            reports = grade_top_k(results, grader, k=k, seed=derive_seed(rng))
            for name in algorithms:
                totals[name] += reports[name].true_ratio
        for name in algorithms:
            cells.append(
                EmpiricalCell(
                    dataset=dataset_name,
                    algorithm=name,
                    true_ratio=totals[name] / n_seeds,
                )
            )
    return cells


def _empirical_finder(name: str, smoothing: float, seed: int):
    if name == "em-ext":
        return make_fact_finder(name, seed=seed, config=EMConfig(smoothing=smoothing))
    if name in ("em", "em-social"):
        return make_fact_finder(name, seed=seed, smoothing=smoothing)
    return make_fact_finder(name)


def figure11_matrix(cells: List[EmpiricalCell]) -> Dict[str, Dict[str, float]]:
    """Pivot Figure 11 cells into algorithm → dataset → ratio."""
    matrix: Dict[str, Dict[str, float]] = {}
    for cell in cells:
        matrix.setdefault(cell.algorithm, {})[cell.dataset] = cell.true_ratio
    return matrix


__all__ = [
    "BoundComparisonRow",
    "EmpiricalCell",
    "TABLE1_EXPECTED_BOUND",
    "TABLE1_P_GIVEN_FALSE",
    "TABLE1_P_GIVEN_TRUE",
    "TimingRow",
    "bound_comparison_sweep",
    "bound_trials",
    "estimator_trials",
    "figure10_estimator_vs_odds",
    "figure11_empirical",
    "figure11_matrix",
    "figure3_bound_vs_sources",
    "figure4_bound_vs_trees",
    "figure5_bound_vs_odds",
    "figure6_bound_timing",
    "figure7_estimator_vs_sources",
    "figure8_estimator_vs_assertions",
    "figure9_estimator_vs_trees",
    "full_trials",
    "table1_walkthrough",
]
