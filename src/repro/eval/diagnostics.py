"""Diagnostics: sampler health, EM convergence, posterior calibration.

Production deployments of the bound and the estimator need more than
point results — they need to know whether the Gibbs chains mixed,
whether EM actually converged or just ran out of iterations, and
whether the reported posteriors mean what they claim.  This module
provides the three corresponding checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.result import EstimationResult
from repro.engine.driver import IterationEvent
from repro.resilience.policy import ACTION_RETRIED, ACTION_SKIPPED, TrialFailure
from repro.utils.errors import ValidationError


# ---------------------------------------------------------------------------
# Markov-chain diagnostics
# ---------------------------------------------------------------------------

def autocorrelation(series: np.ndarray, lag: int) -> float:
    """Lag-``lag`` autocorrelation of a scalar chain trace."""
    series = np.asarray(series, dtype=np.float64)
    if lag < 0:
        raise ValidationError(f"lag must be non-negative, got {lag}")
    if series.size <= lag + 1:
        raise ValidationError(
            f"series of length {series.size} too short for lag {lag}"
        )
    centred = series - series.mean()
    denominator = float(np.dot(centred, centred))
    if denominator == 0.0:
        return 0.0
    if lag == 0:
        return 1.0
    return float(np.dot(centred[:-lag], centred[lag:]) / denominator)


def effective_sample_size(series: np.ndarray, max_lag: int = 200) -> float:
    """Initial-positive-sequence ESS estimate of a scalar chain trace.

    Sums autocorrelations until they turn non-positive (Geyer's initial
    positive sequence truncation) and returns ``n / (1 + 2 Σ ρ_k)``.
    """
    series = np.asarray(series, dtype=np.float64)
    n = series.size
    if n < 4:
        raise ValidationError(f"need at least 4 samples, got {n}")
    rho_sum = 0.0
    for lag in range(1, min(max_lag, n - 2) + 1):
        rho = autocorrelation(series, lag)
        if rho <= 0:
            break
        rho_sum += rho
    return float(n / (1.0 + 2.0 * rho_sum))


def gelman_rubin(chains: Sequence[np.ndarray]) -> float:
    """Potential scale-reduction factor (R̂) across parallel chain traces.

    Values near 1 indicate the chains agree; > ~1.1 flags poor mixing.
    """
    arrays = [np.asarray(chain, dtype=np.float64) for chain in chains]
    if len(arrays) < 2:
        raise ValidationError("gelman_rubin needs at least 2 chains")
    length = min(a.size for a in arrays)
    if length < 4:
        raise ValidationError("chains too short for R-hat")
    stacked = np.stack([a[:length] for a in arrays])
    m, n = stacked.shape
    chain_means = stacked.mean(axis=1)
    chain_vars = stacked.var(axis=1, ddof=1)
    within = chain_vars.mean()
    between = n * chain_means.var(ddof=1)
    if within == 0.0:
        return 1.0
    pooled = (n - 1) / n * within + between / n
    return float(np.sqrt(pooled / within))


# ---------------------------------------------------------------------------
# EM convergence
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EMDiagnostics:
    """Health report of one EM run."""

    converged: bool
    n_iterations: int
    final_delta: float
    log_likelihood_increased: bool
    max_likelihood_drop: float
    posterior_entropy: float

    @property
    def healthy(self) -> bool:
        """Converged with a monotone likelihood trace."""
        return self.converged and self.log_likelihood_increased


def em_diagnostics(result: EstimationResult) -> EMDiagnostics:
    """Inspect an :class:`EstimationResult`'s convergence trace."""
    if result.trace is None or result.trace.n_iterations == 0:
        raise ValidationError("result carries no iteration trace")
    log_likelihoods = np.asarray(result.trace.log_likelihoods)
    deltas = result.trace.parameter_deltas
    drops = np.diff(log_likelihoods)
    max_drop = float(-drops.min()) if drops.size else 0.0
    scores = np.clip(result.scores, 1e-12, 1 - 1e-12)
    entropy = float(
        -(scores * np.log(scores) + (1 - scores) * np.log(1 - scores)).mean()
    )
    return EMDiagnostics(
        converged=result.converged,
        n_iterations=result.n_iterations,
        final_delta=float(deltas[-1]),
        log_likelihood_increased=bool((drops >= -1e-6).all()),
        max_likelihood_drop=max(0.0, max_drop),
        posterior_entropy=entropy,
    )


# ---------------------------------------------------------------------------
# Engine telemetry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TelemetrySummary:
    """Aggregate view of per-iteration engine telemetry.

    Summarises the :class:`~repro.engine.driver.IterationEvent` stream a
    :class:`~repro.engine.driver.TelemetryRecorder` collects — across
    one EM run or across every run of a harness experiment point.
    """

    n_iterations: int
    total_seconds: float
    mean_iteration_seconds: float
    max_iteration_seconds: float
    final_delta: float
    mean_log_likelihood_delta: float
    #: Trial-level failure counts from the harness ledger (all zero for
    #: fault-free runs, or when no ledger was passed in).
    n_trial_failures: int = 0
    n_retried: int = 0
    n_skipped: int = 0

    @property
    def iterations_per_second(self) -> float:
        """Throughput of the EM loop (NaN when no time was recorded)."""
        if self.total_seconds <= 0.0:
            return float("nan")
        return self.n_iterations / self.total_seconds


def summarize_telemetry(
    events: Sequence[IterationEvent],
    failures: Sequence["TrialFailure"] = (),
) -> TelemetrySummary:
    """Condense recorded iteration events into a :class:`TelemetrySummary`.

    ``failures`` optionally takes a harness failure ledger
    (:attr:`~repro.eval.harness.SimulationResult.failures`), folding
    trial-level failure counts into the summary alongside the
    per-iteration timings.
    """
    if not events:
        raise ValidationError("no telemetry events recorded")
    durations = np.array([e.duration_seconds for e in events], dtype=np.float64)
    lls = np.array([e.log_likelihood for e in events], dtype=np.float64)
    ll_deltas = np.diff(lls)
    n_retried = sum(1 for f in failures if f.action == ACTION_RETRIED)
    n_skipped = sum(1 for f in failures if f.action == ACTION_SKIPPED)
    return TelemetrySummary(
        n_iterations=len(events),
        total_seconds=float(durations.sum()),
        mean_iteration_seconds=float(durations.mean()),
        max_iteration_seconds=float(durations.max()),
        final_delta=float(events[-1].delta),
        mean_log_likelihood_delta=(
            float(ll_deltas.mean()) if ll_deltas.size else 0.0
        ),
        n_trial_failures=len(failures),
        n_retried=n_retried,
        n_skipped=n_skipped,
    )


# ---------------------------------------------------------------------------
# Posterior calibration
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CalibrationBin:
    """One reliability-diagram bin."""

    lower: float
    upper: float
    mean_confidence: float
    empirical_accuracy: float
    count: int


def calibration_curve(
    scores: np.ndarray, truth: np.ndarray, n_bins: int = 10
) -> List[CalibrationBin]:
    """Reliability diagram of probabilistic truth scores.

    A well-calibrated estimator's assertions scored ~0.8 are true ~80%
    of the time.  Empty bins are omitted.
    """
    scores = np.asarray(scores, dtype=np.float64)
    truth = np.asarray(truth)
    if scores.shape != truth.shape:
        raise ValidationError("scores and truth must align")
    if n_bins < 1:
        raise ValidationError(f"n_bins must be positive, got {n_bins}")
    if scores.size and (scores.min() < 0 or scores.max() > 1):
        raise ValidationError("scores must be probabilities for calibration")
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    bins: List[CalibrationBin] = []
    for index in range(n_bins):
        low, high = edges[index], edges[index + 1]
        if index == n_bins - 1:
            mask = (scores >= low) & (scores <= high)
        else:
            mask = (scores >= low) & (scores < high)
        count = int(mask.sum())
        if count == 0:
            continue
        bins.append(
            CalibrationBin(
                lower=float(low),
                upper=float(high),
                mean_confidence=float(scores[mask].mean()),
                empirical_accuracy=float(truth[mask].mean()),
                count=count,
            )
        )
    return bins


def expected_calibration_error(
    scores: np.ndarray, truth: np.ndarray, n_bins: int = 10
) -> float:
    """ECE: count-weighted mean |confidence − accuracy| over bins."""
    bins = calibration_curve(scores, truth, n_bins)
    total = sum(b.count for b in bins)
    if total == 0:
        return 0.0
    return float(
        sum(
            b.count * abs(b.mean_confidence - b.empirical_accuracy) for b in bins
        )
        / total
    )


__all__ = [
    "CalibrationBin",
    "EMDiagnostics",
    "TelemetrySummary",
    "autocorrelation",
    "calibration_curve",
    "effective_sample_size",
    "em_diagnostics",
    "expected_calibration_error",
    "gelman_rubin",
    "summarize_telemetry",
]
