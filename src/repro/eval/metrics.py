"""Evaluation metrics for fact-finding results.

The paper reports three synthetic metrics (estimation accuracy, false
positive rate, false negative rate — Figures 7–10) and one empirical
metric (the top-k true ratio — Figure 11, computed by the grading
protocol in :mod:`repro.pipeline.grading`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.result import FactFindingResult
from repro.utils.errors import ValidationError


@dataclass(frozen=True)
class ClassificationMetrics:
    """Accuracy and error decomposition of binary truth decisions.

    ``false_positive_rate`` is the fraction of *false* assertions
    labelled true; ``false_negative_rate`` the fraction of *true*
    assertions labelled false — matching the paper's "false positive /
    false negative" curves.
    """

    accuracy: float
    false_positive_rate: float
    false_negative_rate: float
    n_assertions: int
    n_true: int
    n_false: int

    @property
    def error_rate(self) -> float:
        """``1 - accuracy``."""
        return 1.0 - self.accuracy


def classification_metrics(
    decisions: np.ndarray, truth: np.ndarray
) -> ClassificationMetrics:
    """Score binary decisions against ground truth."""
    decisions = np.asarray(decisions)
    truth = np.asarray(truth)
    if decisions.shape != truth.shape or decisions.ndim != 1:
        raise ValidationError(
            f"decisions and truth must be equal-length vectors, got "
            f"{decisions.shape} vs {truth.shape}"
        )
    if decisions.size == 0:
        raise ValidationError("cannot score an empty decision vector")
    true_mask = truth == 1
    false_mask = ~true_mask
    n_true = int(true_mask.sum())
    n_false = int(false_mask.sum())
    accuracy = float((decisions == truth).mean())
    fp_rate = float((decisions[false_mask] == 1).mean()) if n_false else 0.0
    fn_rate = float((decisions[true_mask] == 0).mean()) if n_true else 0.0
    return ClassificationMetrics(
        accuracy=accuracy,
        false_positive_rate=fp_rate,
        false_negative_rate=fn_rate,
        n_assertions=decisions.size,
        n_true=n_true,
        n_false=n_false,
    )


def score_result(result: FactFindingResult, truth: np.ndarray) -> ClassificationMetrics:
    """Score a fact-finding result's decisions against ground truth."""
    return classification_metrics(result.decisions, truth)


def precision_at_k(result: FactFindingResult, truth: np.ndarray, k: int) -> float:
    """Fraction of the top-``k`` ranked assertions that are actually true."""
    if k <= 0:
        raise ValidationError(f"k must be positive, got {k}")
    truth = np.asarray(truth)
    top = result.top_k(k)
    if top.size == 0:
        return 0.0
    return float((truth[top] == 1).mean())


def brier_score(result: FactFindingResult, truth: np.ndarray) -> float:
    """Mean squared error of probabilistic scores (calibration measure).

    Only meaningful for algorithms whose scores are posteriors in
    ``[0, 1]`` (the EM family); heuristic rankers are min-max normalised
    first so the value is at least comparable.
    """
    truth = np.asarray(truth, dtype=np.float64)
    scores = result.scores
    low, high = float(scores.min()), float(scores.max())
    if low < 0.0 or high > 1.0:
        scores = (scores - low) / (high - low) if high > low else np.full_like(scores, 0.5)
    return float(np.mean((scores - truth) ** 2))


__all__ = [
    "ClassificationMetrics",
    "brier_score",
    "classification_metrics",
    "precision_at_k",
    "score_result",
]
