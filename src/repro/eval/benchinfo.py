"""Machine and execution metadata for benchmark reports.

Every benchmark JSON the repo emits (``BENCH_parallel.json``,
``BENCH_kernels.json``, ``BENCH_batched.json``, …) embeds
:func:`machine_info` so a number can never be read without the hardware
context it was measured on — a 1× "speedup" on a single-core container
and a 4× on an 8-core workstation are both honest, but only if the
report says which machine produced it.  :func:`execution_info` is the
companion block for *how* the work ran — effective worker count, lanes
per batched tensor pass, and realised lane occupancy — so BENCH_*.json
trajectories stay comparable across machines and execution modes.
"""

from __future__ import annotations

import os
import platform
import sys
from typing import Dict, Optional


def machine_info() -> Dict[str, Optional[object]]:
    """Describe the benchmarking machine for inclusion in report JSON.

    Returns plain JSON-compatible types only.  ``cpu_count`` is
    ``os.cpu_count()`` (may be ``None`` on exotic platforms, which JSON
    renders as ``null``).
    """
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "python_version": sys.version.split()[0],
        "python_implementation": platform.python_implementation(),
    }


def execution_info(
    n_jobs: Optional[int] = None,
    batch_size: Optional[int] = None,
    metrics: Optional[dict] = None,
) -> Dict[str, Optional[object]]:
    """Describe how a benchmark's work was executed.

    ``n_jobs`` is the requested worker count (``None`` = serial, ``-1``
    = all cores) and ``effective_n_jobs`` its resolution on this
    machine; ``batch_size`` is the lanes-per-tensor-pass of the batched
    engine (``1`` = scalar execution); ``lane_occupancy`` summarises
    the ``engine.batched.occupancy`` histogram of an observability
    ``metrics`` snapshot, when one was recorded — mean active lanes per
    batched pass is the honest denominator behind any batched speedup
    (a 32-lane pack that averages 3 active lanes cannot beat 3×).
    """
    if n_jobs is None:
        effective = 1
    elif n_jobs == -1:
        effective = os.cpu_count() or 1
    else:
        effective = n_jobs
    return {
        "n_jobs": n_jobs,
        "effective_n_jobs": effective,
        "batch_size": 1 if batch_size is None else batch_size,
        "lane_occupancy": occupancy_summary(metrics),
    }


def occupancy_summary(metrics: Optional[dict]) -> Optional[Dict[str, float]]:
    """Mean/min/max active lanes from a metrics snapshot, if recorded.

    ``metrics`` is an observability session snapshot
    (``session.metrics.snapshot()``); returns ``None`` when it carries
    no ``engine.batched.occupancy`` histogram (scalar runs).
    """
    if not metrics:
        return None
    histogram = metrics.get("histograms", {}).get("engine.batched.occupancy")
    if not histogram or not histogram.get("count"):
        return None
    return {
        "passes": histogram["count"],
        "mean": round(histogram["sum"] / histogram["count"], 3),
        "min": histogram["min"],
        "max": histogram["max"],
    }


__all__ = ["execution_info", "machine_info", "occupancy_summary"]
