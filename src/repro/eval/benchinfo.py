"""Machine metadata for benchmark reports.

Every benchmark JSON the repo emits (``BENCH_parallel.json``,
``BENCH_kernels.json``, …) embeds :func:`machine_info` so a number can
never be read without the hardware context it was measured on — a 1×
"speedup" on a single-core container and a 4× on an 8-core workstation
are both honest, but only if the report says which machine produced it.
"""

from __future__ import annotations

import os
import platform
import sys
from typing import Dict, Optional


def machine_info() -> Dict[str, Optional[object]]:
    """Describe the benchmarking machine for inclusion in report JSON.

    Returns plain JSON-compatible types only.  ``cpu_count`` is
    ``os.cpu_count()`` (may be ``None`` on exotic platforms, which JSON
    renders as ``null``).
    """
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "python_version": sys.version.split()[0],
        "python_implementation": platform.python_implementation(),
    }


__all__ = ["machine_info"]
