"""Command-line interface.

Subcommands::

    repro generate    write a synthetic sensing problem (Section V-A)
    repro estimate    run a fact-finder on a problem file
    repro bound       compute the fundamental error bound of a problem
    repro simulate    simulate a Table III Twitter dataset to JSONL
    repro experiment  regenerate one of the paper's tables/figures
    repro serve       generate/replay request traces for repro.serve
    repro stream      streaming estimation over claim-batch windows

Every command is deterministic given ``--seed``.  See ``repro <cmd> -h``
for per-command options.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import observability
from repro.baselines import ALGORITHM_REGISTRY, make_fact_finder
from repro.bounds import (
    GibbsConfig,
    bhattacharyya_bounds,
    bound_cascade,
    exact_bound,
    gibbs_bound,
)
from repro.core.em_ext import EMConfig
from repro.datasets import DATASET_ORDER, simulate_dataset
from repro.eval import (
    figure3_bound_vs_sources,
    figure4_bound_vs_trees,
    figure5_bound_vs_odds,
    figure6_bound_timing,
    figure7_estimator_vs_sources,
    figure8_estimator_vs_assertions,
    figure9_estimator_vs_trees,
    figure10_estimator_vs_odds,
    figure11_empirical,
    format_bound_comparison,
    format_empirical,
    format_sweep,
    format_timing,
    table1_walkthrough,
)
from repro.datasets.summary import format_table, summarize_catalog
from repro.eval.benchinfo import machine_info
from repro.extensions import StreamingEMExt
from repro.io import (
    load_problem,
    load_sparse_problem,
    save_problem,
    save_result,
    save_sparse_problem,
    save_tweets,
)
from repro.observability import hit_rate, profile_stage
from repro.parallel import ParallelConfig
from repro.resilience.supervisor import Deadline, parse_timespan
from repro.serve import (
    ServiceConfig,
    generate_trace,
    load_trace,
    replay_trace,
)
from repro.synthetic import GeneratorConfig, empirical_parameters, generate_dataset
from repro.utils.errors import ReproError

_EXPERIMENTS = (
    "table1", "table3", "fig3", "fig4", "fig5", "fig6",
    "fig7", "fig8", "fig9", "fig10", "fig11",
)


def _add_observability_flags(sub: argparse.ArgumentParser) -> None:
    group = sub.add_argument_group("observability (off unless requested)")
    group.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the run's span tree as JSON (repro.trace/v1)",
    )
    group.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the run's metrics snapshot as JSON (repro.metrics/v1)",
    )
    group.add_argument(
        "--profile-out", default=None, metavar="PATH",
        help="profile the command under cProfile and write a pstats "
             "text report",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dependency-aware social sensing (ICDCS 2016 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="write a synthetic sensing problem"
    )
    generate.add_argument("--out", required=True, help="output problem JSON path")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--n-sources", type=int, default=20)
    generate.add_argument("--n-assertions", type=int, default=50)
    generate.add_argument("--n-trees", type=int, default=None,
                          help="fixed tree count (default: paper range 8-10)")
    generate.add_argument("--mode", choices=("cell", "pool"), default="cell")
    generate.add_argument("--with-truth", action="store_true",
                          help="include ground-truth labels in the file")

    estimate = subparsers.add_parser("estimate", help="run a fact-finder")
    estimate.add_argument("--problem", required=True, help="problem JSON path")
    estimate.add_argument("--out", default=None, help="result JSON path")
    estimate.add_argument(
        "--algorithm", default="em-ext", choices=sorted(ALGORITHM_REGISTRY)
    )
    estimate.add_argument("--seed", type=int, default=0)
    estimate.add_argument("--smoothing", type=float, default=0.0)
    estimate.add_argument(
        "--restarts", type=int, default=1, metavar="R",
        help="em-ext: random restarts; the best fixed point by "
             "log-likelihood wins (default 1, the paper's single run)",
    )
    estimate.add_argument(
        "--batch", action="store_true",
        help="em-ext: run the restarts as stacked lanes of one batched "
             "tensor pass (bit-for-bit identical results, several times "
             "faster once --restarts reaches ~8)",
    )
    estimate.add_argument("--top", type=int, default=10,
                          help="print this many top-ranked assertions")
    _add_observability_flags(estimate)

    bound = subparsers.add_parser(
        "bound", help="fundamental error bound of a problem (needs truth labels)"
    )
    bound.add_argument("--problem", required=True)
    bound.add_argument(
        "--method", default="auto",
        choices=("auto", "exact", "gibbs", "bhattacharyya"),
    )
    bound.add_argument("--seed", type=int, default=0)
    bound.add_argument(
        "--n-jobs", type=int, default=None, metavar="N",
        help="shard Gibbs chains across N worker processes (-1: all "
             "cores; results are identical for any N)",
    )
    bound.add_argument(
        "--deadline", default=None, metavar="SPAN",
        help="wall budget for the computation (e.g. 500ms, 5s, 2m); "
             "implies --cascade behaviour on expiry",
    )
    bound.add_argument(
        "--cascade", action="store_true",
        help="pick the best affordable tier (exact -> gibbs -> "
             "analytic) and report any degradation instead of failing",
    )
    _add_observability_flags(bound)

    simulate = subparsers.add_parser(
        "simulate", help="simulate a Table III Twitter dataset"
    )
    simulate.add_argument("--dataset", required=True, choices=DATASET_ORDER)
    simulate.add_argument("--scale", type=float, default=0.1)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--tweets-out", default=None, help="JSONL output path")
    simulate.add_argument("--problem-out", default=None,
                          help="evaluation-day problem JSON output path")

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's tables/figures"
    )
    experiment.add_argument("name", choices=_EXPERIMENTS)
    experiment.add_argument(
        "--n-jobs", type=int, default=None, metavar="N",
        help="fan the experiment's trials (figs 7-10) or Gibbs chains "
             "(figs 3-5) out across N worker processes (-1: all cores); "
             "results are identical for any N",
    )
    experiment.add_argument(
        "--batch", action="store_true",
        help="figs 7-10: fit each trial's em-ext as stacked batched "
             "lanes in the parent (bit-for-bit identical results; "
             "incompatible with --n-jobs)",
    )
    _add_observability_flags(experiment)

    serve = subparsers.add_parser(
        "serve",
        help="generate and replay request traces for the estimation service",
    )
    serve.add_argument(
        "--generate-trace", default=None, metavar="PATH",
        help="write a seeded synthetic request trace (JSONL)",
    )
    serve.add_argument(
        "--replay", default=None, metavar="PATH",
        help="replay a request trace through repro.serve",
    )
    serve.add_argument("--requests", type=int, default=200,
                       help="trace size for --generate-trace (default 200)")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--distinct", type=int, default=None, metavar="K",
        help="distinct problems in the trace (fewer than --requests "
             "creates exact repeats that exercise the result cache)",
    )
    serve.add_argument("--n-sources", type=int, default=20)
    serve.add_argument("--n-assertions", type=int, default=50)
    serve.add_argument(
        "--init", choices=("random", "staged", "support"), default="random",
        help="em-ext init strategy written into the trace (default "
             "random; staged initialisation runs serially per problem "
             "and hides the micro-batching speedup)",
    )
    serve.add_argument("--restarts", type=int, default=1)
    serve.add_argument(
        "--mode", choices=("batched", "serial", "both"), default="batched",
        help="replay through the service, the per-request serial "
             "baseline, or both (reporting the speedup)",
    )
    serve.add_argument(
        "--verify", action="store_true",
        help="re-fit every answered request directly and require "
             "bit-for-bit equal responses (non-zero exit on mismatch)",
    )
    serve.add_argument("--max-batch", type=int, default=32, metavar="B",
                       help="lane budget per micro-batch (default 32)")
    serve.add_argument("--queue-depth", type=int, default=256, metavar="N",
                       help="admission limit before backpressure (default 256)")
    serve.add_argument(
        "--timeout", default=None, metavar="SPAN",
        help="per-request deadline, e.g. 500ms or 5s (measured from "
             "submission; stale requests are rejected, not fitted)",
    )
    serve.add_argument("--bench-out", default=None, metavar="PATH",
                       help="write replay measurements as JSON")
    _add_observability_flags(serve)

    stream = subparsers.add_parser(
        "stream", help="streaming estimation over claim-batch windows"
    )
    stream.add_argument(
        "--windows", nargs="+", required=True, metavar="PATH",
        help="problem files (JSON or NPZ), one per stream window, in "
             "arrival order; all windows must share the source population",
    )
    stream.add_argument("--out", default=None, metavar="PATH",
                        help="write per-window decisions and parameter "
                             "snapshots as JSONL")
    stream.add_argument("--decay", type=float, default=0.95,
                        help="forgetting factor on accumulated statistics "
                             "(default 0.95; 1.0 never forgets)")
    stream.add_argument("--inner-iterations", type=int, default=25)
    stream.add_argument(
        "--seed", type=int, default=None,
        help="cold-start jitter seed (default: the historical "
             "deterministic cold start)",
    )
    _add_observability_flags(stream)
    return parser


def _load_any_problem(path: str):
    """Load a problem, routing ``.npz`` paths to the sparse reader."""
    if str(path).endswith(".npz"):
        return load_sparse_problem(path)
    return load_problem(path)


def _save_any_problem(problem, path: str) -> None:
    """Save a problem, routing ``.npz`` paths to the sparse writer."""
    if str(path).endswith(".npz"):
        save_sparse_problem(problem, path)
    else:
        save_problem(problem, path)


def _cmd_generate(args) -> int:
    kwargs = {
        "n_sources": args.n_sources,
        "n_assertions": args.n_assertions,
        "mode": args.mode,
    }
    if args.n_trees is not None:
        kwargs["n_trees"] = args.n_trees
    dataset = generate_dataset(GeneratorConfig(**kwargs), seed=args.seed)
    problem = dataset.problem if args.with_truth else dataset.problem.without_truth()
    _save_any_problem(problem, args.out)
    print(
        f"wrote {args.out}: {problem.n_sources} sources x "
        f"{problem.n_assertions} assertions, "
        f"{problem.n_claims} claims "
        f"({problem.dependent_claim_fraction():.0%} dependent)"
        + (", with truth labels" if args.with_truth else "")
    )
    return 0


def _cmd_estimate(args) -> int:
    problem = _load_any_problem(args.problem).without_truth()
    name = args.algorithm
    if name == "em-ext":
        finder = make_fact_finder(
            name,
            seed=args.seed,
            config=EMConfig(
                smoothing=args.smoothing,
                n_restarts=args.restarts,
                restart_mode="batched" if args.batch else "serial",
            ),
        )
    elif name in ("em", "em-social"):
        if args.batch or args.restarts != 1:
            print(
                "note: --batch/--restarts apply to em-ext only; ignored",
                file=sys.stderr,
            )
        finder = make_fact_finder(name, seed=args.seed, smoothing=args.smoothing)
    else:
        if args.batch or args.restarts != 1:
            print(
                "note: --batch/--restarts apply to em-ext only; ignored",
                file=sys.stderr,
            )
        finder = make_fact_finder(name)
    result = finder.fit(problem)
    print(f"algorithm: {result.algorithm}")
    print(f"assertions judged true: {int(result.decisions.sum())} / {result.n_assertions}")
    top = result.top_k(args.top)
    for rank, assertion in enumerate(top, start=1):
        label = problem.assertion_ids[assertion]
        print(f"  {rank:>3}. {label}  score={result.scores[assertion]:.4f}")
    if args.out:
        save_result(result, args.out)
        print(f"wrote {args.out}")
    return 0


def _cmd_bound(args) -> int:
    problem = _load_any_problem(args.problem)
    if not problem.has_truth:
        print(
            "error: the bound needs oracle parameters, which are measured "
            "against ground truth; regenerate the problem with --with-truth",
            file=sys.stderr,
        )
        return 2
    params = empirical_parameters(problem).clamp(1e-4)
    # The bound functions accept the problem directly (any storage
    # format) through repro.data.as_dependency_array.
    dependency = problem
    method = args.method
    if args.cascade or args.deadline is not None:
        deadline = (
            Deadline.after(parse_timespan(args.deadline))
            if args.deadline is not None
            else None
        )
        outcome = bound_cascade(
            dependency, params, deadline=deadline, seed=args.seed
        )
        result = outcome.bound
        report = outcome.report
        print(
            f"{result.method} bound: Err = {result.total:.6f} "
            f"(FP {result.false_positive:.6f}, FN {result.false_negative:.6f}); "
            f"optimal accuracy ceiling = {result.optimal_accuracy:.6f}"
        )
        print(f"cascade: {report.summary()}")
        if report.degraded:
            print(
                f"note: degraded from the {report.requested} tier "
                f"({'deadline ' + args.deadline if args.deadline else 'budget'} "
                "too tight for the better tiers)"
            )
        return 0
    if method == "auto":
        method = "exact" if problem.n_sources <= 20 else "gibbs"
    if method == "bhattacharyya":
        lower, upper = bhattacharyya_bounds(dependency, params)
        print(f"bhattacharyya bracket: [{lower:.6f}, {upper:.6f}]")
        return 0
    if method == "exact":
        result = exact_bound(dependency, params)
    else:
        result = gibbs_bound(
            dependency,
            params,
            config=GibbsConfig(),
            seed=args.seed,
            parallel=_parallel_config(args),
        )
    print(
        f"{result.method} bound: Err = {result.total:.6f} "
        f"(FP {result.false_positive:.6f}, FN {result.false_negative:.6f}); "
        f"optimal accuracy ceiling = {result.optimal_accuracy:.6f}"
    )
    return 0


def _cmd_simulate(args) -> int:
    dataset = simulate_dataset(args.dataset, scale=args.scale, seed=args.seed)
    summary = dataset.summary()
    print(
        f"{summary.name}: {summary.n_sources} sources, "
        f"{summary.n_assertions} assertions, {summary.n_total_claims} claims "
        f"({summary.n_original_claims} original)"
    )
    if args.tweets_out:
        count = save_tweets(dataset.tweets, args.tweets_out)
        print(f"wrote {count} tweets to {args.tweets_out}")
    if args.problem_out:
        evaluation = dataset.evaluation_slice()
        save_problem(evaluation.problem, args.problem_out)
        print(
            f"wrote evaluation-day problem "
            f"({evaluation.n_sources} x {evaluation.n_assertions}) "
            f"to {args.problem_out}"
        )
    return 0


def _parallel_config(args):
    """``--n-jobs`` → a :class:`ParallelConfig` (``None`` when unset)."""
    n_jobs = getattr(args, "n_jobs", None)
    if n_jobs is None:
        return None
    return ParallelConfig(n_jobs=n_jobs)


def _cmd_experiment(args) -> int:
    name = args.name
    parallel = _parallel_config(args)
    parallel_kwargs = {"parallel": parallel} if parallel is not None else {}
    if name == "table1":
        result = table1_walkthrough()
        print(f"Table I bound: {result.total:.8f} (paper: 0.26980433)")
    elif name == "table3":
        print(format_table(summarize_catalog(scale=0.1)))
        print("\n(simulated at scale 0.1; set REPRO_FULL_TRIALS=1 benchmarks "
              "for full-scale runs)")
    elif name in ("fig3", "fig4", "fig5"):
        runner = {
            "fig3": (figure3_bound_vs_sources, "n"),
            "fig4": (figure4_bound_vs_trees, "tau"),
            "fig5": (figure5_bound_vs_odds, "dep-odds"),
        }[name]
        print(format_bound_comparison(runner[0](**parallel_kwargs), x_label=runner[1]))
    elif name == "fig6":
        print(format_timing(figure6_bound_timing()))
    elif name in ("fig7", "fig8", "fig9", "fig10"):
        runner = {
            "fig7": figure7_estimator_vs_sources,
            "fig8": figure8_estimator_vs_assertions,
            "fig9": figure9_estimator_vs_trees,
            "fig10": figure10_estimator_vs_odds,
        }[name]
        kwargs = dict(parallel_kwargs)
        if args.batch:
            kwargs["trial_mode"] = "batched"
        sweep = runner(**kwargs)
        print("accuracy:\n" + format_sweep(sweep, "accuracy"))
        print("\nfalse positive rate:\n" + format_sweep(sweep, "false_positive_rate"))
    else:  # fig11
        print(format_empirical(figure11_empirical(n_seeds=2, target_assertions=700)))
    return 0


def _cmd_serve(args) -> int:
    import json

    if args.generate_trace is None and args.replay is None:
        print(
            "error: serve needs --generate-trace and/or --replay",
            file=sys.stderr,
        )
        return 2
    if args.generate_trace is not None:
        n_requests = generate_trace(
            args.generate_trace,
            n_requests=args.requests,
            seed=args.seed,
            n_sources=args.n_sources,
            n_assertions=args.n_assertions,
            distinct_problems=args.distinct,
            init_strategy=args.init,
            n_restarts=args.restarts,
            timeout_seconds=(
                parse_timespan(args.timeout) if args.timeout is not None else None
            ),
        )
        print(
            f"wrote {args.generate_trace}: {n_requests} requests "
            f"({args.n_sources} x {args.n_assertions}, "
            f"{args.distinct if args.distinct is not None else n_requests} "
            "distinct problems)"
        )
    if args.replay is None:
        return 0
    requests = load_trace(args.replay)
    service_config = ServiceConfig(
        max_batch_size=args.max_batch,
        max_queue_depth=args.queue_depth,
        default_timeout_seconds=(
            parse_timespan(args.timeout) if args.timeout is not None else None
        ),
    )
    modes = ("batched", "serial") if args.mode == "both" else (args.mode,)
    reports = {}
    for mode in modes:
        # The serial baseline *is* the sequence of direct fits, so
        # verification only means something on the batched path.
        report = replay_trace(
            requests,
            mode=mode,
            service_config=service_config,
            verify=args.verify and mode == "batched",
        )
        reports[mode] = report
        print(report.summary())
    speedup = None
    if len(reports) == 2:
        speedup = (
            reports["serial"].wall_seconds / reports["batched"].wall_seconds
        )
        print(f"speedup (serial wall / batched wall): {speedup:.2f}x")
    mismatches = sum(report.n_mismatches for report in reports.values())
    if args.bench_out is not None:
        document = {
            "schema": "repro.bench-serve/v1",
            "experiment": "serve_replay",
            "trace": args.replay,
            "n_requests": len(requests),
            "config": {
                "max_batch_size": args.max_batch,
                "max_queue_depth": args.queue_depth,
                "timeout": args.timeout,
                "mode": args.mode,
            },
            "machine": machine_info(),
            "rows": {mode: report.to_row() for mode, report in reports.items()},
            "speedup": speedup,
            "parity": (
                {
                    "verified": sum(r.n_verified for r in reports.values()),
                    "mismatches": mismatches,
                }
                if args.verify
                else None
            ),
        }
        with open(args.bench_out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.bench_out}")
    if mismatches:
        print(
            f"error: {mismatches} responses differ from their direct fits",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_stream(args) -> int:
    import json

    problems = [_load_any_problem(path).without_truth() for path in args.windows]
    stream = StreamingEMExt(
        n_sources=problems[0].n_sources,
        decay=args.decay,
        inner_iterations=args.inner_iterations,
        seed=args.seed,
    )
    records = []
    for index, (path, problem) in enumerate(zip(args.windows, problems)):
        result = stream.partial_fit(problem)
        n_true = int(result.decisions.sum())
        print(
            f"window {index}: {path} -> {n_true}/{result.n_assertions} true, "
            f"{result.n_iterations} inner iterations"
            f"{' (converged)' if result.converged else ''}"
        )
        parameters = result.parameters
        records.append(
            {
                "window": index,
                "source": path,
                "n_assertions": int(result.n_assertions),
                "n_true": n_true,
                "converged": bool(result.converged),
                "n_iterations": int(result.n_iterations),
                "decisions": [int(value) for value in result.decisions],
                "scores": [float(value) for value in result.scores],
                "parameters": {
                    "a": [float(v) for v in parameters.a],
                    "b": [float(v) for v in parameters.b],
                    "f": [float(v) for v in parameters.f],
                    "g": [float(v) for v in parameters.g],
                    "z": float(parameters.z),
                },
            }
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
        print(f"wrote {args.out}: {len(records)} windows")
    return 0


def _run_observed(handler, args) -> int:
    """Run a command handler, honouring the observability flags.

    With none of ``--trace-out`` / ``--metrics-out`` / ``--profile-out``
    given the handler runs exactly as before (no session installed, so
    every instrumentation point stays on its no-op path).  Outputs are
    written only after the handler returns, and the digest goes to
    stderr so stdout stays machine-readable.
    """
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    profile_out = getattr(args, "profile_out", None)
    if trace_out is None and metrics_out is None and profile_out is None:
        return handler(args)
    with observability.observe(root_name=f"repro.{args.command}") as session:
        with profile_stage(profile_out):
            code = handler(args)
    if trace_out is not None:
        session.write_trace(trace_out)
        print(f"wrote trace to {trace_out}", file=sys.stderr)
    if metrics_out is not None:
        session.write_metrics(metrics_out)
        rate = hit_rate(session.metrics.snapshot())
        print(
            f"wrote metrics to {metrics_out} "
            f"(params-cache hit rate {rate:.1%})",
            file=sys.stderr,
        )
    if profile_out is not None:
        print(f"wrote profile to {profile_out}", file=sys.stderr)
    return code


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "estimate": _cmd_estimate,
        "bound": _cmd_bound,
        "simulate": _cmd_simulate,
        "experiment": _cmd_experiment,
        "serve": _cmd_serve,
        "stream": _cmd_stream,
    }
    try:
        return _run_observed(handlers[args.command], args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


__all__ = ["main"]
