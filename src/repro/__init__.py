"""repro — dependency-aware social sensing.

A production-quality reproduction of *"On Source Dependency Models for
Reliable Social Sensing: Algorithms and Fundamental Error Bounds"*
(Yao et al., ICDCS 2016): the dependency-aware EM fact-finder (EM-Ext),
the fundamental error bound with its Gibbs approximation, six baseline
fact-finders, the Section V-A synthetic workload generator, a simulated
Twitter substrate with an Apollo-style fact-finding pipeline, and an
evaluation harness regenerating every table and figure of the paper.

Quickstart::

    from repro import SensingProblem, EMExtEstimator, generate_dataset

    dataset = generate_dataset(seed=42)
    result = EMExtEstimator(seed=0).fit(dataset.problem.without_truth())
    print(result.decisions)
"""

from repro.baselines import (
    ALGORITHM_REGISTRY,
    EMPIRICAL_ALGORITHMS,
    SIMULATION_ALGORITHMS,
    AverageLog,
    EMIndependent,
    EMSocial,
    FactFinder,
    Sums,
    TruthFinder,
    Voting,
    make_fact_finder,
)
from repro.bounds import (
    BoundResult,
    GibbsConfig,
    exact_bound,
    exact_column_bound,
    gibbs_bound,
    gibbs_column_bound,
    parameter_confidence,
)
from repro.core import (
    DependencyMatrix,
    EMConfig,
    EMExtEstimator,
    EstimationResult,
    FactFindingResult,
    SensingProblem,
    SourceClaimMatrix,
    SourceParameters,
    posterior_truth,
    run_em_ext,
)
from repro.data import (
    CsrProblem,
    DenseProblem,
    MemoryBudgetError,
    Problem,
    as_dependency_array,
    coerce_problem,
    dense_budget,
    get_dense_budget,
    set_dense_budget,
)
from repro.network import (
    EventLog,
    FollowGraph,
    Post,
    build_problem,
    extract_dependency,
    level_two_forest,
    preferential_attachment,
)
from repro.datasets import (
    DATASET_ORDER,
    AssertionLabel,
    TwitterSimulator,
    simulate_dataset,
)
from repro.eval import (
    classification_metrics,
    run_simulation,
    run_sweep,
    score_result,
)
from repro.extensions import StreamingEMExt
from repro.pipeline import ApolloPipeline, SimulatedGrader, grade_top_k
from repro.resilience import (
    FailurePolicy,
    FaultInjector,
    InjectedFault,
    RunHealth,
    TrialFailure,
)
from repro.synthetic import (
    GeneratorConfig,
    SyntheticDataset,
    SyntheticGenerator,
    empirical_parameters,
    generate_dataset,
)

__version__ = "1.0.0"

__all__ = [
    "ALGORITHM_REGISTRY",
    "ApolloPipeline",
    "AssertionLabel",
    "AverageLog",
    "BoundResult",
    "CsrProblem",
    "DATASET_ORDER",
    "DenseProblem",
    "DependencyMatrix",
    "EMConfig",
    "EMExtEstimator",
    "EMIndependent",
    "EMPIRICAL_ALGORITHMS",
    "EMSocial",
    "EstimationResult",
    "EventLog",
    "FactFinder",
    "FactFindingResult",
    "FailurePolicy",
    "FaultInjector",
    "FollowGraph",
    "GeneratorConfig",
    "GibbsConfig",
    "InjectedFault",
    "MemoryBudgetError",
    "Post",
    "Problem",
    "RunHealth",
    "SIMULATION_ALGORITHMS",
    "SensingProblem",
    "SimulatedGrader",
    "SourceClaimMatrix",
    "SourceParameters",
    "StreamingEMExt",
    "Sums",
    "SyntheticDataset",
    "SyntheticGenerator",
    "TrialFailure",
    "TruthFinder",
    "TwitterSimulator",
    "Voting",
    "__version__",
    "as_dependency_array",
    "build_problem",
    "classification_metrics",
    "coerce_problem",
    "dense_budget",
    "empirical_parameters",
    "exact_bound",
    "exact_column_bound",
    "extract_dependency",
    "generate_dataset",
    "get_dense_budget",
    "gibbs_bound",
    "gibbs_column_bound",
    "grade_top_k",
    "level_two_forest",
    "make_fact_finder",
    "parameter_confidence",
    "posterior_truth",
    "preferential_attachment",
    "run_em_ext",
    "run_simulation",
    "run_sweep",
    "score_result",
    "set_dense_budget",
    "simulate_dataset",
]
