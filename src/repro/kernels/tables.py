"""Log-parameter tables, built once per θ and cached by identity.

θ changes exactly once per EM iteration (at the M-step) while the
E-step, the posterior and the log-likelihood all consume ``log θ``
terms.  Historically each of those calls re-took eight logs; the tables
here are built once per parameter *object* and reused for every
downstream call that sees the same object.

Invalidation
------------
There is none, by construction: :class:`~repro.core.model.SourceParameters`
(and the baselines' ``IndependentParameters``) are immutable and every
M-step returns a fresh instance, so identity (``is``) is a sound cache
key — a table can never go stale because the parameters it was built
from can never change.  :class:`ParamsKeyedCache` is the single-slot
identity cache the backends use; one slot suffices because the EM loop
only ever works with the current iteration's θ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

import numpy as np

from repro.observability import count

T = TypeVar("T")


@dataclass(frozen=True)
class LogParameterTables:
    """Per-source log-rate vectors of the dependency-aware model.

    ``finite`` records whether every rate log is finite, i.e. the
    parameters sit strictly inside ``(0, 1)``; the select-based fast
    kernels require that (EM-clamped parameters always satisfy it) and
    callers fall back to the careful legacy path otherwise.
    """

    log_a: np.ndarray
    log_1a: np.ndarray
    log_b: np.ndarray
    log_1b: np.ndarray
    log_f: np.ndarray
    log_1f: np.ndarray
    log_g: np.ndarray
    log_1g: np.ndarray
    log_z: float
    log_1z: float
    #: ``(n, 4)`` gather tables indexed by the cell code ``2·D + SC``
    #: (see :func:`repro.kernels.likelihood.claim_codes`).
    table_true: np.ndarray
    table_false: np.ndarray
    finite: bool

    @classmethod
    def build(cls, params) -> "LogParameterTables":
        """Take all logs of a :class:`~repro.core.model.SourceParameters`.

        The logs are written straight into the ``(n, 4)`` gather tables
        (the per-rate vectors are column views of them) — this build
        runs once per θ but θ changes every EM iteration, so its fixed
        cost is visible on small problems.
        """
        n = params.a.shape[0]
        table_true = np.empty((n, 4))
        table_false = np.empty((n, 4))
        with np.errstate(divide="ignore"):
            np.log1p(np.negative(params.a), out=table_true[:, 0])
            np.log(params.a, out=table_true[:, 1])
            np.log1p(np.negative(params.f), out=table_true[:, 2])
            np.log(params.f, out=table_true[:, 3])
            np.log1p(np.negative(params.b), out=table_false[:, 0])
            np.log(params.b, out=table_false[:, 1])
            np.log1p(np.negative(params.g), out=table_false[:, 2])
            np.log(params.g, out=table_false[:, 3])
            log_z, log_1z = float(np.log(params.z)), float(np.log1p(-params.z))
        # Every entry is the log of a probability, hence in [-inf, 0]:
        # the sums cannot overflow or cancel, so a single non-finite
        # entry (or a NaN) makes the combined sum non-finite.
        finite = bool(np.isfinite(table_true.sum() + table_false.sum()))
        return cls(
            log_a=table_true[:, 1],
            log_1a=table_true[:, 0],
            log_b=table_false[:, 1],
            log_1b=table_false[:, 0],
            log_f=table_true[:, 3],
            log_1f=table_true[:, 2],
            log_g=table_false[:, 3],
            log_1g=table_false[:, 2],
            log_z=log_z,
            log_1z=log_1z,
            table_true=table_true,
            table_false=table_false,
            finite=finite,
        )


@dataclass(frozen=True)
class IndependenceLogTables:
    """Log-rate vectors of the two-parameter independence model."""

    log_t: np.ndarray
    log_1t: np.ndarray
    log_b: np.ndarray
    log_1b: np.ndarray
    #: ``(n, 4)`` gather tables indexed by the cell code ``2·mask + SC``;
    #: masked-out cells (codes 0/1) gather an exact ``0.0``.
    table_true: np.ndarray
    table_false: np.ndarray
    finite: bool

    @classmethod
    def build(cls, t_rate: np.ndarray, b_rate: np.ndarray) -> "IndependenceLogTables":
        n = np.asarray(t_rate).shape[0]
        table_true = np.zeros((n, 4))
        table_false = np.zeros((n, 4))
        with np.errstate(divide="ignore"):
            np.log1p(np.negative(t_rate), out=table_true[:, 2])
            np.log(t_rate, out=table_true[:, 3])
            np.log1p(np.negative(b_rate), out=table_false[:, 2])
            np.log(b_rate, out=table_false[:, 3])
        # Same [-inf, 0] sum probe as LogParameterTables.build.
        finite = bool(np.isfinite(table_true.sum() + table_false.sum()))
        return cls(
            log_t=table_true[:, 3],
            log_1t=table_true[:, 2],
            log_b=table_false[:, 3],
            log_1b=table_false[:, 2],
            table_true=table_true,
            table_false=table_false,
            finite=finite,
        )


class ParamsKeyedCache:
    """Single-slot cache keyed by parameter-object *identity*.

    One slot is enough for the EM loop (there is only ever one current
    θ); identity keying sidesteps both hashing (numpy arrays are
    unhashable) and staleness (immutable parameters cannot change under
    the cache).
    """

    def __init__(self) -> None:
        self._key: Optional[object] = None
        self._value: Optional[object] = None

    def get(self, params, compute: Callable[[], T]) -> T:
        """Return the cached value for ``params``, computing on miss."""
        if params is not self._key:
            count("kernels.params_cache.misses")
            self._value = compute()
            self._key = params
        else:
            count("kernels.params_cache.hits")
        return self._value

    def clear(self) -> None:
        self._key = None
        self._value = None


__all__ = ["IndependenceLogTables", "LogParameterTables", "ParamsKeyedCache"]
