"""Log-parameter tables, built once per θ and cached by identity.

θ changes exactly once per EM iteration (at the M-step) while the
E-step, the posterior and the log-likelihood all consume ``log θ``
terms.  Historically each of those calls re-took eight logs; the tables
here are built once per parameter *object* and reused for every
downstream call that sees the same object.

Invalidation
------------
There is none, by construction: :class:`~repro.core.model.SourceParameters`
(and the baselines' ``IndependentParameters``) are immutable and every
M-step returns a fresh instance, so identity (``is``) is a sound cache
key — a table can never go stale because the parameters it was built
from can never change.  :class:`ParamsKeyedCache` is the identity-keyed
LRU cache the backends use; the plain EM loop only ever touches the
current iteration's θ (one warm slot), while interleaved restart
evaluation and probe/accept patterns alternate between a small handful
of θ objects, which a few extra slots keep warm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple, TypeVar

import numpy as np

from repro.observability import count
from repro.utils.validation import check_positive_int

T = TypeVar("T")


@dataclass(frozen=True)
class LogParameterTables:
    """Per-source log-rate vectors of the dependency-aware model.

    ``finite`` records whether every rate log is finite, i.e. the
    parameters sit strictly inside ``(0, 1)``; the select-based fast
    kernels require that (EM-clamped parameters always satisfy it) and
    callers fall back to the careful legacy path otherwise.
    """

    log_a: np.ndarray
    log_1a: np.ndarray
    log_b: np.ndarray
    log_1b: np.ndarray
    log_f: np.ndarray
    log_1f: np.ndarray
    log_g: np.ndarray
    log_1g: np.ndarray
    log_z: float
    log_1z: float
    #: ``(n, 4)`` gather tables indexed by the cell code ``2·D + SC``
    #: (see :func:`repro.kernels.likelihood.claim_codes`).
    table_true: np.ndarray
    table_false: np.ndarray
    finite: bool

    @classmethod
    def build(cls, params) -> "LogParameterTables":
        """Take all logs of a :class:`~repro.core.model.SourceParameters`.

        The logs are written straight into the ``(n, 4)`` gather tables
        (the per-rate vectors are column views of them) — this build
        runs once per θ but θ changes every EM iteration, so its fixed
        cost is visible on small problems.
        """
        n = params.a.shape[0]
        table_true = np.empty((n, 4))
        table_false = np.empty((n, 4))
        with np.errstate(divide="ignore"):
            np.log1p(np.negative(params.a), out=table_true[:, 0])
            np.log(params.a, out=table_true[:, 1])
            np.log1p(np.negative(params.f), out=table_true[:, 2])
            np.log(params.f, out=table_true[:, 3])
            np.log1p(np.negative(params.b), out=table_false[:, 0])
            np.log(params.b, out=table_false[:, 1])
            np.log1p(np.negative(params.g), out=table_false[:, 2])
            np.log(params.g, out=table_false[:, 3])
            log_z, log_1z = float(np.log(params.z)), float(np.log1p(-params.z))
        # Every entry is the log of a probability, hence in [-inf, 0]:
        # the sums cannot overflow or cancel, so a single non-finite
        # entry (or a NaN) makes the combined sum non-finite.
        finite = bool(np.isfinite(table_true.sum() + table_false.sum()))
        return cls(
            log_a=table_true[:, 1],
            log_1a=table_true[:, 0],
            log_b=table_false[:, 1],
            log_1b=table_false[:, 0],
            log_f=table_true[:, 3],
            log_1f=table_true[:, 2],
            log_g=table_false[:, 3],
            log_1g=table_false[:, 2],
            log_z=log_z,
            log_1z=log_1z,
            table_true=table_true,
            table_false=table_false,
            finite=finite,
        )


@dataclass(frozen=True)
class IndependenceLogTables:
    """Log-rate vectors of the two-parameter independence model."""

    log_t: np.ndarray
    log_1t: np.ndarray
    log_b: np.ndarray
    log_1b: np.ndarray
    #: ``(n, 4)`` gather tables indexed by the cell code ``2·mask + SC``;
    #: masked-out cells (codes 0/1) gather an exact ``0.0``.
    table_true: np.ndarray
    table_false: np.ndarray
    finite: bool

    @classmethod
    def build(cls, t_rate: np.ndarray, b_rate: np.ndarray) -> "IndependenceLogTables":
        n = np.asarray(t_rate).shape[0]
        table_true = np.zeros((n, 4))
        table_false = np.zeros((n, 4))
        with np.errstate(divide="ignore"):
            np.log1p(np.negative(t_rate), out=table_true[:, 2])
            np.log(t_rate, out=table_true[:, 3])
            np.log1p(np.negative(b_rate), out=table_false[:, 2])
            np.log(b_rate, out=table_false[:, 3])
        # Same [-inf, 0] sum probe as LogParameterTables.build.
        finite = bool(np.isfinite(table_true.sum() + table_false.sum()))
        return cls(
            log_t=table_true[:, 3],
            log_1t=table_true[:, 2],
            log_b=table_false[:, 3],
            log_1b=table_false[:, 2],
            table_true=table_true,
            table_false=table_false,
            finite=finite,
        )


class ParamsKeyedCache:
    """Small LRU cache keyed by parameter-object *identity*.

    Identity keying sidesteps both hashing (numpy arrays are unhashable)
    and staleness (immutable parameters cannot change under the cache).
    The plain EM loop only ever consults the current iteration's θ, so
    the most-recently-used slot — checked first, one ``is`` comparison —
    carries virtually all traffic; the remaining slots (four total by
    default) keep alternating θ probes warm when restart interleaving or
    probe/accept line-search patterns bounce between a handful of
    parameter objects that a single slot would thrash on.
    """

    def __init__(
        self, n_slots: int = 4, *, metric_prefix: str = "kernels.params_cache"
    ) -> None:
        check_positive_int(n_slots, "n_slots")
        self._n_slots = int(n_slots)
        # Counter names resolved once at construction so the hot path
        # never pays for string formatting; the prefix lets other
        # layers (e.g. the serving warm-start cache) reuse this LRU
        # under their own metric namespace.
        self._hits_metric = f"{metric_prefix}.hits"
        self._misses_metric = f"{metric_prefix}.misses"
        #: Most-recently-used first.
        self._slots: List[Tuple[object, object]] = []

    def get(self, params, compute: Callable[[], T]) -> T:
        """Return the cached value for ``params``, computing on miss."""
        slots = self._slots
        if slots and slots[0][0] is params:
            count(self._hits_metric)
            return slots[0][1]
        for position in range(1, len(slots)):
            if slots[position][0] is params:
                count(self._hits_metric)
                slots.insert(0, slots.pop(position))
                return slots[0][1]
        count(self._misses_metric)
        value = compute()
        slots.insert(0, (params, value))
        del slots[self._n_slots :]
        return value

    def clear(self) -> None:
        self._slots.clear()


@dataclass(frozen=True)
class BatchedLogParameterTables:
    """Per-lane gather tables for stacked parameter lanes.

    The batched twin of :class:`LogParameterTables`: lane ``b``'s
    ``table_true[b] / table_false[b]`` hold bit-for-bit the values
    ``LogParameterTables.build(params.lane(b))`` would produce (the log
    ufuncs are elementwise, so stacking and strided views change
    nothing), and ``finite`` records the per-lane validity of the
    select-based fast kernels so a single degenerate lane sends only
    *itself* down the careful legacy path.

    Both tables share one C-contiguous ``(2, B, n, 4)`` buffer so the
    true and false column log-likelihoods can be gathered by a *single*
    flat ``take`` (see
    :func:`repro.kernels.likelihood.batched_dual_column_log_likelihoods`).
    """

    #: ``(2, B, n, 4)`` C-contiguous buffer: ``[0]`` true, ``[1]`` false.
    tables: np.ndarray
    #: ``(B,)`` per-lane log z / log(1-z).
    log_z: np.ndarray
    log_1z: np.ndarray
    #: ``(B,)`` bool: lane's logs are all finite.
    finite: np.ndarray

    @property
    def table_true(self) -> np.ndarray:
        return self.tables[0]

    @property
    def table_false(self) -> np.ndarray:
        return self.tables[1]

    @classmethod
    def build(cls, params) -> "BatchedLogParameterTables":
        """Take all logs of a stacked parameter set.

        ``params`` needs ``rates`` as a ``(B, n, 4)`` stack with column
        layout ``[a, b, f, g]`` and ``z`` as ``(B,)`` (duck-typed, see
        :class:`repro.engine.batched.BatchedSourceParameters`).  The
        interleaved layout means each gather table is filled by two
        strided ufunc calls over ``(B, n, 2)`` rate slabs instead of
        eight contiguous ones — same elementwise values, a quarter of
        the dispatch.
        """
        rates = params.rates
        n_lanes, n = rates.shape[0], rates.shape[1]
        tables = np.empty((2, n_lanes, n, 4))
        true_rates = rates[:, :, 0::2]  # [a, f]
        false_rates = rates[:, :, 1::2]  # [b, g]
        with np.errstate(divide="ignore"):
            np.log1p(np.negative(true_rates), out=tables[0, :, :, 0::2])
            np.log(true_rates, out=tables[0, :, :, 1::2])
            np.log1p(np.negative(false_rates), out=tables[1, :, :, 0::2])
            np.log(false_rates, out=tables[1, :, :, 1::2])
            log_z = np.log(params.z)
            log_1z = np.log1p(np.negative(params.z))
        # Same [-inf, 0] sum probe as LogParameterTables.build, reduced
        # per lane (finiteness is all that matters, not the sum value).
        finite = np.isfinite(tables.sum(axis=(0, 2, 3)))
        return cls(
            tables=tables,
            log_z=log_z,
            log_1z=log_1z,
            finite=finite,
        )


__all__ = [
    "BatchedLogParameterTables",
    "IndependenceLogTables",
    "LogParameterTables",
    "ParamsKeyedCache",
]
