"""Unique-column grouping shared by the bounds and the E-step.

A sensing problem routinely contains many assertions with *identical*
columns: every assertion propagated through the same cascade shares a
dependency column, and sparse problems repeat whole ``(claim,
dependency)`` columns.  All per-column kernels in the library —
the exact bound, the Gibbs chains, the E-step log-likelihoods — depend
only on the column's content, so identical columns can be computed
once and broadcast by multiplicity.

Why dedup is safe under column multiplicity
-------------------------------------------
* **Bounds** average per-column bounds weighted by column count; the
  bound of a column is a function of that column alone, so grouping
  changes nothing but the number of evaluations.
* **E-step** quantities (per-column log-likelihoods, posteriors) are
  computed on the unique columns and *scattered* back with
  ``values[..., inverse]`` — an exact copy, so every downstream
  consumer (including the M-step's weighted sums over all ``m``
  columns) sees bit-for-bit the values it would have computed on the
  full matrix.  numpy's pairwise ``sum(axis=0)`` reduces each column
  independently of its neighbours, so evaluating a column inside the
  reduced matrix yields the same bits as inside the full one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.observability import count, observe_value


@dataclass(frozen=True)
class ColumnGroups:
    """The unique columns of a matrix, with multiplicities and scatter map.

    Attributes
    ----------
    unique:
        ``(K, n)`` array; row ``k`` is the ``k``-th distinct column (in
        ``np.unique``'s lexicographic row order).
    counts:
        ``(K,)`` multiplicities.
    inverse:
        ``(m,)`` map from original column index to its group.
    """

    unique: np.ndarray
    counts: np.ndarray
    inverse: np.ndarray

    @property
    def n_unique(self) -> int:
        return self.unique.shape[0]

    @property
    def n_columns(self) -> int:
        return self.inverse.size

    @property
    def collapsed(self) -> bool:
        """Whether grouping actually reduced the column count."""
        return self.n_unique < self.n_columns

    def weights(self) -> np.ndarray:
        """Column-share weights ``counts / m`` used by the bounds."""
        return self.counts / max(self.n_columns, 1)

    def expand(self, per_unique: np.ndarray) -> np.ndarray:
        """Scatter per-unique-column values back to all ``m`` columns.

        ``per_unique`` has the group axis last; the result replaces it
        with the full column axis.  This is an exact gather — no
        arithmetic — so dedup never perturbs downstream numerics.
        """
        return np.asarray(per_unique)[..., self.inverse]


def group_columns(matrix: np.ndarray) -> ColumnGroups:
    """Group the columns of a 2-D matrix by content."""
    transposed = np.ascontiguousarray(np.asarray(matrix).T)
    unique, inverse, counts = np.unique(
        transposed, axis=0, return_inverse=True, return_counts=True
    )
    groups = ColumnGroups(
        unique=unique, counts=counts, inverse=inverse.reshape(-1)
    )
    count("kernels.dedup.columns_total", groups.n_columns)
    count("kernels.dedup.columns_unique", groups.n_unique)
    if groups.n_columns:
        observe_value(
            "kernels.dedup.compression_ratio", groups.n_unique / groups.n_columns
        )
    return groups


def group_paired_columns(
    top: np.ndarray, bottom: np.ndarray
) -> Tuple[ColumnGroups, np.ndarray, np.ndarray]:
    """Group columns of two stacked matrices (e.g. claims over dependency).

    Two columns land in the same group only when *both* their ``top``
    and ``bottom`` halves agree.  Returns the groups plus the reduced
    ``(n, K)`` top and bottom matrices (the unique columns, unstacked).
    """
    top = np.asarray(top)
    bottom = np.asarray(bottom)
    if top.shape != bottom.shape:
        raise ValueError(
            f"paired matrices must share a shape, got {top.shape} vs {bottom.shape}"
        )
    n = top.shape[0]
    groups = group_columns(np.vstack([top, bottom]))
    unique_top = np.ascontiguousarray(groups.unique[:, :n].T)
    unique_bottom = np.ascontiguousarray(groups.unique[:, n:].T)
    return groups, unique_top, unique_bottom


def unique_columns(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Unique columns with multiplicities (the historical helper shape)."""
    groups = group_columns(matrix)
    return groups.unique, groups.counts


__all__ = [
    "ColumnGroups",
    "group_columns",
    "group_paired_columns",
    "unique_columns",
]
