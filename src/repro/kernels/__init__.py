"""Optimised single-core compute kernels (the hot inner loops).

``repro.kernels`` is the library's compute layer: the bounds, the
engine backends and :mod:`repro.core.likelihood` all route their inner
loops through it.  The modules are deliberately small and orthogonal:

=====================  ======================================================
:mod:`~repro.kernels.tables`       log-parameter tables, built once per θ and
                                   cached by parameter-object identity
:mod:`~repro.kernels.dedup`        unique-column grouping shared by the exact
                                   bound, the Gibbs bound and the E-step
:mod:`~repro.kernels.likelihood`   vectorised select-based column
                                   log-likelihoods for binary matrices
:mod:`~repro.kernels.enumeration`  Gray-code split-table enumeration of the
                                   ``2^n`` claim patterns (exact bound)
:mod:`~repro.kernels.gibbs`        blocked, fully vectorised Gibbs sweeps
:mod:`~repro.kernels.reference`    frozen pre-optimisation implementations,
                                   kept for the benchmark-regression harness
=====================  ======================================================

Every kernel either reproduces the historical output bit-for-bit (the
deterministic E/M-step paths) or within a documented tolerance (the
reordered exact enumeration, the resampled Gibbs chain); the contract
is pinned by ``tests/kernels`` against ``tests/data/kernel_reference.npz``
and timed by ``benchmarks/test_kernel_micro.py``.
"""

from repro.kernels.dedup import ColumnGroups, group_columns, group_paired_columns
from repro.kernels.enumeration import gray_pattern_masses, pattern_block
from repro.kernels.gibbs import BlockedGibbsChains, GibbsTables
from repro.kernels.likelihood import (
    batched_column_log_likelihoods,
    batched_dual_column_log_likelihoods,
    dense_column_log_likelihoods,
    dual_lane_codes,
    lane_offset_codes,
    masked_column_log_likelihoods,
)
from repro.kernels.tables import (
    BatchedLogParameterTables,
    IndependenceLogTables,
    LogParameterTables,
    ParamsKeyedCache,
)

__all__ = [
    "BatchedLogParameterTables",
    "BlockedGibbsChains",
    "ColumnGroups",
    "GibbsTables",
    "IndependenceLogTables",
    "LogParameterTables",
    "ParamsKeyedCache",
    "batched_column_log_likelihoods",
    "batched_dual_column_log_likelihoods",
    "dense_column_log_likelihoods",
    "gray_pattern_masses",
    "group_columns",
    "group_paired_columns",
    "dual_lane_codes",
    "lane_offset_codes",
    "masked_column_log_likelihoods",
    "pattern_block",
]
