"""Table-gather column log-likelihood kernels for binary matrices.

Because ``SC`` and ``D`` are 0/1, every product in the textbook form

.. math::
    \\log P(SC_j|C_j) = \\sum_i SC_{ij}\\,\\log r_i + (1-SC_{ij})\\,\\log(1-r_i)

is an exact *selection*: one of the two addends is exactly zero.  Each
cell therefore picks one of four per-source log rates, indexed by the
2-bit code ``2·D + SC`` — so the whole likelihood pass collapses to a
single flat ``take`` from the row-major ``(n, 4)`` table followed by
the axis-0 sum.  The flat gather indices (``4·row + code``) depend only
on the (fixed) data matrices and are precomputed once per backend; the
tables are rebuilt per θ (see :mod:`repro.kernels.tables`).

The gathered cells carry bit-for-bit the values of the historical
multiply-add chains as long as every log is finite (the tables'
``finite`` flag; EM-clamped parameters always qualify), and the
summation keeps the same axis order — so the per-column totals are
bitwise identical to the legacy path while costing two array passes
instead of roughly ten.  ``take`` with precomputed flat indices beats
``table[rows, codes]`` fancy indexing by 2–4× at every problem size
(advanced indexing pays a fixed multi-microsecond setup per call).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.kernels.tables import (
    BatchedLogParameterTables,
    IndependenceLogTables,
    LogParameterTables,
)


def claim_codes(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Per-cell 2-bit codes ``2·second + first`` for the gather kernels.

    ``first`` is the claim matrix ``SC``; ``second`` is the dependency
    matrix ``D`` (dense model) or the cell mask (masked model).  Any
    0/1-valued dtype is accepted.  The result is an ``(n, m)`` ``intp``
    array, the native indexing dtype.
    """
    first = np.asarray(first)
    second = np.asarray(second)
    codes = (second != 0).astype(np.intp)
    codes <<= 1
    codes |= first != 0
    return codes


def flat_claim_codes(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Flat gather indices ``4·row + code`` into a row-major ``(n, 4)`` table.

    Precompute these once per fixed ``(SC, D)`` (or ``(SC, mask)``)
    pair; the ``coded_*`` kernels then reduce to two ``take`` + ``sum``
    pairs per θ.
    """
    codes = claim_codes(first, second)
    codes += np.arange(codes.shape[0], dtype=np.intp)[:, None] * 4
    return codes


def coded_dense_column_log_likelihoods(
    flat_codes: np.ndarray, tables: LogParameterTables
) -> Tuple[np.ndarray, np.ndarray]:
    """Equations (4)/(5) log-likelihoods per column from flat cell codes.

    ``flat_codes`` comes from :func:`flat_claim_codes` over ``(SC, D)``.
    Returns ``(log_true, log_false)``, each ``(m,)``.
    """
    return (
        tables.table_true.take(flat_codes).sum(axis=0),
        tables.table_false.take(flat_codes).sum(axis=0),
    )


def dense_column_log_likelihoods(
    sc: np.ndarray, dep: np.ndarray, tables: LogParameterTables
) -> Tuple[np.ndarray, np.ndarray]:
    """As :func:`coded_dense_column_log_likelihoods`, coding on the fly."""
    return coded_dense_column_log_likelihoods(flat_claim_codes(sc, dep), tables)


def batched_flat_claim_codes(
    first: np.ndarray, second: np.ndarray
) -> np.ndarray:
    """:func:`flat_claim_codes` for ``(L, n, m)`` stacks.

    The row offset ``4·row`` runs along the *source* axis (axis 1 of a
    stack), which the 2-D helper would mistake for the lane axis.
    Returns an ``(L, n, m)`` ``intp`` array of flat ``(n, 4)``-table
    indices, without lane offsets (see :func:`lane_offset_codes`).
    """
    codes = claim_codes(first, second)
    codes += np.arange(codes.shape[1], dtype=np.intp)[None, :, None] * 4
    return codes


def lane_offset_codes(
    base_codes: np.ndarray, n_sources: int, n_lanes: int
) -> np.ndarray:
    """Lift flat ``(n, 4)``-table codes into a ``(B·n, 4)``-table stack.

    ``base_codes`` are :func:`flat_claim_codes` indices, either shared
    across lanes (``(n, m)`` or ``(1, n, m)``) or per lane
    (``(B, n, m)``); adding lane ``b`` the offset ``b·4n`` makes them
    index lane ``b``'s block of the flattened C-contiguous ``(B, n, 4)``
    table.  Returns a ``(B, n, m)`` ``intp`` array.
    """
    offsets = np.arange(n_lanes, dtype=np.intp) * (4 * n_sources)
    if base_codes.ndim == 2:
        base_codes = base_codes[None]
    return base_codes + offsets[:, None, None]


def batched_column_log_likelihoods(
    lane_codes: np.ndarray, tables: BatchedLogParameterTables
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-lane column log-likelihoods from lane-offset flat codes.

    ``lane_codes`` comes from :func:`lane_offset_codes`; the flat
    ``take`` gathers every lane's cells from the flattened ``(B, n, 4)``
    tables in one pass, and the axis-1 sum reduces each lane's column
    with exactly the serial kernel's axis-0 reduction order — so lane
    ``b`` of the result is bit-for-bit what
    :func:`coded_dense_column_log_likelihoods` returns for that lane
    alone.  Returns ``(log_true, log_false)``, each ``(B, m)``.
    """
    return (
        np.take(tables.table_true.reshape(-1), lane_codes).sum(axis=1),
        np.take(tables.table_false.reshape(-1), lane_codes).sum(axis=1),
    )


def dual_lane_codes(
    lane_codes: np.ndarray, n_sources: int, n_lanes: int
) -> np.ndarray:
    """Stack true/false gather codes for the fused double-table take.

    ``lane_codes`` indexes one flattened ``(B, n, 4)`` table; both
    tables of a :class:`~repro.kernels.tables.BatchedLogParameterTables`
    live in a single ``(2, B, n, 4)`` buffer, so offsetting a second
    copy of the codes by one table's span (``B·n·4``) addresses the
    false table in the same flat gather.  Returns ``(2, B, n, m)``.
    """
    dual = np.empty((2,) + lane_codes.shape, dtype=np.intp)
    dual[0] = lane_codes
    np.add(lane_codes, 4 * n_sources * n_lanes, out=dual[1])
    return dual


def batched_dual_column_log_likelihoods(
    dual_codes: np.ndarray, tables: BatchedLogParameterTables
) -> Tuple[np.ndarray, np.ndarray]:
    """Both per-lane column log-likelihoods in one flat gather.

    ``dual_codes`` comes from :func:`dual_lane_codes`.  The single
    ``take`` over the fused ``(2, B, n, 4)`` buffer gathers exactly the
    cells the two per-table takes of
    :func:`batched_column_log_likelihoods` would, and the axis-2 sum
    reduces each (table, lane, column) triple in the serial axis-0
    order — bitwise identical results, half the gather dispatch.
    Returns ``(log_true, log_false)``, each ``(B, m)``.
    """
    columns = np.take(tables.tables.reshape(-1), dual_codes).sum(axis=2)
    return columns[0], columns[1]


def coded_masked_column_log_likelihoods(
    flat_codes: np.ndarray, tables: IndependenceLogTables
) -> Tuple[np.ndarray, np.ndarray]:
    """Independence-model log-likelihoods over unmasked cells only.

    ``flat_codes`` comes from :func:`flat_claim_codes` over
    ``(SC, mask)``; masked-out cells (codes 0/1) gather an exact
    ``0.0`` — they are *missing*, not non-claims.
    """
    return (
        tables.table_true.take(flat_codes).sum(axis=0),
        tables.table_false.take(flat_codes).sum(axis=0),
    )


def masked_column_log_likelihoods(
    sc: np.ndarray, mask: np.ndarray, tables: IndependenceLogTables
) -> Tuple[np.ndarray, np.ndarray]:
    """As :func:`coded_masked_column_log_likelihoods`, coding on the fly."""
    return coded_masked_column_log_likelihoods(flat_claim_codes(sc, mask), tables)


__all__ = [
    "batched_column_log_likelihoods",
    "batched_dual_column_log_likelihoods",
    "batched_flat_claim_codes",
    "claim_codes",
    "coded_dense_column_log_likelihoods",
    "coded_masked_column_log_likelihoods",
    "dense_column_log_likelihoods",
    "dual_lane_codes",
    "flat_claim_codes",
    "lane_offset_codes",
    "masked_column_log_likelihoods",
]
