"""Table-gather column log-likelihood kernels for binary matrices.

Because ``SC`` and ``D`` are 0/1, every product in the textbook form

.. math::
    \\log P(SC_j|C_j) = \\sum_i SC_{ij}\\,\\log r_i + (1-SC_{ij})\\,\\log(1-r_i)

is an exact *selection*: one of the two addends is exactly zero.  Each
cell therefore picks one of four per-source log rates, indexed by the
2-bit code ``2·D + SC`` — so the whole likelihood pass collapses to a
single flat ``take`` from the row-major ``(n, 4)`` table followed by
the axis-0 sum.  The flat gather indices (``4·row + code``) depend only
on the (fixed) data matrices and are precomputed once per backend; the
tables are rebuilt per θ (see :mod:`repro.kernels.tables`).

The gathered cells carry bit-for-bit the values of the historical
multiply-add chains as long as every log is finite (the tables'
``finite`` flag; EM-clamped parameters always qualify), and the
summation keeps the same axis order — so the per-column totals are
bitwise identical to the legacy path while costing two array passes
instead of roughly ten.  ``take`` with precomputed flat indices beats
``table[rows, codes]`` fancy indexing by 2–4× at every problem size
(advanced indexing pays a fixed multi-microsecond setup per call).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.kernels.tables import IndependenceLogTables, LogParameterTables


def claim_codes(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Per-cell 2-bit codes ``2·second + first`` for the gather kernels.

    ``first`` is the claim matrix ``SC``; ``second`` is the dependency
    matrix ``D`` (dense model) or the cell mask (masked model).  Any
    0/1-valued dtype is accepted.  The result is an ``(n, m)`` ``intp``
    array, the native indexing dtype.
    """
    first = np.asarray(first)
    second = np.asarray(second)
    codes = (second != 0).astype(np.intp)
    codes <<= 1
    codes |= first != 0
    return codes


def flat_claim_codes(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Flat gather indices ``4·row + code`` into a row-major ``(n, 4)`` table.

    Precompute these once per fixed ``(SC, D)`` (or ``(SC, mask)``)
    pair; the ``coded_*`` kernels then reduce to two ``take`` + ``sum``
    pairs per θ.
    """
    codes = claim_codes(first, second)
    codes += np.arange(codes.shape[0], dtype=np.intp)[:, None] * 4
    return codes


def coded_dense_column_log_likelihoods(
    flat_codes: np.ndarray, tables: LogParameterTables
) -> Tuple[np.ndarray, np.ndarray]:
    """Equations (4)/(5) log-likelihoods per column from flat cell codes.

    ``flat_codes`` comes from :func:`flat_claim_codes` over ``(SC, D)``.
    Returns ``(log_true, log_false)``, each ``(m,)``.
    """
    return (
        tables.table_true.take(flat_codes).sum(axis=0),
        tables.table_false.take(flat_codes).sum(axis=0),
    )


def dense_column_log_likelihoods(
    sc: np.ndarray, dep: np.ndarray, tables: LogParameterTables
) -> Tuple[np.ndarray, np.ndarray]:
    """As :func:`coded_dense_column_log_likelihoods`, coding on the fly."""
    return coded_dense_column_log_likelihoods(flat_claim_codes(sc, dep), tables)


def coded_masked_column_log_likelihoods(
    flat_codes: np.ndarray, tables: IndependenceLogTables
) -> Tuple[np.ndarray, np.ndarray]:
    """Independence-model log-likelihoods over unmasked cells only.

    ``flat_codes`` comes from :func:`flat_claim_codes` over
    ``(SC, mask)``; masked-out cells (codes 0/1) gather an exact
    ``0.0`` — they are *missing*, not non-claims.
    """
    return (
        tables.table_true.take(flat_codes).sum(axis=0),
        tables.table_false.take(flat_codes).sum(axis=0),
    )


def masked_column_log_likelihoods(
    sc: np.ndarray, mask: np.ndarray, tables: IndependenceLogTables
) -> Tuple[np.ndarray, np.ndarray]:
    """As :func:`coded_masked_column_log_likelihoods`, coding on the fly."""
    return coded_masked_column_log_likelihoods(flat_claim_codes(sc, mask), tables)


__all__ = [
    "claim_codes",
    "coded_dense_column_log_likelihoods",
    "coded_masked_column_log_likelihoods",
    "dense_column_log_likelihoods",
    "flat_claim_codes",
    "masked_column_log_likelihoods",
]
