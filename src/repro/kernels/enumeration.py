"""Gray-code split-table enumeration of the exact bound's pattern sweep.

The exact bound (Equation 3) sums ``min`` of the two joints over all
``2^n`` claim patterns.  The historical kernel materialised every
pattern and took two ``(chunk, n) @ (n, K)`` matrix products per chunk
— ``O(2^n · n · K)`` flops dominated by pattern construction for small
``K``.  This kernel removes the factor ``n``:

* the **low** ``n_lo`` sources are tabulated once: a ``(2^{n_lo}, K)``
  table of exponentiated partial joints;
* the **high** ``n_hi = n - n_lo`` sources are walked in Gray-code
  order, so consecutive steps differ in a single source whose log-rate
  delta updates a ``(K,)`` running contribution in ``O(K)``;
* each step combines the two multiplicatively —
  ``exp(low + high) = exp(low) · exp(high)`` — so the full sweep is
  ``O(2^n · K)`` elementwise work with no transcendentals on the big
  axis.

The running high-bit sums are refreshed from scratch periodically to
keep cumulative float drift below the documented ``1e-9`` relative
agreement with the historical enumeration (the pattern *set* is
identical; only the summation order differs).

All log inputs must be finite — callers route degenerate rates (exact
0/1) through the careful legacy path that reasons about impossible
patterns explicitly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.observability import count, span

if TYPE_CHECKING:  # deferred: kernels must stay import-light
    from repro.resilience.supervisor import Deadline

#: Default number of tabulated low sources (64k-row tables, matching
#: the historical chunk size).
_LO_BITS = 16

#: Element budget for the low table — shrinks ``n_lo`` when many
#: distinct columns are in flight so the working set stays in cache.
_MAX_TABLE_ELEMENTS = 1 << 22

#: Refresh the incremental high-bit sums every this many Gray steps.
_REFRESH_INTERVAL = 128


def pattern_block(start: int, stop: int, n: int) -> np.ndarray:
    """0/1 matrix of the binary expansions of ``start..stop-1`` (LSB = source 0)."""
    codes = np.arange(start, stop, dtype=np.int64)[:, None]
    return ((codes >> np.arange(n, dtype=np.int64)) & 1).astype(np.float64)


def _low_bits(n: int, k: int) -> int:
    n_lo = min(n, _LO_BITS)
    while n_lo > 8 and (1 << n_lo) * max(k, 1) > _MAX_TABLE_ELEMENTS:
        n_lo -= 1
    return n_lo


def table_bytes_estimate(n: int, k: int) -> int:
    """Estimated low-table allocation of :func:`gray_pattern_masses`.

    Two exponentiated ``(2^n_lo, K)`` float64 joint tables plus the
    ``(2^n_lo, n_lo)`` pattern block and its complement — the cost
    model :func:`repro.bounds.cascade.bound_cascade` checks against a
    deadline's memory budget before committing to the exact tier.
    """
    n_lo = _low_bits(n, max(k, 1))
    rows = 1 << n_lo
    return 8 * rows * (2 * max(k, 1) + 2 * n_lo)


def gray_pattern_masses(
    log_r1: np.ndarray,
    log_1r1: np.ndarray,
    log_r0: np.ndarray,
    log_1r0: np.ndarray,
    log_z: float,
    log_1z: float,
    *,
    deadline: Optional["Deadline"] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-column (false-positive, false-negative) mass of Equation (3).

    Inputs are ``(n, K)`` finite log-rate tables (``r1``/``r0`` are the
    emission rates given a true/false assertion).  For every one of the
    ``2^n`` claim patterns the optimal estimator decides by the larger
    joint (ties decide "false", matching Algorithm 1's strict ``>``);
    the smaller joint's mass accumulates into the corresponding error
    side.  Returns two ``(K,)`` arrays.

    ``deadline`` is checked cooperatively once per Gray-code refresh
    interval (every :data:`_REFRESH_INTERVAL` of the ``2^n_hi`` outer
    steps — the check never touches the hot incremental updates); on
    expiry :class:`~repro.utils.errors.DeadlineExceeded` carries the
    pattern count completed so far.
    """
    n, k = log_r1.shape
    n_lo = _low_bits(n, k)
    n_hi = n - n_lo
    if deadline is not None:
        deadline.check_memory(
            table_bytes_estimate(n, k), "gray_pattern_masses low table"
        )
        deadline.check(
            "gray-code enumeration",
            patterns_done=0,
            patterns_total=1 << n,
            n_columns=k,
        )

    with span(
        "kernels.gray_enumeration",
        n_sources=n,
        n_columns=k,
        n_lo=n_lo,
        patterns=1 << n,
    ):
        patterns = pattern_block(0, 1 << n_lo, n_lo)
        complement = 1.0 - patterns
        exp_low_true = np.exp(patterns @ log_r1[:n_lo] + complement @ log_1r1[:n_lo])
        exp_low_false = np.exp(patterns @ log_r0[:n_lo] + complement @ log_1r0[:n_lo])

        delta_true = log_r1[n_lo:] - log_1r1[n_lo:]
        delta_false = log_r0[n_lo:] - log_1r0[n_lo:]
        base_true = log_1r1[n_lo:].sum(axis=0) + log_z
        base_false = log_1r0[n_lo:].sum(axis=0) + log_1z
        hi_true = base_true.copy()
        hi_false = base_false.copy()

        fp_mass = np.zeros(k)
        fn_mass = np.zeros(k)
        state = np.zeros(n_hi, dtype=bool)
        total_steps = 1 << n_hi
        for step in range(total_steps):
            if step:
                bit = (step & -step).bit_length() - 1
                flip = -1.0 if state[bit] else 1.0
                state[bit] = not state[bit]
                if step % _REFRESH_INTERVAL:
                    hi_true += flip * delta_true[bit]
                    hi_false += flip * delta_false[bit]
                else:
                    hi_true = base_true + delta_true[state].sum(axis=0)
                    hi_false = base_false + delta_false[state].sum(axis=0)
                    if deadline is not None:
                        deadline.check(
                            "gray-code enumeration",
                            patterns_done=step << n_lo,
                            patterns_total=total_steps << n_lo,
                            n_columns=k,
                        )
            joint_true = exp_low_true * np.exp(hi_true)
            joint_false = exp_low_false * np.exp(hi_false)
            decide_true = joint_true > joint_false
            fp_mass += np.where(decide_true, joint_false, 0.0).sum(axis=0)
            fn_mass += np.where(decide_true, 0.0, joint_true).sum(axis=0)
        count("kernels.enumeration.patterns", 1 << n)
    return fp_mass, fn_mass


__all__ = ["gray_pattern_masses", "pattern_block", "table_bytes_estimate"]
