"""Blocked, fully vectorised Gibbs sweeps for the bound sampler.

The historical sampler ran a systematic scan: one Python-level loop
iteration per source per sweep, each resampling a single claim bit
conditioned on all others.  This kernel replaces the scan with a
*blocked* (data-augmented) sweep over the same stationary marginal:

1. compute each chain's log joints under both truth values from the
   current claim pattern (two table selects and two row sums);
2. draw the latent truth ``C`` from its exact conditional
   ``P(C = 1 | SC)``;
3. redraw **every** claim bit independently from the emission rates
   selected by ``C`` — given the truth value, sources are independent,
   so the whole ``(K, n)`` state block is one Bernoulli draw.

Each half-step samples from an exact conditional of the augmented
joint ``p(SC, C)``, whose marginal over ``SC`` is precisely the
mixture ``P(SC|C=1)z + P(SC|C=0)(1-z)`` that Algorithm 1 targets — so
the estimator is unchanged; only the transition kernel (and hence the
random stream) differs.  A sweep is a handful of ndarray operations
regardless of the source count.

All per-chain constants — the rate clamp, the log-rate tables and the
prior logs — are hoisted into :class:`GibbsTables`, built once per
sampler run (not per sweep, and in the sharded path once per *problem*
rather than once per worker).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.observability import count

if TYPE_CHECKING:  # deferred: kernels must stay import-light
    from repro.resilience.supervisor import Deadline

#: Rate clamp keeping every chain irreducible for degenerate θ.
RATE_EPS = 1e-12


@dataclass(frozen=True)
class GibbsTables:
    """Clamped emission rates and their logs for ``K`` chains.

    ``rate_true`` / ``rate_false`` are ``(K, n)``; one row per distinct
    dependency column.  Built once per sampler run so no clamp or log
    is ever taken inside the sweep loop.
    """

    rate_true: np.ndarray
    rate_false: np.ndarray
    log_r1: np.ndarray
    log_1r1: np.ndarray
    log_r0: np.ndarray
    log_1r0: np.ndarray
    log_z: float
    log_1z: float

    @classmethod
    def build(
        cls, rate_true: np.ndarray, rate_false: np.ndarray, z: float
    ) -> "GibbsTables":
        rate_true = np.clip(np.atleast_2d(rate_true), RATE_EPS, 1 - RATE_EPS)
        rate_false = np.clip(np.atleast_2d(rate_false), RATE_EPS, 1 - RATE_EPS)
        z = float(np.clip(z, RATE_EPS, 1 - RATE_EPS))
        return cls(
            rate_true=rate_true,
            rate_false=rate_false,
            log_r1=np.log(rate_true),
            log_1r1=np.log1p(-rate_true),
            log_r0=np.log(rate_false),
            log_1r0=np.log1p(-rate_false),
            log_z=float(np.log(z)),
            log_1z=float(np.log1p(-z)),
        )

    @property
    def n_chains(self) -> int:
        return self.rate_true.shape[0]

    @property
    def n_sources(self) -> int:
        return self.rate_true.shape[1]

    def row(self, index: int) -> "GibbsTables":
        """The single-chain slice for sharded per-column sampling."""
        sel = slice(index, index + 1)
        return GibbsTables(
            rate_true=self.rate_true[sel],
            rate_false=self.rate_false[sel],
            log_r1=self.log_r1[sel],
            log_1r1=self.log_1r1[sel],
            log_r0=self.log_r0[sel],
            log_1r0=self.log_1r0[sel],
            log_z=self.log_z,
            log_1z=self.log_1z,
        )


class BlockedGibbsChains:
    """``K`` chains advanced together by blocked vectorised sweeps.

    ``deadline`` (a :class:`repro.resilience.supervisor.Deadline`) is
    checked cooperatively at the top of every sweep; on expiry the
    raised :class:`~repro.utils.errors.DeadlineExceeded` carries the
    number of sweeps completed so the sampler's partial progress is
    diagnosable.  The check never perturbs the random stream, so a
    chain with a never-expiring deadline is bit-identical to one
    without.
    """

    def __init__(
        self,
        tables: GibbsTables,
        rng: np.random.Generator,
        *,
        deadline: Optional["Deadline"] = None,
    ):
        self.tables = tables
        self.n_chains = tables.n_chains
        self.n_sources = tables.n_sources
        self.rng = rng
        self.deadline = deadline
        self.n_sweeps = 0
        self.state = rng.random((self.n_chains, self.n_sources)) < 0.5
        self._refresh_likelihoods()

    def _refresh_likelihoods(self) -> None:
        t = self.tables
        self._like_true = np.where(self.state, t.log_r1, t.log_1r1).sum(axis=1)
        self._like_false = np.where(self.state, t.log_r0, t.log_1r0).sum(axis=1)

    def sweep(self) -> None:
        """One blocked sweep: draw ``C | SC`` then redraw ``SC | C``."""
        if self.deadline is not None:
            self.deadline.check(
                "gibbs-sweep",
                n_sweeps=self.n_sweeps,
                n_chains=self.n_chains,
                n_sources=self.n_sources,
            )
        self.n_sweeps += 1
        count("kernels.gibbs.sweeps")
        t = self.tables
        joint_true = self._like_true + t.log_z
        joint_false = self._like_false + t.log_1z
        top = np.maximum(joint_true, joint_false)
        w_true = np.exp(joint_true - top)
        p_true = w_true / (w_true + np.exp(joint_false - top))
        truth = self.rng.random(self.n_chains) < p_true
        rates = np.where(truth[:, None], t.rate_true, t.rate_false)
        self.state = self.rng.random((self.n_chains, self.n_sources)) < rates
        self._refresh_likelihoods()

    def joints(self) -> tuple:
        """Per-chain joint masses ``(P(s, C=1), P(s, C=0))``, each ``(K,)``."""
        return (
            np.exp(self._like_true + self.tables.log_z),
            np.exp(self._like_false + self.tables.log_1z),
        )


__all__ = ["BlockedGibbsChains", "GibbsTables", "RATE_EPS"]
