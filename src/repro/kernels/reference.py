"""Frozen pre-optimisation kernels (the benchmark-regression baseline).

These are verbatim copies of the hot paths as they existed before
``repro.kernels`` landed: the per-source scan Gibbs sampler, the
chunked matrix-product pattern enumeration, and the multiply-add dense
likelihood/E/M steps.  ``benchmarks/test_kernel_micro.py`` times the
optimised kernels against them on identical inputs and asserts the
documented agreement, so this module must stay a faithful snapshot —
do not "optimise" or refactor it, and do not route it through the new
kernel layer.

Nothing here is part of the public API and nothing in the library
proper may import it (the benchmark and parity suites are the only
consumers).
"""

from __future__ import annotations

import numpy as np

from repro.bounds.exact import BoundResult, _emission_rates
from repro.core.model import SourceParameters
from repro.engine.backends import DenseBackend
from repro.engine.statistics import ratio_update
from repro.kernels.dedup import unique_columns
from repro.utils.rng import RandomState, SeedLike

_RATE_EPS = 1e-12
_CHUNK = 1 << 16


# -- historical dense likelihood / E-step / M-step -------------------------------


def reference_emission_log_rates(d: np.ndarray, params: SourceParameters):
    """The historical multiply-add per-cell log emission rates."""
    d = np.asarray(d, dtype=np.float64)
    with np.errstate(divide="ignore"):
        log_a, log_1a = np.log(params.a), np.log1p(-params.a)
        log_b, log_1b = np.log(params.b), np.log1p(-params.b)
        log_f, log_1f = np.log(params.f), np.log1p(-params.f)
        log_g, log_1g = np.log(params.g), np.log1p(-params.g)

    def _mix(dep_rate: np.ndarray, ind_rate: np.ndarray) -> np.ndarray:
        return d * dep_rate[..., None] + (1.0 - d) * ind_rate[..., None]

    return (
        _mix(log_f, log_a),
        _mix(log_1f, log_1a),
        _mix(log_g, log_b),
        _mix(log_1g, log_1b),
    )


def reference_column_log_likelihoods(
    sc: np.ndarray, d: np.ndarray, params: SourceParameters
):
    """The historical (4)/(5) column log-likelihoods, multiply-add form."""
    sc = np.asarray(sc, dtype=np.float64)
    log_p1_t, log_p0_t, log_p1_f, log_p0_f = reference_emission_log_rates(d, params)
    log_true = sc * log_p1_t + (1.0 - sc) * log_p0_t
    log_false = sc * log_p1_f + (1.0 - sc) * log_p0_f
    return log_true.sum(axis=0), log_false.sum(axis=0)


class ReferenceDenseBackend(DenseBackend):
    """`DenseBackend` with every optimised method swapped back to the
    pre-``repro.kernels`` implementation (two full likelihood passes per
    E-step, per-call mask products in the M-step, no table caching and
    no column dedup)."""

    def m_step(self, posterior, previous):
        z_post = posterior
        y_post = 1.0 - posterior

        def _ratio(weight, mask, fallback):
            return ratio_update(
                (self.sc * mask) @ weight,
                mask @ weight,
                smoothing=self.smoothing,
                fallback=fallback,
            )

        a = _ratio(z_post, self.indep, previous.a)
        f = _ratio(z_post, self.dep, previous.f)
        b = _ratio(y_post, self.indep, previous.b)
        g = _ratio(y_post, self.dep, previous.g)
        z = float(z_post.mean()) if z_post.size else previous.z
        return SourceParameters(a=a, b=b, f=f, g=g, z=z).clamp(self.epsilon)

    def _reference_columns(self, params):
        return reference_column_log_likelihoods(self.sc, self.dep, params)

    def posterior(self, params):
        from repro.core.likelihood import posterior_from_log_likelihoods

        log_true, log_false = self._reference_columns(params)
        return posterior_from_log_likelihoods(log_true, log_false, params.z)

    def e_step(self, params):
        from repro.core.likelihood import (
            log_likelihood_from_log_columns,
            posterior_from_log_likelihoods,
        )

        log_true, log_false = self._reference_columns(params)
        posterior = posterior_from_log_likelihoods(log_true, log_false, params.z)
        # The historical E-step ran the whole likelihood pass twice —
        # once for the posterior, once for the data log likelihood.
        log_true2, log_false2 = self._reference_columns(params)
        log_likelihood = log_likelihood_from_log_columns(
            log_true2, log_false2, params.z
        )
        return posterior, log_likelihood

    def masked_rate(self, weight, previous):
        ratio = ratio_update(
            (self.sc * self.indep) @ weight,
            self.indep @ weight,
            smoothing=self.smoothing,
            fallback=previous,
        )
        return np.clip(ratio, self.epsilon, 1.0 - self.epsilon)

    def masked_log_likelihoods(self, t_rate, b_rate):
        log_true = (
            self.indep
            * (
                self.sc * np.log(t_rate)[:, None]
                + (1 - self.sc) * np.log1p(-t_rate)[:, None]
            )
        ).sum(axis=0)
        log_false = (
            self.indep
            * (
                self.sc * np.log(b_rate)[:, None]
                + (1 - self.sc) * np.log1p(-b_rate)[:, None]
            )
        ).sum(axis=0)
        return log_true, log_false


# -- historical chunked exact enumeration ----------------------------------------


def _pattern_chunk(start: int, stop: int, n: int) -> np.ndarray:
    codes = np.arange(start, stop, dtype=np.int64)[:, None]
    return ((codes >> np.arange(n, dtype=np.int64)) & 1).astype(np.float64)


def reference_exact_bound(
    dependency: np.ndarray, params: SourceParameters
) -> BoundResult:
    """The historical chunked matrix-product exact bound.

    Non-degenerate rates only (strictly inside ``(0, 1)``) — the
    benchmark inputs always are; the degenerate corner kept its careful
    path in :mod:`repro.bounds.exact` unchanged.
    """
    dep = np.asarray(dependency)
    if dep.ndim == 1:
        dep = dep[:, None]
    unique_cols, counts = unique_columns(dep)
    n = params.n_sources
    k = unique_cols.shape[0]
    rate_true = np.empty((n, k))
    rate_false = np.empty((n, k))
    for index, column in enumerate(unique_cols):
        rate_true[:, index], rate_false[:, index] = _emission_rates(column, params)
    with np.errstate(divide="ignore"):
        log_r1, log_1r1 = np.log(rate_true), np.log1p(-rate_true)
        log_r0, log_1r0 = np.log(rate_false), np.log1p(-rate_false)
        log_z, log_1z = np.log(params.z), np.log1p(-params.z)
    fp_mass = np.zeros(k)
    fn_mass = np.zeros(k)
    total_patterns = 1 << n
    for start in range(0, total_patterns, _CHUNK):
        stop = min(start + _CHUNK, total_patterns)
        patterns = _pattern_chunk(start, stop, n)
        complement = 1.0 - patterns
        log_joint_true = patterns @ log_r1 + complement @ log_1r1
        log_joint_false = patterns @ log_r0 + complement @ log_1r0
        joint_true = np.exp(log_joint_true + log_z)
        joint_false = np.exp(log_joint_false + log_1z)
        decide_true = joint_true > joint_false
        fp_mass += np.where(decide_true, joint_false, 0.0).sum(axis=0)
        fn_mass += np.where(decide_true, 0.0, joint_true).sum(axis=0)
    weights = counts / dep.shape[1]
    fp = float(np.sum(weights * fp_mass))
    fn = float(np.sum(weights * fn_mass))
    return BoundResult(
        total=fp + fn, false_positive=fp, false_negative=fn, method="exact"
    )


# -- historical per-source scan Gibbs sampler ------------------------------------


class ScanGibbsChains:
    """The pre-optimisation systematic-scan chains (one Python loop
    iteration per source per sweep)."""

    def __init__(self, rate_true, rate_false, z, rng):
        self.rate_true = np.clip(rate_true, _RATE_EPS, 1 - _RATE_EPS)
        self.rate_false = np.clip(rate_false, _RATE_EPS, 1 - _RATE_EPS)
        z = float(np.clip(z, _RATE_EPS, 1 - _RATE_EPS))
        self.log_z = float(np.log(z))
        self.log_1z = float(np.log1p(-z))
        self.n_chains, self.n_sources = self.rate_true.shape
        self.rng = rng
        self.state = (rng.random(self.rate_true.shape) < 0.5).astype(bool)
        self._log_r1 = np.log(self.rate_true)
        self._log_1r1 = np.log1p(-self.rate_true)
        self._log_r0 = np.log(self.rate_false)
        self._log_1r0 = np.log1p(-self.rate_false)
        self._refresh_likelihoods()

    def _refresh_likelihoods(self):
        self._like_true = np.where(self.state, self._log_r1, self._log_1r1).sum(axis=1)
        self._like_false = np.where(self.state, self._log_r0, self._log_1r0).sum(axis=1)

    def sweep(self):
        self._refresh_likelihoods()
        uniforms = self.rng.random((self.n_sources, self.n_chains))
        for i in range(self.n_sources):
            bit = self.state[:, i]
            cell_true = np.where(bit, self._log_r1[:, i], self._log_1r1[:, i])
            cell_false = np.where(bit, self._log_r0[:, i], self._log_1r0[:, i])
            rest_true = self._like_true - cell_true + self.log_z
            rest_false = self._like_false - cell_false + self.log_1z
            top = np.maximum(rest_true, rest_false)
            w_true = np.exp(rest_true - top)
            w_false = np.exp(rest_false - top)
            r1 = self.rate_true[:, i]
            r0 = self.rate_false[:, i]
            mass_one = w_true * r1 + w_false * r0
            mass_zero = w_true * (1 - r1) + w_false * (1 - r0)
            new_bit = uniforms[i] < mass_one / (mass_one + mass_zero)
            new_cell_true = np.where(new_bit, self._log_r1[:, i], self._log_1r1[:, i])
            new_cell_false = np.where(new_bit, self._log_r0[:, i], self._log_1r0[:, i])
            self._like_true += new_cell_true - cell_true
            self._like_false += new_cell_false - cell_false
            self.state[:, i] = new_bit

    def joints(self):
        return (
            np.exp(self._like_true + self.log_z),
            np.exp(self._like_false + self.log_1z),
        )


def reference_gibbs_bound(
    dependency: np.ndarray,
    params: SourceParameters,
    *,
    config,
    seed: SeedLike = None,
) -> BoundResult:
    """The historical joint Gibbs bound (scan sampler, all chains, one RNG)."""
    from repro.bounds.gibbs import _accumulate_bound

    dep = np.asarray(dependency)
    if dep.ndim == 1:
        columns = dep[None, :]
        weights = np.ones(1)
    else:
        unique_cols, counts = unique_columns(dep)
        columns = unique_cols
        weights = counts / dep.shape[1]
    rate_true = np.empty((columns.shape[0], params.n_sources))
    rate_false = np.empty_like(rate_true)
    for index, column in enumerate(columns):
        rate_true[index], rate_false[index] = _emission_rates(column, params)
    chains = ScanGibbsChains(rate_true, rate_false, params.z, RandomState(seed))
    return _accumulate_bound(chains, weights, config)


__all__ = [
    "ReferenceDenseBackend",
    "ScanGibbsChains",
    "reference_column_log_likelihoods",
    "reference_exact_bound",
    "reference_gibbs_bound",
]
