"""Oracle parameter extraction for the "Optimal" curve (Section V-B).

The fundamental error bound assumes the estimator knows the source
parameter set θ perfectly.  On synthetic data we *can* know it: measure
each source's empirical claim rates against the ground-truth labels,
partitioned by the dependency indicator.  Feeding these oracle
parameters to the bound yields the "Optimal" accuracy ceiling the paper
plots alongside the estimators (``1 − Err``).

Cells never observed for a partition (e.g. a root source has no
dependent cells at all) leave that parameter at the uninformative 0.5 —
harmless, because the bound never consults a parameter outside its
partition.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import SourceParameters
from repro.data.coerce import coerce_problem
from repro.data.protocol import FORMAT_DENSE, Problem
from repro.synthetic.config import GeneratorConfig
from repro.utils.errors import ValidationError

#: Value used when a source has no cells in a partition.
_UNOBSERVED = 0.5


def empirical_parameters(problem: Problem) -> SourceParameters:
    """Measure θ from a problem with ground truth (the oracle's view).

    Accepts a problem in either storage format; CSR input is densified
    under the memory budget.
    """
    if not problem.has_truth:
        raise ValidationError("empirical_parameters requires ground-truth labels")
    problem = coerce_problem(problem, needs=FORMAT_DENSE)
    sc = problem.claims.values.astype(np.float64)
    dep = problem.dependency.values.astype(np.float64)
    indep = 1.0 - dep
    truth = problem.truth.astype(np.float64)
    true_mask = truth
    false_mask = 1.0 - truth

    def _rate(cell_mask_rows: np.ndarray, truth_mask: np.ndarray) -> np.ndarray:
        weights = cell_mask_rows * truth_mask[None, :]
        counts = weights.sum(axis=1)
        hits = (sc * weights).sum(axis=1)
        with np.errstate(invalid="ignore", divide="ignore"):
            rates = hits / counts
        return np.where(counts > 0, rates, _UNOBSERVED)

    return SourceParameters(
        a=_rate(indep, true_mask),
        b=_rate(indep, false_mask),
        f=_rate(dep, true_mask),
        g=_rate(dep, false_mask),
        z=float(truth.mean()) if truth.size else 0.5,
    )


def analytic_parameters(
    config: GeneratorConfig,
    *,
    n_trees: int,
    true_ratio: float,
) -> SourceParameters:
    """Approximate θ implied by the generator configuration.

    In ``"cell"`` mode the rates are exact expectations over the ranged
    knobs: ``a = p_on·p_indepT``, ``b = p_on·(1−p_indepT)``,
    ``f = p_dep·p_depT``, ``g = p_dep·(1−p_depT)`` at midpoint values.
    In ``"pool"`` mode a with-replacement approximation is used: over
    ``R`` opportunities with per-opportunity pool-hit probability
    ``q/|pool|`` the cell claim rate is ``1 − (1 − q/|pool|)^R``.
    Exact per-trial rates depend on the realized draws; use
    :func:`empirical_parameters` when the dataset is available.
    """
    if not 1 <= n_trees <= config.n_sources:
        raise ValidationError(
            f"n_trees must be in [1, {config.n_sources}], got {n_trees}"
        )
    if not 0.0 < true_ratio < 1.0:
        raise ValidationError(f"true_ratio must be in (0, 1), got {true_ratio}")
    m = config.n_assertions
    n_true = max(1, min(m - 1, int(np.ceil(true_ratio * m)))) if m > 1 else m
    n_false = m - n_true
    rounds = config.effective_rounds

    def _mid(bounds) -> float:
        return (bounds[0] + bounds[1]) / 2.0

    p_on = _mid(config.p_on)
    p_dep = _mid(config.p_dep)
    p_indep_true = _mid(config.p_indep_true)
    p_dep_true = _mid(config.p_dep_true)

    if config.mode == "cell":
        return SourceParameters.from_scalars(
            config.n_sources,
            a=p_on * p_indep_true,
            b=p_on * (1.0 - p_indep_true),
            f=p_dep * p_dep_true,
            g=p_dep * (1.0 - p_dep_true),
            z=n_true / m,
        )

    def _cell_rate(branch_prob: float, pool_size: int) -> float:
        if pool_size <= 0:
            return 0.0
        per_round = p_on * branch_prob / pool_size
        return float(1.0 - (1.0 - per_round) ** rounds)

    # Independent cells: the source draws from the full pools with the
    # independent truth bias (roots always; leaves when not repeating).
    a_scalar = _cell_rate(p_indep_true, n_true)
    b_scalar = _cell_rate(1.0 - p_indep_true, n_false)
    # Dependent cells: the leaf draws from its root's claims with the
    # dependent truth bias, scaled by the chance of taking that branch.
    f_scalar = _cell_rate(p_dep * p_dep_true, max(1, int(round(n_true * p_on))))
    g_scalar = _cell_rate(
        p_dep * (1.0 - p_dep_true), max(1, int(round(n_false * p_on)))
    )
    return SourceParameters.from_scalars(
        config.n_sources,
        a=a_scalar,
        b=b_scalar,
        f=f_scalar,
        g=g_scalar,
        z=n_true / m,
    )


__all__ = ["analytic_parameters", "empirical_parameters"]
