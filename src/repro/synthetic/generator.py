"""The Section V-A synthetic workload generator.

Two generation modes are provided (``GeneratorConfig.mode``; rationale
in DESIGN.md §5.3): the default ``"cell"`` mode draws every
(source, assertion) cell as an independent Bernoulli with exactly the
rates the Section II-B channel model prescribes, while the ``"pool"``
mode follows the literal pool-sampling text below.

Pool-mode generation procedure (paper Section V-A):

1. draw the trial-level knobs: τ (tree count) and d (true-assertion
   ratio), then the per-source probabilities ``p_on``, ``p_dep``,
   ``p_indepT``, ``p_depT``;
2. split the assertion ids into a True pool (⌈d·m⌉ random ids) and a
   False pool;
3. build a forest of τ level-two trees: roots are independent, every
   leaf follows exactly one root;
4. roots claim first: at each of ``rounds`` opportunities a root
   participates w.p. ``p_on``; a participating root picks the True pool
   w.p. ``p_indepT`` (else False) and claims a uniformly random,
   not-yet-claimed-by-it assertion from that pool;
5. leaves claim afterwards: same participation gate; a participating
   leaf first chooses between its *dependent* candidate subset
   (assertions its root already claimed) w.p. ``p_dep`` and its
   *independent* subset otherwise, then applies the corresponding truth
   bias (``p_depT`` / ``p_indepT``) and claims uniformly within the
   selected sub-pool.  Opportunities whose selected sub-pool is empty
   are forfeited.

The generator emits a timestamped :class:`EventLog` (roots in the
``[0, 1)`` time band, leaves in ``[1, 2)``) and derives ``(SC, D)``
through the same :func:`repro.network.dependency.extract_dependency`
code path used for field data — the synthetic pipeline therefore
exercises the real substrate end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

import numpy as np

from repro.core.matrix import SensingProblem
from repro.network.dependency import extract_dependency
from repro.network.events import EventLog, Post
from repro.network.generators import LevelTwoForest, level_two_forest
from repro.synthetic.config import GeneratorConfig, RealizedParameters
from repro.utils.rng import RandomState, SeedLike, derive_seed


@dataclass
class SyntheticDataset:
    """Everything one generator run produced.

    ``problem.truth`` carries the ground-truth labels; ``realized``
    records the concrete parameter draws; ``forest`` and ``log`` expose
    the underlying social structure for substrate-level inspection.
    """

    problem: SensingProblem
    forest: LevelTwoForest
    log: EventLog
    realized: RealizedParameters
    config: GeneratorConfig

    @property
    def truth(self) -> np.ndarray:
        """Ground-truth labels (alias of ``problem.truth``)."""
        return self.problem.truth


class SyntheticGenerator:
    """Seeded generator of Section V-A workloads."""

    def __init__(self, config: Optional[GeneratorConfig] = None, seed: SeedLike = None):
        self.config = config or GeneratorConfig()
        self._rng = RandomState(seed)

    def generate(self) -> SyntheticDataset:
        """Produce one synthetic dataset (advance the generator's RNG)."""
        rng = RandomState(derive_seed(self._rng))
        config = self.config
        realized = self._draw_parameters(rng)
        truth = self._draw_truth(rng, realized.true_ratio)
        realized = RealizedParameters(
            n_trees=realized.n_trees,
            true_ratio=realized.true_ratio,
            p_on=realized.p_on,
            p_dep=realized.p_dep,
            p_indep_true=realized.p_indep_true,
            p_dep_true=realized.p_dep_true,
            n_true_assertions=int(truth.sum()),
        )
        forest = level_two_forest(
            config.n_sources, realized.n_trees, seed=derive_seed(rng)
        )
        if config.mode == "cell":
            log = self._simulate_claims_cell(rng, forest, realized, truth)
        else:
            log = self._simulate_claims_pool(rng, forest, realized, truth)
        claims, dependency = extract_dependency(
            log, forest.graph, n_assertions=config.n_assertions, policy="direct"
        )
        problem = SensingProblem(claims=claims, dependency=dependency, truth=truth)
        return SyntheticDataset(
            problem=problem,
            forest=forest,
            log=log,
            realized=realized,
            config=config,
        )

    def generate_many(self, count: int) -> List[SyntheticDataset]:
        """Generate ``count`` independent datasets."""
        return [self.generate() for _ in range(count)]

    # -- internals ----------------------------------------------------------------

    def _draw_parameters(self, rng: np.random.Generator) -> RealizedParameters:
        config = self.config
        n = config.n_sources

        def _uniform(bounds: Tuple[float, float]) -> np.ndarray:
            low, high = bounds
            if low == high:
                return np.full(n, low)
            return rng.uniform(low, high, size=n)

        tree_low, tree_high = config.n_trees
        n_trees = int(rng.integers(tree_low, tree_high + 1))
        ratio_low, ratio_high = config.true_ratio
        true_ratio = (
            ratio_low
            if ratio_low == ratio_high
            else float(rng.uniform(ratio_low, ratio_high))
        )
        return RealizedParameters(
            n_trees=n_trees,
            true_ratio=true_ratio,
            p_on=_uniform(config.p_on),
            p_dep=_uniform(config.p_dep),
            p_indep_true=_uniform(config.p_indep_true),
            p_dep_true=_uniform(config.p_dep_true),
        )

    def _draw_truth(self, rng: np.random.Generator, true_ratio: float) -> np.ndarray:
        m = self.config.n_assertions
        n_true = int(np.ceil(true_ratio * m))
        n_true = min(max(n_true, 1), m)  # keep both pools meaningful when m > 1
        if m > 1:
            n_true = min(n_true, m - 1)
        truth = np.zeros(m, dtype=np.int8)
        true_ids = rng.choice(m, size=n_true, replace=False)
        truth[true_ids] = 1
        return truth

    def _simulate_claims_cell(
        self,
        rng: np.random.Generator,
        forest: LevelTwoForest,
        realized: RealizedParameters,
        truth: np.ndarray,
    ) -> EventLog:
        """Model-faithful generation: independent Bernoulli cells.

        Root cells (and leaf cells whose root stayed silent) fire with
        rate ``p_on · p_indepT`` on true assertions and
        ``p_on · (1 − p_indepT)`` on false ones; a leaf's
        dependent-capable cells fire with ``p_dep · p_depT`` /
        ``p_dep · (1 − p_depT)``.  Roots post in the ``[0, 1)`` time
        band, leaves in ``[1, 2)``, so the standard dependency
        extraction recovers exactly the intended ``D``.
        """
        config = self.config
        m = config.n_assertions
        truth_f = truth.astype(np.float64)
        posts: List[Post] = []
        post_id = 0
        root_set = set(forest.roots)

        # Phase 1: roots.
        root_claimed: dict = {}
        for source in forest.roots:
            bias = realized.p_indep_true[source]
            rates = realized.p_on[source] * (
                truth_f * bias + (1.0 - truth_f) * (1.0 - bias)
            )
            fired = np.flatnonzero(rng.random(m) < rates)
            root_claimed[source] = set(fired.tolist())
            for assertion in fired:
                posts.append(
                    Post(
                        post_id=post_id,
                        source=source,
                        assertion=int(assertion),
                        time=0.5,
                    )
                )
                post_id += 1

        # Phase 2: leaves.
        for source in range(config.n_sources):
            if source in root_set:
                continue
            parent_claims = root_claimed[forest.parent[source]]
            dep_mask = np.zeros(m)
            if parent_claims:
                dep_mask[sorted(parent_claims)] = 1.0
            indep_bias = realized.p_indep_true[source]
            dep_bias = realized.p_dep_true[source]
            indep_rates = realized.p_on[source] * (
                truth_f * indep_bias + (1.0 - truth_f) * (1.0 - indep_bias)
            )
            dep_rates = realized.p_dep[source] * (
                truth_f * dep_bias + (1.0 - truth_f) * (1.0 - dep_bias)
            )
            rates = dep_mask * dep_rates + (1.0 - dep_mask) * indep_rates
            fired = np.flatnonzero(rng.random(m) < rates)
            for assertion in fired:
                posts.append(
                    Post(
                        post_id=post_id,
                        source=source,
                        assertion=int(assertion),
                        time=1.5,
                    )
                )
                post_id += 1
        return EventLog(posts=posts)

    def _simulate_claims_pool(
        self,
        rng: np.random.Generator,
        forest: LevelTwoForest,
        realized: RealizedParameters,
        truth: np.ndarray,
    ) -> EventLog:
        config = self.config
        rounds = config.effective_rounds
        true_pool = set(np.flatnonzero(truth == 1).tolist())
        false_pool = set(np.flatnonzero(truth == 0).tolist())
        claimed: List[Set[int]] = [set() for _ in range(config.n_sources)]
        posts: List[Post] = []
        post_id = 0

        def _pick(pool: Set[int], already: Set[int]) -> Optional[int]:
            candidates = sorted(pool - already)
            if not candidates:
                return None
            return int(candidates[rng.integers(0, len(candidates))])

        # Phase 1: roots (independent claims) in the [0, 1) time band.
        root_set = set(forest.roots)
        for round_index in range(rounds):
            time_base = round_index / rounds
            for source in forest.roots:
                if rng.random() >= realized.p_on[source]:
                    continue
                pool = (
                    true_pool
                    if rng.random() < realized.p_indep_true[source]
                    else false_pool
                )
                assertion = _pick(pool, claimed[source])
                if assertion is None:
                    continue
                claimed[source].add(assertion)
                posts.append(
                    Post(
                        post_id=post_id,
                        source=source,
                        assertion=assertion,
                        time=time_base,
                    )
                )
                post_id += 1

        # Root claims per assertion, for the leaves' candidate split.
        root_claims: dict = {root: claimed[root] for root in root_set}

        # Phase 2: leaves in the [1, 2) time band.
        leaves = [s for s in range(config.n_sources) if s not in root_set]
        for round_index in range(rounds):
            time_base = 1.0 + round_index / rounds
            for source in leaves:
                if rng.random() >= realized.p_on[source]:
                    continue
                parent = forest.parent[source]
                dependent_candidates = root_claims[parent]
                use_dependent = bool(dependent_candidates) and (
                    rng.random() < realized.p_dep[source]
                )
                if use_dependent:
                    truth_bias = realized.p_dep_true[source]
                    candidate_true = true_pool & dependent_candidates
                    candidate_false = false_pool & dependent_candidates
                else:
                    truth_bias = realized.p_indep_true[source]
                    candidate_true = true_pool - dependent_candidates
                    candidate_false = false_pool - dependent_candidates
                pool = (
                    candidate_true
                    if rng.random() < truth_bias
                    else candidate_false
                )
                assertion = _pick(pool, claimed[source])
                if assertion is None:
                    continue
                claimed[source].add(assertion)
                posts.append(
                    Post(
                        post_id=post_id,
                        source=source,
                        assertion=assertion,
                        time=time_base,
                    )
                )
                post_id += 1
        return EventLog(posts=posts)


def generate_dataset(
    config: Optional[GeneratorConfig] = None, seed: SeedLike = None
) -> SyntheticDataset:
    """One-call convenience wrapper around :class:`SyntheticGenerator`."""
    return SyntheticGenerator(config, seed=seed).generate()


__all__ = ["SyntheticDataset", "SyntheticGenerator", "generate_dataset"]
