"""Synthetic workload generation (Section V-A) and oracle parameters."""

from repro.synthetic.config import GeneratorConfig, RealizedParameters
from repro.synthetic.generator import (
    SyntheticDataset,
    SyntheticGenerator,
    generate_dataset,
)
from repro.synthetic.oracle import analytic_parameters, empirical_parameters

__all__ = [
    "GeneratorConfig",
    "RealizedParameters",
    "SyntheticDataset",
    "SyntheticGenerator",
    "analytic_parameters",
    "empirical_parameters",
    "generate_dataset",
]
