"""Configuration of the Section V-A synthetic data generator.

The paper draws most knobs uniformly from ranges ("Parameters with
ranges are chosen uniformly within the range"); every probability field
here therefore accepts either a scalar or a ``(low, high)`` pair.

Paper defaults (Section V-A): ``n = 20``, ``m = 50``,
``p_on ∈ [0.5, 0.7]``, ``τ ∈ [8, 10]``, ``p_dep ∈ [0.4, 0.6]``,
``d ∈ [0.55, 0.75]``, ``p_indepT ∈ [7/12, 3/4]``,
``p_depT ∈ [0.4, 0.6]``.  The estimator simulations (Section V-B) reuse
these with ``n = 50``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple, Union

import numpy as np

from repro.utils.errors import ValidationError
from repro.utils.validation import check_positive_int

RangeLike = Union[float, Tuple[float, float]]
IntRangeLike = Union[int, Tuple[int, int]]


def _as_range(value: RangeLike, name: str) -> Tuple[float, float]:
    if isinstance(value, (int, float)):
        value = (float(value), float(value))
    low, high = float(value[0]), float(value[1])
    if not 0.0 <= low <= high <= 1.0:
        raise ValidationError(
            f"{name} must be a probability or ascending probability pair, "
            f"got {value}"
        )
    return (low, high)


def _as_int_range(value: IntRangeLike, name: str) -> Tuple[int, int]:
    if isinstance(value, (int, np.integer)):
        value = (int(value), int(value))
    low, high = int(value[0]), int(value[1])
    if not 1 <= low <= high:
        raise ValidationError(
            f"{name} must be a positive int or ascending int pair, got {value}"
        )
    return (low, high)


@dataclass(frozen=True)
class GeneratorConfig:
    """All knobs of the synthetic workload generator.

    Attributes
    ----------
    n_sources, n_assertions:
        Population sizes (``n`` and ``m`` in the paper).
    n_trees:
        τ — number of level-two dependency trees; ``τ = n`` means all
        sources independent.
    true_ratio:
        ``d`` — the fraction of assertions placed in the True pool.
    p_on:
        Per-source participation probability per claim opportunity.
    p_dep:
        Per-leaf probability of drawing from the dependent candidate
        subset (assertions its root already made) when that subset is
        non-empty.
    p_indep_true:
        ``p_i^{indepT}`` — probability an *independent* claim targets the
        True pool.
    p_dep_true:
        ``p_i^{depT}`` — probability a *dependent* claim targets the True
        pool.
    mode:
        Claim-generation semantics (DESIGN.md §5.3):

        * ``"cell"`` (default) — model-faithful Bernoulli cells.  Each
          (source, assertion) cell is claimed independently with the
          rate the Section II-B model prescribes:
          ``a = p_on · p_indepT``, ``b = p_on · (1 − p_indepT)`` on
          independent cells; ``f = p_dep · p_depT``,
          ``g = p_dep · (1 − p_depT)`` on a leaf's dependent-capable
          cells (assertions its root already claimed).  Under this mode
          the discrimination odds ``a/b`` equal the paper's tuning knob
          ``p_indepT/(1 − p_indepT)`` exactly.
        * ``"pool"`` — the literal pool-sampling text of Section V-A:
          per opportunity a participating source draws one unclaimed
          assertion uniformly from the chosen truth pool.  Kept for
          fidelity; note that unequal pool sizes dilute (and for
          ``d > ~0.67`` even invert) the per-assertion support signal.
    rounds:
        Claim opportunities per source in ``"pool"`` mode (ignored by
        ``"cell"`` mode).  The default ``0`` means "use ``n_assertions``".
    """

    n_sources: int = 20
    n_assertions: int = 50
    n_trees: IntRangeLike = (8, 10)
    true_ratio: RangeLike = (0.55, 0.75)
    p_on: RangeLike = (0.5, 0.7)
    p_dep: RangeLike = (0.4, 0.6)
    p_indep_true: RangeLike = (7.0 / 12.0, 3.0 / 4.0)
    p_dep_true: RangeLike = (0.4, 0.6)
    mode: str = "cell"
    rounds: int = 0

    def __post_init__(self) -> None:
        check_positive_int(self.n_sources, "n_sources")
        check_positive_int(self.n_assertions, "n_assertions")
        if self.mode not in ("cell", "pool"):
            raise ValidationError(
                f"mode must be 'cell' or 'pool', got {self.mode!r}"
            )
        object.__setattr__(self, "n_trees", _as_int_range(self.n_trees, "n_trees"))
        if self.n_trees[1] > self.n_sources:
            raise ValidationError(
                f"n_trees upper bound {self.n_trees[1]} exceeds n_sources "
                f"{self.n_sources}"
            )
        for name in ("true_ratio", "p_on", "p_dep", "p_indep_true", "p_dep_true"):
            object.__setattr__(self, name, _as_range(getattr(self, name), name))
        if self.rounds < 0:
            raise ValidationError(f"rounds must be non-negative, got {self.rounds}")

    @property
    def effective_rounds(self) -> int:
        """Claim opportunities per source (``rounds`` or ``n_assertions``)."""
        return self.rounds if self.rounds > 0 else self.n_assertions

    @classmethod
    def paper_defaults(cls, **overrides) -> "GeneratorConfig":
        """The Section V-A default parameterisation (bound simulations)."""
        return cls(**overrides)

    @classmethod
    def estimator_defaults(cls, **overrides) -> "GeneratorConfig":
        """Section V-B defaults: same ranges with ``n = 50`` sources."""
        overrides.setdefault("n_sources", 50)
        return cls(**overrides)

    def with_dependent_odds(self, odds: float) -> "GeneratorConfig":
        """Fix ``p_dep_true`` so that ``p_depT / (1 - p_depT) = odds``.

        The tuning knob of the paper's Figure 5 / Figure 10 sweeps.
        """
        if odds <= 0:
            raise ValidationError(f"odds must be positive, got {odds}")
        p = odds / (1.0 + odds)
        return replace(self, p_dep_true=(p, p))

    def with_independent_odds(self, odds: float) -> "GeneratorConfig":
        """Fix ``p_indep_true`` so that ``p_indepT / (1 - p_indepT) = odds``."""
        if odds <= 0:
            raise ValidationError(f"odds must be positive, got {odds}")
        p = odds / (1.0 + odds)
        return replace(self, p_indep_true=(p, p))


@dataclass(frozen=True)
class RealizedParameters:
    """The concrete per-trial draws the generator made from a config.

    Captured so experiments can report (and tests can verify) exactly
    which population was generated.
    """

    n_trees: int
    true_ratio: float
    p_on: np.ndarray
    p_dep: np.ndarray
    p_indep_true: np.ndarray
    p_dep_true: np.ndarray
    n_true_assertions: int = field(default=0)

    @property
    def n_sources(self) -> int:
        """Number of sources in the realized population."""
        return self.p_on.size


__all__ = ["GeneratorConfig", "RealizedParameters"]
