"""EM-Ext: the dependency-aware maximum-likelihood estimator (Section IV).

The estimator jointly infers the source parameter set
:math:`θ = \\{a_i, b_i, f_i, g_i, z\\}` and the truth posterior of every
assertion from the source-claim matrix ``SC`` and dependency indicators
``D`` alone, by expectation-maximisation:

* **E-step** (Equation 9): compute
  :math:`Z_j = P(C_j = 1 | SC_j; D, θ^{(t)})` for every assertion;
* **M-step** (Equations 10–14): closed-form parameter updates that
  partition each source's cells into the four sets
  :math:`S_iC_{0/1}^{D_{0/1}}` (claim / non-claim × dependent /
  independent) and reweight by the posteriors.

The implementation is fully vectorised: one E-step and one M-step are a
handful of matrix products, so problems with thousands of sources and
assertions fit comfortably in milliseconds per iteration.

Practical extensions beyond the pseudocode (all standard EM hygiene,
documented in DESIGN.md §5.5):

* parameters are clamped to ``[ε, 1-ε]`` after every M-step;
* sources with an empty partition (e.g. no dependent cells at all) keep
  their previous value for the affected parameter;
* optional multi-restart: run EM from several random initialisations
  and keep the fixed point with the highest observed-data likelihood;
* an informative default initialisation breaks the global label-swap
  symmetry of the likelihood (the mirrored solution where every "true"
  becomes "false" has identical likelihood).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.likelihood import data_log_likelihood, posterior_truth
from repro.core.matrix import SensingProblem
from repro.core.model import DEFAULT_EPSILON, ParameterTrace, SourceParameters
from repro.core.result import EstimationResult
from repro.utils.errors import ValidationError
from repro.utils.rng import RandomState, SeedLike, spawn_rngs
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class EMConfig:
    """Hyper-parameters of the EM loop.

    Attributes
    ----------
    max_iterations:
        Hard cap on EM iterations per restart.
    tolerance:
        Convergence threshold on the maximum absolute parameter change
        between consecutive iterations (the criterion of Algorithm 2's
        "while {θ} are not convergent").
    epsilon:
        Clamping width keeping probabilities inside ``[ε, 1-ε]``.
    n_restarts:
        Number of random restarts; the best fixed point by observed-data
        log-likelihood wins.  1 reproduces the paper's single run.
    smoothing:
        Hierarchical (empirical-Bayes) pseudo-count ``s``: each M-step
        ratio becomes ``(num_i + s·pooled) / (den_i + s)`` where
        ``pooled`` is the population-level rate (all sources' numerators
        over all denominators).  Sources with rich data keep their own
        estimates; sources with a handful of cells shrink toward the
        population — which is what makes the dependency signal usable on
        field data where most sources make a single claim.  ``0``
        reproduces the paper's plain maximum-likelihood updates.
    init_strategy:
        How the first restart is seeded (later restarts are always
        random):

        * ``"staged"`` (default) — fit the nested independence model on
          the *independent* cells first (dependent cells excluded, the
          EM-Social view), then enrich: one dependency-aware M-step on
          the staged posterior seeds the full model.  This breaks the
          chicken-and-egg between the truth posterior and the dependent
          emission rates ``f, g`` — they are learned from an
          already-calibrated posterior instead of amplifying the initial
          guess.
        * ``"support"`` — a dependency-discounted vote-count posterior
          (assertions with more independent supporters start more
          credible), the classic truth-discovery warm start.
        * ``"random"`` — random source parameters (the paper's
          "initialize parameter set with random probability").
    """

    max_iterations: int = 200
    tolerance: float = 1e-6
    epsilon: float = DEFAULT_EPSILON
    n_restarts: int = 1
    smoothing: float = 0.0
    init_strategy: str = "staged"

    def __post_init__(self) -> None:
        check_positive_int(self.max_iterations, "max_iterations")
        check_positive_int(self.n_restarts, "n_restarts")
        if not self.tolerance > 0:
            raise ValidationError(f"tolerance must be positive, got {self.tolerance}")
        if not 0 < self.epsilon < 0.5:
            raise ValidationError(f"epsilon must be in (0, 0.5), got {self.epsilon}")
        if self.smoothing < 0:
            raise ValidationError(f"smoothing must be non-negative, got {self.smoothing}")
        if self.init_strategy not in ("staged", "support", "random"):
            raise ValidationError(
                f"init_strategy must be 'staged', 'support' or 'random', got "
                f"{self.init_strategy!r}"
            )


class EMExtEstimator:
    """The paper's dependency-aware joint estimator (Algorithm 2).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import EMExtEstimator, SensingProblem
    >>> sc = np.array([[1, 0, 1], [1, 1, 0]])
    >>> d = np.array([[0, 0, 1], [0, 0, 0]])
    >>> result = EMExtEstimator(seed=0).fit(SensingProblem(sc, d))
    >>> result.scores.shape
    (3,)
    """

    algorithm_name = "em-ext"

    def __init__(
        self,
        config: Optional[EMConfig] = None,
        *,
        seed: SeedLike = None,
        initial_parameters: Optional[SourceParameters] = None,
    ):
        self.config = config or EMConfig()
        self._seed = seed
        self.initial_parameters = initial_parameters

    # -- public API ------------------------------------------------------------

    def fit(self, problem: SensingProblem) -> EstimationResult:
        """Run EM on ``problem`` and return the richest result object."""
        rng = RandomState(self._seed)
        restarts = self.config.n_restarts
        best: Optional[EstimationResult] = None
        for index, restart_rng in enumerate(spawn_rngs(rng, restarts)):
            strategy = self.config.init_strategy
            if index > 0 or self.initial_parameters is not None:
                init = self._initial_parameters(problem, restart_rng)
            elif strategy == "staged":
                init = self._staged_initialisation(problem)
            elif strategy == "support":
                init = self._support_initialisation(problem)
            else:
                init = self._initial_parameters(problem, restart_rng)
            candidate = self._run_once(problem, init)
            if best is None or candidate.log_likelihood > best.log_likelihood:
                best = candidate
        assert best is not None  # restarts >= 1 by construction
        return best

    # -- internals ---------------------------------------------------------------

    def _initial_parameters(
        self, problem: SensingProblem, rng: np.random.Generator
    ) -> SourceParameters:
        if self.initial_parameters is not None:
            if self.initial_parameters.n_sources != problem.n_sources:
                raise ValidationError(
                    "initial_parameters describe "
                    f"{self.initial_parameters.n_sources} sources but the "
                    f"problem has {problem.n_sources}"
                )
            return self.initial_parameters.clamp(self.config.epsilon)
        return SourceParameters.random(problem.n_sources, rng).clamp(
            self.config.epsilon
        )

    def _support_initialisation(self, problem: SensingProblem) -> SourceParameters:
        """Seed parameters from a dependency-discounted vote posterior.

        The initial posterior grows affinely with *independent* support,
        ``Z_j = 0.2 + 0.6 · support_j / max_support``, then one M-step
        turns it into source parameters.  Counting only independent
        claims keeps viral cascades (which the model has not yet judged)
        from branding their assertions credible before the first
        iteration; the EM loop then learns from the dependent claims
        whatever they actually carry.
        """
        sc = problem.claims.values.astype(np.float64)
        indep = 1.0 - problem.dependency.values.astype(np.float64)
        support = (sc * indep).sum(axis=0)
        top = float(support.max()) if support.size else 0.0
        if top > 0:
            posterior = 0.2 + 0.6 * support / top
        else:
            posterior = np.full(problem.n_assertions, 0.5)
        neutral = SourceParameters.from_scalars(
            problem.n_sources, a=0.55, b=0.45, f=0.55, g=0.45, z=0.5
        )
        dep = problem.dependency.values.astype(np.float64)
        return self._m_step(sc, dep, posterior, neutral)

    def _staged_initialisation(
        self, problem: SensingProblem, stage_iterations: int = 40
    ) -> SourceParameters:
        """Fit the nested independent-cells model, then enrich with f, g.

        Stage one is a compact masked EM over independent cells only
        (the EM-Social view), warm-started from the support posterior.
        Stage two takes stage one's converged posterior and performs one
        full dependency-aware M-step, which *measures* the dependent
        emission rates against a posterior that is already anchored in
        the independent evidence.
        """
        sc = problem.claims.values.astype(np.float64)
        dep = problem.dependency.values.astype(np.float64)
        indep = 1.0 - dep
        support = (sc * indep).sum(axis=0)
        top = float(support.max()) if support.size else 0.0
        if top > 0:
            posterior = 0.2 + 0.6 * support / top
        else:
            posterior = np.full(problem.n_assertions, 0.5)
        eps = self.config.epsilon
        n = problem.n_sources
        t_rate = np.full(n, 0.55)
        b_rate = np.full(n, 0.45)
        z = 0.5
        smoothing = self.config.smoothing
        for _ in range(stage_iterations):
            # M-step over independent cells only.
            def _rate(weight: np.ndarray, previous: np.ndarray) -> np.ndarray:
                numerator = (sc * indep) @ weight
                denominator = indep @ weight
                pooled_den = float(denominator.sum())
                pooled = (
                    float(numerator.sum()) / pooled_den if pooled_den > 0 else 0.5
                )
                numerator = numerator + smoothing * pooled
                denominator = denominator + smoothing
                with np.errstate(invalid="ignore", divide="ignore"):
                    ratio = numerator / denominator
                return np.clip(
                    np.where(denominator > 0, ratio, previous), eps, 1.0 - eps
                )

            t_rate = _rate(posterior, t_rate)
            b_rate = _rate(1.0 - posterior, b_rate)
            z = float(np.clip(posterior.mean(), eps, 1.0 - eps)) if posterior.size else z
            # E-step over independent cells only.
            log_true = (
                indep * (sc * np.log(t_rate)[:, None] + (1 - sc) * np.log1p(-t_rate)[:, None])
            ).sum(axis=0)
            log_false = (
                indep * (sc * np.log(b_rate)[:, None] + (1 - sc) * np.log1p(-b_rate)[:, None])
            ).sum(axis=0)
            joint_true = log_true + np.log(z)
            joint_false = log_false + np.log1p(-z)
            peak = np.maximum(joint_true, joint_false)
            numerator = np.exp(joint_true - peak)
            new_posterior = numerator / (numerator + np.exp(joint_false - peak))
            if np.max(np.abs(new_posterior - posterior)) < self.config.tolerance:
                posterior = new_posterior
                break
            posterior = new_posterior
        neutral = SourceParameters(a=t_rate, b=b_rate, f=t_rate, g=b_rate, z=z)
        return self._m_step(sc, dep, posterior, neutral)

    def _run_once(
        self, problem: SensingProblem, params: SourceParameters
    ) -> EstimationResult:
        trace = ParameterTrace()
        sc = problem.claims.values.astype(np.float64)
        dep = problem.dependency.values.astype(np.float64)
        converged = False
        posterior = posterior_truth(problem, params)
        for _ in range(self.config.max_iterations):
            new_params = self._m_step(sc, dep, posterior, params)
            delta = new_params.max_difference(params)
            params = new_params
            posterior = posterior_truth(problem, params)
            trace.record(data_log_likelihood(problem, params), delta)
            if delta < self.config.tolerance:
                converged = True
                break
        decisions = (posterior >= 0.5).astype(np.int8)
        return EstimationResult(
            algorithm=self.algorithm_name,
            scores=posterior,
            decisions=decisions,
            parameters=params,
            log_likelihood=trace.log_likelihoods[-1] if trace.n_iterations else data_log_likelihood(problem, params),
            converged=converged,
            n_iterations=trace.n_iterations,
            trace=trace,
        )

    def _m_step(
        self,
        sc: np.ndarray,
        dep: np.ndarray,
        posterior: np.ndarray,
        previous: SourceParameters,
    ) -> SourceParameters:
        """Equations (10)–(14), vectorised.

        For each source ``i`` the updates are ratios of posterior mass
        over the four cell partitions; e.g. Equation (10):

        .. math::
            a_i = \\frac{\\sum_{j: SC_{ij}=1, D_{ij}=0} Z_j}
                        {\\sum_{j: D_{ij}=0} Z_j}

        The denominator runs over the union
        :math:`S_iC_1^{D_0} \\cup S_iC_0^{D_0}` — all independent cells.
        """
        z_post = posterior  # Z_j = P(C_j = 1 | ·)
        y_post = 1.0 - posterior  # Y_j = P(C_j = 0 | ·)
        indep = 1.0 - dep
        smoothing = self.config.smoothing

        def _ratio(weight: np.ndarray, mask: np.ndarray, fallback: np.ndarray) -> np.ndarray:
            numerator = (sc * mask) @ weight
            denominator = mask @ weight
            pooled_den = float(denominator.sum())
            pooled = float(numerator.sum()) / pooled_den if pooled_den > 0 else 0.5
            numerator = numerator + smoothing * pooled
            denominator = denominator + smoothing
            with np.errstate(invalid="ignore", divide="ignore"):
                ratio = numerator / denominator
            return np.where(denominator > 0, ratio, fallback)

        a = _ratio(z_post, indep, previous.a)
        f = _ratio(z_post, dep, previous.f)
        b = _ratio(y_post, indep, previous.b)
        g = _ratio(y_post, dep, previous.g)
        z = float(z_post.mean()) if z_post.size else previous.z
        return SourceParameters(a=a, b=b, f=f, g=g, z=z).clamp(self.config.epsilon)


def run_em_ext(
    problem: SensingProblem,
    *,
    seed: SeedLike = None,
    max_iterations: int = 200,
    tolerance: float = 1e-6,
    n_restarts: int = 1,
) -> EstimationResult:
    """One-call convenience wrapper around :class:`EMExtEstimator`."""
    config = EMConfig(
        max_iterations=max_iterations, tolerance=tolerance, n_restarts=n_restarts
    )
    return EMExtEstimator(config, seed=seed).fit(problem)


__all__ = ["EMConfig", "EMExtEstimator", "run_em_ext"]
