"""EM-Ext: the dependency-aware maximum-likelihood estimator (Section IV).

The estimator jointly infers the source parameter set
:math:`θ = \\{a_i, b_i, f_i, g_i, z\\}` and the truth posterior of every
assertion from the source-claim matrix ``SC`` and dependency indicators
``D`` alone, by expectation-maximisation:

* **E-step** (Equation 9): compute
  :math:`Z_j = P(C_j = 1 | SC_j; D, θ^{(t)})` for every assertion;
* **M-step** (Equations 10–14): closed-form parameter updates that
  partition each source's cells into the four sets
  :math:`S_iC_{0/1}^{D_{0/1}}` (claim / non-claim × dependent /
  independent) and reweight by the posteriors.

The numerical work lives in the shared estimation engine
(:mod:`repro.engine`): this class wires the
:class:`~repro.engine.backends.DenseBackend` into the generic
:class:`~repro.engine.driver.EMDriver` and the shared initialisation
strategies.  The sparse and streaming estimators reuse exactly the
same kernels through other backends.

Practical extensions beyond the pseudocode (all standard EM hygiene,
documented in DESIGN.md §5.5):

* parameters are clamped to ``[ε, 1-ε]`` after every M-step;
* sources with an empty partition (e.g. no dependent cells at all) keep
  their previous value for the affected parameter;
* optional multi-restart: run EM from several random initialisations
  and keep the fixed point with the highest observed-data likelihood;
* an informative default initialisation breaks the global label-swap
  symmetry of the likelihood (the mirrored solution where every "true"
  becomes "false" has identical likelihood).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.model import DEFAULT_EPSILON, SourceParameters
from repro.core.result import EstimationResult
from repro.data.coerce import coerce_problem
from repro.data.protocol import FORMAT_CSR, FORMAT_DENSE, Problem
from repro.engine.backends import CSRBackend, DenseBackend, make_backend
from repro.engine.driver import EMDriver, IterationCallback
from repro.engine.initialisation import staged_initialisation, support_initialisation
from repro.utils.errors import ValidationError
from repro.utils.rng import RandomState, SeedLike
from repro.utils.validation import check_positive_int

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.resilience.supervisor import Deadline


@dataclass(frozen=True)
class EMConfig:
    """Hyper-parameters of the EM loop.

    Attributes
    ----------
    max_iterations:
        Hard cap on EM iterations per restart.
    tolerance:
        Convergence threshold on the maximum absolute parameter change
        between consecutive iterations (the criterion of Algorithm 2's
        "while {θ} are not convergent").
    epsilon:
        Clamping width keeping probabilities inside ``[ε, 1-ε]``.
    n_restarts:
        Number of random restarts; the best fixed point by observed-data
        log-likelihood wins.  1 reproduces the paper's single run.
    smoothing:
        Hierarchical (empirical-Bayes) pseudo-count ``s``: each M-step
        ratio becomes ``(num_i + s·pooled) / (den_i + s)`` where
        ``pooled`` is the population-level rate (all sources' numerators
        over all denominators).  Sources with rich data keep their own
        estimates; sources with a handful of cells shrink toward the
        population — which is what makes the dependency signal usable on
        field data where most sources make a single claim.  ``0``
        reproduces the paper's plain maximum-likelihood updates.
    init_strategy:
        How the first restart is seeded (later restarts are always
        random):

        * ``"staged"`` (default) — fit the nested independence model on
          the *independent* cells first (dependent cells excluded, the
          EM-Social view), then enrich: one dependency-aware M-step on
          the staged posterior seeds the full model.  This breaks the
          chicken-and-egg between the truth posterior and the dependent
          emission rates ``f, g`` — they are learned from an
          already-calibrated posterior instead of amplifying the initial
          guess.
        * ``"support"`` — a dependency-discounted vote-count posterior
          (assertions with more independent supporters start more
          credible), the classic truth-discovery warm start.
        * ``"random"`` — random source parameters (the paper's
          "initialize parameter set with random probability").
    strict:
        Failure semantics when *every* restart diverges or raises: raise
        :class:`~repro.utils.errors.ConvergenceError` (``True``) or
        degrade gracefully, returning a best-effort result whose
        :class:`~repro.engine.health.RunHealth` records what failed
        (``False``, the default).
    max_wall_seconds:
        Optional wall-clock budget for the whole multi-restart fit; the
        driver stops after the first iteration past the budget instead
        of running to ``max_iterations``.  ``None`` (default) disables
        the budget.
    restart_mode:
        How multi-restart candidates are executed:

        * ``"serial"`` (default) — one full EM run per restart, in
          sequence; the historical reference path.
        * ``"batched"`` — stack all restarts of a dense problem into
          the lanes of one :class:`~repro.engine.batched.BatchedDenseBackend`
          tensor program and run them in lock-step, retiring converged
          lanes as they finish.  Bit-for-bit the same selected fixed
          point, several times faster at Fig. 7 sizes once ``n_restarts``
          reaches ~8.  Non-dense backends fall back to serial.
    """

    max_iterations: int = 200
    tolerance: float = 1e-6
    epsilon: float = DEFAULT_EPSILON
    n_restarts: int = 1
    smoothing: float = 0.0
    init_strategy: str = "staged"
    strict: bool = False
    max_wall_seconds: Optional[float] = None
    restart_mode: str = "serial"

    def __post_init__(self) -> None:
        check_positive_int(self.max_iterations, "max_iterations")
        check_positive_int(self.n_restarts, "n_restarts")
        if not self.tolerance > 0:
            raise ValidationError(f"tolerance must be positive, got {self.tolerance}")
        if not 0 < self.epsilon < 0.5:
            raise ValidationError(f"epsilon must be in (0, 0.5), got {self.epsilon}")
        if self.smoothing < 0:
            raise ValidationError(f"smoothing must be non-negative, got {self.smoothing}")
        if self.init_strategy not in ("staged", "support", "random"):
            raise ValidationError(
                f"init_strategy must be 'staged', 'support' or 'random', got "
                f"{self.init_strategy!r}"
            )
        if self.max_wall_seconds is not None and not self.max_wall_seconds > 0:
            raise ValidationError(
                f"max_wall_seconds must be positive, got {self.max_wall_seconds}"
            )
        if self.restart_mode not in ("serial", "batched"):
            raise ValidationError(
                f"restart_mode must be 'serial' or 'batched', got "
                f"{self.restart_mode!r}"
            )


class EMExtEstimator:
    """The paper's dependency-aware joint estimator (Algorithm 2).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import EMExtEstimator, SensingProblem
    >>> sc = np.array([[1, 0, 1], [1, 1, 0]])
    >>> d = np.array([[0, 0, 1], [0, 0, 0]])
    >>> result = EMExtEstimator(seed=0).fit(SensingProblem(sc, d))
    >>> result.scores.shape
    (3,)
    """

    algorithm_name = "em-ext"

    def __init__(
        self,
        config: Optional[EMConfig] = None,
        *,
        seed: SeedLike = None,
        initial_parameters: Optional[SourceParameters] = None,
        callbacks: Sequence[IterationCallback] = (),
    ):
        self.config = config or EMConfig()
        self._seed = seed
        self.initial_parameters = initial_parameters
        self.callbacks = tuple(callbacks)

    # -- public API ------------------------------------------------------------

    def fit(self, problem: Problem) -> EstimationResult:
        """Run EM on ``problem`` (dense or CSR) and return the richest result.

        Dense problems run on the dense backend, CSR problems on the
        sparse backend — same update equations, same fixed points.  The
        one capability gap is random initialisation (random restarts or
        ``init_strategy="random"`` without explicit starting
        parameters), which only the dense backend supports; CSR input
        is then densified under the memory budget.
        """
        # Usage errors surface here, eagerly; inside the restart loop the
        # driver would treat them as per-restart runtime faults.
        if (
            self.initial_parameters is not None
            and self.initial_parameters.n_sources != problem.n_sources
        ):
            raise ValidationError(
                "initial_parameters describe "
                f"{self.initial_parameters.n_sources} sources but the "
                f"problem has {problem.n_sources}"
            )
        needs_random_draws = self.initial_parameters is None and (
            self.config.init_strategy == "random" or self.config.n_restarts > 1
        )
        needs = (
            (FORMAT_DENSE,)
            if needs_random_draws
            else (FORMAT_DENSE, FORMAT_CSR)
        )
        problem = coerce_problem(problem, needs=needs)
        backend = make_backend(
            problem,
            smoothing=self.config.smoothing,
            epsilon=self.config.epsilon,
        )
        driver = EMDriver.from_config(self.config, callbacks=self.callbacks)
        outcome = driver.fit(backend, self._initialiser(backend), self._seed)
        return EstimationResult(
            algorithm=self.algorithm_name,
            scores=outcome.posterior,
            decisions=outcome.decisions,
            parameters=outcome.parameters,
            log_likelihood=outcome.log_likelihood,
            converged=outcome.converged,
            n_iterations=outcome.n_iterations,
            trace=outcome.trace,
            health=outcome.health,
        )

    # -- internals ---------------------------------------------------------------

    def _initialiser(self, backend: "Union[DenseBackend, CSRBackend]"):
        """Restart ``index`` → starting parameters (driver protocol)."""

        def _init(index: int, rng: np.random.Generator) -> SourceParameters:
            strategy = self.config.init_strategy
            if index > 0 or self.initial_parameters is not None:
                return self._initial_parameters(backend, rng)
            if strategy == "staged":
                return staged_initialisation(
                    backend, tolerance=self.config.tolerance
                )
            if strategy == "support":
                return support_initialisation(backend)
            return self._initial_parameters(backend, rng)

        return _init

    def _initial_parameters(
        self, backend: "Union[DenseBackend, CSRBackend]", rng: np.random.Generator
    ) -> SourceParameters:
        if self.initial_parameters is not None:
            if self.initial_parameters.n_sources != backend.n_sources:
                raise ValidationError(
                    "initial_parameters describe "
                    f"{self.initial_parameters.n_sources} sources but the "
                    f"problem has {backend.n_sources}"
                )
            return self.initial_parameters.clamp(self.config.epsilon)
        return backend.random_params(rng)


def _batch_lane_outcomes(
    problems: Sequence[Problem],
    seeds: Sequence[SeedLike],
    config: EMConfig,
    *,
    initial_parameters: Optional[Sequence[Optional[SourceParameters]]] = None,
    budget: Optional["Deadline"] = None,
    collect_events: bool = False,
) -> List[Tuple[Optional[EstimationResult], list, Optional[Exception]]]:
    """One ``(result, events, error)`` triple per problem, lane-batched.

    The shared machinery behind :func:`fit_em_ext_batch` and the
    harness's ``trial_mode="batched"``: every problem's restarts become
    lanes of one stacked tensor pass
    (:class:`~repro.engine.batched.BatchedDenseBackend`), and each
    problem's lanes are then fed through the driver's selection path
    (:meth:`~repro.engine.driver.EMDriver.consume_candidates`) — so the
    per-problem results are bit-for-bit what the scalar
    :meth:`EMExtEstimator.fit` would return with the same seed.  A
    problem whose setup or selection raises carries the exception in
    its own triple instead of poisoning the batch (the caller decides
    whether to re-raise or eject the lane to the scalar path).

    ``events`` holds the problem's per-iteration telemetry in restart
    order (empty unless ``collect_events``); per-event numbers match
    the scalar run except ``duration_seconds``, which is the shared
    batched pass's wall time.  ``config.max_wall_seconds``, when set,
    budgets the *whole* batch — lanes share each pass's wall clock, so
    a per-problem budget is not separable (timing budgets were never
    bitwise-reproducible anyway).

    ``initial_parameters``, when given, supplies one optional warm
    start per problem: entry ``t`` plays the role of
    ``EMExtEstimator(..., initial_parameters=initial_parameters[t])``
    in the parity contract (``None`` entries keep the config's init
    strategy).  ``budget``, when given, is a cooperative
    :class:`~repro.resilience.supervisor.Deadline` checked between
    batched passes — the serving layer's per-drain admission budget,
    on top of (not instead of) ``max_wall_seconds``.
    """
    from repro.engine.batched import BatchedDenseBackend, run_batched_lanes

    if len(problems) != len(seeds):
        raise ValidationError(
            f"{len(problems)} problems but {len(seeds)} seeds"
        )
    if initial_parameters is not None and len(initial_parameters) != len(problems):
        raise ValidationError(
            f"{len(problems)} problems but {len(initial_parameters)} "
            "initial parameter sets"
        )
    driver = EMDriver.from_config(config)
    lane_backends: List[DenseBackend] = []
    lane_params: List[SourceParameters] = []
    #: Per problem: (prepared restart indices, init errors, setup error).
    staged: List[Tuple[Sequence[int], dict, Optional[Exception]]] = []
    for position, (problem, seed) in enumerate(zip(problems, seeds)):
        warm = (
            initial_parameters[position]
            if initial_parameters is not None
            else None
        )
        try:
            # Mirror EMExtEstimator.fit's eager usage-error check so a
            # mismatched warm start surfaces as the same ValidationError
            # the scalar path raises (not a per-restart init fault).
            if warm is not None and warm.n_sources != problem.n_sources:
                raise ValidationError(
                    "initial_parameters describe "
                    f"{warm.n_sources} sources but the "
                    f"problem has {problem.n_sources}"
                )
            dense = coerce_problem(problem, needs=(FORMAT_DENSE,))
            backend = make_backend(
                dense, smoothing=config.smoothing, epsilon=config.epsilon
            )
            estimator = EMExtEstimator(
                config, seed=seed, initial_parameters=warm
            )
            # Warm starts consume the spawned restart generators in
            # serial order, exactly as EMDriver.fit would.
            prepared, init_errors = driver._prepare_restarts(
                estimator._initialiser(backend), RandomState(seed)
            )
        except Exception as error:
            staged.append(((), {}, error))
            continue
        staged.append(([index for index, _ in prepared], init_errors, None))
        for _, params in prepared:
            lane_backends.append(backend)
            lane_params.append(params)
    deadline = (
        time.perf_counter() + config.max_wall_seconds
        if config.max_wall_seconds is not None
        else None
    )
    lanes = (
        run_batched_lanes(
            BatchedDenseBackend.from_backends(lane_backends),
            lane_params,
            max_iterations=config.max_iterations,
            tolerance=config.tolerance,
            deadline=deadline,
            budget=budget,
            collect_events=collect_events,
        )
        if lane_params
        else []
    )
    outcomes: List[Tuple[Optional[EstimationResult], list, Optional[Exception]]] = []
    cursor = 0
    for indices, init_errors, setup_error in staged:
        if setup_error is not None:
            outcomes.append((None, [], setup_error))
            continue
        lane_by_index = {}
        for index in indices:
            lane_by_index[index] = lanes[cursor]
            cursor += 1
        events: list = []
        triples = []
        for index in range(config.n_restarts):
            if index in init_errors:
                triples.append((index, None, init_errors[index]))
                continue
            lane = lane_by_index[index]
            events.extend(lane.events)
            triples.append((index, lane.outcome, lane.error))
        try:
            outcome = driver.consume_candidates(iter(triples))
        except Exception as error:
            outcomes.append((None, events, error))
            continue
        outcomes.append(
            (
                EstimationResult(
                    algorithm=EMExtEstimator.algorithm_name,
                    scores=outcome.posterior,
                    decisions=outcome.decisions,
                    parameters=outcome.parameters,
                    log_likelihood=outcome.log_likelihood,
                    converged=outcome.converged,
                    n_iterations=outcome.n_iterations,
                    trace=outcome.trace,
                    health=outcome.health,
                ),
                events,
                None,
            )
        )
    return outcomes


def fit_em_ext_batch(
    problems: Sequence[Problem],
    *,
    seeds: Sequence[SeedLike],
    config: Optional[EMConfig] = None,
    initial_parameters: Optional[Sequence[Optional[SourceParameters]]] = None,
    budget: Optional["Deadline"] = None,
    callbacks: Sequence[IterationCallback] = (),
) -> List[EstimationResult]:
    """Fit EM-Ext on many same-shape problems as one batched tensor pass.

    Every problem's restarts become lanes of a single stacked
    ``(B, n, m)`` program (B = problems × restarts); result ``t`` is
    bit-for-bit what ``EMExtEstimator(config, seed=seeds[t],
    initial_parameters=initial_parameters[t]).fit(problems[t])``
    returns — same parameters, posterior, trace, health and restart
    selection (see the parity wall in
    ``tests/engine/test_batched.py``).  ``budget`` optionally bounds
    the whole batch with a cooperative
    :class:`~repro.resilience.supervisor.Deadline` (the serving
    layer's drain budget).  Requires same-shape problems
    (CSR input is densified); a problem whose fit would raise re-raises
    the same exception here, after earlier problems' telemetry has been
    delivered.

    ``callbacks`` receive each problem's :class:`IterationEvent` stream
    after the batch completes, in problem-then-restart order; the
    events carry the scalar run's deltas and log-likelihoods but the
    shared pass's wall time, and an early-stop request cannot reach an
    already-finished lane (as on the driver's parallel path).
    """
    config = config or EMConfig()
    outcomes = _batch_lane_outcomes(
        problems,
        seeds,
        config,
        initial_parameters=initial_parameters,
        budget=budget,
        collect_events=bool(callbacks),
    )
    results: List[EstimationResult] = []
    for result, events, error in outcomes:
        if callbacks and events:
            from repro.parallel.merge import replay_events

            replay_events(events, callbacks)
        if error is not None:
            raise error
        assert result is not None
        results.append(result)
    return results


def run_em_ext(
    problem: Problem,
    *,
    seed: SeedLike = None,
    max_iterations: int = 200,
    tolerance: float = 1e-6,
    n_restarts: int = 1,
    smoothing: float = 0.0,
    init_strategy: str = "staged",
) -> EstimationResult:
    """One-call convenience wrapper around :class:`EMExtEstimator`."""
    config = EMConfig(
        max_iterations=max_iterations,
        tolerance=tolerance,
        n_restarts=n_restarts,
        smoothing=smoothing,
        init_strategy=init_strategy,
    )
    return EMExtEstimator(config, seed=seed).fit(problem)


__all__ = ["EMConfig", "EMExtEstimator", "fit_em_ext_batch", "run_em_ext"]
