"""Dense sensing-problem containers (compatibility adapter).

The containers themselves now live in the format-polymorphic data
layer (:mod:`repro.data.dense`); this module re-exports them under
their historical import path so existing code and pickles keep
working.  ``SensingProblem`` is :class:`repro.data.DenseProblem`.

See the module docstring of :mod:`repro.data.dense` for the paper
terminology (Section II-A) and DESIGN.md §5.2 for the every-cell
definition of the dependency indicators.
"""

from __future__ import annotations

from repro.data.dense import (
    DenseProblem,
    DependencyMatrix,
    SensingProblem,
    SourceClaimMatrix,
)

__all__ = [
    "DenseProblem",
    "DependencyMatrix",
    "SensingProblem",
    "SourceClaimMatrix",
]
