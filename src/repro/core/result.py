"""Result containers returned by fact-finders.

All algorithms in the library — the dependency-aware EM of the paper
and every baseline — return a :class:`FactFindingResult`, so downstream
code (metrics, ranking, the Apollo pipeline, benchmarks) can treat them
uniformly.  Estimation-theoretic algorithms return the richer
:class:`EstimationResult`, which additionally carries the fitted
parameter set and convergence diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.model import ParameterTrace, SourceParameters
from repro.engine.health import RunHealth
from repro.utils.errors import ValidationError


@dataclass
class FactFindingResult:
    """The output of a fact-finder on one :class:`SensingProblem`.

    Attributes
    ----------
    algorithm:
        Short identifier of the producing algorithm (e.g. ``"em-ext"``).
    scores:
        Per-assertion credibility scores, higher = more credible.  For
        probabilistic algorithms these are posteriors in ``[0, 1]``; for
        heuristics they are algorithm-specific but monotone in belief.
    decisions:
        Per-assertion binary true/false labels.
    extras:
        Algorithm-specific diagnostics (iteration counts, per-source
        reliability estimates, ...).
    """

    algorithm: str
    scores: np.ndarray
    decisions: np.ndarray
    extras: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.scores = np.asarray(self.scores, dtype=np.float64)
        self.decisions = np.asarray(self.decisions)
        if self.scores.ndim != 1:
            raise ValidationError(f"scores must be 1-D, got shape {self.scores.shape}")
        if self.decisions.shape != self.scores.shape:
            raise ValidationError(
                "decisions and scores must have the same shape, got "
                f"{self.decisions.shape} vs {self.scores.shape}"
            )
        if self.decisions.size and not np.isin(self.decisions, (0, 1)).all():
            raise ValidationError("decisions must contain only 0/1 labels")
        self.decisions = self.decisions.astype(np.int8)

    @property
    def n_assertions(self) -> int:
        """Number of assertions scored."""
        return self.scores.size

    def ranking(self) -> np.ndarray:
        """Assertion indices sorted by decreasing credibility.

        Ties break by assertion index, which keeps rankings
        deterministic across runs.
        """
        # argsort is stable for the secondary (index) key when we negate
        # scores, because equal scores preserve original order.
        return np.argsort(-self.scores, kind="stable")

    def top_k(self, k: int) -> np.ndarray:
        """The ``k`` most credible assertion indices (k may exceed m)."""
        if k < 0:
            raise ValidationError(f"k must be non-negative, got {k}")
        return self.ranking()[:k]


@dataclass
class EstimationResult(FactFindingResult):
    """A :class:`FactFindingResult` from a maximum-likelihood estimator.

    ``scores`` holds the truth posterior :math:`P(C_j = 1 | SC_j; D, θ)`
    and ``decisions`` its 0.5-threshold labels.
    """

    parameters: Optional[SourceParameters] = None
    log_likelihood: float = float("nan")
    converged: bool = False
    n_iterations: int = 0
    trace: Optional[ParameterTrace] = None
    #: Multi-restart health report (populated by engine-driven estimators).
    health: Optional[RunHealth] = None

    @property
    def posterior(self) -> np.ndarray:
        """Alias for ``scores``, under its estimation-theoretic name."""
        return self.scores


__all__ = ["EstimationResult", "FactFindingResult"]
