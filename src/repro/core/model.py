"""Source behaviour model of Section II-B.

Each source :math:`S_i` is described by four emission probabilities and
the population shares one prior:

* ``a[i]`` — :math:`P(S_iC_j = 1 \\mid C_j = 1, D_{ij} = 0)`: the
  probability of making an *independent* claim about a *true* assertion;
* ``b[i]`` — :math:`P(S_iC_j = 1 \\mid C_j = 0, D_{ij} = 0)`: independent
  claim about a *false* assertion;
* ``f[i]`` — :math:`P(S_iC_j = 1 \\mid C_j = 1, D_{ij} = 1)`: *dependent*
  claim about a true assertion;
* ``g[i]`` — :math:`P(S_iC_j = 1 \\mid C_j = 0, D_{ij} = 1)`: dependent
  claim about a false assertion;
* ``z`` — :math:`P(C_j = 1)`: prior probability that an assertion is true.

The set :math:`\\theta = \\{a_i, b_i, f_i, g_i\\}_{i=1..n} \\cup \\{z\\}` is
what both the error bound (which assumes it known) and the EM-Ext
estimator (which infers it) operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.utils.errors import ValidationError
from repro.utils.rng import RandomState, SeedLike
from repro.utils.validation import check_probability, check_probability_array

#: Default clamping width used to keep parameters away from {0, 1} so
#: log-likelihoods stay finite.
DEFAULT_EPSILON = 1e-6


@dataclass(frozen=True)
class SourceParameters:
    """The full parameter set :math:`\\theta` of the social channel.

    Immutable; all update operations return new instances.  Arrays are
    one entry per source and are defensively copied and validated at
    construction.
    """

    a: np.ndarray
    b: np.ndarray
    f: np.ndarray
    g: np.ndarray
    z: float

    def __post_init__(self) -> None:
        for name in ("a", "b", "f", "g"):
            array = check_probability_array(getattr(self, name), name)
            if array.ndim != 1:
                raise ValidationError(f"{name} must be 1-D, got shape {array.shape}")
            object.__setattr__(self, name, array)
        lengths = {self.a.size, self.b.size, self.f.size, self.g.size}
        if len(lengths) != 1:
            raise ValidationError(
                "a, b, f, g must have the same length, got "
                f"{(self.a.size, self.b.size, self.f.size, self.g.size)}"
            )
        object.__setattr__(self, "z", check_probability(self.z, "z"))

    @classmethod
    def _trusted(
        cls, a: np.ndarray, b: np.ndarray, f: np.ndarray, g: np.ndarray, z: float
    ) -> "SourceParameters":
        """Construct without re-validation, for provably-valid inputs.

        Only for internal call sites whose arrays are fresh float64
        vectors already known to lie in ``[0, 1]`` (e.g. the output of
        :meth:`clamp`); the arrays are adopted, not copied.
        """
        self = object.__new__(cls)
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)
        object.__setattr__(self, "f", f)
        object.__setattr__(self, "g", g)
        object.__setattr__(self, "z", z)
        return self

    @property
    def n_sources(self) -> int:
        """Number of sources described by this parameter set."""
        return self.a.size

    @classmethod
    def from_scalars(
        cls, n_sources: int, a: float, b: float, f: float, g: float, z: float
    ) -> "SourceParameters":
        """Build a homogeneous population where every source shares θ_i."""
        if n_sources <= 0:
            raise ValidationError(f"n_sources must be positive, got {n_sources}")
        ones = np.ones(n_sources)
        return cls(a=a * ones, b=b * ones, f=f * ones, g=g * ones, z=z)

    @classmethod
    def random(
        cls,
        n_sources: int,
        seed: SeedLike = None,
        *,
        informative: bool = True,
    ) -> "SourceParameters":
        """Draw a random parameter set, e.g. for EM initialisation.

        With ``informative=True`` (the default) true-emission rates are
        biased above false-emission rates, which is the standard EM
        initialisation that breaks the label-swap symmetry of the
        likelihood (otherwise EM may converge to the mirrored solution
        where "true" and "false" are exchanged).
        """
        rng = RandomState(seed)
        if informative:
            a = rng.uniform(0.4, 0.8, size=n_sources)
            b = rng.uniform(0.05, 0.35, size=n_sources)
            f = rng.uniform(0.4, 0.8, size=n_sources)
            g = rng.uniform(0.05, 0.35, size=n_sources)
        else:
            a, b, f, g = rng.uniform(0.05, 0.95, size=(4, n_sources))
        z = float(rng.uniform(0.3, 0.7))
        return cls(a=a, b=b, f=f, g=g, z=z)

    def clamp(self, epsilon: float = DEFAULT_EPSILON) -> "SourceParameters":
        """Return a copy with every probability pushed into ``[ε, 1-ε]``."""
        if not 0.0 < epsilon < 0.5:
            raise ValidationError(f"epsilon must be in (0, 0.5), got {epsilon}")

        def _clip(x: np.ndarray) -> np.ndarray:
            # np.clip's own definition, minus its dispatch overhead —
            # clamp runs once per EM iteration.
            return np.minimum(np.maximum(x, epsilon), 1.0 - epsilon)

        # The clipped arrays are fresh float64 vectors inside [ε, 1-ε]
        # by construction (self was validated at its own construction),
        # so the usual __post_init__ re-validation would be redundant
        # work on the hot M-step path.
        return SourceParameters._trusted(
            a=_clip(self.a),
            b=_clip(self.b),
            f=_clip(self.f),
            g=_clip(self.g),
            z=float(np.minimum(np.maximum(self.z, epsilon), 1.0 - epsilon)),
        )

    def is_finite(self) -> bool:
        """``True`` when every rate and the prior are finite numbers."""
        return bool(
            np.isfinite(self.a).all()
            and np.isfinite(self.b).all()
            and np.isfinite(self.f).all()
            and np.isfinite(self.g).all()
            and np.isfinite(self.z)
        )

    def restrict(self, indices: np.ndarray) -> "SourceParameters":
        """Return the parameter set of the source subset ``indices``."""
        idx = np.asarray(indices)
        return SourceParameters(
            a=self.a[idx], b=self.b[idx], f=self.f[idx], g=self.g[idx], z=self.z
        )

    def max_difference(self, other: "SourceParameters") -> float:
        """Largest absolute difference across all parameters.

        Used as the EM convergence criterion.
        """
        if self.n_sources != other.n_sources:
            raise ValidationError(
                "cannot compare parameter sets for different source counts: "
                f"{self.n_sources} vs {other.n_sources}"
            )
        if self.n_sources:
            diffs = [
                float(np.abs(self.a - other.a).max()),
                float(np.abs(self.b - other.b).max()),
                float(np.abs(self.f - other.f).max()),
                float(np.abs(self.g - other.g).max()),
            ]
        else:
            diffs = []
        diffs.append(abs(self.z - other.z))
        return max(diffs)

    def to_dict(self) -> Dict[str, object]:
        """Serialise to plain Python types (JSON-compatible)."""
        return {
            "a": self.a.tolist(),
            "b": self.b.tolist(),
            "f": self.f.tolist(),
            "g": self.g.tolist(),
            "z": self.z,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SourceParameters":
        """Inverse of :meth:`to_dict`."""
        return cls(
            a=np.asarray(payload["a"], dtype=np.float64),
            b=np.asarray(payload["b"], dtype=np.float64),
            f=np.asarray(payload["f"], dtype=np.float64),
            g=np.asarray(payload["g"], dtype=np.float64),
            z=float(payload["z"]),
        )

    def independent_odds(self) -> np.ndarray:
        """Per-source discrimination odds ``a_i / b_i`` for independent claims."""
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(self.b > 0, self.a / self.b, np.inf)

    def dependent_odds(self) -> np.ndarray:
        """Per-source discrimination odds ``f_i / g_i`` for dependent claims."""
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(self.g > 0, self.f / self.g, np.inf)


@dataclass
class ParameterTrace:
    """Per-iteration history recorded by iterative estimators."""

    log_likelihoods: list = field(default_factory=list)
    parameter_deltas: list = field(default_factory=list)

    def record(self, log_likelihood: float, delta: float) -> None:
        """Append one iteration's diagnostics."""
        self.log_likelihoods.append(float(log_likelihood))
        self.parameter_deltas.append(float(delta))

    @property
    def n_iterations(self) -> int:
        """How many iterations were recorded."""
        return len(self.log_likelihoods)


__all__ = ["DEFAULT_EPSILON", "ParameterTrace", "SourceParameters"]
