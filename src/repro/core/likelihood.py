"""Likelihood computations for the dependency-aware source model.

Implements Table II and Equations (4), (5), (9) of the paper in
vectorised log-space form.  Every estimator and bound in the library
funnels through these functions, so they are the numerical backbone of
the reproduction.

Conventions
-----------
* ``sc`` — an ``(n, m)`` 0/1 claim matrix (or an ``(n,)`` column);
* ``d``  — dependency indicators of the same shape;
* log-probabilities use natural log; impossible events yield ``-inf``
  only if parameters are exactly 0/1 (callers clamp first).
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.core.matrix import SensingProblem
from repro.core.model import SourceParameters
from repro.kernels.likelihood import dense_column_log_likelihoods
from repro.kernels.tables import LogParameterTables
from repro.utils.errors import ValidationError

ArrayLike = Union[np.ndarray, list]


def _log_z_pair(z: float) -> Tuple[float, float]:
    """``(log z, log(1-z))`` without an errstate round-trip.

    The scalar logs only hit the ``divide`` warning at the closed
    endpoints, which are handled explicitly; ``log1p(-z)`` is kept for
    the complement (``log(1 - z)`` would round ``1 - z`` first).
    """
    log_z = float(np.log(z)) if z != 0.0 else float("-inf")
    log_1z = float(np.log1p(-z)) if z != 1.0 else float("-inf")
    return log_z, log_1z


def _is_binary(values: np.ndarray) -> bool:
    return bool(((values == 0) | (values == 1)).all())


def emission_probability(
    sc: int, d: int, c: int, params: SourceParameters, source: int
) -> float:
    """Scalar :math:`P(S_iC_j = sc \\mid C_j = c; D_{ij} = d)` per Table II."""
    if sc not in (0, 1) or d not in (0, 1) or c not in (0, 1):
        raise ValidationError("sc, d and c must all be 0 or 1")
    if c == 1:
        rate = params.f[source] if d == 1 else params.a[source]
    else:
        rate = params.g[source] if d == 1 else params.b[source]
    return float(rate if sc == 1 else 1.0 - rate)


def _emission_log_rates(
    d: np.ndarray, params: SourceParameters
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-cell log emission rates for the four (claim, truth) combinations.

    Returns ``(log_p1_true, log_p0_true, log_p1_false, log_p0_false)``
    where e.g. ``log_p1_true[i, j]`` is the log-probability that source
    ``i`` claims assertion ``j`` given the assertion is true, under the
    cell's dependency flag.
    """
    d = np.asarray(d, dtype=np.float64)
    with np.errstate(divide="ignore"):
        log_a, log_1a = np.log(params.a), np.log1p(-params.a)
        log_b, log_1b = np.log(params.b), np.log1p(-params.b)
        log_f, log_1f = np.log(params.f), np.log1p(-params.f)
        log_g, log_1g = np.log(params.g), np.log1p(-params.g)

    def _mix(dep_rate: np.ndarray, ind_rate: np.ndarray) -> np.ndarray:
        # Broadcast per-source rates over assertions via the D mask.
        return d * dep_rate[..., None] + (1.0 - d) * ind_rate[..., None]

    if d.ndim == 1:
        # A single column: rates are (n,) and broadcasting above would
        # produce (n, n); handle explicitly.
        mix = lambda dep, ind: d * dep + (1.0 - d) * ind  # noqa: E731
        return (
            mix(log_f, log_a),
            mix(log_1f, log_1a),
            mix(log_g, log_b),
            mix(log_1g, log_1b),
        )
    return (
        _mix(log_f, log_a),
        _mix(log_1f, log_1a),
        _mix(log_g, log_b),
        _mix(log_1g, log_1b),
    )


def column_log_likelihoods(
    sc: ArrayLike, d: ArrayLike, params: SourceParameters
) -> Tuple[np.ndarray, np.ndarray]:
    """Log of Equations (4) and (5) for every assertion column.

    Parameters
    ----------
    sc, d : ``(n, m)`` arrays (or ``(n,)`` single columns).

    Returns
    -------
    ``(log_p_true, log_p_false)`` — each ``(m,)`` (or scalar arrays for a
    single column): :math:`\\log P(SC_j \\mid C_j = 1; D, θ)` and
    :math:`\\log P(SC_j \\mid C_j = 0; D, θ)`.
    """
    sc = np.asarray(sc, dtype=np.float64)
    d = np.asarray(d, dtype=np.float64)
    if sc.shape != d.shape:
        raise ValidationError(f"sc and d shapes differ: {sc.shape} vs {d.shape}")
    n = sc.shape[0]
    if n != params.n_sources:
        raise ValidationError(
            f"matrix has {n} sources but parameters describe {params.n_sources}"
        )
    if sc.ndim == 2:
        tables = LogParameterTables.build(params)
        if tables.finite and _is_binary(sc) and _is_binary(d):
            # Fast path: SC and D are 0/1, so every multiply-add below is
            # an exact selection — the table-select kernel returns the
            # bitwise-identical sums with fewer array passes.
            return dense_column_log_likelihoods(sc != 0, d != 0, tables)
    log_p1_t, log_p0_t, log_p1_f, log_p0_f = _emission_log_rates(d, params)
    log_true = sc * log_p1_t + (1.0 - sc) * log_p0_t
    log_false = sc * log_p1_f + (1.0 - sc) * log_p0_f
    return log_true.sum(axis=0), log_false.sum(axis=0)


def pattern_log_joint(
    pattern: np.ndarray, d_column: np.ndarray, params: SourceParameters
) -> Tuple[float, float]:
    """Log joints ``(log P(pattern, C=1), log P(pattern, C=0))`` for one column.

    ``pattern`` is an ``(n,)`` 0/1 vector of hypothetical claims.  Used
    by the error-bound machinery, which reasons about *possible* claim
    patterns rather than observed ones.
    """
    log_true, log_false = column_log_likelihoods(
        np.asarray(pattern, dtype=np.float64), np.asarray(d_column, dtype=np.float64), params
    )
    with np.errstate(divide="ignore"):
        return (
            float(log_true + np.log(params.z)),
            float(log_false + np.log1p(-params.z)),
        )


def posterior_truth(
    problem: SensingProblem, params: SourceParameters
) -> np.ndarray:
    """Equation (9): :math:`P(C_j = 1 \\mid SC_j; D, θ)` for every assertion.

    Computed in log space with a stable log-sum-exp normalisation.
    """
    log_true, log_false = column_log_likelihoods(
        problem.claims.values, problem.dependency.values, params
    )
    return posterior_from_log_likelihoods(log_true, log_false, params.z)


def posterior_from_log_likelihoods(
    log_true: np.ndarray, log_false: np.ndarray, z: float
) -> np.ndarray:
    """Stable Bayes posterior from per-column log likelihoods and prior ``z``."""
    log_z, log_1z = _log_z_pair(z)
    joint_true = np.asarray(log_true, dtype=np.float64) + log_z
    joint_false = np.asarray(log_false, dtype=np.float64) + log_1z
    top = np.maximum(joint_true, joint_false)
    if np.isfinite(top).all():
        # Hot path (every EM iteration lands here): at least one joint
        # per column is finite, so the log-sum-exp needs no guards.
        num = np.exp(joint_true - top)
        return num / (num + np.exp(joint_false - top))
    # Columns where both joints are -inf (possible when z ∈ {0,1} meets a
    # zero-probability pattern) get an uninformative 0.5 posterior.
    with np.errstate(invalid="ignore"):
        num = np.exp(joint_true - top)
        den = num + np.exp(joint_false - top)
        return np.where(np.isfinite(top), num / den, 0.5)


def data_log_likelihood(problem: SensingProblem, params: SourceParameters) -> float:
    """Observed-data log likelihood :math:`\\mathcal{L}` (Equation 7).

    The sum over assertions of
    :math:`\\log \\sum_{C_j∈\\{0,1\\}} P(SC_j|C_j; D, θ) P(C_j; θ)`.
    """
    log_true, log_false = column_log_likelihoods(
        problem.claims.values, problem.dependency.values, params
    )
    return log_likelihood_from_log_columns(log_true, log_false, params.z)


def log_likelihood_from_log_columns(
    log_true: np.ndarray, log_false: np.ndarray, z: float
) -> float:
    """Equation (7) from per-column log likelihoods and the prior ``z``.

    The stable log-sum-exp tail shared by :func:`data_log_likelihood`
    and the engine backends, letting an E-step reuse one likelihood
    pass for both the posterior and :math:`\\mathcal{L}`.
    """
    log_z, log_1z = _log_z_pair(z)
    joint_true = np.asarray(log_true, dtype=np.float64) + log_z
    joint_false = np.asarray(log_false, dtype=np.float64) + log_1z
    top = np.maximum(joint_true, joint_false)
    safe_top = np.where(np.isfinite(top), top, 0.0)
    column_ll = safe_top + np.log(
        np.exp(joint_true - safe_top) + np.exp(joint_false - safe_top)
    )
    return float(column_ll.sum())


__all__ = [
    "column_log_likelihoods",
    "data_log_likelihood",
    "emission_probability",
    "log_likelihood_from_log_columns",
    "pattern_log_joint",
    "posterior_from_log_likelihoods",
    "posterior_truth",
]
