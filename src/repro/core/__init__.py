"""Core dependency-aware social-sensing model (the paper's contribution).

Public surface:

* :class:`SourceParameters` — the channel parameter set θ (Section II-B);
* :class:`SourceClaimMatrix` / :class:`DependencyMatrix` /
  :class:`SensingProblem` — the data model (Section II-A);
* likelihood helpers implementing Table II and Equations (4)–(9);
* :class:`EMExtEstimator` — the dependency-aware EM (Section IV).
"""

from repro.core.em_ext import EMConfig, EMExtEstimator, fit_em_ext_batch, run_em_ext
from repro.core.likelihood import (
    column_log_likelihoods,
    data_log_likelihood,
    emission_probability,
    pattern_log_joint,
    posterior_from_log_likelihoods,
    posterior_truth,
)
from repro.core.matrix import DependencyMatrix, SensingProblem, SourceClaimMatrix
from repro.core.model import DEFAULT_EPSILON, ParameterTrace, SourceParameters
from repro.core.result import EstimationResult, FactFindingResult

__all__ = [
    "DEFAULT_EPSILON",
    "DependencyMatrix",
    "EMConfig",
    "EMExtEstimator",
    "EstimationResult",
    "FactFindingResult",
    "ParameterTrace",
    "SensingProblem",
    "SourceClaimMatrix",
    "SourceParameters",
    "column_log_likelihoods",
    "data_log_likelihood",
    "emission_probability",
    "fit_em_ext_batch",
    "pattern_log_joint",
    "posterior_from_log_likelihoods",
    "posterior_truth",
    "run_em_ext",
]
