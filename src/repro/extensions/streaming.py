"""Streaming (recursive) dependency-aware estimation.

The paper's related work includes a recursive ground-truth estimator
for social data *streams* (Yao et al., IPSN 2016).  This extension
brings that capability to the dependency-aware model: claims arrive in
batches (e.g. one batch per hour of a crawl), and the estimator updates
its source parameters incrementally instead of refitting from scratch.

Mechanism: the dependency-aware M-step is a ratio of posterior-weighted
counts, so the model state is exactly the engine's
:class:`~repro.engine.statistics.SufficientStatistics` — eight count
vectors (numerator/denominator for each of ``a, b, f, g``) plus the
prior's counters.  Each batch contributes the counts produced by the
shared :class:`~repro.engine.backends.DenseBackend`; a forgetting
factor ``decay`` exponentially discounts history so the estimator
tracks sources whose behaviour drifts.  The streaming estimator is
therefore a thin decayed wrapper over the same accumulator the batch
estimators use.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.model import DEFAULT_EPSILON, SourceParameters
from repro.data.coerce import coerce_problem
from repro.data.protocol import FORMAT_DENSE, Problem
from repro.core.result import EstimationResult
from repro.engine.backends import DenseBackend
from repro.engine.initialisation import support_posterior
from repro.engine.statistics import SufficientStatistics
from repro.utils.errors import DataError, ValidationError
from repro.utils.rng import RandomState, SeedLike
from repro.utils.validation import check_positive_int

#: Convergence threshold of the inner refinement loop: the posterior is
#: considered settled once its max absolute change falls below this.
INNER_TOLERANCE = 1e-8

#: Amplitude of the seeded cold-start jitter (see ``StreamingEMExt``).
_COLD_START_JITTER = 0.05


class StreamingEMExt:
    """Incremental dependency-aware estimator over claim batches.

    Every batch must cover the same source population (same row
    indices); assertions are new per batch, as in a live stream where
    each window surfaces fresh statements.

    ``seed`` controls the only stochastic choice the stream makes: a
    small symmetric jitter applied to the first batch's cold-start
    support posterior, which decorrelates parallel streams that watch
    the same window (they would otherwise all start from the identical
    fixed point).  ``seed=None`` (the default) applies no jitter, so
    the historical fully-deterministic cold start is preserved
    bit-for-bit; any other seed is itself deterministic — two streams
    built with the same seed produce identical results.

    Examples
    --------
    >>> from repro.synthetic import generate_dataset
    >>> stream = StreamingEMExt(n_sources=20)
    >>> batch = generate_dataset(seed=1).problem.without_truth()
    >>> result = stream.partial_fit(batch)
    >>> stream.n_batches
    1
    """

    def __init__(
        self,
        n_sources: int,
        *,
        decay: float = 0.95,
        inner_iterations: int = 25,
        epsilon: float = DEFAULT_EPSILON,
        initial_parameters: Optional[SourceParameters] = None,
        seed: SeedLike = None,
    ):
        check_positive_int(n_sources, "n_sources")
        check_positive_int(inner_iterations, "inner_iterations")
        if not 0.0 < decay <= 1.0:
            raise ValidationError(f"decay must be in (0, 1], got {decay}")
        if not 0 < epsilon < 0.5:
            raise ValidationError(f"epsilon must be in (0, 0.5), got {epsilon}")
        self.n_sources = n_sources
        self.decay = decay
        self.inner_iterations = inner_iterations
        self.epsilon = epsilon
        if initial_parameters is not None:
            if initial_parameters.n_sources != n_sources:
                raise ValidationError(
                    f"initial_parameters describe {initial_parameters.n_sources} "
                    f"sources, expected {n_sources}"
                )
            self.parameters = initial_parameters.clamp(epsilon)
        else:
            self.parameters = SourceParameters.from_scalars(
                n_sources, a=0.55, b=0.45, f=0.55, g=0.45, z=0.5
            )
        self._stats = SufficientStatistics.zeros(n_sources)
        self.n_batches = 0
        self._seed = seed

    def _validate_batch(self, batch: "Problem") -> None:
        """Reject batches that would corrupt the accumulated statistics."""
        if batch.n_sources != self.n_sources:
            raise ValidationError(
                f"batch has {batch.n_sources} sources, stream expects "
                f"{self.n_sources}"
            )
        if batch.n_assertions == 0:
            raise ValidationError("batch carries no assertions")
        if not np.all(np.isfinite(batch.claims.values)):
            raise DataError("batch SC matrix contains non-finite values")
        if not np.all(np.isfinite(batch.dependency.values)):
            raise DataError("batch dependency matrix contains non-finite values")

    def partial_fit(self, batch: "Problem") -> EstimationResult:
        """Absorb one claim batch and return its truth estimates.

        Batches may arrive in either storage format; CSR batches are
        densified under the memory budget before the update.

        The batch's posterior is refined with a few inner EM iterations
        (E-step on the batch, M-step on the decayed global statistics),
        so early batches are not frozen into a cold-start estimate.
        The returned result reports what that loop actually did:
        ``n_iterations`` is the number of refinement passes executed
        and ``converged`` is whether the final posterior change fell
        below :data:`INNER_TOLERANCE` (a batch that burned the whole
        ``inner_iterations`` budget without settling reports
        ``converged=False``).

        A batch that fails — invalid shape, non-finite inputs, or a
        failure mid-update — leaves the stream exactly as it was: the
        statistics, parameters and batch counter are snapshotted before
        the update and rolled back on any exception, so one poisoned
        window cannot corrupt the accumulated state.
        """
        batch = coerce_problem(batch, needs=FORMAT_DENSE)
        self._validate_batch(batch)
        stats_snapshot = self._stats.copy()
        parameters_snapshot = self.parameters
        batches_snapshot = self.n_batches
        try:
            backend = DenseBackend(batch, epsilon=self.epsilon)
            if self.n_batches == 0:
                # Cold start: the neutral parameters carry no signal yet, so
                # seed the first batch's posterior from dependency-discounted
                # support (the same warm start the batch estimators use).
                posterior = support_posterior(backend)
                if self._seed is not None:
                    jitter = RandomState(self._seed).uniform(
                        -_COLD_START_JITTER, _COLD_START_JITTER, posterior.shape
                    )
                    posterior = np.clip(
                        posterior + jitter, self.epsilon, 1.0 - self.epsilon
                    )
            else:
                posterior = backend.posterior(self.parameters)
            n_iterations = 0
            converged = False
            for _ in range(self.inner_iterations):
                counts, z_counts = backend.partition_counts(posterior)
                snapshot = self._stats.merged_rates(
                    counts, z_counts, self.decay, self.parameters, self.epsilon
                )
                new_posterior = backend.posterior(snapshot)
                delta = (
                    float(np.max(np.abs(new_posterior - posterior)))
                    if posterior.size
                    else 0.0
                )
                posterior = new_posterior
                n_iterations += 1
                if delta < INNER_TOLERANCE:
                    converged = True
                    break
            if not np.all(np.isfinite(posterior)):
                raise DataError("batch update produced a non-finite posterior")
            # Commit: decay history, add this batch's counts, refresh params.
            self._stats.decay(self.decay)
            counts, z_counts = backend.partition_counts(posterior)
            self._stats.add(counts, z_counts)
            parameters = self._stats.rates(self.parameters, self.epsilon)
            if not parameters.is_finite():
                raise DataError("batch update produced non-finite parameters")
            self.parameters = parameters
            self.n_batches += 1
        except Exception:
            # Roll back: the stream is exactly as it was before the batch.
            self._stats = stats_snapshot
            self.parameters = parameters_snapshot
            self.n_batches = batches_snapshot
            raise
        decisions = (posterior >= 0.5).astype(np.int8)
        return EstimationResult(
            algorithm="streaming-em-ext",
            scores=posterior,
            decisions=decisions,
            parameters=self.parameters,
            converged=converged,
            n_iterations=n_iterations,
        )


__all__ = ["INNER_TOLERANCE", "StreamingEMExt"]
