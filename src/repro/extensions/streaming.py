"""Streaming (recursive) dependency-aware estimation.

The paper's related work includes a recursive ground-truth estimator
for social data *streams* (Yao et al., IPSN 2016).  This extension
brings that capability to the dependency-aware model: claims arrive in
batches (e.g. one batch per hour of a crawl), and the estimator updates
its source parameters incrementally instead of refitting from scratch.

Mechanism: the dependency-aware M-step is a ratio of posterior-weighted
counts, so the model state is exactly eight sufficient-statistic
vectors (numerator/denominator for each of ``a, b, f, g``) plus the
prior's counters.  Each batch contributes its counts; a forgetting
factor ``decay`` exponentially discounts history so the estimator
tracks sources whose behaviour drifts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.likelihood import posterior_truth
from repro.core.matrix import SensingProblem
from repro.core.model import DEFAULT_EPSILON, SourceParameters
from repro.core.result import EstimationResult
from repro.utils.errors import ValidationError
from repro.utils.rng import SeedLike
from repro.utils.validation import check_positive_int


@dataclass
class _SufficientStatistics:
    """Decayed posterior-weighted counts behind the M-step ratios."""

    numerators: Dict[str, np.ndarray] = field(default_factory=dict)
    denominators: Dict[str, np.ndarray] = field(default_factory=dict)
    z_numerator: float = 0.0
    z_denominator: float = 0.0

    @classmethod
    def zeros(cls, n_sources: int) -> "_SufficientStatistics":
        names = ("a", "b", "f", "g")
        return cls(
            numerators={k: np.zeros(n_sources) for k in names},
            denominators={k: np.zeros(n_sources) for k in names},
        )

    def decay(self, factor: float) -> None:
        for name in self.numerators:
            self.numerators[name] *= factor
            self.denominators[name] *= factor
        self.z_numerator *= factor
        self.z_denominator *= factor


class StreamingEMExt:
    """Incremental dependency-aware estimator over claim batches.

    Every batch must cover the same source population (same row
    indices); assertions are new per batch, as in a live stream where
    each window surfaces fresh statements.

    Examples
    --------
    >>> from repro.synthetic import generate_dataset
    >>> stream = StreamingEMExt(n_sources=20)
    >>> batch = generate_dataset(seed=1).problem.without_truth()
    >>> result = stream.partial_fit(batch)
    >>> stream.n_batches
    1
    """

    def __init__(
        self,
        n_sources: int,
        *,
        decay: float = 0.95,
        inner_iterations: int = 25,
        epsilon: float = DEFAULT_EPSILON,
        initial_parameters: Optional[SourceParameters] = None,
        seed: SeedLike = None,
    ):
        check_positive_int(n_sources, "n_sources")
        check_positive_int(inner_iterations, "inner_iterations")
        if not 0.0 < decay <= 1.0:
            raise ValidationError(f"decay must be in (0, 1], got {decay}")
        if not 0 < epsilon < 0.5:
            raise ValidationError(f"epsilon must be in (0, 0.5), got {epsilon}")
        self.n_sources = n_sources
        self.decay = decay
        self.inner_iterations = inner_iterations
        self.epsilon = epsilon
        if initial_parameters is not None:
            if initial_parameters.n_sources != n_sources:
                raise ValidationError(
                    f"initial_parameters describe {initial_parameters.n_sources} "
                    f"sources, expected {n_sources}"
                )
            self.parameters = initial_parameters.clamp(epsilon)
        else:
            self.parameters = SourceParameters.from_scalars(
                n_sources, a=0.55, b=0.45, f=0.55, g=0.45, z=0.5
            )
        self._stats = _SufficientStatistics.zeros(n_sources)
        self.n_batches = 0
        self._seed = seed

    def partial_fit(self, batch: SensingProblem) -> EstimationResult:
        """Absorb one claim batch and return its truth estimates.

        The batch's posterior is refined with a few inner EM iterations
        (E-step on the batch, M-step on the decayed global statistics),
        so early batches are not frozen into a cold-start estimate.
        """
        if batch.n_sources != self.n_sources:
            raise ValidationError(
                f"batch has {batch.n_sources} sources, stream expects "
                f"{self.n_sources}"
            )
        sc = batch.claims.values.astype(np.float64)
        dep = batch.dependency.values.astype(np.float64)
        indep = 1.0 - dep
        if self.n_batches == 0:
            # Cold start: the neutral parameters carry no signal yet, so
            # seed the first batch's posterior from dependency-discounted
            # support (the same warm start EMExtEstimator uses).
            support = (sc * indep).sum(axis=0)
            top = float(support.max()) if support.size else 0.0
            if top > 0:
                posterior = 0.2 + 0.6 * support / top
            else:
                posterior = np.full(batch.n_assertions, 0.5)
        else:
            posterior = posterior_truth(batch, self.parameters)
        for _ in range(self.inner_iterations):
            snapshot = self._merged_parameters(sc, dep, indep, posterior)
            new_posterior = posterior_truth(batch, snapshot)
            delta = (
                float(np.max(np.abs(new_posterior - posterior)))
                if posterior.size
                else 0.0
            )
            posterior = new_posterior
            if delta < 1e-8:
                break
        # Commit: decay history, add this batch's counts, refresh params.
        self._stats.decay(self.decay)
        self._accumulate(sc, dep, indep, posterior)
        self.parameters = self._parameters_from_stats()
        self.n_batches += 1
        decisions = (posterior >= 0.5).astype(np.int8)
        return EstimationResult(
            algorithm="streaming-em-ext",
            scores=posterior,
            decisions=decisions,
            parameters=self.parameters,
            converged=True,
            n_iterations=self.inner_iterations,
        )

    # -- internals ---------------------------------------------------------------

    def _batch_counts(self, sc, dep, indep, posterior):
        y_posterior = 1.0 - posterior
        return {
            "a": ((sc * indep) @ posterior, indep @ posterior),
            "f": ((sc * dep) @ posterior, dep @ posterior),
            "b": ((sc * indep) @ y_posterior, indep @ y_posterior),
            "g": ((sc * dep) @ y_posterior, dep @ y_posterior),
        }, (float(posterior.sum()), float(posterior.size))

    def _merged_parameters(self, sc, dep, indep, posterior) -> SourceParameters:
        """Parameters from history + the current batch's soft counts."""
        counts, (z_num, z_den) = self._batch_counts(sc, dep, indep, posterior)
        rates = {}
        for name, (num, den) in counts.items():
            total_num = self._stats.numerators[name] * self.decay + num
            total_den = self._stats.denominators[name] * self.decay + den
            with np.errstate(invalid="ignore", divide="ignore"):
                ratio = total_num / total_den
            fallback = getattr(self.parameters, name)
            rates[name] = np.where(total_den > 0, ratio, fallback)
        z_total_num = self._stats.z_numerator * self.decay + z_num
        z_total_den = self._stats.z_denominator * self.decay + z_den
        z = z_total_num / z_total_den if z_total_den > 0 else self.parameters.z
        return SourceParameters(
            a=rates["a"], b=rates["b"], f=rates["f"], g=rates["g"], z=float(z)
        ).clamp(self.epsilon)

    def _accumulate(self, sc, dep, indep, posterior) -> None:
        counts, (z_num, z_den) = self._batch_counts(sc, dep, indep, posterior)
        for name, (num, den) in counts.items():
            self._stats.numerators[name] += num
            self._stats.denominators[name] += den
        self._stats.z_numerator += z_num
        self._stats.z_denominator += z_den

    def _parameters_from_stats(self) -> SourceParameters:
        rates = {}
        for name in ("a", "b", "f", "g"):
            num = self._stats.numerators[name]
            den = self._stats.denominators[name]
            with np.errstate(invalid="ignore", divide="ignore"):
                ratio = num / den
            fallback = getattr(self.parameters, name)
            rates[name] = np.where(den > 0, ratio, fallback)
        z = (
            self._stats.z_numerator / self._stats.z_denominator
            if self._stats.z_denominator > 0
            else self.parameters.z
        )
        return SourceParameters(
            a=rates["a"], b=rates["b"], f=rates["f"], g=rates["g"], z=float(z)
        ).clamp(self.epsilon)


__all__ = ["StreamingEMExt"]
