"""Extensions beyond the paper's core: streaming estimation."""

from repro.extensions.streaming import StreamingEMExt

__all__ = ["StreamingEMExt"]
