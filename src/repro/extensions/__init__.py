"""Extensions beyond the paper's core: streaming estimation."""

from repro.extensions.streaming import INNER_TOLERANCE, StreamingEMExt

__all__ = ["INNER_TOLERANCE", "StreamingEMExt"]
