"""Follow graphs: who is influenced by whom.

Section II-A: a source may "see and be influenced by claims made by a
subset of other sources (e.g., by following them on Twitter)" — those
sources are its *ancestors*.  The graph is directed: an edge
``follower → followee`` means the follower sees the followee's posts.

The paper's example (Figure 1) uses direct following only; the library
also supports transitive ancestry, because information can propagate
through chains of retweets.  The extraction policy chooses.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set, Tuple

import networkx as nx

from repro.utils.errors import ValidationError


class FollowGraph:
    """A directed follow graph over integer source ids ``0..n-1``."""

    def __init__(self, n_sources: int):
        if n_sources < 0:
            raise ValidationError(f"n_sources must be non-negative, got {n_sources}")
        self.n_sources = n_sources
        self._followees: List[Set[int]] = [set() for _ in range(n_sources)]
        self._followers: List[Set[int]] = [set() for _ in range(n_sources)]

    @classmethod
    def from_edges(
        cls, n_sources: int, edges: Iterable[Tuple[int, int]]
    ) -> "FollowGraph":
        """Build a graph from ``(follower, followee)`` pairs."""
        graph = cls(n_sources)
        for follower, followee in edges:
            graph.add_follow(follower, followee)
        return graph

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_sources:
            raise ValidationError(
                f"source id {node} outside [0, {self.n_sources})"
            )

    def add_follow(self, follower: int, followee: int) -> None:
        """Record that ``follower`` follows (is influenced by) ``followee``."""
        self._check_node(follower)
        self._check_node(followee)
        if follower == followee:
            raise ValidationError(f"source {follower} cannot follow itself")
        self._followees[follower].add(followee)
        self._followers[followee].add(follower)

    def follows(self, follower: int, followee: int) -> bool:
        """Whether the direct follow edge exists."""
        self._check_node(follower)
        self._check_node(followee)
        return followee in self._followees[follower]

    def followees(self, source: int) -> Set[int]:
        """Sources that ``source`` follows directly (its direct ancestors)."""
        self._check_node(source)
        return set(self._followees[source])

    def followers(self, source: int) -> Set[int]:
        """Sources directly following ``source``."""
        self._check_node(source)
        return set(self._followers[source])

    def ancestors(self, source: int, *, transitive: bool = False) -> Set[int]:
        """The ancestor set of ``source``.

        Direct ancestors are the followees; with ``transitive=True`` the
        set closes over follow chains (excluding the source itself, even
        when the graph has cycles through it).
        """
        self._check_node(source)
        if not transitive:
            return set(self._followees[source])
        seen: Set[int] = set()
        frontier = list(self._followees[source])
        while frontier:
            node = frontier.pop()
            if node in seen or node == source:
                continue
            seen.add(node)
            frontier.extend(self._followees[node] - seen)
        seen.discard(source)
        return seen

    @property
    def n_edges(self) -> int:
        """Total number of follow edges."""
        return sum(len(s) for s in self._followees)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate ``(follower, followee)`` pairs in deterministic order."""
        for follower in range(self.n_sources):
            for followee in sorted(self._followees[follower]):
                yield follower, followee

    def out_degree_histogram(self) -> Dict[int, int]:
        """Histogram of followee counts (how many accounts each follows)."""
        histogram: Dict[int, int] = {}
        for followees in self._followees:
            histogram[len(followees)] = histogram.get(len(followees), 0) + 1
        return histogram

    def to_networkx(self) -> nx.DiGraph:
        """Export as a networkx DiGraph (edges follower → followee)."""
        graph = nx.DiGraph()
        graph.add_nodes_from(range(self.n_sources))
        graph.add_edges_from(self.edges())
        return graph

    def __repr__(self) -> str:
        return f"FollowGraph(n_sources={self.n_sources}, n_edges={self.n_edges})"


__all__ = ["FollowGraph"]
