"""Social-network substrate: follow graphs, event streams, dependency extraction."""

from repro.network.dependency import (
    build_problem,
    dependency_summary,
    extract_dependency,
)
from repro.network.events import EventLog, Post
from repro.network.generators import (
    LevelTwoForest,
    level_two_forest,
    preferential_attachment,
)
from repro.network.graph import FollowGraph

__all__ = [
    "EventLog",
    "FollowGraph",
    "LevelTwoForest",
    "Post",
    "build_problem",
    "dependency_summary",
    "extract_dependency",
    "level_two_forest",
    "preferential_attachment",
]
