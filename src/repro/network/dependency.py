"""Dependency-indicator extraction (Section II-A, Figure 1).

A claim by source ``i`` on assertion ``j`` is *dependent* when an
ancestor of ``i`` made the same assertion strictly earlier — the
source may merely be repeating what it saw.  For cells where ``i``
never reported ``j`` the library still defines an indicator (the EM
M-step partitions non-claims by dependency, DESIGN.md §5.2): the cell
is dependent when *any* ancestor asserted ``j`` at all, i.e. the source
had the opportunity to repeat and stayed silent.

Two ancestry policies:

* ``"direct"`` (paper's Figure 1) — ancestors are direct followees;
* ``"transitive"`` — ancestors close over follow chains, modelling
  multi-hop exposure through retweet cascades.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.data.dense import DenseProblem, DependencyMatrix, SourceClaimMatrix
from repro.data.protocol import FORMAT_DENSE, Problem
from repro.network.events import EventLog
from repro.network.graph import FollowGraph
from repro.utils.errors import ValidationError
from repro.utils.validation import check_in_choices

_POLICIES = ("direct", "transitive")


def extract_dependency(
    log: EventLog,
    graph: FollowGraph,
    *,
    n_assertions: int,
    policy: str = "direct",
    source_ids: Optional[Sequence[str]] = None,
    assertion_ids: Optional[Sequence[str]] = None,
) -> Tuple[SourceClaimMatrix, DependencyMatrix]:
    """Build ``(SC, D)`` from an event log and a follow graph.

    Returns the source-claim matrix and the full-cell dependency
    indicators.  ``n_assertions`` must be supplied because a log may not
    mention every assertion of the study (silent assertions still occupy
    matrix columns).
    """
    check_in_choices(policy, "policy", _POLICIES)
    n_sources = graph.n_sources
    if log.n_sources > n_sources:
        raise ValidationError(
            f"log references source {log.n_sources - 1} but the graph has "
            f"only {n_sources} sources"
        )
    if log.n_assertions > n_assertions:
        raise ValidationError(
            f"log references assertion {log.n_assertions - 1} but "
            f"n_assertions={n_assertions}"
        )
    first_times = log.first_report_times(n_sources, n_assertions)
    claims = np.isfinite(first_times).astype(np.int8)
    dependency = np.zeros_like(claims)
    transitive = policy == "transitive"
    for source in range(n_sources):
        ancestors = sorted(graph.ancestors(source, transitive=transitive))
        if not ancestors:
            continue
        ancestor_times = first_times[ancestors, :]
        earliest_ancestor = ancestor_times.min(axis=0)
        own = first_times[source, :]
        reported = np.isfinite(own)
        # Claims: dependent iff an ancestor reported strictly earlier.
        dependency[source, reported] = (
            earliest_ancestor[reported] < own[reported]
        ).astype(np.int8)
        # Non-claims: dependent iff any ancestor ever reported.
        silent = ~reported
        dependency[source, silent] = np.isfinite(
            earliest_ancestor[silent]
        ).astype(np.int8)
    return (
        SourceClaimMatrix(
            claims, source_ids=source_ids, assertion_ids=assertion_ids
        ),
        DependencyMatrix(dependency),
    )


def build_problem(
    log: EventLog,
    graph: FollowGraph,
    *,
    n_assertions: int,
    policy: str = "direct",
    truth: np.ndarray = None,
    source_ids: Optional[Sequence[str]] = None,
    assertion_ids: Optional[Sequence[str]] = None,
) -> DenseProblem:
    """Convenience wrapper: extract matrices and wrap them in a problem."""
    claims, dependency = extract_dependency(
        log,
        graph,
        n_assertions=n_assertions,
        policy=policy,
        source_ids=source_ids,
        assertion_ids=assertion_ids,
    )
    return DenseProblem(claims=claims, dependency=dependency, truth=truth)


def dependency_summary(problem: Problem) -> dict:
    """Descriptive statistics of the dependency structure of a problem.

    Accepts either storage format; the counting is done on whichever
    representation the problem already holds (no densification).
    """
    if problem.format == FORMAT_DENSE:
        sc = problem.claims.values
        dep = problem.dependency.values
        n_claims = int(sc.sum())
        n_dependent_claims = int((sc & dep).sum())
        dependent_cell_fraction = problem.dependency.dependent_fraction
    else:
        sc = problem.claims
        dep = problem.dependency
        n_claims = int(sc.nnz)
        n_dependent_claims = int(sc.multiply(dep).nnz)
        n_cells = problem.n_sources * problem.n_assertions
        dependent_cell_fraction = float(dep.nnz / n_cells) if n_cells else 0.0
    return {
        "n_sources": problem.n_sources,
        "n_assertions": problem.n_assertions,
        "n_claims": n_claims,
        "n_original_claims": n_claims - n_dependent_claims,
        "n_dependent_claims": n_dependent_claims,
        "dependent_claim_fraction": problem.dependent_claim_fraction(),
        "dependent_cell_fraction": dependent_cell_fraction,
    }


__all__ = ["build_problem", "dependency_summary", "extract_dependency"]
