"""Timestamped post events and the event log.

The raw material of social sensing is a stream of posts: *who* asserted
*what*, *when*, and (for retweets) *via whom*.  The dependency
extractor (:mod:`repro.network.dependency`) turns an event log plus a
follow graph into the ``(SC, D)`` matrices the estimators consume, and
the simulated Twitter platform (:mod:`repro.datasets.twitter_sim`)
produces event logs as its output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.matrix import SourceClaimMatrix
from repro.utils.errors import DataError, ValidationError


@dataclass(frozen=True)
class Post:
    """One post: source ``source`` asserts ``assertion`` at ``time``.

    ``retweet_of`` optionally names the post id this one repeats;
    ``text`` carries the (simulated) message body for pipeline
    clustering; both may be absent for purely matrix-level workloads.
    """

    post_id: int
    source: int
    assertion: int
    time: float
    retweet_of: Optional[int] = None
    text: Optional[str] = None

    def __post_init__(self) -> None:
        if self.source < 0 or self.assertion < 0:
            raise ValidationError(
                f"source and assertion ids must be non-negative, got "
                f"({self.source}, {self.assertion})"
            )
        if self.retweet_of is not None and self.retweet_of == self.post_id:
            raise ValidationError(f"post {self.post_id} cannot retweet itself")

    @property
    def is_retweet(self) -> bool:
        """Whether this post repeats another post."""
        return self.retweet_of is not None


@dataclass
class EventLog:
    """A time-ordered collection of posts.

    Posts are kept sorted by ``(time, post_id)`` and post ids must be
    unique; both invariants are enforced at construction and insertion.
    """

    posts: List[Post] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.posts = sorted(self.posts, key=lambda p: (p.time, p.post_id))
        ids = [p.post_id for p in self.posts]
        if len(set(ids)) != len(ids):
            raise DataError("duplicate post ids in event log")
        by_id = {p.post_id: p for p in self.posts}
        for post in self.posts:
            if post.retweet_of is not None:
                original = by_id.get(post.retweet_of)
                if original is None:
                    raise DataError(
                        f"post {post.post_id} retweets unknown post {post.retweet_of}"
                    )
                if original.time > post.time:
                    raise DataError(
                        f"post {post.post_id} retweets post {post.retweet_of} "
                        "from the future"
                    )

    def __len__(self) -> int:
        return len(self.posts)

    def __iter__(self) -> Iterator[Post]:
        return iter(self.posts)

    def append(self, post: Post) -> None:
        """Add a post; it must not be earlier than the current last post."""
        if self.posts and (post.time, post.post_id) < (
            self.posts[-1].time,
            self.posts[-1].post_id,
        ):
            raise DataError(
                f"post {post.post_id} at time {post.time} would break event order"
            )
        if any(p.post_id == post.post_id for p in self.posts):
            raise DataError(f"duplicate post id {post.post_id}")
        if post.retweet_of is not None and not any(
            p.post_id == post.retweet_of for p in self.posts
        ):
            raise DataError(
                f"post {post.post_id} retweets unknown post {post.retweet_of}"
            )
        self.posts.append(post)

    @property
    def n_sources(self) -> int:
        """1 + the largest source id seen (0 for an empty log)."""
        return 1 + max((p.source for p in self.posts), default=-1)

    @property
    def n_assertions(self) -> int:
        """1 + the largest assertion id seen (0 for an empty log)."""
        return 1 + max((p.assertion for p in self.posts), default=-1)

    @property
    def n_original_posts(self) -> int:
        """Posts that are not retweets."""
        return sum(1 for p in self.posts if not p.is_retweet)

    def first_report_times(
        self, n_sources: int, n_assertions: int
    ) -> np.ndarray:
        """Matrix of each source's earliest report time per assertion.

        Cells without a report hold ``+inf``.
        """
        times = np.full((n_sources, n_assertions), np.inf)
        for post in self.posts:
            self._check_bounds(post, n_sources, n_assertions)
            cell = times[post.source, post.assertion]
            if post.time < cell:
                times[post.source, post.assertion] = post.time
        return times

    def to_claim_matrix(
        self, n_sources: int, n_assertions: int
    ) -> SourceClaimMatrix:
        """Collapse the log into a source-claim matrix."""
        claims: List[Tuple[int, int]] = []
        for post in self.posts:
            self._check_bounds(post, n_sources, n_assertions)
            claims.append((post.source, post.assertion))
        return SourceClaimMatrix.from_claims(claims, n_sources, n_assertions)

    @staticmethod
    def _check_bounds(post: Post, n_sources: int, n_assertions: int) -> None:
        if post.source >= n_sources or post.assertion >= n_assertions:
            raise DataError(
                f"post {post.post_id} references source {post.source} / "
                f"assertion {post.assertion} outside declared shape "
                f"({n_sources}, {n_assertions})"
            )

    def posts_by_source(self, source: int) -> List[Post]:
        """All posts of one source, in time order."""
        return [p for p in self.posts if p.source == source]

    def posts_by_assertion(self, assertion: int) -> List[Post]:
        """All posts making one assertion, in time order."""
        return [p for p in self.posts if p.assertion == assertion]

    @classmethod
    def merge(cls, logs: Iterable["EventLog"]) -> "EventLog":
        """Merge several logs into one (post ids must stay unique)."""
        posts: List[Post] = []
        for log in logs:
            posts.extend(log.posts)
        return cls(posts=posts)


__all__ = ["EventLog", "Post"]
