"""Random follow-graph generators.

Two families are needed:

* the **forest of level-two trees** of Section V-A — τ independent root
  sources, each followed by a share of leaf sources; this spans the
  spectrum from one root followed by everyone (maximal dependency) to
  all sources independent (τ = n);
* **preferential attachment**, the heavy-tailed follower distribution
  of real Twitter, used by the simulated empirical datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.network.graph import FollowGraph
from repro.utils.errors import ValidationError
from repro.utils.rng import RandomState, SeedLike
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class LevelTwoForest:
    """A generated forest: the graph plus its root/leaf structure.

    ``parent[leaf]`` maps each leaf source to the root it follows; roots
    do not appear as keys.
    """

    graph: FollowGraph
    roots: List[int]
    parent: Dict[int, int]

    @property
    def n_trees(self) -> int:
        """Number of trees (τ)."""
        return len(self.roots)

    def leaves_of(self, root: int) -> List[int]:
        """Leaf sources following ``root``, ascending."""
        if root not in self.roots:
            raise ValidationError(f"source {root} is not a root")
        return sorted(leaf for leaf, parent in self.parent.items() if parent == root)


def level_two_forest(
    n_sources: int,
    n_trees: int,
    seed: SeedLike = None,
) -> LevelTwoForest:
    """Generate a forest of τ = ``n_trees`` level-two trees over n sources.

    The first τ source ids are roots; every remaining source becomes a
    leaf following a uniformly random root.  Each source appears exactly
    once in the forest (paper Section V-A).  ``n_trees = n_sources``
    yields the fully independent population.
    """
    check_positive_int(n_sources, "n_sources")
    check_positive_int(n_trees, "n_trees")
    if n_trees > n_sources:
        raise ValidationError(
            f"n_trees ({n_trees}) cannot exceed n_sources ({n_sources})"
        )
    rng = RandomState(seed)
    roots = list(range(n_trees))
    graph = FollowGraph(n_sources)
    parent: Dict[int, int] = {}
    for leaf in range(n_trees, n_sources):
        root = int(rng.integers(0, n_trees))
        graph.add_follow(leaf, root)
        parent[leaf] = root
    return LevelTwoForest(graph=graph, roots=roots, parent=parent)


def preferential_attachment(
    n_sources: int,
    links_per_source: int = 2,
    seed: SeedLike = None,
) -> FollowGraph:
    """A Barabási–Albert style follow graph with heavy-tailed popularity.

    Sources join in id order; each new source follows
    ``links_per_source`` existing sources chosen proportionally to their
    current follower counts (plus one, so fresh sources are reachable).
    The result has the few-celebrities / many-lurkers shape of real
    social platforms.
    """
    check_positive_int(n_sources, "n_sources")
    check_positive_int(links_per_source, "links_per_source")
    rng = RandomState(seed)
    graph = FollowGraph(n_sources)
    follower_counts = np.zeros(n_sources, dtype=np.float64)
    for newcomer in range(1, n_sources):
        k = min(links_per_source, newcomer)
        weights = follower_counts[:newcomer] + 1.0
        probabilities = weights / weights.sum()
        followees = rng.choice(newcomer, size=k, replace=False, p=probabilities)
        for followee in followees:
            graph.add_follow(newcomer, int(followee))
            follower_counts[int(followee)] += 1.0
    return graph


__all__ = ["LevelTwoForest", "level_two_forest", "preferential_attachment"]
