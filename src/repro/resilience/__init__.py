"""Fault tolerance for the estimation stack.

The paper models *sources* as unreliable sensors; this package extends
the same stance to the runtime, threading fault tolerance through the
engine, the evaluation harness and the streaming estimator:

* :mod:`repro.engine.health` (re-exported here) — structured
  :class:`RunHealth` reports the :class:`~repro.engine.driver.EMDriver`
  attaches to every multi-restart fit: per-restart status, NaN-safe
  selection, wall-clock budgets, and strict-mode
  :class:`~repro.utils.errors.ConvergenceError`;
* :mod:`repro.resilience.policy` — trial-level failure policies
  (``fail_fast`` / ``skip`` / ``retry`` with deterministic reseeding)
  and the :class:`TrialFailure` ledger
  :func:`~repro.eval.harness.run_simulation` records;
* :mod:`repro.resilience.checkpoint` — atomic checkpoint/resume so a
  300-trial sweep survives interruption and resumes bit-for-bit;
* :mod:`repro.resilience.faults` — the deterministic fault-injection
  toolkit (corrupted matrices, byzantine sources, malformed tweet
  streams, flaky backends, chaos fact-finders) behind the
  ``tests/resilience`` chaos suite;
* :mod:`repro.resilience.supervisor` — deadline-aware supervision:
  the cooperative :class:`Deadline` budget threaded through EM
  iterations, Gibbs sweeps and Gray-code enumeration, deterministic
  exponential backoff for retries, and the call-counted
  :class:`CircuitBreaker` the harness wraps around per-algorithm fits.
"""

from repro.engine.health import (
    FAILED_STATUSES,
    RESTART_STATUSES,
    RestartReport,
    RunHealth,
)
from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointState,
    load_checkpoint,
    save_checkpoint,
    simulation_fingerprint,
)
from repro.resilience.faults import (
    FaultInjector,
    FlakyBackend,
    InjectedFault,
    NaNLikelihoodBackend,
    chaos_finder,
    temporary_algorithm,
)
from repro.resilience.policy import (
    FailurePolicy,
    TrialFailure,
    retry_seed,
)
from repro.resilience.supervisor import (
    BreakerConfig,
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    backoff_delay,
    parse_timespan,
)

__all__ = [
    "BreakerConfig",
    "CHECKPOINT_VERSION",
    "CheckpointState",
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceeded",
    "FAILED_STATUSES",
    "FailurePolicy",
    "FaultInjector",
    "FlakyBackend",
    "InjectedFault",
    "NaNLikelihoodBackend",
    "RESTART_STATUSES",
    "RestartReport",
    "RunHealth",
    "TrialFailure",
    "backoff_delay",
    "chaos_finder",
    "load_checkpoint",
    "parse_timespan",
    "retry_seed",
    "save_checkpoint",
    "simulation_fingerprint",
    "temporary_algorithm",
]
