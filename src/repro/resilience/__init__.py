"""Fault tolerance for the estimation stack.

The paper models *sources* as unreliable sensors; this package extends
the same stance to the runtime, threading fault tolerance through the
engine, the evaluation harness and the streaming estimator:

* :mod:`repro.engine.health` (re-exported here) — structured
  :class:`RunHealth` reports the :class:`~repro.engine.driver.EMDriver`
  attaches to every multi-restart fit: per-restart status, NaN-safe
  selection, wall-clock budgets, and strict-mode
  :class:`~repro.utils.errors.ConvergenceError`;
* :mod:`repro.resilience.policy` — trial-level failure policies
  (``fail_fast`` / ``skip`` / ``retry`` with deterministic reseeding)
  and the :class:`TrialFailure` ledger
  :func:`~repro.eval.harness.run_simulation` records;
* :mod:`repro.resilience.checkpoint` — atomic checkpoint/resume so a
  300-trial sweep survives interruption and resumes bit-for-bit;
* :mod:`repro.resilience.faults` — the deterministic fault-injection
  toolkit (corrupted matrices, byzantine sources, malformed tweet
  streams, flaky backends, chaos fact-finders) behind the
  ``tests/resilience`` chaos suite.
"""

from repro.engine.health import (
    FAILED_STATUSES,
    RESTART_STATUSES,
    RestartReport,
    RunHealth,
)
from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointState,
    load_checkpoint,
    save_checkpoint,
    simulation_fingerprint,
)
from repro.resilience.faults import (
    FaultInjector,
    FlakyBackend,
    InjectedFault,
    NaNLikelihoodBackend,
    chaos_finder,
    temporary_algorithm,
)
from repro.resilience.policy import (
    FailurePolicy,
    TrialFailure,
    retry_seed,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointState",
    "FAILED_STATUSES",
    "FailurePolicy",
    "FaultInjector",
    "FlakyBackend",
    "InjectedFault",
    "NaNLikelihoodBackend",
    "RESTART_STATUSES",
    "RestartReport",
    "RunHealth",
    "TrialFailure",
    "chaos_finder",
    "load_checkpoint",
    "retry_seed",
    "save_checkpoint",
    "simulation_fingerprint",
    "temporary_algorithm",
]
