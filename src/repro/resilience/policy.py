"""Trial-level failure policies for the simulation harness.

The paper's estimator experiments average 300 trials per point; one
crashed trial must not discard the other 299.  A
:class:`FailurePolicy` tells :func:`~repro.eval.harness.run_simulation`
what to do when a single algorithm's fit raises (or returns non-finite
scores) inside one trial:

* ``fail_fast`` — re-raise immediately (the historical behaviour, and
  the default);
* ``skip`` — record a :class:`TrialFailure` in the result's ledger and
  move on, so the trial's other algorithms and the remaining trials
  still run;
* ``retry`` — re-run the failing fit up to ``max_attempts`` times with
  a deterministically reseeded estimator (:func:`retry_seed`), then
  skip.  Reseeding never touches the harness's master RNG, so trials
  that *don't* fail produce bit-identical results whatever the policy.

Retries optionally pause with deterministic exponential backoff
(``backoff_base`` > 0): the delay before attempt ``k`` is
``base · factor^(k-1)`` capped at ``backoff_max`` and perturbed by
seeded jitter (:func:`repro.resilience.supervisor.backoff_delay`), so a
flaky shared resource is not hammered in lockstep yet the schedule is a
pure function of the policy and the trial seed.  The default
``backoff_base = 0`` keeps the historical immediate-retry behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.resilience.supervisor import backoff_delay
from repro.utils.errors import ValidationError
from repro.utils.validation import check_positive_int

#: Policy mode names.
FAIL_FAST = "fail_fast"
SKIP = "skip"
RETRY = "retry"
_MODES = (FAIL_FAST, SKIP, RETRY)

#: Ledger actions.
ACTION_RETRIED = "retried"
ACTION_SKIPPED = "skipped"
ACTION_SHORT_CIRCUITED = "short_circuited"
ACTION_TIMED_OUT = "timed_out"


@dataclass(frozen=True)
class FailurePolicy:
    """What the harness does when one algorithm fails inside one trial."""

    mode: str = FAIL_FAST
    max_attempts: int = 3
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    backoff_jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValidationError(
                f"mode must be one of {_MODES}, got {self.mode!r}"
            )
        # check_positive_int rejects bool *and* np.bool_ — np.True_ is
        # not a ``bool`` subclass, so the historical isinstance check
        # accepted it as a retry budget of 1.
        check_positive_int(self.max_attempts, "max_attempts")
        for name, minimum in (
            ("backoff_base", 0.0),
            ("backoff_factor", 1.0),
            ("backoff_max", 0.0),
            ("backoff_jitter", 0.0),
        ):
            value = getattr(self, name)
            if isinstance(value, (bool, np.bool_)) or not isinstance(
                value, (int, float, np.integer, np.floating)
            ):
                raise ValidationError(
                    f"{name} must be a number, got {value!r}"
                )
            if value < minimum:
                raise ValidationError(
                    f"{name} must be >= {minimum}, got {value}"
                )
        if self.backoff_jitter >= 1.0:
            raise ValidationError(
                f"backoff_jitter must be < 1, got {self.backoff_jitter}"
            )

    @classmethod
    def fail_fast(cls) -> "FailurePolicy":
        """Propagate the first failure (historical behaviour)."""
        return cls(mode=FAIL_FAST)

    @classmethod
    def skip(cls) -> "FailurePolicy":
        """Record failures in the ledger and keep sweeping."""
        return cls(mode=SKIP)

    @classmethod
    def retry(cls, max_attempts: int = 3, **backoff_kwargs) -> "FailurePolicy":
        """Retry with deterministic reseeding (and optional backoff), then skip."""
        return cls(mode=RETRY, max_attempts=max_attempts, **backoff_kwargs)

    @property
    def attempts(self) -> int:
        """Fit attempts per (trial, algorithm) under this policy."""
        return self.max_attempts if self.mode == RETRY else 1

    def delay_before(self, attempt: int, seed: int) -> float:
        """Seconds to pause before retry ``attempt`` (0 for attempt 0).

        Deterministic: a pure function of the policy's backoff fields,
        the attempt index and the fit's base seed.
        """
        if attempt < 1 or self.backoff_base <= 0:
            return 0.0
        return backoff_delay(
            attempt,
            base=self.backoff_base,
            factor=self.backoff_factor,
            max_delay=self.backoff_max,
            jitter=self.backoff_jitter,
            seed=seed,
        )


@dataclass(frozen=True)
class TrialFailure:
    """One ledger entry: what failed, where, and what the harness did."""

    trial: int
    algorithm: str
    attempt: int
    error_type: str
    message: str
    action: str  # ACTION_RETRIED or ACTION_SKIPPED

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (used by checkpoints)."""
        return {
            "trial": self.trial,
            "algorithm": self.algorithm,
            "attempt": self.attempt,
            "error_type": self.error_type,
            "message": self.message,
            "action": self.action,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TrialFailure":
        """Inverse of :meth:`to_dict`."""
        return cls(
            trial=int(payload["trial"]),
            algorithm=str(payload["algorithm"]),
            attempt=int(payload["attempt"]),
            error_type=str(payload["error_type"]),
            message=str(payload["message"]),
            action=str(payload["action"]),
        )


def retry_seed(base_seed: int, attempt: int) -> int:
    """Deterministic seed for retry ``attempt`` of a fit seeded ``base_seed``.

    Derived through :class:`numpy.random.SeedSequence` so retries are
    statistically independent of the original attempt *and* of the
    harness's master stream; attempt 0 is the original seed itself.
    """
    if attempt == 0:
        return int(base_seed)
    sequence = np.random.SeedSequence([int(base_seed), int(attempt)])
    return int(np.random.default_rng(sequence).integers(0, 2**63 - 1))


__all__ = [
    "ACTION_RETRIED",
    "ACTION_SHORT_CIRCUITED",
    "ACTION_SKIPPED",
    "ACTION_TIMED_OUT",
    "FAIL_FAST",
    "FailurePolicy",
    "RETRY",
    "SKIP",
    "TrialFailure",
    "retry_seed",
]
