"""Trial-level failure policies for the simulation harness.

The paper's estimator experiments average 300 trials per point; one
crashed trial must not discard the other 299.  A
:class:`FailurePolicy` tells :func:`~repro.eval.harness.run_simulation`
what to do when a single algorithm's fit raises (or returns non-finite
scores) inside one trial:

* ``fail_fast`` — re-raise immediately (the historical behaviour, and
  the default);
* ``skip`` — record a :class:`TrialFailure` in the result's ledger and
  move on, so the trial's other algorithms and the remaining trials
  still run;
* ``retry`` — re-run the failing fit up to ``max_attempts`` times with
  a deterministically reseeded estimator (:func:`retry_seed`), then
  skip.  Reseeding never touches the harness's master RNG, so trials
  that *don't* fail produce bit-identical results whatever the policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.utils.errors import ValidationError

#: Policy mode names.
FAIL_FAST = "fail_fast"
SKIP = "skip"
RETRY = "retry"
_MODES = (FAIL_FAST, SKIP, RETRY)

#: Ledger actions.
ACTION_RETRIED = "retried"
ACTION_SKIPPED = "skipped"


@dataclass(frozen=True)
class FailurePolicy:
    """What the harness does when one algorithm fails inside one trial."""

    mode: str = FAIL_FAST
    max_attempts: int = 3

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValidationError(
                f"mode must be one of {_MODES}, got {self.mode!r}"
            )
        if not isinstance(self.max_attempts, (int, np.integer)) or self.max_attempts < 1:
            raise ValidationError(
                f"max_attempts must be a positive int, got {self.max_attempts!r}"
            )

    @classmethod
    def fail_fast(cls) -> "FailurePolicy":
        """Propagate the first failure (historical behaviour)."""
        return cls(mode=FAIL_FAST)

    @classmethod
    def skip(cls) -> "FailurePolicy":
        """Record failures in the ledger and keep sweeping."""
        return cls(mode=SKIP)

    @classmethod
    def retry(cls, max_attempts: int = 3) -> "FailurePolicy":
        """Retry with deterministic reseeding, then skip."""
        return cls(mode=RETRY, max_attempts=max_attempts)

    @property
    def attempts(self) -> int:
        """Fit attempts per (trial, algorithm) under this policy."""
        return self.max_attempts if self.mode == RETRY else 1


@dataclass(frozen=True)
class TrialFailure:
    """One ledger entry: what failed, where, and what the harness did."""

    trial: int
    algorithm: str
    attempt: int
    error_type: str
    message: str
    action: str  # ACTION_RETRIED or ACTION_SKIPPED

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (used by checkpoints)."""
        return {
            "trial": self.trial,
            "algorithm": self.algorithm,
            "attempt": self.attempt,
            "error_type": self.error_type,
            "message": self.message,
            "action": self.action,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TrialFailure":
        """Inverse of :meth:`to_dict`."""
        return cls(
            trial=int(payload["trial"]),
            algorithm=str(payload["algorithm"]),
            attempt=int(payload["attempt"]),
            error_type=str(payload["error_type"]),
            message=str(payload["message"]),
            action=str(payload["action"]),
        )


def retry_seed(base_seed: int, attempt: int) -> int:
    """Deterministic seed for retry ``attempt`` of a fit seeded ``base_seed``.

    Derived through :class:`numpy.random.SeedSequence` so retries are
    statistically independent of the original attempt *and* of the
    harness's master stream; attempt 0 is the original seed itself.
    """
    if attempt == 0:
        return int(base_seed)
    sequence = np.random.SeedSequence([int(base_seed), int(attempt)])
    return int(np.random.default_rng(sequence).integers(0, 2**63 - 1))


__all__ = [
    "ACTION_RETRIED",
    "ACTION_SKIPPED",
    "FAIL_FAST",
    "FailurePolicy",
    "RETRY",
    "SKIP",
    "TrialFailure",
    "retry_seed",
]
