"""Deadline-aware supervision: budgets, backoff and circuit breakers.

The paper's machinery spans a huge cost spectrum — the exact bound
enumerates :math:`2^n` dependency patterns while the analytic bound is
closed-form — and a production deployment must keep every request
answerable when the expensive path blows its budget.  This module holds
the three supervision primitives the rest of the library threads
through its long-running loops:

* :class:`Deadline` — a cooperative wall-clock (and optional memory)
  budget.  Loops call :meth:`Deadline.check` at natural yield points
  (EM iterations, Gibbs sweeps, Gray-code refresh steps); an expired
  deadline raises :class:`~repro.utils.errors.DeadlineExceeded`
  carrying structured partial-progress information, never a bare
  timeout.  Memory checks reuse the same accounting as the data
  layer's densification budget (:mod:`repro.data.memory`) and raise
  the same :class:`~repro.utils.errors.MemoryBudgetError`.
* :func:`backoff_delay` — deterministic exponential backoff with
  *seeded* jitter: the delay before retry ``attempt`` is a pure
  function of ``(policy, attempt, seed)``, so retried sweeps remain
  reproducible while still decorrelating their retry storms.
* :class:`CircuitBreaker` — the classic closed/open/half-open state
  machine over a sliding failure-rate window.  Deliberately counted in
  *calls*, not wall-clock: a breaker that reopened on a timer would
  make otherwise-deterministic sweeps depend on machine speed.

Nothing here imports the heavy numerical modules; the supervisor is a
leaf that the engine, kernels, bounds and harness all share.
"""

from __future__ import annotations

import re
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro.observability import count
from repro.utils.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    MemoryBudgetError,
    ValidationError,
)

# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------


class Deadline:
    """A cooperative wall-clock + optional memory budget.

    Construct with the budget in seconds (``None`` disables the
    wall-clock guard, which makes every check a no-op — callers can
    thread one object unconditionally).  The clock starts at
    construction; :meth:`after` is the readable spelling.

    A ``Deadline`` is picklable and meaningful across processes on the
    same machine: ``time.monotonic`` is system-wide on the platforms
    the parallel layer supports, so a worker inherits the parent's
    remaining budget.
    """

    def __init__(
        self,
        seconds: Optional[float] = None,
        *,
        memory_bytes: Optional[int] = None,
    ) -> None:
        if seconds is not None:
            if isinstance(seconds, bool) or not isinstance(
                seconds, (int, float, np.integer, np.floating)
            ):
                raise ValidationError(
                    f"seconds must be a number or None, got {seconds!r}"
                )
            if not seconds > 0:
                raise ValidationError(f"seconds must be positive, got {seconds}")
            seconds = float(seconds)
        if memory_bytes is not None:
            if isinstance(memory_bytes, bool) or not isinstance(
                memory_bytes, (int, np.integer)
            ):
                raise ValidationError(
                    f"memory_bytes must be an integer byte count, got {memory_bytes!r}"
                )
            if memory_bytes <= 0:
                raise ValidationError(
                    f"memory_bytes must be positive, got {memory_bytes}"
                )
            memory_bytes = int(memory_bytes)
        self.budget_seconds = seconds
        self.memory_bytes = memory_bytes
        self.started_at = time.monotonic()

    @classmethod
    def after(
        cls, seconds: Optional[float], *, memory_bytes: Optional[int] = None
    ) -> "Deadline":
        """A deadline expiring ``seconds`` from now."""
        return cls(seconds, memory_bytes=memory_bytes)

    @classmethod
    def unlimited(cls, *, memory_bytes: Optional[int] = None) -> "Deadline":
        """A deadline that never expires (memory budget may still apply)."""
        return cls(None, memory_bytes=memory_bytes)

    def elapsed(self) -> float:
        """Seconds since the deadline started."""
        return time.monotonic() - self.started_at

    def remaining(self) -> float:
        """Seconds left (``inf`` without a wall budget, floored at 0)."""
        if self.budget_seconds is None:
            return float("inf")
        return max(0.0, self.budget_seconds - self.elapsed())

    def expired(self) -> bool:
        """True once the wall-clock budget is spent."""
        return (
            self.budget_seconds is not None
            and self.elapsed() >= self.budget_seconds
        )

    def check(self, context: str, **progress: Any) -> None:
        """Raise :class:`DeadlineExceeded` if the wall budget is spent.

        ``progress`` keywords become the exception's structured
        partial-progress payload — pass whatever the caller could use
        to salvage the run (iteration counts, running estimates...).
        """
        if self.budget_seconds is None:
            return
        elapsed = self.elapsed()
        if elapsed >= self.budget_seconds:
            raise DeadlineExceeded(
                f"{context} exceeded its {self.budget_seconds:g}s deadline "
                f"(elapsed {elapsed:.3f}s)",
                context=context,
                elapsed_seconds=elapsed,
                budget_seconds=self.budget_seconds,
                progress=progress,
            )

    def check_memory(self, required_bytes: int, context: str) -> None:
        """Raise :class:`MemoryBudgetError` if an allocation won't fit.

        A no-op without a memory budget.  Uses the same exception as
        the data layer's densification guard so callers handle both
        identically.
        """
        if self.memory_bytes is None:
            return
        if required_bytes > self.memory_bytes:
            raise MemoryBudgetError(
                f"{context} needs ~{required_bytes / 1e9:.2f} GB but this "
                f"deadline's memory budget is {self.memory_bytes / 1e9:.2f} GB",
                required_bytes=int(required_bytes),
                budget_bytes=self.memory_bytes,
            )

    def __repr__(self) -> str:
        wall = "∞" if self.budget_seconds is None else f"{self.budget_seconds:g}s"
        mem = (
            "" if self.memory_bytes is None else f", memory={self.memory_bytes}B"
        )
        return f"Deadline({wall}{mem}, elapsed={self.elapsed():.3f}s)"


_TIMESPAN_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*(ms|s|m|h)?\s*$")
_TIMESPAN_UNITS = {"ms": 1e-3, "s": 1.0, "m": 60.0, "h": 3600.0, None: 1.0}


def parse_timespan(spec: str) -> float:
    """``"5s"`` / ``"250ms"`` / ``"2m"`` / ``"1.5h"`` / ``"30"`` → seconds.

    Bare numbers are seconds.  Used by the CLI's ``--deadline`` flag.
    """
    match = _TIMESPAN_RE.match(str(spec))
    if match is None:
        raise ValidationError(
            f"invalid timespan {spec!r}; use e.g. 500ms, 5s, 2m or 1.5h"
        )
    seconds = float(match.group(1)) * _TIMESPAN_UNITS[match.group(2)]
    if seconds <= 0:
        raise ValidationError(f"timespan must be positive, got {spec!r}")
    return seconds


# ---------------------------------------------------------------------------
# Deterministic exponential backoff
# ---------------------------------------------------------------------------

#: Domain-separation tag for the jitter stream (arbitrary constant).
_JITTER_TAG = 0xB0FF


def backoff_delay(
    attempt: int,
    *,
    base: float,
    factor: float = 2.0,
    max_delay: float = 30.0,
    jitter: float = 0.1,
    seed: int = 0,
) -> float:
    """Delay in seconds before retry ``attempt`` (1-based).

    ``base * factor**(attempt-1)`` capped at ``max_delay``, then
    perturbed by symmetric multiplicative jitter ``±jitter`` drawn from
    a :class:`numpy.random.SeedSequence` keyed on ``(seed, attempt)`` —
    the delay is a pure function of its inputs, so retried runs stay
    bit-reproducible.  ``base <= 0`` disables backoff entirely (the
    historical immediate-retry behaviour).
    """
    if base <= 0:
        return 0.0
    if attempt < 1:
        raise ValidationError(f"attempt must be >= 1, got {attempt}")
    delay = min(float(max_delay), float(base) * float(factor) ** (attempt - 1))
    if jitter:
        sequence = np.random.SeedSequence(
            [abs(int(seed)) & (2**63 - 1), int(attempt), _JITTER_TAG]
        )
        unit = float(np.random.default_rng(sequence).random())
        delay *= 1.0 + float(jitter) * (2.0 * unit - 1.0)
    return max(0.0, delay)


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------

#: Breaker states.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Trip/recovery policy of a :class:`CircuitBreaker`.

    Attributes
    ----------
    failure_threshold:
        Failure *rate* over the sliding window at which the breaker
        opens (``0.5`` = half the recent calls failed).
    window:
        Number of recent call outcomes the rate is measured over.
    min_calls:
        Calls observed before the breaker may trip at all — a single
        early failure must not blacklist an algorithm.
    cooldown_calls:
        Refused calls while open before one half-open probe is allowed.
        Counted in calls rather than seconds so a sweep's breaker
        decisions are independent of machine speed.
    """

    failure_threshold: float = 0.5
    window: int = 8
    min_calls: int = 4
    cooldown_calls: int = 4

    def __post_init__(self) -> None:
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ValidationError(
                f"failure_threshold must be in (0, 1], got {self.failure_threshold}"
            )
        for name in ("window", "min_calls", "cooldown_calls"):
            value = getattr(self, name)
            if (
                isinstance(value, (bool, np.bool_))
                or not isinstance(value, (int, np.integer))
                or value < 1
            ):
                raise ValidationError(
                    f"{name} must be a positive integer, got {value!r}"
                )


class CircuitBreaker:
    """Closed → open → half-open failure containment for repeated calls.

    Closed: calls flow, outcomes land in the sliding window; once at
    least ``min_calls`` outcomes are in the window and the failure rate
    reaches ``failure_threshold`` the breaker opens.  Open: calls are
    refused (:meth:`allow` returns ``False``) until ``cooldown_calls``
    refusals have accumulated, then one half-open probe is admitted.
    Half-open: a success closes the breaker and clears the window; a
    failure reopens it and restarts the cooldown.
    """

    def __init__(self, config: Optional[BreakerConfig] = None) -> None:
        self.config = config or BreakerConfig()
        self.state = BREAKER_CLOSED
        self._window: deque = deque(maxlen=self.config.window)
        self._refused = 0
        self.n_trips = 0
        self.n_short_circuits = 0

    @property
    def failure_rate(self) -> float:
        """Failure rate over the current window (0 when empty)."""
        if not self._window:
            return 0.0
        return sum(self._window) / len(self._window)

    def allow(self) -> bool:
        """May the next call proceed?  Refusals are counted for cooldown."""
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_HALF_OPEN:
            # One probe at a time: the sweeps that use breakers are
            # trial-ordered, so the probe's outcome arrives before the
            # next allow() — admitting it keeps the machine simple.
            return True
        self._refused += 1
        if self._refused >= self.config.cooldown_calls:
            self.state = BREAKER_HALF_OPEN
            count("breaker.transitions.half_open")
            return True
        self.n_short_circuits += 1
        count("breaker.short_circuits")
        return False

    def record_success(self) -> None:
        """Record a successful call outcome."""
        if self.state == BREAKER_HALF_OPEN:
            self.state = BREAKER_CLOSED
            count("breaker.transitions.closed")
            self._window.clear()
            self._refused = 0
            return
        self._window.append(0)

    def record_failure(self) -> None:
        """Record a failed call outcome; may trip the breaker."""
        if self.state == BREAKER_HALF_OPEN:
            self.state = BREAKER_OPEN
            self._refused = 0
            self.n_trips += 1
            count("breaker.transitions.opened")
            return
        self._window.append(1)
        if (
            self.state == BREAKER_CLOSED
            and len(self._window) >= self.config.min_calls
            and self.failure_rate >= self.config.failure_threshold
        ):
            self.state = BREAKER_OPEN
            self._refused = 0
            self.n_trips += 1
            count("breaker.transitions.opened")

    def call_refused_error(self, context: str) -> CircuitOpenError:
        """A descriptive :class:`CircuitOpenError` for a refused call."""
        return CircuitOpenError(
            f"circuit breaker open for {context}: failure rate "
            f"{self.failure_rate:.0%} over the last {len(self._window)} calls "
            f"(probe after {self.config.cooldown_calls - self._refused} more "
            "refusals)"
        )

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly state digest for telemetry."""
        return {
            "state": self.state,
            "failure_rate": self.failure_rate,
            "n_trips": self.n_trips,
            "n_short_circuits": self.n_short_circuits,
        }


__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "BreakerConfig",
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceeded",
    "backoff_delay",
    "parse_timespan",
]
