"""Atomic checkpoint/resume for repeated-trial simulations.

A 300-trial sweep point (Section V-B protocol) can run for a long time;
an interruption — OOM kill, pre-emption, ctrl-C — must not discard the
completed trials.  :func:`~repro.eval.harness.run_simulation` therefore
periodically persists its per-algorithm metric series and failure
ledger through this module and, on restart, resumes from the last
completed trial.

Guarantees:

* **Atomicity** — the checkpoint is written to a temporary file and
  moved into place with :func:`os.replace`, so a crash mid-write leaves
  the previous checkpoint intact (never a half-written JSON).
* **Determinism** — a checkpoint stores a *fingerprint* of the
  experiment (config, algorithms, trial count, seed).  On resume the
  harness replays the master RNG draws of the completed trials, so a
  resumed sweep is bit-for-bit identical to an uninterrupted one with
  the same seed.  A fingerprint mismatch raises
  :class:`~repro.utils.errors.DataError` instead of silently mixing
  results from different experiments.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.resilience.policy import TrialFailure
from repro.utils.errors import DataError

PathLike = Union[str, Path]

#: Format version written into every checkpoint.
CHECKPOINT_VERSION = 1

#: Metric keys persisted per algorithm series.
SERIES_METRICS = ("accuracy", "false_positive_rate", "false_negative_rate")


def _canonical(payload: object) -> object:
    """JSON round-trip, so tuples/ints normalise to what a reload sees."""
    return json.loads(json.dumps(payload, sort_keys=True))


def simulation_fingerprint(
    config,
    *,
    algorithms: Sequence[str],
    n_trials: int,
    seed: int,
    include_optimal: bool,
    problem_format: str = "dense",
) -> dict:
    """Identity of one experiment point, for checkpoint compatibility.

    ``problem_format`` participates only when it differs from the
    historical dense default, so checkpoints written before the
    format-polymorphic data layer keep resuming.
    """
    fingerprint = {
        "config": dataclasses.asdict(config),
        "algorithms": list(algorithms),
        "n_trials": int(n_trials),
        "seed": int(seed),
        "include_optimal": bool(include_optimal),
    }
    if problem_format != "dense":
        fingerprint["problem_format"] = str(problem_format)
    return _canonical(fingerprint)


@dataclass
class CheckpointState:
    """Everything a resumed simulation needs to continue."""

    completed_trials: int
    series: Dict[str, Dict[str, List[float]]]
    failures: List[TrialFailure]


def save_checkpoint(
    path: PathLike,
    *,
    fingerprint: dict,
    completed_trials: int,
    series: Dict[str, Dict[str, List[float]]],
    failures: Sequence[TrialFailure] = (),
) -> None:
    """Atomically persist the state of a partially completed simulation.

    ``series`` maps algorithm name to metric-name → per-trial values
    (see :data:`SERIES_METRICS`).
    """
    path = Path(path)
    payload = {
        "format_version": CHECKPOINT_VERSION,
        "kind": "simulation_checkpoint",
        "fingerprint": fingerprint,
        "completed_trials": int(completed_trials),
        "series": series,
        "failures": [f.to_dict() for f in failures],
    }
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def load_checkpoint(path: PathLike, fingerprint: dict) -> CheckpointState:
    """Read a checkpoint and verify it belongs to this experiment.

    Raises :class:`~repro.utils.errors.DataError` when the file is
    malformed, from an unsupported version, or fingerprinted for a
    different experiment (config/seed/algorithms/trial count).
    """
    path = Path(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except json.JSONDecodeError as error:
        raise DataError(f"{path}: corrupt checkpoint (invalid JSON)") from error
    if payload.get("kind") != "simulation_checkpoint":
        raise DataError(f"{path}: not a simulation checkpoint")
    version = payload.get("format_version")
    if version != CHECKPOINT_VERSION:
        raise DataError(
            f"{path}: unsupported checkpoint version {version!r} "
            f"(expected {CHECKPOINT_VERSION})"
        )
    if payload.get("fingerprint") != _canonical(fingerprint):
        raise DataError(
            f"{path}: checkpoint belongs to a different experiment "
            "(config, seed, algorithms or trial count changed)"
        )
    completed = int(payload.get("completed_trials", 0))
    series = payload.get("series", {})
    for name, metrics in series.items():
        for metric in SERIES_METRICS:
            values = metrics.get(metric, [])
            if not isinstance(values, list):
                raise DataError(f"{path}: malformed series for {name!r}")
    failures = [TrialFailure.from_dict(f) for f in payload.get("failures", [])]
    return CheckpointState(
        completed_trials=completed, series=series, failures=failures
    )


__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointState",
    "SERIES_METRICS",
    "load_checkpoint",
    "save_checkpoint",
    "simulation_fingerprint",
]
