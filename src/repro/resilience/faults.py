"""Deterministic fault injection for chaos testing.

Related work treats corrupted and adversarial inputs as the *normal*
case for social sensing; this module makes those conditions
reproducible so every recovery path in the library can be exercised
end-to-end.  All injectors are seeded — the same seed corrupts the same
cells — which keeps chaos tests deterministic and debuggable.

Three families:

* :class:`FaultInjector` — data corruption: flipped claims, byzantine
  sources, NaN-poisoned ``SC``/``D`` matrices (deliberately bypassing
  input validation, to model corruption *past* the boundary), and
  malformed tweet JSONL for the pipeline;
* :class:`FlakyBackend` / :class:`NaNLikelihoodBackend` — engine-level
  faults: wrap any EM backend to raise, or to emit a non-finite log
  likelihood, on chosen call indices;
* :func:`chaos_finder` / :func:`temporary_algorithm` — harness-level
  faults: a registry-compatible fact-finder that delegates to a real
  algorithm but dies on chosen fit indices, so a simulation sweep can
  be killed mid-flight on purpose.

Nothing here is imported by production code paths; estimators never
depend on this module.
"""

from __future__ import annotations

import itertools
import json
from contextlib import contextmanager
from typing import Iterable, List, Sequence

import numpy as np

from repro.data.coerce import coerce_problem
from repro.data.dense import DenseProblem, SourceClaimMatrix
from repro.data.protocol import FORMAT_DENSE, Problem
from repro.utils.errors import ReproError, ValidationError
from repro.utils.rng import RandomState, SeedLike


class InjectedFault(ReproError):
    """A failure raised on purpose by the fault-injection toolkit."""


# ---------------------------------------------------------------------------
# Data corruption
# ---------------------------------------------------------------------------

class FaultInjector:
    """Seeded corruption of sensing problems and tweet streams.

    The structured injectors (:meth:`flip_claims`,
    :meth:`byzantine_sources`) accept a problem in either storage
    format and hand back the same format they were given; corruption is
    applied on a dense view (budget-guarded).  The NaN-poisoning
    injectors only accept dense problems — NaN is not representable in
    the int8 CSR storage, so poisoning a CSR problem would silently
    change its format, and they raise instead.
    """

    def __init__(self, seed: SeedLike = None):
        self.rng = RandomState(seed)

    # -- helpers ---------------------------------------------------------------

    def _cell_mask(self, shape, rate: float) -> np.ndarray:
        if not 0.0 < rate <= 1.0:
            raise ValidationError(f"rate must be in (0, 1], got {rate}")
        mask = self.rng.random(shape) < rate
        if not mask.any():
            flat = int(self.rng.integers(0, int(np.prod(shape))))
            mask.flat[flat] = True
        return mask

    def _rewrap(
        self, problem: DenseProblem, claims_values, original: Problem
    ) -> Problem:
        claims = SourceClaimMatrix(
            np.asarray(claims_values, dtype=np.int8),
            source_ids=problem.claims.source_ids,
            assertion_ids=problem.claims.assertion_ids,
        )
        corrupted = DenseProblem(
            claims=claims, dependency=problem.dependency, truth=problem.truth
        )
        if original.format != FORMAT_DENSE:
            return corrupted.csr_view()
        return corrupted

    @staticmethod
    def _require_dense(problem: Problem, injector: str) -> DenseProblem:
        if getattr(problem, "format", None) != FORMAT_DENSE:
            raise ValidationError(
                f"{injector} requires a dense problem: NaN is not "
                "representable in int8 CSR storage (densify explicitly "
                "with problem.dense_view() first)"
            )
        return problem

    # -- structured (still-valid) corruption ------------------------------------

    def flip_claims(self, problem: Problem, rate: float = 0.05) -> Problem:
        """Flip a random ``rate`` fraction of SC cells (claim ↔ non-claim)."""
        dense = coerce_problem(problem, needs=FORMAT_DENSE)
        values = dense.claims.values.copy()
        mask = self._cell_mask(values.shape, rate)
        values[mask] = 1 - values[mask]
        return self._rewrap(dense, values, problem)

    def byzantine_sources(
        self, problem: Problem, fraction: float = 0.1
    ) -> Problem:
        """Invert entire source rows: chosen sources claim exactly what they didn't.

        The classic byzantine-sensor model — the corrupted sources are
        individually consistent, just systematically wrong.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValidationError(f"fraction must be in (0, 1], got {fraction}")
        dense = coerce_problem(problem, needs=FORMAT_DENSE)
        n_sources = dense.n_sources
        n_bad = max(1, int(round(fraction * n_sources)))
        rows = self.rng.choice(n_sources, size=min(n_bad, n_sources), replace=False)
        values = dense.claims.values.copy()
        values[rows] = 1 - values[rows]
        return self._rewrap(dense, values, problem)

    # -- validation-bypassing corruption ----------------------------------------

    def poison_claims(self, problem: Problem, rate: float = 0.05) -> DenseProblem:
        """NaN-poison a fraction of SC cells, *bypassing* input validation.

        Models corruption that slipped past the ingestion boundary
        (e.g. a partial write).  Consumers with run-health guards must
        detect the non-finite values, not average over them.
        """
        problem = self._require_dense(problem, "poison_claims")
        poisoned = problem.claims.values.astype(np.float64)
        poisoned[self._cell_mask(poisoned.shape, rate)] = np.nan
        claims = SourceClaimMatrix(
            problem.claims.values,
            source_ids=problem.claims.source_ids,
            assertion_ids=problem.claims.assertion_ids,
        )
        claims._matrix = poisoned  # deliberate bypass of the binary check
        return DenseProblem(
            claims=claims, dependency=problem.dependency, truth=problem.truth
        )

    def poison_dependency(
        self, problem: Problem, rate: float = 0.05
    ) -> DenseProblem:
        """NaN-poison a fraction of D cells, bypassing input validation."""
        problem = self._require_dense(problem, "poison_dependency")
        poisoned = problem.dependency.values.astype(np.float64)
        poisoned[self._cell_mask(poisoned.shape, rate)] = np.nan
        dependency = type(problem.dependency)(problem.dependency.values)
        dependency._matrix = poisoned  # deliberate bypass
        return DenseProblem(
            claims=problem.claims, dependency=dependency, truth=problem.truth
        )

    # -- pipeline corruption -----------------------------------------------------

    def malform_tweet_lines(
        self, lines: Iterable[str], rate: float = 0.2
    ) -> List[str]:
        """Corrupt a fraction of tweet JSONL lines (truncate / drop field / garble).

        Feed the result to :func:`repro.io.serialization.load_tweets`
        to exercise its :class:`~repro.utils.errors.DataError` paths.
        """
        if not 0.0 < rate <= 1.0:
            raise ValidationError(f"rate must be in (0, 1], got {rate}")
        corrupted: List[str] = []
        touched = 0
        lines = list(lines)
        for line in lines:
            if self.rng.random() >= rate:
                corrupted.append(line)
                continue
            touched += 1
            mode = ("truncate", "drop_field", "garble")[int(self.rng.integers(0, 3))]
            if mode == "truncate":
                corrupted.append(line[: max(1, len(line) // 2)])
            elif mode == "drop_field":
                try:
                    record = json.loads(line)
                    for key in ("tweet_id", "user", "assertion"):
                        record.pop(key, None)
                    corrupted.append(json.dumps(record, sort_keys=True))
                except json.JSONDecodeError:
                    corrupted.append("{corrupt")
            else:
                corrupted.append("!!! not json !!!")
        if lines and touched == 0:
            index = int(self.rng.integers(0, len(corrupted)))
            corrupted[index] = "!!! not json !!!"
        return corrupted


# ---------------------------------------------------------------------------
# Backend wrappers
# ---------------------------------------------------------------------------

class _CountingProxy:
    """Delegate everything to ``inner``, intercepting one method by name."""

    def __init__(self, inner, method: str):
        self._inner = inner
        self._method = method
        self.calls = 0

    def __getattr__(self, name):
        attr = getattr(self._inner, name)
        if name != self._method:
            return attr

        def wrapped(*args, **kwargs):
            index = self.calls
            self.calls += 1
            return self._intercept(attr, index, *args, **kwargs)

        return wrapped

    def _intercept(self, attr, index, *args, **kwargs):  # pragma: no cover
        raise NotImplementedError


class FlakyBackend(_CountingProxy):
    """Wrap an EM backend; raise :class:`InjectedFault` on chosen calls.

    ``fail_calls`` are 0-based indices of calls to ``method`` (default
    ``m_step``, i.e. EM iterations for single-restart fits) that raise.
    """

    def __init__(self, inner, fail_calls: Sequence[int], method: str = "m_step"):
        super().__init__(inner, method)
        self._fail = frozenset(int(i) for i in fail_calls)

    def _intercept(self, attr, index, *args, **kwargs):
        if index in self._fail:
            raise InjectedFault(
                f"injected backend fault: {self._method} call #{index}"
            )
        return attr(*args, **kwargs)


class NaNLikelihoodBackend(_CountingProxy):
    """Wrap an EM backend; return a NaN log likelihood on chosen ``e_step`` calls."""

    def __init__(self, inner, nan_calls: Sequence[int]):
        super().__init__(inner, "e_step")
        self._nan = frozenset(int(i) for i in nan_calls)

    def _intercept(self, attr, index, *args, **kwargs):
        posterior, log_likelihood = attr(*args, **kwargs)
        if index in self._nan:
            return posterior, float("nan")
        return posterior, log_likelihood


# ---------------------------------------------------------------------------
# Harness-level chaos
# ---------------------------------------------------------------------------

def chaos_finder(
    inner_factory,
    *,
    fail_fits: Sequence[int] = (),
    name: str = "chaos",
    exc=InjectedFault,
):
    """Build a registry-compatible fact-finder class that dies on purpose.

    ``inner_factory(seed)`` constructs the real algorithm; ``fail_fits``
    are 0-based indices of ``fit`` calls (counted across all instances
    of the returned class, i.e. across trials *and* retry attempts)
    that raise ``exc`` instead of fitting.  The class advertises
    ``accepts_trial_seed`` so the harness threads the per-trial seed
    through, keeping chaos runs deterministic and resumable.
    """
    fail = frozenset(int(i) for i in fail_fits)
    counter = itertools.count()

    class _ChaosFinder:
        algorithm_name = name
        accepts_trial_seed = True

        def __init__(self, seed: SeedLike = None, **_kwargs):
            self._seed = seed

        def fit(self, problem):
            index = next(counter)
            if index in fail:
                raise exc(f"injected fault: fit #{index} of {name!r}")
            return inner_factory(self._seed).fit(problem)

    _ChaosFinder.__name__ = f"ChaosFinder_{name}"
    _ChaosFinder.__qualname__ = _ChaosFinder.__name__
    return _ChaosFinder


@contextmanager
def temporary_algorithm(cls):
    """Register ``cls`` in the algorithm registry for the duration of a block.

    Yields the registry key (``cls.algorithm_name``) and restores any
    shadowed registration on exit.
    """
    from repro.baselines import ALGORITHM_REGISTRY

    name = cls.algorithm_name
    previous = ALGORITHM_REGISTRY.get(name)
    ALGORITHM_REGISTRY[name] = cls
    try:
        yield name
    finally:
        if previous is None:
            ALGORITHM_REGISTRY.pop(name, None)
        else:
            ALGORITHM_REGISTRY[name] = previous


__all__ = [
    "FaultInjector",
    "FlakyBackend",
    "InjectedFault",
    "NaNLikelihoodBackend",
    "chaos_finder",
    "temporary_algorithm",
]
