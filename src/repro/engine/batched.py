"""Batched tensor execution: many EM lanes as one ``(B, n, m)`` pass.

The paper's evaluation fits the *same-shaped* EM-Ext problem dozens of
times — R restarts × T trials per sweep point — and at Fig. 7 sizes a
single fit is kernel-launch-bound, not FLOP-bound.  This module stacks
B independent fits ("lanes") into C-contiguous ``(B, n, m)`` claim and
dependency tensors plus ``(B, n, 4)`` log-parameter tables and runs
every E-step / M-step / column-log-likelihood over all lanes at once,
amortising the per-call NumPy dispatch across the whole batch.

Lane model
----------
A *lane* is one serial EM run: either one restart of a shared problem
(:meth:`BatchedDenseBackend.from_backend` keeps the data as broadcast
``(1, n, m)`` views — no copies) or one trial's distinct problem
(:meth:`BatchedDenseBackend.from_backends` stacks same-shape problems).
Lanes never interact: every batched kernel reduces along the source
axis or multiplies ``(·, n, m) @ (B, m, 1)`` stacked mat-vecs, both of
which NumPy evaluates lane-wise with exactly the serial kernel's
reduction order.  That is the *parity contract*: lane ``b`` of a
batched run is **bit-for-bit** the serial fit of that lane alone —
parameters, posterior, log-likelihood trace, iteration count and fault
messages — pinned by ``tests/engine/test_batched.py``.

Because these problems are launch-bound, the batched step keeps its
NumPy call count close to *one serial iteration's* rather than B of
them.  The tricks, each bitwise-neutral:

* the four rates live in one ``(B, n, 4)`` tensor (layout
  ``[a, b, f, g]``), so clamping, convergence deltas and the NaN fault
  probe are single fused calls (elementwise ops don't care about
  stacking; max and NaN-ness are order-insensitive);
* the unsmoothed M-step ratio is one masked divide over the whole
  ``(B, n, 4)`` count stack (Equations 10–14 share the ratio form);
  the smoothed path falls back to four per-rate updates because the
  pooled reductions must keep the serial contiguous summation order;
* both gather tables sit in one ``(2, B, n, 4)`` buffer, so the
  true/false column log-likelihoods are a *single* flat ``take``;
* the E-step posterior and the Equation (7) total share ``top`` and
  both exponentials in the all-finite hot case.

Three formulations are deliberately avoided because they break bitwise
parity: ``(n, m) @ (m, B)`` GEMM and stacked ``(·, m, 2)`` multi-vector
products evaluate columns with a different accumulation pattern than
the serial GEMV, and ``np.einsum`` reorders the reduction.  Column
dedup is also skipped — the dedup expand/scatter is exact, but the
batched gather is already one flat ``take`` and the dedup bookkeeping
would be per-lane anyway.

Convergence masking
-------------------
Each pass computes every active lane; lanes that converge, diverge or
fault *retire* — their finished :class:`~repro.engine.driver.DriverOutcome`
is captured and the remaining stacks are compacted with a fancy-index
(bitwise-neutral) so later passes shrink instead of dragging finished
lanes along.  Faulted lanes (NaN-poisoned M-steps) retire with the
exact error string the serial loop would have raised, so the driver's
health ledger cannot tell the modes apart.

Observability (PR 8 transparency guarantee applies: everything below
is a no-op when no session is active and changes no numerics):

* ``engine.batched.lanes`` — lanes launched;
* ``engine.batched.lane_retirements`` — lanes retired before the
  iteration cap;
* ``engine.batched.occupancy`` — histogram of active lanes per pass
  (mean occupancy ≈ batch efficiency);
* ``em.iterations`` is counted per *lane* iteration, keeping counter
  totals identical to the serial loop.

Timing caveat: per-iteration ``IterationEvent.duration_seconds`` is the
duration of the *shared* batched pass (all active lanes), not a
per-lane cost — numeric fields are bitwise-serial, durations are not.
Events are built only when ``collect_events`` is set (the driver
requests them when telemetry callbacks are attached); traces are
always recorded.  Early-stop requests from callbacks are ignored, as
in the parallel restart path: events are replayed after the fact.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro import observability
from repro.core.likelihood import column_log_likelihoods
from repro.core.model import DEFAULT_EPSILON, ParameterTrace, SourceParameters
from repro.engine.driver import DriverOutcome, IterationEvent
from repro.engine.statistics import batched_ratio_update
from repro.kernels.likelihood import (
    batched_dual_column_log_likelihoods,
    batched_flat_claim_codes,
    dual_lane_codes,
    lane_offset_codes,
)
from repro.kernels.tables import BatchedLogParameterTables, ParamsKeyedCache
from repro.utils.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.engine.backends import DenseBackend
    from repro.resilience.supervisor import Deadline

#: The serial M-step's fault messages, verbatim (`type(e).__name__: e`
#: formatting as in ``EMDriver._serial_candidates``), so a retired lane
#: is indistinguishable from a raised serial restart in the health
#: ledger.
_RATES_FAULT = (
    "ValidationError: M-step produced non-finite rates; the claim "
    "matrix likely contains NaN or infinite entries"
)
_Z_FAULT = "ValidationError: z must be a probability, got NaN"


@dataclass(frozen=True)
class BatchedSourceParameters:
    """B stacked :class:`~repro.core.model.SourceParameters` lanes.

    The four rates live in one C-contiguous ``(B, n, 4)`` tensor with
    column layout ``[a, b, f, g]`` (the M-step update order); the prior
    ``z`` is ``(B,)``.  The single tensor lets clamping, convergence
    deltas and the fault probe run as one fused NumPy call each instead
    of four — the per-call dispatch is what dominates at paper sizes.
    Immutable like its scalar twin; all update operations return new
    instances.
    """

    rates: np.ndarray
    z: np.ndarray

    @classmethod
    def stack(
        cls, params: Sequence[SourceParameters]
    ) -> "BatchedSourceParameters":
        """Stack validated scalar parameter sets into ``(B, n, 4)`` lanes."""
        if not params:
            raise ValidationError("cannot stack an empty parameter sequence")
        sizes = {p.n_sources for p in params}
        if len(sizes) != 1:
            raise ValidationError(
                f"cannot stack parameters over different source counts: {sorted(sizes)}"
            )
        n_sources = sizes.pop()
        rates = np.empty((len(params), n_sources, 4))
        z = np.empty(len(params))
        for index, p in enumerate(params):
            rates[index, :, 0] = p.a
            rates[index, :, 1] = p.b
            rates[index, :, 2] = p.f
            rates[index, :, 3] = p.g
            z[index] = p.z
        return cls(rates=rates, z=z)

    @property
    def n_lanes(self) -> int:
        return self.rates.shape[0]

    @property
    def n_sources(self) -> int:
        return self.rates.shape[1]

    @property
    def a(self) -> np.ndarray:
        return self.rates[:, :, 0]

    @property
    def b(self) -> np.ndarray:
        return self.rates[:, :, 1]

    @property
    def f(self) -> np.ndarray:
        return self.rates[:, :, 2]

    @property
    def g(self) -> np.ndarray:
        return self.rates[:, :, 3]

    def lane(self, index: int) -> SourceParameters:
        """Lane ``index`` as a scalar parameter set (fresh arrays).

        The rows were produced by validated constructions or by
        :meth:`clamp`, so the no-revalidation constructor applies.
        """
        row = self.rates[index]
        return SourceParameters._trusted(
            a=row[:, 0].copy(),
            b=row[:, 1].copy(),
            f=row[:, 2].copy(),
            g=row[:, 3].copy(),
            z=float(self.z[index]),
        )

    def select(self, keep: np.ndarray) -> "BatchedSourceParameters":
        """The sub-batch of lanes ``keep`` (fancy-index compaction)."""
        return BatchedSourceParameters(rates=self.rates[keep], z=self.z[keep])

    def clamp(self, epsilon: float = DEFAULT_EPSILON) -> "BatchedSourceParameters":
        """Per-lane :meth:`SourceParameters.clamp` (same min/max ops)."""
        if not 0.0 < epsilon < 0.5:
            raise ValidationError(f"epsilon must be in (0, 0.5), got {epsilon}")
        low, high = epsilon, 1.0 - epsilon
        return BatchedSourceParameters(
            rates=np.minimum(np.maximum(self.rates, low), high),
            z=np.minimum(np.maximum(self.z, low), high),
        )

    def max_difference(self, other: "BatchedSourceParameters") -> np.ndarray:
        """Per-lane convergence deltas, ``(B,)``.

        Lane ``b`` equals ``lane(b).max_difference(other.lane(b))``
        bitwise: max is an exact, order-insensitive reduction, so the
        fused max over the ``(n, 4)`` rate block matches the serial
        Python ``max`` over four per-rate maxima plus ``|z diff|``.
        """
        if self.n_sources:
            delta = np.abs(self.rates - other.rates).max(axis=(1, 2))
        else:
            delta = np.zeros(self.n_lanes)
        np.maximum(delta, np.abs(self.z - other.z), out=delta)
        return delta

    def lane_faults(self) -> Optional[List[Optional[str]]]:
        """Per-lane M-step fault messages, or ``None`` when all clean.

        Mirrors the serial guard order: the aggregate rates NaN probe
        (``_check_rates_finite``) fires first, then the scalar ``z``
        probability check — each with the serial exception's message so
        health ledgers match string-for-string.  NaN-ness of a sum is
        summation-order-independent (rates are NaN or in ``[0, 1]``, so
        no infinities can cancel), hence one fused reduction suffices.
        """
        rates_nan = np.isnan(self.rates.sum(axis=(1, 2)))
        z_nan = np.isnan(self.z)
        if not (rates_nan.any() or z_nan.any()):
            return None
        faults: List[Optional[str]] = [None] * self.n_lanes
        for index in np.flatnonzero(rates_nan | z_nan):
            faults[index] = _RATES_FAULT if rates_nan[index] else _Z_FAULT
        return faults


def _batched_posterior(
    joint_true: np.ndarray, joint_false: np.ndarray
) -> np.ndarray:
    """Per-lane stable Bayes posterior from ``(B, m)`` log joints.

    Same two branches as
    :func:`repro.core.likelihood.posterior_from_log_likelihoods`; the
    guarded branch computes identical values for finite-``top`` columns,
    so taking it batch-wide (one lane's degenerate column sends all
    lanes through it) changes no bits.
    """
    top = np.maximum(joint_true, joint_false)
    if np.isfinite(top).all():
        num = np.exp(joint_true - top)
        return num / (num + np.exp(joint_false - top))
    with np.errstate(invalid="ignore"):
        num = np.exp(joint_true - top)
        den = num + np.exp(joint_false - top)
        return np.where(np.isfinite(top), num / den, 0.5)


def _batched_log_likelihood(
    joint_true: np.ndarray, joint_false: np.ndarray
) -> np.ndarray:
    """Per-lane Equation (7) totals, ``(B,)``, from ``(B, m)`` log joints."""
    top = np.maximum(joint_true, joint_false)
    safe_top = np.where(np.isfinite(top), top, 0.0)
    column_ll = safe_top + np.log(
        np.exp(joint_true - safe_top) + np.exp(joint_false - safe_top)
    )
    return column_ll.sum(axis=1)


def _batched_posterior_and_ll(
    joint_true: np.ndarray, joint_false: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Fused posterior + Equation (7) totals from ``(B, m)`` log joints.

    In the all-finite hot case the two formulas share ``top`` and both
    exponentials, so computing them together halves the call count while
    producing bit-for-bit the same arrays as the two helpers above
    (identical operations on identical inputs).  Any degenerate column
    routes both through the guarded branches unchanged.
    """
    top = np.maximum(joint_true, joint_false)
    if np.isfinite(top).all():
        exp_true = np.exp(joint_true - top)
        exp_false = np.exp(joint_false - top)
        total = exp_true + exp_false
        posterior = exp_true / total
        log_likelihoods = (top + np.log(total)).sum(axis=1)
        return posterior, log_likelihoods
    return (
        _batched_posterior(joint_true, joint_false),
        _batched_log_likelihood(joint_true, joint_false),
    )


class BatchedDenseBackend:
    """Dense backend running B same-shape lanes per kernel call.

    Build via :meth:`from_backend` (B restarts of one problem, data
    shared as broadcast ``(1, n, m)`` views) or :meth:`from_backends`
    (B distinct same-shape problems, data stacked).  The EM-step API
    mirrors :class:`~repro.engine.backends.DenseBackend` with a lane
    axis prepended; :meth:`compact` drops retired lanes.
    """

    def __init__(
        self,
        sc: np.ndarray,
        dep: np.ndarray,
        *,
        n_lanes: int,
        smoothing: float = 0.0,
        epsilon: float = DEFAULT_EPSILON,
    ) -> None:
        if sc.ndim != 3 or dep.shape != sc.shape:
            raise ValidationError(
                f"expected matching (lanes, n, m) stacks, got {sc.shape} and {dep.shape}"
            )
        if sc.shape[0] not in (1, n_lanes):
            raise ValidationError(
                f"stack carries {sc.shape[0]} lanes but {n_lanes} were requested"
            )
        self.smoothing = smoothing
        self.epsilon = epsilon
        self.n_lanes = n_lanes
        self.sc = sc
        self.dep = dep
        self.indep = 1.0 - dep
        self.sc_indep = sc * self.indep
        self.sc_dep = sc * dep
        #: ``(1 | B, n, m)`` flat (n, 4)-table codes without lane offsets.
        self._base_codes = batched_flat_claim_codes(sc != 0, dep != 0)
        self._set_lane_codes()
        self._columns_cache = ParamsKeyedCache()

    def _set_lane_codes(self) -> None:
        """(Re)derive the lane-offset gather codes from the base codes."""
        self._lane_codes = lane_offset_codes(
            self._base_codes, self.n_sources, self.n_lanes
        )
        self._dual_codes = dual_lane_codes(
            self._lane_codes, self.n_sources, self.n_lanes
        )

    @classmethod
    def from_backend(
        cls, backend: "DenseBackend", n_lanes: int
    ) -> "BatchedDenseBackend":
        """``n_lanes`` restart lanes over ``backend``'s problem (no copies)."""
        return cls(
            backend.sc[None],
            backend.dep[None],
            n_lanes=n_lanes,
            smoothing=backend.smoothing,
            epsilon=backend.epsilon,
        )

    @classmethod
    def from_backends(
        cls, backends: Sequence["DenseBackend"]
    ) -> "BatchedDenseBackend":
        """One lane per same-shape scalar backend (trial packs)."""
        if not backends:
            raise ValidationError("cannot batch an empty backend sequence")
        shapes = {b.sc.shape for b in backends}
        if len(shapes) != 1:
            raise ValidationError(
                f"cannot batch backends over different shapes: {sorted(shapes)}"
            )
        settings = {(b.smoothing, b.epsilon) for b in backends}
        if len(settings) != 1:
            raise ValidationError(
                "cannot batch backends with different smoothing/epsilon settings"
            )
        return cls(
            np.stack([b.sc for b in backends]),
            np.stack([b.dep for b in backends]),
            n_lanes=len(backends),
            smoothing=backends[0].smoothing,
            epsilon=backends[0].epsilon,
        )

    @property
    def n_sources(self) -> int:
        return self.sc.shape[1]

    @property
    def n_assertions(self) -> int:
        return self.sc.shape[2]

    @property
    def shared_problem(self) -> bool:
        """All lanes view one problem (restart mode)."""
        return self.sc.shape[0] == 1 and self.n_lanes != 1

    def _lane_data(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        """Lane ``index``'s ``(sc, dep)`` float matrices."""
        if self.sc.shape[0] == 1:
            return self.sc[0], self.dep[0]
        return self.sc[index], self.dep[index]

    def compact(self, keep: np.ndarray) -> "BatchedDenseBackend":
        """The sub-batch of lanes ``keep``.

        Shared-problem stacks (and their precomputed products and base
        codes) are reused as-is — only the lane-offset codes change;
        per-lane stacks are fancy-indexed, which copies values verbatim
        into fresh C-contiguous tensors.  Either way no product or code
        is *recomputed*, so compaction is bitwise-neutral and cheap.
        """
        cls = type(self)
        new = cls.__new__(cls)
        new.smoothing = self.smoothing
        new.epsilon = self.epsilon
        new.n_lanes = int(len(keep))
        if self.sc.shape[0] == 1:
            new.sc = self.sc
            new.dep = self.dep
            new.indep = self.indep
            new.sc_indep = self.sc_indep
            new.sc_dep = self.sc_dep
            new._base_codes = self._base_codes
        else:
            new.sc = self.sc[keep]
            new.dep = self.dep[keep]
            new.indep = self.indep[keep]
            new.sc_indep = self.sc_indep[keep]
            new.sc_dep = self.sc_dep[keep]
            new._base_codes = self._base_codes[keep]
        new._set_lane_codes()
        new._columns_cache = ParamsKeyedCache()
        return new

    # -- EM steps ----------------------------------------------------------------

    def m_step(
        self, posterior: np.ndarray, previous: BatchedSourceParameters
    ) -> BatchedSourceParameters:
        """Equations (10)–(14) over all lanes at once.

        Every product is a stacked mat-vec
        ``(1|B, n, m) @ (B, m, 1)`` — NumPy dispatches these to the
        same per-lane GEMV the serial backend uses, so the counts (and
        hence the ratios) are bitwise lane-for-lane serial.  Unsmoothed,
        the four ratio updates fuse into one masked divide over the
        ``(B, n, 4)`` count stacks (elementwise, hence bitwise); the
        smoothed path keeps four per-rate updates because the pooled
        reductions must run over contiguous ``(B, n)`` slabs to keep
        the serial summation order.  No fault is raised here: poisoned
        lanes surface via
        :meth:`BatchedSourceParameters.lane_faults` and retire alone
        instead of aborting the batch.
        """
        z_post = posterior[:, :, None]  # (B, m, 1)
        y_post = 1.0 - z_post
        numerators = (
            np.matmul(self.sc_indep, z_post),
            np.matmul(self.sc_indep, y_post),
            np.matmul(self.sc_dep, z_post),
            np.matmul(self.sc_dep, y_post),
        )
        denominators = (
            np.matmul(self.indep, z_post),
            np.matmul(self.indep, y_post),
            np.matmul(self.dep, z_post),
            np.matmul(self.dep, y_post),
        )
        if self.smoothing != 0.0:
            rates = np.stack(
                [
                    batched_ratio_update(
                        numerators[column][:, :, 0],
                        denominators[column][:, :, 0],
                        smoothing=self.smoothing,
                        fallback=previous.rates[:, :, column],
                    )
                    for column in range(4)
                ],
                axis=2,
            )
        else:
            numerator = np.concatenate(numerators, axis=2)
            denominator = np.concatenate(denominators, axis=2)
            usable = denominator > 0
            rates = np.where(usable, 0.0, previous.rates)
            np.divide(numerator, denominator, out=rates, where=usable)
        z = (
            posterior.sum(axis=1) / posterior.shape[1]
            if posterior.shape[1]
            else previous.z
        )
        # SourceParameters.clamp's min/max pair, fused over the rate
        # stack (in place: `rates` is fresh either way).
        low, high = self.epsilon, 1.0 - self.epsilon
        np.maximum(rates, low, out=rates)
        np.minimum(rates, high, out=rates)
        return BatchedSourceParameters(
            rates=rates, z=np.minimum(np.maximum(z, low), high)
        )

    def _column_log_likelihoods(
        self, params: BatchedSourceParameters
    ) -> Tuple[np.ndarray, np.ndarray, BatchedLogParameterTables]:
        """Per-lane column log-likelihoods, ``(B, m)`` each, plus tables."""

        def compute() -> Tuple[np.ndarray, np.ndarray, BatchedLogParameterTables]:
            tables = BatchedLogParameterTables.build(params)
            log_true, log_false = batched_dual_column_log_likelihoods(
                self._dual_codes, tables
            )
            if not tables.finite.all():
                # Unclamped degenerate lanes take the serial backend's
                # careful legacy path, alone — splicing their rows over
                # the garbage the fast gather produced for them.
                for index in np.flatnonzero(~tables.finite):
                    sc, dep = self._lane_data(int(index))
                    lane_true, lane_false = column_log_likelihoods(
                        sc, dep, params.lane(int(index))
                    )
                    log_true[index] = lane_true
                    log_false[index] = lane_false
            return log_true, log_false, tables

        return self._columns_cache.get(params, compute)

    def posterior(self, params: BatchedSourceParameters) -> np.ndarray:
        """Equation (9) truth posterior, ``(B, m)``."""
        log_true, log_false, tables = self._column_log_likelihoods(params)
        return _batched_posterior(
            log_true + tables.log_z[:, None],
            log_false + tables.log_1z[:, None],
        )

    def e_step(
        self, params: BatchedSourceParameters
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-lane posterior ``(B, m)`` plus log likelihood ``(B,)``."""
        log_true, log_false, tables = self._column_log_likelihoods(params)
        return _batched_posterior_and_ll(
            log_true + tables.log_z[:, None],
            log_false + tables.log_1z[:, None],
        )


@dataclass
class BatchedLaneResult:
    """What one lane of a batched run produced.

    Exactly one of ``outcome`` / ``error`` is set, matching the
    ``(index, candidate, error)`` triples the driver's candidate
    streams yield.  ``events`` carries the lane's per-iteration
    telemetry for after-the-fact replay (a faulted lane keeps the
    events of the iterations that completed before the fault, as in
    the serial loop); it stays empty unless the run collected events.
    """

    outcome: Optional[DriverOutcome]
    error: Optional[str]
    events: List[IterationEvent]


def run_batched_lanes(
    backend: BatchedDenseBackend,
    initial_params: Sequence[SourceParameters],
    *,
    max_iterations: int,
    tolerance: float,
    deadline: Optional[float] = None,
    budget: Optional["Deadline"] = None,
    collect_events: bool = True,
) -> List[BatchedLaneResult]:
    """Run every lane to its own fixed point in shared batched passes.

    The per-lane loop semantics replicate ``EMDriver.run`` exactly —
    record trace/event, then divergence check, then tolerance, then
    wall deadline, then cooperative budget — with one structural
    difference: a wall ``deadline`` or a supervision ``budget`` cuts
    the *whole batch* at a pass boundary (all still-active lanes are
    marked ``budget_exhausted`` / the ``DeadlineExceeded`` propagates),
    because lanes share each pass's wall clock.  Timing-dependent
    budgets were never bitwise-reproducible, serial or not.

    ``collect_events`` gates per-iteration :class:`IterationEvent`
    construction (the one per-lane artefact nothing consumes unless
    telemetry callbacks are attached); traces and outcomes are always
    produced and are unaffected by the flag.
    """
    n_lanes = len(initial_params)
    if n_lanes != backend.n_lanes:
        raise ValidationError(
            f"{n_lanes} initialisations for a {backend.n_lanes}-lane backend"
        )
    observability.count("engine.batched.lanes", n_lanes)
    params = BatchedSourceParameters.stack(initial_params)
    traces = [ParameterTrace() for _ in range(n_lanes)]
    events: List[List[IterationEvent]] = [[] for _ in range(n_lanes)]
    results: List[Optional[BatchedLaneResult]] = [None] * n_lanes
    #: results index of each still-active lane, in lane order.
    active = np.arange(n_lanes)

    def _retire(lane: int, result: BatchedLaneResult) -> None:
        results[lane] = result
        observability.count("engine.batched.lane_retirements")

    def _finish(
        lane: int,
        position: int,
        current: BatchedSourceParameters,
        posterior: np.ndarray,
        *,
        converged: bool = False,
        diverged: bool = False,
        budget_exhausted: bool = False,
    ) -> BatchedLaneResult:
        outcome = DriverOutcome(
            parameters=current.lane(position),
            posterior=posterior[position].copy(),
            trace=traces[lane],
            converged=converged,
            diverged=diverged,
            budget_exhausted=budget_exhausted,
        )
        return BatchedLaneResult(
            outcome=outcome, error=None, events=events[lane]
        )

    with observability.span(
        "engine.batched.run", n_lanes=n_lanes, max_iterations=max_iterations
    ):
        posterior = backend.posterior(params)
        for iteration in range(max_iterations):
            if not active.size:
                break
            observability.observe_value("engine.batched.occupancy", active.size)
            observability.count("em.iterations", active.size)
            start = time.perf_counter()
            new_params = backend.m_step(posterior, params)
            faults = new_params.lane_faults()
            if faults is not None:
                # Serial parity: the faulted lane raised inside m_step,
                # before this iteration's trace record — it keeps only
                # its earlier events and yields no candidate.
                for position in np.flatnonzero(
                    [fault is not None for fault in faults]
                ):
                    lane = int(active[position])
                    _retire(
                        lane,
                        BatchedLaneResult(
                            outcome=None,
                            error=faults[position],
                            events=events[lane],
                        ),
                    )
                keep = np.flatnonzero([fault is None for fault in faults])
                active = active[keep]
                if not active.size:
                    break
                new_params = new_params.select(keep)
                params = params.select(keep)
                posterior = posterior[keep]
                backend = backend.compact(keep)
            deltas = new_params.max_difference(params)
            params = new_params
            posterior, log_likelihoods = backend.e_step(params)
            duration = time.perf_counter() - start
            # Python-float views of the per-lane numbers: `tolist`
            # round-trips float64 exactly, and `math.isfinite` on the
            # result matches `np.isfinite` — this keeps the per-lane
            # bookkeeping below free of per-element NumPy dispatch.
            delta_list = deltas.tolist()
            ll_list = log_likelihoods.tolist()
            retire_positions: List[int] = []
            past_deadline = (
                deadline is not None and time.perf_counter() >= deadline
            )
            for position in range(active.size):
                lane = int(active[position])
                delta = delta_list[position]
                log_likelihood = ll_list[position]
                traces[lane].record(log_likelihood, delta)
                if collect_events:
                    events[lane].append(
                        IterationEvent(
                            iteration=iteration,
                            delta=delta,
                            log_likelihood=log_likelihood,
                            duration_seconds=duration,
                        )
                    )
                if not (math.isfinite(delta) and math.isfinite(log_likelihood)):
                    _retire(
                        lane,
                        _finish(lane, position, params, posterior, diverged=True),
                    )
                    retire_positions.append(position)
                elif delta < tolerance:
                    _retire(
                        lane,
                        _finish(lane, position, params, posterior, converged=True),
                    )
                    retire_positions.append(position)
                elif past_deadline:
                    _retire(
                        lane,
                        _finish(
                            lane, position, params, posterior,
                            budget_exhausted=True,
                        ),
                    )
                    retire_positions.append(position)
            if retire_positions:
                keep = np.setdiff1d(
                    np.arange(active.size), np.asarray(retire_positions)
                )
                active = active[keep]
                if active.size:
                    params = params.select(keep)
                    posterior = posterior[keep]
                    backend = backend.compact(keep)
            if budget is not None and active.size:
                budget.check(
                    "run_batched_lanes",
                    iteration=iteration,
                    active_lanes=int(active.size),
                )
        # Lanes still active hit the iteration cap: exhausted, like the
        # serial loop falling out of `range(max_iterations)`.
        for position in range(active.size):
            lane = int(active[position])
            results[lane] = _finish(lane, position, params, posterior)
    return [result for result in results if result is not None]


__all__ = [
    "BatchedDenseBackend",
    "BatchedLaneResult",
    "BatchedSourceParameters",
    "run_batched_lanes",
]
