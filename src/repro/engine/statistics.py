"""Sufficient statistics and the single M-step ratio kernel.

Every M-step in the library — dense EM-Ext, sparse EM-Ext, the
streaming estimator and the masked independence baselines — is a ratio
of posterior-weighted counts over a cell partition (Equations 10–14).
:func:`ratio_update` is the one implementation of that ratio, including
the two engineering layers documented in DESIGN.md §5.5:

* hierarchical (empirical-Bayes) smoothing — shrink each source's rate
  toward the pooled population rate by ``s`` pseudo-counts;
* empty-partition fallback — a source with no cells in a partition
  keeps its previous value for the affected parameter.

:class:`SufficientStatistics` holds the numerator/denominator count
vectors themselves.  The streaming estimator's decayed statistics are
exactly this accumulator plus an exponential forgetting factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.core.model import DEFAULT_EPSILON, SourceParameters

#: The four per-source rates of the dependency-aware model, in the
#: order the M-step updates them.
RATE_NAMES: Tuple[str, str, str, str] = ("a", "b", "f", "g")

#: ``(numerator, denominator)`` count vectors per rate name.
CountMap = Mapping[str, Tuple[np.ndarray, np.ndarray]]


def ratio_update(
    numerator: np.ndarray,
    denominator: np.ndarray,
    *,
    smoothing: float = 0.0,
    fallback: np.ndarray,
    clip_ratio: bool = False,
) -> np.ndarray:
    """The Equations 10–14 M-step ratio, with smoothing and fallback.

    Parameters
    ----------
    numerator, denominator:
        Posterior-weighted counts over one cell partition (e.g. for
        Equation 10: claim mass and total mass over independent cells).
    smoothing:
        Pseudo-count ``s`` of hierarchical shrinkage: the ratio becomes
        ``(num_i + s·pooled) / (den_i + s)`` where ``pooled`` is the
        population rate (all numerators over all denominators).
    fallback:
        Per-source previous values, kept wherever the partition is
        empty (denominator zero).
    clip_ratio:
        Clip the raw ratio into ``[0, 1]`` before applying the
        fallback.  Sparse backends need this because their subtracted
        denominators can undershoot the numerator by float rounding.
    """
    if smoothing != 0.0:
        # The pooled rate only matters when it is actually blended in;
        # adding s=0 pseudo-counts is the identity (counts are
        # non-negative, so +0.0 cannot flip a signed zero), and the two
        # reductions plus two array adds are pure overhead in the
        # common unsmoothed inner loops.
        pooled_den = float(denominator.sum())
        pooled = float(numerator.sum()) / pooled_den if pooled_den > 0 else 0.5
        numerator = numerator + smoothing * pooled
        denominator = denominator + smoothing
    # Masked divide: fallback cells are pre-filled and never touched by
    # the division, so empty partitions raise no warnings and need no
    # errstate round-trip (this runs four times per M-step).
    usable = denominator > 0
    ratio = np.where(usable, 0.0, fallback)
    np.divide(numerator, denominator, out=ratio, where=usable)
    if clip_ratio:
        # np.clip's definition without its dispatch overhead (NaN
        # propagates through maximum/minimum identically); masked so
        # fallback cells stay verbatim, as with the historical
        # clip-then-select.
        np.maximum(ratio, 0.0, out=ratio, where=usable)
        np.minimum(ratio, 1.0, out=ratio, where=usable)
    return ratio


def batched_ratio_update(
    numerator: np.ndarray,
    denominator: np.ndarray,
    *,
    smoothing: float = 0.0,
    fallback: np.ndarray,
) -> np.ndarray:
    """Per-lane :func:`ratio_update` over ``(B, n)`` count stacks.

    Lane ``b`` of the result is bit-for-bit ``ratio_update`` of lane
    ``b``'s counts alone: the pooled shrinkage rate is reduced per lane
    (``sum(axis=1)`` of a C-contiguous stack keeps the serial 1-D
    pairwise reduction order), and the scalar-vs-elementwise division
    producing it is the same IEEE-754 operation either way.  ``fallback``
    is the ``(B, n)`` previous-parameter stack.
    """
    if smoothing != 0.0:
        pooled_den = denominator.sum(axis=1, keepdims=True)
        pooled_num = numerator.sum(axis=1, keepdims=True)
        # Serial uses 0.5 when a lane's partition is globally empty.
        pooled = np.full_like(pooled_den, 0.5)
        np.divide(pooled_num, pooled_den, out=pooled, where=pooled_den > 0)
        numerator = numerator + smoothing * pooled
        denominator = denominator + smoothing
    usable = denominator > 0
    ratio = np.where(usable, 0.0, fallback)
    np.divide(numerator, denominator, out=ratio, where=usable)
    return ratio


def stable_posterior(
    log_true: np.ndarray, log_false: np.ndarray, z: float
) -> np.ndarray:
    """Bayes posterior from per-column log likelihoods, peak-normalised."""
    joint_true = log_true + np.log(z)
    joint_false = log_false + np.log1p(-z)
    top = np.maximum(joint_true, joint_false)
    numerator = np.exp(joint_true - top)
    return numerator / (numerator + np.exp(joint_false - top))


def log_likelihood_from_columns(
    log_true: np.ndarray, log_false: np.ndarray, z: float
) -> float:
    """Observed-data log likelihood from per-column log likelihoods."""
    joint_true = log_true + np.log(z)
    joint_false = log_false + np.log1p(-z)
    top = np.maximum(joint_true, joint_false)
    return float(
        (top + np.log(np.exp(joint_true - top) + np.exp(joint_false - top))).sum()
    )


@dataclass
class SufficientStatistics:
    """Posterior-weighted counts behind the M-step ratios.

    One ``(numerator, denominator)`` vector pair per rate in
    :data:`RATE_NAMES` plus the prior's scalar counters.  Supports
    exponential decay, which is all the streaming estimator adds on top
    of the batch M-step.
    """

    numerators: Dict[str, np.ndarray]
    denominators: Dict[str, np.ndarray]
    z_numerator: float = 0.0
    z_denominator: float = 0.0

    @classmethod
    def zeros(cls, n_sources: int) -> "SufficientStatistics":
        """An empty accumulator for ``n_sources`` sources."""
        return cls(
            numerators={k: np.zeros(n_sources) for k in RATE_NAMES},
            denominators={k: np.zeros(n_sources) for k in RATE_NAMES},
        )

    def copy(self) -> "SufficientStatistics":
        """Deep copy (fresh count arrays) — used for rollback snapshots."""
        return SufficientStatistics(
            numerators={k: v.copy() for k, v in self.numerators.items()},
            denominators={k: v.copy() for k, v in self.denominators.items()},
            z_numerator=self.z_numerator,
            z_denominator=self.z_denominator,
        )

    def decay(self, factor: float) -> None:
        """Exponentially discount all accumulated counts in place."""
        for name in self.numerators:
            self.numerators[name] *= factor
            self.denominators[name] *= factor
        self.z_numerator *= factor
        self.z_denominator *= factor

    def add(self, counts: CountMap, z_counts: Tuple[float, float]) -> None:
        """Accumulate one batch's partition counts."""
        for name, (numerator, denominator) in counts.items():
            self.numerators[name] += numerator
            self.denominators[name] += denominator
        self.z_numerator += z_counts[0]
        self.z_denominator += z_counts[1]

    def rates(
        self,
        fallback: SourceParameters,
        epsilon: float = DEFAULT_EPSILON,
    ) -> SourceParameters:
        """Parameters from the accumulated counts alone."""
        rates = {}
        for name in RATE_NAMES:
            rates[name] = ratio_update(
                self.numerators[name],
                self.denominators[name],
                fallback=getattr(fallback, name),
            )
        z = (
            self.z_numerator / self.z_denominator
            if self.z_denominator > 0
            else fallback.z
        )
        return SourceParameters(
            a=rates["a"], b=rates["b"], f=rates["f"], g=rates["g"], z=float(z)
        ).clamp(epsilon)

    def merged_rates(
        self,
        counts: CountMap,
        z_counts: Tuple[float, float],
        decay: float,
        fallback: SourceParameters,
        epsilon: float = DEFAULT_EPSILON,
    ) -> SourceParameters:
        """Parameters from decayed history plus one batch's soft counts.

        The history is discounted by ``decay`` *without* mutating the
        accumulator — used for the streaming inner loop, which refines
        a batch posterior before committing its counts.
        """
        rates = {}
        for name in RATE_NAMES:
            numerator, denominator = counts[name]
            rates[name] = ratio_update(
                self.numerators[name] * decay + numerator,
                self.denominators[name] * decay + denominator,
                fallback=getattr(fallback, name),
            )
        z_total_num = self.z_numerator * decay + z_counts[0]
        z_total_den = self.z_denominator * decay + z_counts[1]
        z = z_total_num / z_total_den if z_total_den > 0 else fallback.z
        return SourceParameters(
            a=rates["a"], b=rates["b"], f=rates["f"], g=rates["g"], z=float(z)
        ).clamp(epsilon)


__all__ = [
    "CountMap",
    "RATE_NAMES",
    "SufficientStatistics",
    "batched_ratio_update",
    "log_likelihood_from_columns",
    "ratio_update",
    "stable_posterior",
]
