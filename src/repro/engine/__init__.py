"""Shared estimation engine behind every EM family in the library.

The paper's EM-Ext (Section IV, Equations 9–14) used to be implemented
four separate times — dense, sparse, streaming and the masked
independence baselines — each with its own copy of the M-step ratio,
hierarchical smoothing, initialisation and convergence loop.  This
package is the single implementation they all delegate to:

* :mod:`repro.engine.statistics` — the Equations 10–14 ratio kernel
  (:func:`ratio_update`: pooled-rate smoothing, empty-partition
  fallback) and the :class:`SufficientStatistics` accumulator whose
  decayed form powers the streaming estimator;
* :mod:`repro.engine.backends` — interchangeable computation backends:
  :class:`DenseBackend` (ndarray), :class:`CSRBackend` (scipy sparse)
  and :class:`MaskedDenseBackend` (the two-parameter independence
  model with a cell mask);
* :mod:`repro.engine.initialisation` — the ``support`` / ``staged`` /
  ``random`` warm starts, written once and parameterised by backend;
* :mod:`repro.engine.driver` — the generic :class:`EMDriver` owning
  restarts, tolerance/max-iteration convergence,
  :class:`~repro.core.model.ParameterTrace` recording and
  per-iteration telemetry callbacks (:class:`IterationEvent`,
  :class:`TelemetryRecorder`).

Every future performance PR (batched multi-problem fitting, numba or
multiprocessing backends) lands here, behind the same backend
protocol, and all four public estimators pick it up for free.  The
first such layer is process-based restart fan-out: hand
:class:`~repro.parallel.ParallelConfig` to :class:`EMDriver` (or
``EMDriver.from_config(..., parallel=...)``) and independent restarts
run across worker processes with bit-for-bit serial parity (the
initialisers consume the spawned restart generators in the parent, in
serial order).
"""

from repro.engine.backends import (
    CSRBackend,
    DenseBackend,
    MaskedDenseBackend,
    make_backend,
)
from repro.engine.batched import (
    BatchedDenseBackend,
    BatchedLaneResult,
    BatchedSourceParameters,
    run_batched_lanes,
)
from repro.engine.driver import (
    DriverOutcome,
    EMDriver,
    IterationEvent,
    TelemetryRecorder,
)
from repro.engine.health import (
    FAILED_STATUSES,
    RESTART_STATUSES,
    RestartReport,
    RunHealth,
)
from repro.engine.initialisation import (
    staged_initialisation,
    support_initialisation,
    support_posterior,
)
from repro.engine.statistics import (
    RATE_NAMES,
    SufficientStatistics,
    log_likelihood_from_columns,
    ratio_update,
    stable_posterior,
)
from repro.parallel.config import ParallelConfig

__all__ = [
    "BatchedDenseBackend",
    "BatchedLaneResult",
    "BatchedSourceParameters",
    "CSRBackend",
    "DenseBackend",
    "DriverOutcome",
    "EMDriver",
    "FAILED_STATUSES",
    "IterationEvent",
    "MaskedDenseBackend",
    "ParallelConfig",
    "RATE_NAMES",
    "RESTART_STATUSES",
    "RestartReport",
    "RunHealth",
    "SufficientStatistics",
    "TelemetryRecorder",
    "log_likelihood_from_columns",
    "make_backend",
    "ratio_update",
    "run_batched_lanes",
    "stable_posterior",
    "staged_initialisation",
    "support_initialisation",
    "support_posterior",
]
