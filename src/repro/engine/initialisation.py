"""Warm-start strategies for the EM families, written once per backend.

Three strategies (see :class:`~repro.core.em_ext.EMConfig` for the full
rationale):

* ``support`` — a dependency-discounted vote-count posterior
  (assertions with more independent supporters start more credible)
  turned into parameters by one M-step — the classic truth-discovery
  warm start;
* ``staged`` — fit the nested independence model on the *independent*
  cells first (the EM-Social view), then enrich: one dependency-aware
  M-step on the staged posterior seeds the full model.  This breaks
  the chicken-and-egg between the truth posterior and the dependent
  emission rates ``f, g`` — they are learned from an
  already-calibrated posterior instead of amplifying the initial
  guess;
* ``random`` — each backend's ``random_params`` (the paper's
  "initialize parameter set with random probability").

Every function is parameterised by a backend from
:mod:`repro.engine.backends`, so dense, sparse and masked estimators
share one implementation.
"""

from __future__ import annotations

from typing import Any, Tuple

import numpy as np

from repro.core.model import SourceParameters
from repro.engine.statistics import stable_posterior


def support_posterior(backend: Any) -> np.ndarray:
    """Dependency-discounted vote posterior.

    Grows affinely with independent support,
    ``Z_j = 0.2 + 0.6 · support_j / max_support``.  Counting only
    independent claims keeps viral cascades (which the model has not
    yet judged) from branding their assertions credible before the
    first iteration; the EM loop then learns from the dependent claims
    whatever they actually carry.
    """
    support = backend.support_counts()
    top = float(support.max()) if support.size else 0.0
    if top > 0:
        return 0.2 + 0.6 * support / top
    return np.full(backend.n_assertions, 0.5)


def support_initialisation(backend: Any) -> Any:
    """Support posterior → one M-step from the neutral parameter set."""
    return backend.m_step(support_posterior(backend), backend.neutral())


def staged_stage_one(
    backend: Any,
    posterior: np.ndarray,
    *,
    tolerance: float,
    stage_iterations: int = 40,
) -> Tuple[np.ndarray, SourceParameters]:
    """Fit the independence model over unmasked (independent) cells.

    A compact masked EM warm-started from ``posterior``; returns the
    converged posterior and the two learned rate vectors lifted into a
    full parameter set (``f = t``, ``g = b``), ready for the stage-two
    enrichment M-step.
    """
    eps = backend.epsilon
    n = backend.n_sources
    t_rate = np.full(n, 0.55)
    b_rate = np.full(n, 0.45)
    z = 0.5
    for _ in range(stage_iterations):
        # M-step over independent cells only.
        t_rate = backend.masked_rate(posterior, t_rate)
        b_rate = backend.masked_rate(1.0 - posterior, b_rate)
        if posterior.size:
            # sum/size is np.mean's own definition, minus dispatch; the
            # explicit comparisons reproduce np.clip (a NaN mean fails
            # both and propagates unchanged, exactly as np.clip does).
            mean = float(posterior.sum()) / posterior.size
            if mean < eps:
                z = eps
            elif mean > 1.0 - eps:
                z = 1.0 - eps
            else:
                z = mean
        # E-step over independent cells only.
        log_true, log_false = backend.masked_log_likelihoods(t_rate, b_rate)
        new_posterior = stable_posterior(log_true, log_false, z)
        if (
            posterior.size
            and float(np.abs(new_posterior - posterior).max()) < tolerance
        ):
            posterior = new_posterior
            break
        posterior = new_posterior
    staged = SourceParameters(a=t_rate, b=b_rate, f=t_rate, g=b_rate, z=z)
    return posterior, staged


def staged_initialisation(
    backend: Any,
    *,
    tolerance: float,
    stage_iterations: int = 40,
) -> SourceParameters:
    """Fit the nested independent-cells model, then enrich with f, g.

    Stage one is a compact masked EM over independent cells only (the
    EM-Social view), warm-started from the support posterior.  Stage
    two takes stage one's converged posterior and performs one full
    dependency-aware M-step, which *measures* the dependent emission
    rates against a posterior that is already anchored in the
    independent evidence.
    """
    posterior, staged = staged_stage_one(
        backend,
        support_posterior(backend),
        tolerance=tolerance,
        stage_iterations=stage_iterations,
    )
    return backend.m_step(posterior, staged)


__all__ = [
    "staged_initialisation",
    "staged_stage_one",
    "support_initialisation",
    "support_posterior",
]
