"""Interchangeable computation backends for the estimation engine.

A backend owns one representation of the source-claim data and exposes
the operations the :class:`~repro.engine.driver.EMDriver` and the
initialisation strategies need:

=====================  ====================================================
``m_step``             Equations 10–14 via :func:`~repro.engine.statistics.ratio_update`
``e_step``             Equation 9 posterior + observed-data log likelihood
``posterior``          Equation 9 posterior only
``support_counts``     per-assertion independent-claim support
``masked_rate`` /      the nested independence model over unmasked cells
``masked_log_likelihoods``  (stage one of the staged initialisation)
``neutral`` /          parameter construction for warm starts and
``random_params``      random restarts
=====================  ====================================================

Three backends cover the library: :class:`DenseBackend` (ndarray),
:class:`CSRBackend` (scipy sparse, touching only stored entries) and
:class:`MaskedDenseBackend` (the two-parameter independence model used
by the EM / EM-Social baselines).  Dense and CSR produce the same
fixed points; they differ only in float summation order.

All three route their hot paths through :mod:`repro.kernels`:

* masked claim products (``SC⊙(1-D)``, ``SC⊙D``, ``SC⊙mask``) are
  precomputed once at construction instead of once per M-step;
* log-parameter tables are built once per θ object and cached by
  identity (θ is immutable and fresh each M-step, so the cache can
  never go stale — see :mod:`repro.kernels.tables`);
* per-column log-likelihoods are computed by the select-based kernels
  of :mod:`repro.kernels.likelihood`, over the *unique* ``(SC, D)``
  column pairs when the problem repeats columns
  (:mod:`repro.kernels.dedup`), and cached per θ so an ``e_step``
  immediately following a ``posterior`` with the same θ reuses one
  likelihood pass.

Every transformation is an exact selection or a reordering-free reuse
on the 0/1 matrices, so the backends remain bit-for-bit compatible
with the pre-kernel implementations (pinned by the parity suites).
Degenerate, unclamped parameters (rates exactly 0/1) fall back to the
careful legacy paths.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Tuple, Union

import numpy as np

from repro.core.likelihood import (
    column_log_likelihoods,
    log_likelihood_from_log_columns,
    posterior_from_log_likelihoods,
)
from repro.core.matrix import SensingProblem
from repro.core.model import DEFAULT_EPSILON, SourceParameters
from repro.engine.statistics import (
    CountMap,
    log_likelihood_from_columns,
    ratio_update,
    stable_posterior,
)
from repro.kernels.dedup import ColumnGroups, group_paired_columns
from repro.kernels.likelihood import (
    coded_dense_column_log_likelihoods,
    coded_masked_column_log_likelihoods,
    flat_claim_codes,
)
from repro.kernels.tables import (
    IndependenceLogTables,
    LogParameterTables,
    ParamsKeyedCache,
)
from repro.utils.errors import ValidationError
from repro.utils.validation import check_probability

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.baselines.em_independent import IndependentParameters
    from repro.data.csr import CsrProblem
    from repro.data.protocol import Problem
    from repro.engine.batched import BatchedDenseBackend


def _check_rates_finite(
    a: np.ndarray, b: np.ndarray, f: np.ndarray, g: np.ndarray
) -> None:
    """Reject NaN rate updates (poisoned inputs) with one aggregate probe.

    M-step ratios are finite by construction, so a NaN in any of the
    four vectors can only come from NaN claims; summing all four and
    testing once is an order of magnitude cheaper than per-array
    validation on this per-iteration path.
    """
    if np.isnan(float(a.sum()) + float(b.sum()) + float(f.sum()) + float(g.sum())):
        raise ValidationError(
            "M-step produced non-finite rates; the claim matrix "
            "likely contains NaN or infinite entries"
        )


def _dense_partition_ratio(
    claims: np.ndarray,
    weight: np.ndarray,
    mask: np.ndarray,
    smoothing: float,
    fallback: np.ndarray,
) -> np.ndarray:
    """One dense Equations 10–14 ratio: posterior mass over a cell partition.

    Module-level (rather than a closure in ``m_step``) so the
    per-iteration path does not rebuild four function objects per call;
    the computation is verbatim the historical closure body.
    """
    return ratio_update(
        claims @ weight,
        mask @ weight,
        smoothing=smoothing,
        fallback=fallback,
    )


def _csr_partition_ratio(
    matrix: Any,
    weight: np.ndarray,
    denominator: np.ndarray,
    smoothing: float,
    fallback: np.ndarray,
) -> np.ndarray:
    """One sparse M-step ratio over a precomputed subtracted denominator.

    The subtracted denominator can undershoot the numerator by float
    rounding; ``clip_ratio`` keeps the update a rate.  Hoisted from
    ``CSRBackend.m_step`` for the same reason as
    :func:`_dense_partition_ratio`.
    """
    numerator = np.asarray(matrix @ weight).ravel()
    return ratio_update(
        numerator,
        denominator,
        smoothing=smoothing,
        fallback=fallback,
        clip_ratio=True,
    )


def _masked_partition_ratio(
    sc_mask: np.ndarray,
    mask: np.ndarray,
    weight: np.ndarray,
    smoothing: float,
    fallback: np.ndarray,
) -> np.ndarray:
    """One independence-model ratio over unmasked cells (EM/EM-Social)."""
    return ratio_update(
        sc_mask @ weight,
        mask @ weight,
        smoothing=smoothing,
        fallback=fallback,
    )


def _paired_groups(
    top: np.ndarray, bottom: np.ndarray
) -> Tuple[Optional[ColumnGroups], np.ndarray, np.ndarray]:
    """Column groups for a (claims, mask) pair, or pass-through.

    Returns ``(groups, top_k, bottom_k)`` where ``groups`` is ``None``
    when grouping would not reduce the column count (then the original
    boolean matrices come back and the caller skips the scatter).
    """
    groups, unique_top, unique_bottom = group_paired_columns(top, bottom)
    if not groups.collapsed:
        return None, top, bottom
    return groups, unique_top != 0, unique_bottom != 0


class DenseBackend:
    """Dense ndarray backend for the dependency-aware model."""

    def __init__(
        self,
        problem: SensingProblem,
        *,
        smoothing: float = 0.0,
        epsilon: float = DEFAULT_EPSILON,
    ) -> None:
        self.problem = problem
        self.smoothing = smoothing
        self.epsilon = epsilon
        self.sc = problem.claims.values.astype(np.float64)
        self.dep = problem.dependency.values.astype(np.float64)
        self.indep = 1.0 - self.dep
        # Masked claim products, built once instead of once per M-step.
        self.sc_indep = self.sc * self.indep
        self.sc_dep = self.sc * self.dep
        self._sc_bool = self.sc != 0
        self._dep_bool = self.dep != 0
        self._groups, sc_cols, dep_cols = _paired_groups(
            self._sc_bool, self._dep_bool
        )
        # Flat gather indices driving the take kernels, over the unique
        # (SC, D) column pairs when the problem repeats columns.
        self._codes = flat_claim_codes(sc_cols, dep_cols)
        self._masked_codes = flat_claim_codes(
            sc_cols, ~np.asarray(dep_cols, dtype=bool)
        )
        self._columns_cache = ParamsKeyedCache()

    @property
    def n_sources(self) -> int:
        return self.sc.shape[0]

    @property
    def n_assertions(self) -> int:
        return self.sc.shape[1]

    # -- parameter construction --------------------------------------------------

    def neutral(self) -> SourceParameters:
        """The symmetry-breaking neutral start shared by all warm starts."""
        return SourceParameters.from_scalars(
            self.n_sources, a=0.55, b=0.45, f=0.55, g=0.45, z=0.5
        )

    def random_params(self, rng: np.random.Generator) -> SourceParameters:
        """A random informative draw (the paper's random initialisation)."""
        return SourceParameters.random(self.n_sources, rng).clamp(self.epsilon)

    # -- EM steps ----------------------------------------------------------------

    def support_counts(self) -> np.ndarray:
        """Per-assertion count of *independent* supporting claims."""
        return self.sc_indep.sum(axis=0)

    def m_step(
        self, posterior: np.ndarray, previous: SourceParameters
    ) -> SourceParameters:
        """Equations (10)–(14), vectorised.

        For each source ``i`` the updates are ratios of posterior mass
        over the four cell partitions; e.g. Equation (10):

        .. math::
            a_i = \\frac{\\sum_{j: SC_{ij}=1, D_{ij}=0} Z_j}
                        {\\sum_{j: D_{ij}=0} Z_j}

        The denominator runs over the union
        :math:`S_iC_1^{D_0} \\cup S_iC_0^{D_0}` — all independent cells.
        """
        z_post = posterior  # Z_j = P(C_j = 1 | ·)
        y_post = 1.0 - posterior  # Y_j = P(C_j = 0 | ·)

        s = self.smoothing
        a = _dense_partition_ratio(self.sc_indep, z_post, self.indep, s, previous.a)
        f = _dense_partition_ratio(self.sc_dep, z_post, self.dep, s, previous.f)
        b = _dense_partition_ratio(self.sc_indep, y_post, self.indep, s, previous.b)
        g = _dense_partition_ratio(self.sc_dep, y_post, self.dep, s, previous.g)
        z = (  # sum/size is np.mean's own definition, minus dispatch
            float(z_post.sum()) / z_post.size if z_post.size else previous.z
        )
        # The ratios are posterior-mass fractions in [0, 1] unless the
        # posterior itself was poisoned (NaN claims), so full per-array
        # re-validation is replaced by one aggregate NaN probe plus the
        # scalar z check; clamp re-clips everything anyway.
        _check_rates_finite(a, b, f, g)
        check_probability(z, "z")
        return SourceParameters._trusted(a=a, b=b, f=f, g=g, z=z).clamp(self.epsilon)

    def _column_log_likelihoods(
        self, params: SourceParameters
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-column log likelihoods, table-cached and column-deduped."""

        def compute() -> Tuple[np.ndarray, np.ndarray]:
            tables = LogParameterTables.build(params)
            if not tables.finite:
                # Unclamped degenerate θ: careful legacy path.
                return column_log_likelihoods(self.sc, self.dep, params)
            log_true, log_false = coded_dense_column_log_likelihoods(
                self._codes, tables
            )
            if self._groups is not None:
                return self._groups.expand(log_true), self._groups.expand(log_false)
            return log_true, log_false

        return self._columns_cache.get(params, compute)

    def posterior(self, params: SourceParameters) -> np.ndarray:
        """Equation (9) truth posterior for every assertion."""
        log_true, log_false = self._column_log_likelihoods(params)
        return posterior_from_log_likelihoods(log_true, log_false, params.z)

    def e_step(
        self, params: SourceParameters
    ) -> Tuple[np.ndarray, float]:
        """Posterior plus the observed-data log likelihood (Equation 7).

        One shared likelihood pass feeds both quantities (historically
        this ran the full pass twice).
        """
        log_true, log_false = self._column_log_likelihoods(params)
        return (
            posterior_from_log_likelihoods(log_true, log_false, params.z),
            log_likelihood_from_log_columns(log_true, log_false, params.z),
        )

    def batched_lanes(self, n_lanes: int) -> "BatchedDenseBackend":
        """A batched twin running ``n_lanes`` restarts of *this* problem.

        The lanes share this backend's claim/dependency matrices as
        broadcast ``(1, n, m)`` views (no copies); see
        :class:`repro.engine.batched.BatchedDenseBackend`.  The presence
        of this method is the driver's capability probe for
        ``restart_mode="batched"``.
        """
        from repro.engine.batched import BatchedDenseBackend

        return BatchedDenseBackend.from_backend(self, n_lanes)

    def partition_counts(
        self, posterior: np.ndarray
    ) -> Tuple[CountMap, Tuple[float, float]]:
        """Raw (numerator, denominator) counts of the four M-step ratios.

        The streaming estimator accumulates these into its decayed
        :class:`~repro.engine.statistics.SufficientStatistics`.
        """
        y_posterior = 1.0 - posterior
        counts = {
            "a": (self.sc_indep @ posterior, self.indep @ posterior),
            "f": (self.sc_dep @ posterior, self.dep @ posterior),
            "b": (self.sc_indep @ y_posterior, self.indep @ y_posterior),
            "g": (self.sc_dep @ y_posterior, self.dep @ y_posterior),
        }
        return counts, (float(posterior.sum()), float(posterior.size))

    # -- nested independence model over independent cells (staged init) ----------

    def masked_rate(self, weight: np.ndarray, previous: np.ndarray) -> np.ndarray:
        """One independence-model rate over independent cells only."""
        ratio = ratio_update(
            self.sc_indep @ weight,
            self.indep @ weight,
            smoothing=self.smoothing,
            fallback=previous,
        )
        # minimum(maximum(·)) is np.clip's own definition without the
        # dispatch overhead — this runs twice per stage-one iteration.
        return np.minimum(np.maximum(ratio, self.epsilon), 1.0 - self.epsilon)

    def masked_log_likelihoods(
        self, t_rate: np.ndarray, b_rate: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Column log likelihoods of the independence model, masked to independent cells."""
        tables = IndependenceLogTables.build(t_rate, b_rate)
        if tables.finite:
            log_true, log_false = coded_masked_column_log_likelihoods(
                self._masked_codes, tables
            )
            if self._groups is not None:
                return self._groups.expand(log_true), self._groups.expand(log_false)
            return log_true, log_false
        log_true = (
            self.indep
            * (
                self.sc * np.log(t_rate)[:, None]
                + (1 - self.sc) * np.log1p(-t_rate)[:, None]
            )
        ).sum(axis=0)
        log_false = (
            self.indep
            * (
                self.sc * np.log(b_rate)[:, None]
                + (1 - self.sc) * np.log1p(-b_rate)[:, None]
            )
        ).sum(axis=0)
        return log_true, log_false


class CSRBackend:
    """Sparse (CSR) backend: every E- and M-step quantity is a sparse mat-vec.

    E-step decomposition (per assertion column ``j``, truth value true):

    .. math::
        \\log P(SC_j | C_j = 1) = \\underbrace{\\sum_i \\log(1 - a_i)}_{base}
            + \\sum_{i: D_{ij}=1} \\big(\\log(1-f_i) - \\log(1-a_i)\\big)
            + \\sum_{i: SC_{ij}=1, D_{ij}=0} \\big(\\log a_i - \\log(1-a_i)\\big)
            + \\sum_{i: SC_{ij}=1, D_{ij}=1} \\big(\\log f_i - \\log(1-f_i)\\big)

    i.e. one scalar plus three sparse-matrix transpose products.  The
    false-branch term is identical with ``(b, g)``.  M-step ratios
    become, e.g.

    .. math::
        a_i = \\frac{(SC \\odot (1-D))\\, Z}{(\\mathbf{1} - D)\\, Z}
            = \\frac{(SC - SC \\odot D)\\, Z}{\\sum_j Z_j - D\\, Z}

    which again touch only stored entries.  The two ``D @ weight``
    products are computed once per M-step (they feed two ratios each),
    log-parameter tables once per θ, and the per-column log-likelihoods
    are cached per θ object.  Column dedup is not applied here — sparse
    transpose products already touch only stored entries.
    """

    def __init__(
        self,
        problem: "CsrProblem",
        *,
        smoothing: float = 0.0,
        epsilon: float = DEFAULT_EPSILON,
    ) -> None:
        self.problem = problem
        self.smoothing = smoothing
        self.epsilon = epsilon
        # The problem stores int8 data; the BLAS boundary is here — all
        # mat-vec products below run in float64, exactly as they did
        # when the container itself stored float64 (values are 0/1, so
        # the cast is exact and the fixed points bit-identical).
        sc = problem.claims.astype(np.float64)
        self.dep = problem.dependency.astype(np.float64)
        self.sc_dep = sc.multiply(self.dep).tocsr()  # dependent claims
        self.sc_indep = (sc - self.sc_dep).tocsr()  # independent claims
        self._columns_cache = ParamsKeyedCache()

    @property
    def n_sources(self) -> int:
        return self.dep.shape[0]

    @property
    def n_assertions(self) -> int:
        return self.dep.shape[1]

    # -- parameter construction --------------------------------------------------

    def neutral(self) -> SourceParameters:
        return SourceParameters.from_scalars(
            self.n_sources, a=0.55, b=0.45, f=0.55, g=0.45, z=0.5
        )

    def random_params(self, rng: np.random.Generator) -> SourceParameters:
        raise ValidationError(
            "the CSR backend does not support random initialisation"
        )

    # -- EM steps ----------------------------------------------------------------

    def support_counts(self) -> np.ndarray:
        return np.asarray(self.sc_indep.sum(axis=0)).ravel()

    def m_step(
        self, posterior: np.ndarray, previous: SourceParameters
    ) -> SourceParameters:
        z_mass = posterior
        y_mass = 1.0 - posterior
        z_total = float(z_mass.sum())
        y_total = float(y_mass.sum())
        # Each D @ weight feeds two ratios; compute them once.
        dep_z = np.asarray(self.dep @ z_mass).ravel()
        dep_y = np.asarray(self.dep @ y_mass).ravel()

        s = self.smoothing
        a = _csr_partition_ratio(self.sc_indep, z_mass, z_total - dep_z, s, previous.a)
        f = _csr_partition_ratio(self.sc_dep, z_mass, dep_z, s, previous.f)
        b = _csr_partition_ratio(self.sc_indep, y_mass, y_total - dep_y, s, previous.b)
        g = _csr_partition_ratio(self.sc_dep, y_mass, dep_y, s, previous.g)
        z = (
            float(posterior.sum()) / posterior.size
            if posterior.size
            else previous.z
        )
        # clip_ratio above already forced the updates into [0, 1];
        # as in the dense backend, guard against poisoned posteriors
        # without the full per-array re-validation.
        _check_rates_finite(a, b, f, g)
        check_probability(z, "z")
        return SourceParameters._trusted(a=a, b=b, f=f, g=g, z=z).clamp(self.epsilon)

    def _column_log_likelihoods(
        self, params: SourceParameters
    ) -> Tuple[np.ndarray, np.ndarray]:
        def compute() -> Tuple[np.ndarray, np.ndarray]:
            t = LogParameterTables.build(params)
            dep_t = self.dep.T
            indep_t = self.sc_indep.T
            dep_claims_t = self.sc_dep.T
            log_true = (
                float(t.log_1a.sum())
                + np.asarray(dep_t @ (t.log_1f - t.log_1a)).ravel()
                + np.asarray(indep_t @ (t.log_a - t.log_1a)).ravel()
                + np.asarray(dep_claims_t @ (t.log_f - t.log_1f)).ravel()
            )
            log_false = (
                float(t.log_1b.sum())
                + np.asarray(dep_t @ (t.log_1g - t.log_1b)).ravel()
                + np.asarray(indep_t @ (t.log_b - t.log_1b)).ravel()
                + np.asarray(dep_claims_t @ (t.log_g - t.log_1g)).ravel()
            )
            return log_true, log_false

        return self._columns_cache.get(params, compute)

    def posterior(self, params: SourceParameters) -> np.ndarray:
        log_true, log_false = self._column_log_likelihoods(params)
        return stable_posterior(log_true, log_false, params.z)

    def e_step(
        self, params: SourceParameters
    ) -> Tuple[np.ndarray, float]:
        log_true, log_false = self._column_log_likelihoods(params)
        posterior = stable_posterior(log_true, log_false, params.z)
        log_likelihood = log_likelihood_from_columns(log_true, log_false, params.z)
        return posterior, log_likelihood

    # -- nested independence model over independent cells (staged init) ----------

    def masked_rate(self, weight: np.ndarray, previous: np.ndarray) -> np.ndarray:
        numerator = np.asarray(self.sc_indep @ weight).ravel()
        total = float(weight.sum())
        denominator = total - np.asarray(self.dep @ weight).ravel()
        ratio = ratio_update(
            numerator,
            denominator,
            smoothing=self.smoothing,
            fallback=previous,
        )
        return np.minimum(np.maximum(ratio, self.epsilon), 1.0 - self.epsilon)

    def masked_log_likelihoods(
        self, t_rate: np.ndarray, b_rate: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        log_t, log_1t = np.log(t_rate), np.log1p(-t_rate)
        log_b, log_1b = np.log(b_rate), np.log1p(-b_rate)
        base_true = float(log_1t.sum())
        base_false = float(log_1b.sum())
        # Remove dependent (masked) cells from the base, add claims.
        dep_t = self.dep.T
        sc_t = self.sc_indep.T
        log_true = base_true - np.asarray(dep_t @ log_1t).ravel() + np.asarray(
            sc_t @ (log_t - log_1t)
        ).ravel()
        log_false = base_false - np.asarray(dep_t @ log_1b).ravel() + np.asarray(
            sc_t @ (log_b - log_1b)
        ).ravel()
        return log_true, log_false


class MaskedDenseBackend:
    """Dense backend for the two-parameter independence model.

    Masked cells contribute to neither the likelihood nor the M-step
    counts — they are treated as *missing*, not as non-claims.  The
    EM (IPSN 2012) baseline is the special case of an all-ones mask;
    EM-Social (IPSN 2014) masks out every dependent cell.

    Parameters are :class:`~repro.baselines.em_independent.IndependentParameters`
    (per-source ``t, b`` plus the prior ``z``), not the full
    :class:`~repro.core.model.SourceParameters`.
    """

    def __init__(
        self,
        sc: np.ndarray,
        mask: np.ndarray,
        *,
        smoothing: float = 0.0,
        epsilon: float = DEFAULT_EPSILON,
    ) -> None:
        if mask.shape != sc.shape:
            raise ValidationError(
                f"mask shape {mask.shape} does not match claims {sc.shape}"
            )
        self.sc = sc
        self.mask = mask
        self.smoothing = smoothing
        self.epsilon = epsilon
        self.sc_mask = sc * mask
        self._sc_bool = np.asarray(sc) != 0
        self._mask_bool = np.asarray(mask) != 0
        self._groups, sc_cols, mask_cols = _paired_groups(
            self._sc_bool, self._mask_bool
        )
        self._codes = flat_claim_codes(sc_cols, mask_cols)
        self._columns_cache = ParamsKeyedCache()

    @property
    def n_sources(self) -> int:
        return self.sc.shape[0]

    @property
    def n_assertions(self) -> int:
        return self.sc.shape[1]

    # -- parameter construction --------------------------------------------------

    def neutral(self) -> IndependentParameters:
        from repro.baselines.em_independent import IndependentParameters

        return IndependentParameters(
            t=np.full(self.n_sources, 0.55),
            b=np.full(self.n_sources, 0.45),
            z=0.5,
        )

    def random_params(self, rng: np.random.Generator) -> IndependentParameters:
        from repro.baselines.em_independent import IndependentParameters

        return IndependentParameters(
            t=rng.uniform(0.4, 0.8, size=self.n_sources),
            b=rng.uniform(0.05, 0.35, size=self.n_sources),
            z=float(rng.uniform(0.3, 0.7)),
        ).clamp(self.epsilon)

    # -- EM steps ----------------------------------------------------------------

    def support_counts(self) -> np.ndarray:
        return self.sc_mask.sum(axis=0)

    def m_step(
        self, posterior: np.ndarray, previous: IndependentParameters
    ) -> IndependentParameters:
        from repro.baselines.em_independent import IndependentParameters

        z_post = posterior
        y_post = 1.0 - posterior

        s = self.smoothing
        t = _masked_partition_ratio(self.sc_mask, self.mask, z_post, s, previous.t)
        b = _masked_partition_ratio(self.sc_mask, self.mask, y_post, s, previous.b)
        z = (  # sum/size is np.mean's own definition, minus dispatch
            float(z_post.sum()) / z_post.size if z_post.size else previous.z
        )
        return IndependentParameters(t=t, b=b, z=z).clamp(self.epsilon)

    def _column_log_likelihoods(
        self, params: IndependentParameters
    ) -> Tuple[np.ndarray, np.ndarray]:
        def compute() -> Tuple[np.ndarray, np.ndarray]:
            tables = IndependenceLogTables.build(params.t, params.b)
            if not tables.finite:
                log_t, log_1t = tables.log_t, tables.log_1t
                log_b, log_1b = tables.log_b, tables.log_1b
                log_true = self.mask * (
                    self.sc * log_t[:, None] + (1 - self.sc) * log_1t[:, None]
                )
                log_false = self.mask * (
                    self.sc * log_b[:, None] + (1 - self.sc) * log_1b[:, None]
                )
                return log_true.sum(axis=0), log_false.sum(axis=0)
            log_true, log_false = coded_masked_column_log_likelihoods(
                self._codes, tables
            )
            if self._groups is not None:
                return self._groups.expand(log_true), self._groups.expand(log_false)
            return log_true, log_false

        return self._columns_cache.get(params, compute)

    def posterior(self, params: IndependentParameters) -> np.ndarray:
        log_true, log_false = self._column_log_likelihoods(params)
        return stable_posterior(log_true, log_false, params.z)

    def e_step(self, params: IndependentParameters) -> Tuple[np.ndarray, float]:
        log_true, log_false = self._column_log_likelihoods(params)
        posterior = stable_posterior(log_true, log_false, params.z)
        log_likelihood = log_likelihood_from_columns(log_true, log_false, params.z)
        return posterior, log_likelihood


def make_backend(
    problem: "Problem",
    *,
    smoothing: float = 0.0,
    epsilon: float = DEFAULT_EPSILON,
) -> Union[DenseBackend, CSRBackend]:
    """The backend matching ``problem``'s storage format.

    The input's format — not the caller's class choice — picks the
    computation backend: a :class:`~repro.data.DenseProblem` gets
    :class:`DenseBackend`, a :class:`~repro.data.CsrProblem` gets
    :class:`CSRBackend`.  Anything else is rejected the same way
    :func:`repro.data.coerce_problem` rejects it.
    """
    from repro.data.coerce import _is_problem
    from repro.data.protocol import FORMAT_CSR

    if not _is_problem(problem):
        raise ValidationError(
            "expected a sensing problem (DenseProblem or CsrProblem), got "
            f"{type(problem).__name__}"
        )
    if problem.format == FORMAT_CSR:
        return CSRBackend(problem, smoothing=smoothing, epsilon=epsilon)  # type: ignore[arg-type]
    return DenseBackend(problem, smoothing=smoothing, epsilon=epsilon)  # type: ignore[arg-type]


__all__ = ["CSRBackend", "DenseBackend", "MaskedDenseBackend", "make_backend"]
