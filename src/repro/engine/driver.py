"""The generic EM driver: restarts, convergence, tracing, telemetry.

:class:`EMDriver` owns the loop every EM family in the library shares
(Algorithm 2's "while {θ} are not convergent"): M-step, parameter
delta, E-step, :class:`~repro.core.model.ParameterTrace` recording,
tolerance/max-iteration convergence and multi-restart selection by
observed-data log likelihood.  The numerical work is delegated to a
backend from :mod:`repro.engine.backends`.

Telemetry
---------
Callbacks receive one :class:`IterationEvent` per EM iteration —
iteration index, parameter delta, log likelihood and wall-clock
duration — so harnesses and diagnostics can observe convergence
without poking at estimator internals.  A callback that returns a
truthy value requests an early stop: the loop ends after the current
iteration with ``converged=False`` (unless the iteration also met the
tolerance).  :class:`TelemetryRecorder` is the batteries-included
callback that accumulates events across runs.

Run health
----------
The driver guards its own numerics (DESIGN.md treats sources as
unreliable; the runtime gets the same treatment):

* a non-finite log likelihood or parameter delta marks the restart
  *diverged* — the loop stops instead of iterating on garbage;
* a restart whose backend raises is recorded and skipped, not fatal;
* restart selection is NaN-safe: a diverged restart can never shadow a
  later finite one;
* an optional wall-clock budget (``max_wall_seconds``) bounds the whole
  multi-restart fit;
* when *every* restart fails, strict mode raises
  :class:`~repro.utils.errors.ConvergenceError` (with the iteration
  count and last residual); non-strict mode degrades gracefully and
  returns a best-effort outcome carrying a structured
  :class:`~repro.engine.health.RunHealth` report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro import observability
from repro.core.model import ParameterTrace
from repro.engine.health import RestartReport, RunHealth
from repro.utils.errors import ConvergenceError, DeadlineExceeded, ValidationError
from repro.utils.rng import RandomState, SeedLike, spawn_rngs

if TYPE_CHECKING:  # deferred to keep repro.parallel imports lazy
    from repro.parallel.config import ParallelConfig
    from repro.resilience.supervisor import Deadline

#: Per-iteration callback; a truthy return value requests an early stop.
IterationCallback = Callable[["IterationEvent"], Optional[bool]]


@dataclass(frozen=True)
class IterationEvent:
    """One EM iteration as seen by telemetry callbacks."""

    iteration: int
    delta: float
    log_likelihood: float
    duration_seconds: float


class TelemetryRecorder:
    """Callback that accumulates :class:`IterationEvent` records.

    One recorder may be shared across many estimator runs (e.g. every
    trial of a simulation); it simply concatenates events.
    """

    def __init__(self) -> None:
        self.events: List[IterationEvent] = []

    def __call__(self, event: IterationEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def n_iterations(self) -> int:
        """Total EM iterations observed."""
        return len(self.events)

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time spent inside EM iterations."""
        return float(sum(e.duration_seconds for e in self.events))

    @property
    def mean_iteration_seconds(self) -> float:
        """Mean wall-clock time per EM iteration."""
        if not self.events:
            return float("nan")
        return self.total_seconds / len(self.events)

    def clear(self) -> None:
        """Drop all accumulated events."""
        self.events.clear()


@dataclass
class DriverOutcome:
    """Everything one converged (or exhausted) EM run produced."""

    parameters: object
    posterior: np.ndarray
    trace: ParameterTrace
    converged: bool
    diverged: bool = False
    budget_exhausted: bool = False
    health: Optional[RunHealth] = None

    @property
    def n_iterations(self) -> int:
        return self.trace.n_iterations

    @property
    def log_likelihood(self) -> float:
        return (
            self.trace.log_likelihoods[-1]
            if self.trace.n_iterations
            else float("nan")
        )

    @property
    def decisions(self) -> np.ndarray:
        """0.5-threshold truth labels from the posterior."""
        return (self.posterior >= 0.5).astype(np.int8)


class EMDriver:
    """Backend-agnostic EM loop with restarts and telemetry hooks."""

    def __init__(
        self,
        *,
        max_iterations: int,
        tolerance: float,
        n_restarts: int = 1,
        callbacks: Sequence[IterationCallback] = (),
        strict: bool = False,
        max_wall_seconds: Optional[float] = None,
        parallel: Optional["ParallelConfig"] = None,
        budget: Optional["Deadline"] = None,
        restart_mode: str = "serial",
    ) -> None:
        if max_wall_seconds is not None and max_wall_seconds <= 0:
            raise ValidationError(
                f"max_wall_seconds must be positive, got {max_wall_seconds}"
            )
        if restart_mode not in ("serial", "batched"):
            raise ValidationError(
                f"restart_mode must be 'serial' or 'batched', got {restart_mode!r}"
            )
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.n_restarts = n_restarts
        self.callbacks = tuple(callbacks)
        self.strict = strict
        self.max_wall_seconds = max_wall_seconds
        self.parallel = parallel
        self.budget = budget
        self.restart_mode = restart_mode

    @classmethod
    def from_config(
        cls,
        config: Any,
        callbacks: Sequence[IterationCallback] = (),
        parallel: Optional["ParallelConfig"] = None,
    ) -> "EMDriver":
        """Build from an :class:`~repro.core.em_ext.EMConfig`."""
        return cls(
            max_iterations=config.max_iterations,
            tolerance=config.tolerance,
            n_restarts=config.n_restarts,
            callbacks=callbacks,
            strict=getattr(config, "strict", False),
            max_wall_seconds=getattr(config, "max_wall_seconds", None),
            parallel=parallel,
            restart_mode=getattr(config, "restart_mode", "serial"),
        )

    def run(
        self, backend: Any, params: Any, *, deadline: Optional[float] = None
    ) -> DriverOutcome:
        """One EM run from ``params`` to a fixed point (or the iteration cap).

        ``deadline`` is an absolute ``time.perf_counter()`` instant; the
        loop stops after the first iteration that finishes past it (the
        run is marked ``budget_exhausted``, never left parameterless).
        A non-finite log likelihood or parameter delta stops the loop
        immediately with ``diverged=True``.

        A driver-level ``budget`` (a supervision
        :class:`~repro.resilience.supervisor.Deadline`) is stricter: it
        is checked cooperatively after every iteration and *raises*
        :class:`~repro.utils.errors.DeadlineExceeded` with the iteration
        count and last residual so supervisors such as
        :func:`repro.bounds.cascade.bound_cascade` can fall back to a
        cheaper tier instead of silently accepting a truncated fit.
        """
        trace = ParameterTrace()
        posterior = backend.posterior(params)
        converged = False
        diverged = False
        budget_exhausted = False
        with observability.span("em.run", max_iterations=self.max_iterations):
            for iteration in range(self.max_iterations):
                start = time.perf_counter()
                new_params = backend.m_step(posterior, params)
                delta = new_params.max_difference(params)
                params = new_params
                posterior, log_likelihood = backend.e_step(params)
                trace.record(log_likelihood, delta)
                duration = time.perf_counter() - start
                observability.count("em.iterations")
                stop_requested = False
                for callback in self.callbacks:
                    if callback(
                        IterationEvent(
                            iteration=iteration,
                            delta=delta,
                            log_likelihood=log_likelihood,
                            duration_seconds=duration,
                        )
                    ):
                        stop_requested = True
                if not (np.isfinite(delta) and np.isfinite(log_likelihood)):
                    diverged = True
                    break
                if delta < self.tolerance:
                    converged = True
                    break
                if deadline is not None and time.perf_counter() >= deadline:
                    budget_exhausted = True
                    break
                if self.budget is not None:
                    self.budget.check(
                        "EMDriver.run",
                        iteration=iteration,
                        delta=float(delta),
                        log_likelihood=float(log_likelihood),
                    )
                if stop_requested:
                    break
        return DriverOutcome(
            parameters=params,
            posterior=posterior,
            trace=trace,
            converged=converged,
            diverged=diverged,
            budget_exhausted=budget_exhausted,
        )

    def fit(
        self,
        backend: Any,
        initialiser: Callable[[int, np.random.Generator], object],
        seed: SeedLike = None,
    ) -> DriverOutcome:
        """Multi-restart EM; the best *usable* fixed point wins.

        ``initialiser(index, rng)`` produces the starting parameters of
        restart ``index`` (strategy-based for the first, typically
        random for the rest).

        Fault tolerance: a restart that diverges (non-finite numerics)
        or raises — in its initialiser (data-dependent warm starts can
        choke on corrupt input) or inside the EM loop — is recorded in
        the returned
        outcome's :class:`~repro.engine.health.RunHealth` and skipped;
        selection compares only finite log likelihoods, so a diverged
        first restart can never shadow a later usable one.  When every
        restart fails, strict mode raises
        :class:`~repro.utils.errors.ConvergenceError`; otherwise the
        last diverged outcome is returned best-effort (with
        ``converged=False`` and the health report attached).

        When the driver was built with a
        :class:`~repro.parallel.ParallelConfig`, restarts execute in
        worker processes (``_parallel_candidates``) with bit-for-bit
        identical results; wall-clock budgets are timing-dependent and
        force the serial loop.

        With ``restart_mode="batched"`` (and a backend exposing
        ``batched_lanes``) all restarts run as stacked lanes of one
        tensor pass (``_batched_candidates``) — again bit-for-bit the
        serial results, see :mod:`repro.engine.batched`.  Combined with
        a :class:`~repro.parallel.ParallelConfig`, the lanes are split
        into per-worker packs, so the two speedups compose.
        """
        rng = RandomState(seed)
        health = RunHealth()
        deadline = (
            time.perf_counter() + self.max_wall_seconds
            if self.max_wall_seconds is not None
            else None
        )
        use_batched = (
            self.restart_mode == "batched"
            and self.n_restarts > 1
            and hasattr(backend, "batched_lanes")
        )
        if self.restart_mode == "batched" and self.n_restarts > 1 and not use_batched:
            # Requested but unsupported by this backend (CSR/masked):
            # fall back to the serial loop, visibly.
            observability.count("engine.batched.fallbacks")
        use_parallel = (
            self.parallel is not None
            and self.max_wall_seconds is None
            and self.budget is None
            and self.n_restarts > 1
        )
        if use_batched and use_parallel:
            candidates = self._batched_parallel_candidates(
                backend, initialiser, rng
            )
        elif use_batched:
            candidates = self._batched_candidates(
                backend, initialiser, rng, deadline
            )
        elif use_parallel:
            candidates = self._parallel_candidates(backend, initialiser, rng)
        else:
            candidates = self._serial_candidates(
                backend, initialiser, rng, deadline, health
            )
        return self.consume_candidates(candidates, health)

    def consume_candidates(
        self,
        candidates: Iterator[Tuple[int, Optional[DriverOutcome], Optional[str]]],
        health: Optional[RunHealth] = None,
    ) -> DriverOutcome:
        """Select the best usable outcome from ``(index, candidate, error)`` triples.

        The shared back half of :meth:`fit` — health recording,
        NaN-safe selection, strict-mode escalation — factored out so
        batched trial packs (see ``run_simulation``'s
        ``trial_mode="batched"``) can feed pre-computed lane outcomes
        through the identical selection and reporting path.
        """
        if health is None:
            health = RunHealth()
        best: Optional[DriverOutcome] = None
        best_index = -1
        fallback: Optional[DriverOutcome] = None
        total_iterations = 0
        last_residual = float("nan")
        fit_span = observability.span("em.fit", n_restarts=self.n_restarts)
        fit_span.__enter__()
        n_restarts_run = 0
        try:
            for index, candidate, error in candidates:
                n_restarts_run += 1
                observability.count("em.restarts")
                if error is not None:  # per-restart fault isolation
                    observability.count("em.restarts_failed")
                    health.record(
                        RestartReport(
                            index=index,
                            status="error",
                            n_iterations=0,
                            log_likelihood=float("nan"),
                            error=error,
                        )
                    )
                    continue
                total_iterations += candidate.n_iterations
                deltas = candidate.trace.parameter_deltas
                if len(deltas):
                    last_residual = float(deltas[-1])
                log_likelihood = candidate.log_likelihood
                if candidate.diverged or np.isnan(log_likelihood):
                    health.record(
                        RestartReport(
                            index=index,
                            status="diverged",
                            n_iterations=candidate.n_iterations,
                            log_likelihood=log_likelihood,
                        )
                    )
                    fallback = candidate
                    continue
                if candidate.budget_exhausted:
                    health.budget_exhausted = True
                status = (
                    "converged"
                    if candidate.converged
                    else ("budget" if candidate.budget_exhausted else "exhausted")
                )
                health.record(
                    RestartReport(
                        index=index,
                        status=status,
                        n_iterations=candidate.n_iterations,
                        log_likelihood=log_likelihood,
                    )
                )
                if best is None or log_likelihood > best.log_likelihood:
                    best = candidate
                    best_index = index
        finally:
            observability.observe_value("em.restarts_per_fit", n_restarts_run)
            fit_span.__exit__(None, None, None)
        if best is not None:
            health.selected = best_index
            best.health = health
            return best
        message = (
            f"every EM restart failed ({health.summary()}); "
            "no usable fixed point"
        )
        if self.strict or fallback is None:
            raise ConvergenceError(
                message, iterations=total_iterations, residual=last_residual
            )
        fallback.converged = False
        fallback.health = health
        return fallback

    # -- restart execution strategies -------------------------------------------

    def _serial_candidates(
        self,
        backend: Any,
        initialiser: Callable[[int, np.random.Generator], object],
        rng: RandomState,
        deadline: Optional[float],
        health: RunHealth,
    ) -> Iterator[Tuple[int, Optional[DriverOutcome], Optional[str]]]:
        """The historical in-process restart loop."""
        for index, restart_rng in enumerate(spawn_rngs(rng, self.n_restarts)):
            if deadline is not None and index > 0 and time.perf_counter() >= deadline:
                health.budget_exhausted = True
                return
            try:
                params = initialiser(index, restart_rng)
                candidate = self.run(backend, params, deadline=deadline)
            except DeadlineExceeded:
                # Supervision budgets must reach the supervisor — they
                # are not a per-restart fault to isolate and continue.
                raise
            except Exception as error:
                yield index, None, f"{type(error).__name__}: {error}"
                continue
            yield index, candidate, None

    def _parallel_candidates(
        self,
        backend: Any,
        initialiser: Callable[[int, np.random.Generator], object],
        rng: RandomState,
    ) -> Iterator[Tuple[int, Optional[DriverOutcome], Optional[str]]]:
        """Fan restarts out across worker processes.

        Initialisers run in the *parent*, consuming the spawned restart
        generators in exactly the serial order — the warm starts (and
        therefore the outcome) are bit-for-bit those of a serial fit.
        Workers only execute the deterministic EM loop; their telemetry
        events are replayed through the parent's callbacks in restart
        order (a callback's early-stop request cannot reach an
        already-finished worker run and is ignored).
        """
        from repro.parallel.executor import parallel_map
        from repro.parallel.merge import replay_events

        prepared = []
        init_errors = {}
        for index, restart_rng in enumerate(spawn_rngs(rng, self.n_restarts)):
            try:
                prepared.append((index, initialiser(index, restart_rng)))
            except Exception as error:
                init_errors[index] = f"{type(error).__name__}: {error}"
        collect = observability.enabled()
        payloads = [
            (backend, params, self.max_iterations, self.tolerance, collect)
            for _, params in prepared
        ]
        results = parallel_map(_restart_worker, payloads, config=self.parallel)
        by_index = {
            index: result for (index, _), result in zip(prepared, results)
        }
        for index in range(self.n_restarts):
            if index in init_errors:
                yield index, None, init_errors[index]
                continue
            candidate, error, events, spans, metrics = by_index[index]
            replay_events(events, self.callbacks)
            if spans:
                observability.graft(spans)
            observability.merge_metrics(metrics)
            yield index, candidate, error


    def _prepare_restarts(
        self,
        initialiser: Callable[[int, np.random.Generator], object],
        rng: RandomState,
    ) -> Tuple[List[Tuple[int, object]], dict]:
        """Run all initialisers in the parent, in serial order.

        Shared by the batched candidate streams: warm starts consume
        the spawned restart generators exactly as the serial loop does,
        so lane starting points are bit-for-bit serial.  Initialiser
        exceptions become per-restart error strings, as in
        ``_serial_candidates``.
        """
        prepared: List[Tuple[int, object]] = []
        init_errors: dict = {}
        for index, restart_rng in enumerate(spawn_rngs(rng, self.n_restarts)):
            try:
                prepared.append((index, initialiser(index, restart_rng)))
            except Exception as error:
                init_errors[index] = f"{type(error).__name__}: {error}"
        return prepared, init_errors

    def _batched_candidates(
        self,
        backend: Any,
        initialiser: Callable[[int, np.random.Generator], object],
        rng: RandomState,
        deadline: Optional[float],
    ) -> Iterator[Tuple[int, Optional[DriverOutcome], Optional[str]]]:
        """Evaluate all restarts as stacked lanes of one tensor pass.

        Lane ``b`` is bit-for-bit the serial restart ``b`` (see
        :mod:`repro.engine.batched`); telemetry events are replayed
        through the parent's callbacks in restart order, like the
        parallel path.  A wall deadline or supervision budget cuts the
        whole batch at a pass boundary instead of between restarts —
        timing budgets were never bitwise-reproducible anyway.
        """
        from repro.engine.batched import run_batched_lanes
        from repro.parallel.merge import replay_events

        prepared, init_errors = self._prepare_restarts(initialiser, rng)
        lanes = (
            run_batched_lanes(
                backend.batched_lanes(len(prepared)),
                [params for _, params in prepared],
                max_iterations=self.max_iterations,
                tolerance=self.tolerance,
                deadline=deadline,
                budget=self.budget,
                # Events exist solely for callback replay; skipping
                # their construction when nobody listens keeps the
                # per-pass bookkeeping lean without changing numerics.
                collect_events=bool(self.callbacks),
            )
            if prepared
            else []
        )
        by_index = {index: lane for (index, _), lane in zip(prepared, lanes)}
        for index in range(self.n_restarts):
            if index in init_errors:
                yield index, None, init_errors[index]
                continue
            lane = by_index[index]
            replay_events(lane.events, self.callbacks)
            yield index, lane.outcome, lane.error

    def _batched_parallel_candidates(
        self,
        backend: Any,
        initialiser: Callable[[int, np.random.Generator], object],
        rng: RandomState,
    ) -> Iterator[Tuple[int, Optional[DriverOutcome], Optional[str]]]:
        """Split the restart lanes into per-worker packs.

        Lanes are independent, so packing is bitwise-neutral: each
        worker runs one smaller batched pass and the two speedups
        (lane batching, process fan-out) compose multiplicatively.
        Worker telemetry/spans/metrics are replayed in restart order,
        as in ``_parallel_candidates``.
        """
        from repro.parallel.config import cpu_count
        from repro.parallel.executor import parallel_map
        from repro.parallel.merge import replay_events

        prepared, init_errors = self._prepare_restarts(initialiser, rng)
        assert self.parallel is not None
        n_jobs = self.parallel.n_jobs
        effective = cpu_count() if n_jobs == -1 else n_jobs
        n_packs = max(1, min(len(prepared), effective))
        packs = [
            pack
            for pack in np.array_split(np.arange(len(prepared)), n_packs)
            if len(pack)
        ]
        collect = observability.enabled()
        collect_events = bool(self.callbacks)
        payloads = [
            (
                backend,
                [prepared[int(i)][1] for i in pack],
                self.max_iterations,
                self.tolerance,
                collect,
                collect_events,
            )
            for pack in packs
        ]
        results = parallel_map(
            _batched_pack_worker, payloads, config=self.parallel
        )
        flat: List[Tuple[Optional[DriverOutcome], Optional[str], List[IterationEvent]]] = []
        for lanes, spans, metrics in results:
            if spans:
                observability.graft(spans)
            observability.merge_metrics(metrics)
            flat.extend(lanes)
        by_index = {index: lane for (index, _), lane in zip(prepared, flat)}
        for index in range(self.n_restarts):
            if index in init_errors:
                yield index, None, init_errors[index]
                continue
            candidate, error, events = by_index[index]
            replay_events(events, self.callbacks)
            yield index, candidate, error


def _batched_pack_worker(payload):
    """Run one pack of batched restart lanes in a worker (pool entry point).

    Returns ``([(outcome, error, events), ...], spans, metrics)`` — one
    triple per lane, in lane order.  A batch-level exception (there is
    no per-lane raise inside the batched loop) is carried back as every
    lane's error string rather than killing the pool.
    """
    from repro.engine.batched import run_batched_lanes

    backend, params_list, max_iterations, tolerance, collect, collect_events = payload

    def _run():
        try:
            lanes = run_batched_lanes(
                backend.batched_lanes(len(params_list)),
                params_list,
                max_iterations=max_iterations,
                tolerance=tolerance,
                collect_events=collect_events,
            )
        except Exception as error:
            message = f"{type(error).__name__}: {error}"
            return [(None, message, []) for _ in params_list]
        return [(lane.outcome, lane.error, lane.events) for lane in lanes]

    if collect:
        with observability.observe() as session:
            out = _run()
        return out, session.export_spans(), session.metrics.snapshot()
    return _run(), [], None


def _restart_worker(payload):
    """Run one restart's EM loop in a worker process (pool entry point).

    Returns ``(outcome, error_message, events, spans, metrics)`` —
    exceptions are carried back as strings so one bad restart is
    isolated exactly as in the serial loop instead of killing the pool.
    With ``collect`` set (the parent had an observability session open)
    the restart runs under its own worker session and its span trees
    and metrics snapshot travel back for in-order replay, mirroring the
    telemetry events.
    """
    backend, params, max_iterations, tolerance, collect = payload
    recorder = TelemetryRecorder()
    driver = EMDriver(
        max_iterations=max_iterations, tolerance=tolerance, callbacks=(recorder,)
    )
    if collect:
        # A failing run must still ship whatever it recorded before the
        # fault — the serial path keeps those records in the ambient
        # session, so dropping them here would break counter parity.
        with observability.observe() as session:
            outcome: Optional[DriverOutcome] = None
            error_message: Optional[str] = None
            try:
                outcome = driver.run(backend, params)
            except Exception as error:
                error_message = f"{type(error).__name__}: {error}"
        return (
            outcome,
            error_message,
            list(recorder.events),
            session.export_spans(),
            session.metrics.snapshot(),
        )
    try:
        outcome = driver.run(backend, params)
    except Exception as error:
        return None, f"{type(error).__name__}: {error}", list(recorder.events), [], None
    return outcome, None, list(recorder.events), [], None


__all__ = [
    "DriverOutcome",
    "EMDriver",
    "IterationCallback",
    "IterationEvent",
    "RestartReport",
    "RunHealth",
    "TelemetryRecorder",
]
