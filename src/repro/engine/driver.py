"""The generic EM driver: restarts, convergence, tracing, telemetry.

:class:`EMDriver` owns the loop every EM family in the library shares
(Algorithm 2's "while {θ} are not convergent"): M-step, parameter
delta, E-step, :class:`~repro.core.model.ParameterTrace` recording,
tolerance/max-iteration convergence and multi-restart selection by
observed-data log likelihood.  The numerical work is delegated to a
backend from :mod:`repro.engine.backends`.

Telemetry
---------
Callbacks receive one :class:`IterationEvent` per EM iteration —
iteration index, parameter delta, log likelihood and wall-clock
duration — so harnesses and diagnostics can observe convergence
without poking at estimator internals.  A callback that returns a
truthy value requests an early stop: the loop ends after the current
iteration with ``converged=False`` (unless the iteration also met the
tolerance).  :class:`TelemetryRecorder` is the batteries-included
callback that accumulates events across runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.model import ParameterTrace
from repro.utils.rng import RandomState, SeedLike, spawn_rngs

#: Per-iteration callback; a truthy return value requests an early stop.
IterationCallback = Callable[["IterationEvent"], Optional[bool]]


@dataclass(frozen=True)
class IterationEvent:
    """One EM iteration as seen by telemetry callbacks."""

    iteration: int
    delta: float
    log_likelihood: float
    duration_seconds: float


class TelemetryRecorder:
    """Callback that accumulates :class:`IterationEvent` records.

    One recorder may be shared across many estimator runs (e.g. every
    trial of a simulation); it simply concatenates events.
    """

    def __init__(self) -> None:
        self.events: List[IterationEvent] = []

    def __call__(self, event: IterationEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def n_iterations(self) -> int:
        """Total EM iterations observed."""
        return len(self.events)

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time spent inside EM iterations."""
        return float(sum(e.duration_seconds for e in self.events))

    @property
    def mean_iteration_seconds(self) -> float:
        """Mean wall-clock time per EM iteration."""
        if not self.events:
            return float("nan")
        return self.total_seconds / len(self.events)

    def clear(self) -> None:
        """Drop all accumulated events."""
        self.events.clear()


@dataclass
class DriverOutcome:
    """Everything one converged (or exhausted) EM run produced."""

    parameters: object
    posterior: np.ndarray
    trace: ParameterTrace
    converged: bool

    @property
    def n_iterations(self) -> int:
        return self.trace.n_iterations

    @property
    def log_likelihood(self) -> float:
        return (
            self.trace.log_likelihoods[-1]
            if self.trace.n_iterations
            else float("nan")
        )

    @property
    def decisions(self) -> np.ndarray:
        """0.5-threshold truth labels from the posterior."""
        return (self.posterior >= 0.5).astype(np.int8)


class EMDriver:
    """Backend-agnostic EM loop with restarts and telemetry hooks."""

    def __init__(
        self,
        *,
        max_iterations: int,
        tolerance: float,
        n_restarts: int = 1,
        callbacks: Sequence[IterationCallback] = (),
    ):
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.n_restarts = n_restarts
        self.callbacks = tuple(callbacks)

    @classmethod
    def from_config(
        cls, config, callbacks: Sequence[IterationCallback] = ()
    ) -> "EMDriver":
        """Build from an :class:`~repro.core.em_ext.EMConfig`."""
        return cls(
            max_iterations=config.max_iterations,
            tolerance=config.tolerance,
            n_restarts=config.n_restarts,
            callbacks=callbacks,
        )

    def run(self, backend, params) -> DriverOutcome:
        """One EM run from ``params`` to a fixed point (or the iteration cap)."""
        trace = ParameterTrace()
        posterior = backend.posterior(params)
        converged = False
        for iteration in range(self.max_iterations):
            start = time.perf_counter()
            new_params = backend.m_step(posterior, params)
            delta = new_params.max_difference(params)
            params = new_params
            posterior, log_likelihood = backend.e_step(params)
            trace.record(log_likelihood, delta)
            duration = time.perf_counter() - start
            stop_requested = False
            for callback in self.callbacks:
                if callback(
                    IterationEvent(
                        iteration=iteration,
                        delta=delta,
                        log_likelihood=log_likelihood,
                        duration_seconds=duration,
                    )
                ):
                    stop_requested = True
            if delta < self.tolerance:
                converged = True
                break
            if stop_requested:
                break
        return DriverOutcome(
            parameters=params,
            posterior=posterior,
            trace=trace,
            converged=converged,
        )

    def fit(
        self,
        backend,
        initialiser: Callable[[int, np.random.Generator], object],
        seed: SeedLike = None,
    ) -> DriverOutcome:
        """Multi-restart EM; the best fixed point by log likelihood wins.

        ``initialiser(index, rng)`` produces the starting parameters of
        restart ``index`` (strategy-based for the first, typically
        random for the rest).
        """
        rng = RandomState(seed)
        best: Optional[DriverOutcome] = None
        for index, restart_rng in enumerate(spawn_rngs(rng, self.n_restarts)):
            params = initialiser(index, restart_rng)
            candidate = self.run(backend, params)
            if best is None or candidate.log_likelihood > best.log_likelihood:
                best = candidate
        assert best is not None  # n_restarts >= 1 by construction
        return best


__all__ = [
    "DriverOutcome",
    "EMDriver",
    "IterationCallback",
    "IterationEvent",
    "TelemetryRecorder",
]
