"""Structured run-health reporting for the estimation engine.

The paper's premise is that *sources* are unreliable; a production
deployment must extend the same assumption to its own numerics.  A
multi-restart EM fit can partially fail in several distinct ways — a
restart diverges to non-finite parameters, a backend raises mid-run, a
wall-clock budget expires — and silently collapsing those outcomes into
"the run finished" hides exactly the information an operator needs.

:class:`RunHealth` is the driver's structured answer: one
:class:`RestartReport` per attempted restart (status, iterations, final
log likelihood, error detail) plus which restart was selected and
whether the budget ran out.  In non-strict mode the driver attaches it
to the returned :class:`~repro.engine.driver.DriverOutcome` instead of
raising; in strict mode it backs the
:class:`~repro.utils.errors.ConvergenceError` raised when every restart
failed.

This module is dependency-free on purpose so both the engine and the
:mod:`repro.resilience` toolkit can import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: Restart statuses, from best to worst.
RESTART_STATUSES: Tuple[str, ...] = (
    "converged",  # met the parameter-delta tolerance
    "exhausted",  # hit max_iterations with finite numerics
    "budget",     # stopped by the wall-clock budget
    "diverged",   # produced a non-finite log likelihood or parameter delta
    "error",      # the EM loop raised an exception
)

#: Statuses that make a restart unusable for model selection.
FAILED_STATUSES: Tuple[str, ...] = ("diverged", "error")


@dataclass(frozen=True)
class RestartReport:
    """What one EM restart did, as recorded by the driver."""

    index: int
    status: str
    n_iterations: int
    log_likelihood: float
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        """Whether this restart produced nothing usable."""
        return self.status in FAILED_STATUSES


@dataclass
class RunHealth:
    """Aggregate health of one multi-restart EM fit.

    ``selected`` is the index of the restart whose fixed point the
    driver returned, or ``None`` when every restart failed and the
    driver degraded to a best-effort outcome (or raised).
    """

    restarts: List[RestartReport] = field(default_factory=list)
    selected: Optional[int] = None
    budget_exhausted: bool = False

    def record(self, report: RestartReport) -> None:
        """Append one restart's report."""
        self.restarts.append(report)

    @property
    def n_restarts(self) -> int:
        """Number of restarts attempted."""
        return len(self.restarts)

    @property
    def n_failed(self) -> int:
        """Restarts that diverged or raised."""
        return sum(1 for r in self.restarts if r.failed)

    @property
    def all_failed(self) -> bool:
        """Whether no restart produced a usable fixed point."""
        return bool(self.restarts) and self.n_failed == len(self.restarts)

    @property
    def ok(self) -> bool:
        """Healthy fit: a restart was selected and none failed."""
        return self.selected is not None and self.n_failed == 0

    def summary(self) -> str:
        """One-line operator-facing digest."""
        counts = {}
        for report in self.restarts:
            counts[report.status] = counts.get(report.status, 0) + 1
        parts = [f"{count} {status}" for status, count in sorted(counts.items())]
        tail = " (wall-clock budget exhausted)" if self.budget_exhausted else ""
        return f"{self.n_restarts} restart(s): {', '.join(parts) or 'none run'}{tail}"


__all__ = ["FAILED_STATUSES", "RESTART_STATUSES", "RestartReport", "RunHealth"]
