"""Serialisation of problems, results and datasets.

Formats:

* **problem JSON** — a :class:`SensingProblem` with its matrices,
  optional ground truth and ids, self-describing and diff-friendly;
* **result JSON** — a :class:`FactFindingResult` /
  :class:`EstimationResult` including fitted parameters;
* **tweets JSONL** — one tweet per line, the interchange format for the
  Apollo pipeline (and the natural dump of a simulated crawl).

All writers produce stable key order so outputs are reproducible
byte-for-byte given the same inputs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Union

import numpy as np

from repro.core.model import SourceParameters
from repro.data.coerce import coerce_problem
from repro.data.dense import DependencyMatrix, SensingProblem, SourceClaimMatrix
from repro.data.protocol import FORMAT_DENSE, Problem
from repro.core.result import EstimationResult, FactFindingResult
from repro.datasets.schema import Tweet
from repro.utils.errors import DataError

PathLike = Union[str, Path]

#: Format version written into every file for forward compatibility.
FORMAT_VERSION = 1


def _write_json(path: PathLike, payload: dict) -> None:
    payload = {"format_version": FORMAT_VERSION, **payload}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _read_json(path: PathLike) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise DataError(
            f"{path}: unsupported format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    return payload


# ---------------------------------------------------------------------------
# SensingProblem
# ---------------------------------------------------------------------------

def save_problem(problem: Problem, path: PathLike) -> None:
    """Write a sensing problem (claims, dependencies, optional truth).

    Accepts either storage format; CSR input is densified under the
    memory budget (JSON is a dense interchange format — use
    :func:`repro.io.sparse_io.save_sparse_problem` for large problems).
    """
    problem = coerce_problem(problem, needs=FORMAT_DENSE)
    payload = {
        "kind": "sensing_problem",
        "claims": problem.claims.values.tolist(),
        "dependency": problem.dependency.values.tolist(),
        "source_ids": list(problem.source_ids),
        "assertion_ids": list(problem.assertion_ids),
        "truth": problem.truth.tolist() if problem.has_truth else None,
    }
    _write_json(path, payload)


def load_problem(path: PathLike) -> SensingProblem:
    """Read a sensing problem written by :func:`save_problem`."""
    payload = _read_json(path)
    if payload.get("kind") != "sensing_problem":
        raise DataError(f"{path}: not a sensing-problem file")
    claims = SourceClaimMatrix(
        np.asarray(payload["claims"], dtype=np.int8),
        source_ids=payload.get("source_ids"),
        assertion_ids=payload.get("assertion_ids"),
    )
    dependency = DependencyMatrix(np.asarray(payload["dependency"], dtype=np.int8))
    truth = payload.get("truth")
    return SensingProblem(
        claims=claims,
        dependency=dependency,
        truth=None if truth is None else np.asarray(truth, dtype=np.int8),
    )


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------

def save_result(result: FactFindingResult, path: PathLike) -> None:
    """Write a fact-finding result (scores, decisions, diagnostics)."""
    payload = {
        "kind": "fact_finding_result",
        "algorithm": result.algorithm,
        "scores": result.scores.tolist(),
        "decisions": result.decisions.tolist(),
    }
    if isinstance(result, EstimationResult):
        payload["estimation"] = {
            "log_likelihood": result.log_likelihood,
            "converged": result.converged,
            "n_iterations": result.n_iterations,
            "parameters": (
                result.parameters.to_dict() if result.parameters else None
            ),
        }
    _write_json(path, payload)


def load_result(path: PathLike) -> FactFindingResult:
    """Read a result written by :func:`save_result`."""
    payload = _read_json(path)
    if payload.get("kind") != "fact_finding_result":
        raise DataError(f"{path}: not a fact-finding-result file")
    base = {
        "algorithm": payload["algorithm"],
        "scores": np.asarray(payload["scores"], dtype=np.float64),
        "decisions": np.asarray(payload["decisions"], dtype=np.int8),
    }
    estimation = payload.get("estimation")
    if estimation is None:
        return FactFindingResult(**base)
    parameters = estimation.get("parameters")
    return EstimationResult(
        **base,
        parameters=(
            SourceParameters.from_dict(parameters) if parameters else None
        ),
        log_likelihood=estimation["log_likelihood"],
        converged=estimation["converged"],
        n_iterations=estimation["n_iterations"],
    )


# ---------------------------------------------------------------------------
# Tweets (JSONL)
# ---------------------------------------------------------------------------

def save_tweets(tweets: Iterable[Tweet], path: PathLike) -> int:
    """Write tweets as JSONL; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for tweet in tweets:
            record = {
                "tweet_id": tweet.tweet_id,
                "user": tweet.user,
                "time": tweet.time,
                "text": tweet.text,
                "assertion": tweet.assertion,
                "retweet_of": tweet.retweet_of,
            }
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            count += 1
    return count


def load_tweets(path: PathLike) -> List[Tweet]:
    """Read tweets from a JSONL file written by :func:`save_tweets`."""
    tweets: List[Tweet] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise DataError(f"{path}:{line_number}: invalid JSON") from error
            try:
                tweets.append(
                    Tweet(
                        tweet_id=int(record["tweet_id"]),
                        user=int(record["user"]),
                        time=float(record["time"]),
                        text=str(record["text"]),
                        assertion=int(record["assertion"]),
                        retweet_of=(
                            None
                            if record.get("retweet_of") is None
                            else int(record["retweet_of"])
                        ),
                    )
                )
            except KeyError as error:
                raise DataError(
                    f"{path}:{line_number}: missing field {error}"
                ) from error
    return tweets


__all__ = [
    "FORMAT_VERSION",
    "load_problem",
    "load_result",
    "load_tweets",
    "save_problem",
    "save_result",
    "save_tweets",
]
