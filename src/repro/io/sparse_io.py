"""NPZ serialisation for sparse sensing problems.

JSON is the right interchange format for the dense problems the paper's
experiments use; a full-scale crawl's CSR matrices belong in a binary
container.  One ``.npz`` file holds both matrices (CSR components), the
shape, the axis ids, and optional truth labels.

The claim/dependency *values* are never stored: validation guarantees
they are all ones, so only the CSR structure (``indptr``/``indices``)
goes to disk and load rebuilds an int8 data array — the same 8× saving
over float64 that :class:`~repro.data.csr.CsrProblem` applies in
memory.  Archives written before the data layer carried ids load fine;
their problems get the default ``S{i}``/``C{j}`` ids.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.data.coerce import coerce_problem
from repro.data.csr import CsrProblem
from repro.data.protocol import FORMAT_CSR, Problem
from repro.utils.errors import DataError

PathLike = Union[str, Path]

_MAGIC = "repro-sparse-problem-v1"


def save_sparse_problem(problem: Problem, path: PathLike) -> None:
    """Write a sparse problem to an ``.npz`` file.

    Accepts either storage format; dense input is converted to CSR
    first (always safe — sparsifying never allocates more).
    """
    problem = coerce_problem(problem, needs=FORMAT_CSR)
    claims = problem.claims.tocsr()
    dependency = problem.dependency.tocsr()
    payload = {
        "magic": np.array(_MAGIC),
        "shape": np.array(claims.shape, dtype=np.int64),
        "claims_indptr": claims.indptr,
        "claims_indices": claims.indices,
        "dependency_indptr": dependency.indptr,
        "dependency_indices": dependency.indices,
        "source_ids": np.array(problem.source_ids, dtype=np.str_),
        "assertion_ids": np.array(problem.assertion_ids, dtype=np.str_),
        "has_truth": np.array(problem.has_truth),
    }
    if problem.has_truth:
        payload["truth"] = problem.truth
    np.savez_compressed(path, **payload)


def _optional_ids(archive, key: str) -> Optional[List[str]]:
    if key not in archive.files:
        return None
    return [str(value) for value in archive[key]]


def load_sparse_problem(path: PathLike) -> CsrProblem:
    """Read a sparse problem written by :func:`save_sparse_problem`."""
    from scipy import sparse

    with np.load(path, allow_pickle=False) as archive:
        magic = str(archive["magic"])
        if magic != _MAGIC:
            raise DataError(f"{path}: not a sparse-problem archive ({magic!r})")
        shape = tuple(int(v) for v in archive["shape"])

        def _matrix(prefix: str):
            indptr = archive[f"{prefix}_indptr"]
            indices = archive[f"{prefix}_indices"]
            data = np.ones(indices.shape[0], dtype=np.int8)
            return sparse.csr_matrix((data, indices, indptr), shape=shape)

        truth = archive["truth"] if bool(archive["has_truth"]) else None
        return CsrProblem(
            claims=_matrix("claims"),
            dependency=_matrix("dependency"),
            truth=truth,
            source_ids=_optional_ids(archive, "source_ids"),
            assertion_ids=_optional_ids(archive, "assertion_ids"),
        )


__all__ = ["load_sparse_problem", "save_sparse_problem"]
