"""NPZ serialisation for sparse sensing problems.

JSON is the right interchange format for the dense problems the paper's
experiments use; a full-scale crawl's CSR matrices belong in a binary
container.  One ``.npz`` file holds both matrices (CSR components), the
shape, and optional truth labels.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.sparse.problem import SparseSensingProblem
from repro.utils.errors import DataError

PathLike = Union[str, Path]

_MAGIC = "repro-sparse-problem-v1"


def save_sparse_problem(problem: SparseSensingProblem, path: PathLike) -> None:
    """Write a sparse problem to an ``.npz`` file."""
    claims = problem.claims.tocsr()
    dependency = problem.dependency.tocsr()
    payload = {
        "magic": np.array(_MAGIC),
        "shape": np.array(claims.shape, dtype=np.int64),
        "claims_indptr": claims.indptr,
        "claims_indices": claims.indices,
        "dependency_indptr": dependency.indptr,
        "dependency_indices": dependency.indices,
        "has_truth": np.array(problem.has_truth),
    }
    if problem.has_truth:
        payload["truth"] = problem.truth
    np.savez_compressed(path, **payload)


def load_sparse_problem(path: PathLike) -> SparseSensingProblem:
    """Read a sparse problem written by :func:`save_sparse_problem`."""
    from scipy import sparse

    with np.load(path, allow_pickle=False) as archive:
        magic = str(archive["magic"])
        if magic != _MAGIC:
            raise DataError(f"{path}: not a sparse-problem archive ({magic!r})")
        shape = tuple(int(v) for v in archive["shape"])

        def _matrix(prefix: str):
            indptr = archive[f"{prefix}_indptr"]
            indices = archive[f"{prefix}_indices"]
            data = np.ones(indices.shape[0], dtype=np.float64)
            return sparse.csr_matrix((data, indices, indptr), shape=shape)

        truth = archive["truth"] if bool(archive["has_truth"]) else None
        return SparseSensingProblem(
            claims=_matrix("claims"),
            dependency=_matrix("dependency"),
            truth=truth,
        )


__all__ = ["load_sparse_problem", "save_sparse_problem"]
