"""Serialisation of problems, results and tweet streams.

``save_sparse_problem``/``load_sparse_problem`` (NPZ, for crawl-scale
matrices) are imported lazily because they require scipy.
"""

from repro.io.serialization import (
    FORMAT_VERSION,
    load_problem,
    load_result,
    load_tweets,
    save_problem,
    save_result,
    save_tweets,
)

__all__ = [
    "FORMAT_VERSION",
    "load_problem",
    "load_result",
    "load_sparse_problem",
    "load_tweets",
    "save_problem",
    "save_result",
    "save_sparse_problem",
    "save_tweets",
]


def __getattr__(name):
    if name in ("save_sparse_problem", "load_sparse_problem"):
        from repro.io import sparse_io

        return getattr(sparse_io, name)
    raise AttributeError(f"module 'repro.io' has no attribute {name!r}")
