"""Request traces: synthesise, load and replay them against the service.

A trace is a JSONL file — one header record plus one record per
request — that pins down a reproducible serving workload.  Request
records are self-contained: they either reference the synthetic
generator (``generator_seed`` + shape, the compact form
:func:`generate_trace` writes) or inline the raw ``claims`` /
``dependency`` cell arrays, so a trace replays identically on any
machine.

:func:`replay_trace` is the measurement (and verification) harness:
closed-loop replay through an :class:`~repro.serve.EstimationService`
or the per-request serial baseline, reporting throughput, nearest-rank
latency percentiles and — with ``verify=True`` — a bit-for-bit
comparison of every response against the direct fit it stands for.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.em_ext import EMConfig
from repro.core.result import EstimationResult
from repro.data.dense import DenseProblem
from repro.serve.request import (
    PATH_SERIAL,
    EstimationRequest,
    EstimationResponse,
    error_response,
    ok_response,
)
from repro.serve.service import EstimationService, ServiceConfig, fit_request
from repro.synthetic import GeneratorConfig, generate_dataset
from repro.utils.errors import DataError, ValidationError

#: Schema tag of the trace JSONL header record.
SERVE_TRACE_SCHEMA = "repro.serve-trace/v1"

#: Replay modes.
MODE_BATCHED = "batched"
MODE_SERIAL = "serial"


def generate_trace(
    path: str,
    *,
    n_requests: int = 200,
    seed: int = 0,
    n_sources: int = 20,
    n_assertions: int = 50,
    distinct_problems: Optional[int] = None,
    algorithm: str = "em-ext",
    init_strategy: str = "random",
    n_restarts: int = 1,
    timeout_seconds: Optional[float] = None,
) -> int:
    """Write a seeded synthetic request trace; returns the request count.

    Problems are Fig. 7-sized by default (``n = 20``, ``m = 50``) and
    referenced by generator seed, so the file stays small no matter the
    request count.  ``distinct_problems`` caps how many different
    problems appear: with fewer distinct problems than requests the
    trace contains exact repeats — same problem, same request seed —
    which is what exercises the service's result cache.  The default
    ``init_strategy="random"`` matters for serving throughput: the
    staged initialisation runs serially per problem in the parent, so
    traces meant to demonstrate micro-batching speedups should not use
    it.
    """
    if n_requests < 1:
        raise ValidationError(f"n_requests must be positive, got {n_requests}")
    distinct = distinct_problems if distinct_problems is not None else n_requests
    if distinct < 1:
        raise ValidationError(
            f"distinct_problems must be positive, got {distinct_problems}"
        )
    em = {"init_strategy": init_strategy, "n_restarts": n_restarts}
    with open(path, "w", encoding="utf-8") as handle:
        header = {
            "schema": SERVE_TRACE_SCHEMA,
            "n_requests": n_requests,
            "seed": seed,
        }
        handle.write(json.dumps(header) + "\n")
        for index in range(n_requests):
            variant = index % distinct
            record: Dict[str, object] = {
                "request_id": f"req-{index:05d}",
                "generator_seed": seed * 1000 + variant,
                "n_sources": n_sources,
                "n_assertions": n_assertions,
                "seed": seed + variant,
                "algorithm": algorithm,
            }
            if algorithm == "em-ext":
                record["em"] = em
            if timeout_seconds is not None:
                record["timeout_seconds"] = timeout_seconds
            handle.write(json.dumps(record) + "\n")
    return n_requests


def load_trace(path: str) -> List[EstimationRequest]:
    """Materialise a trace file into request objects.

    Problems referenced by ``generator_seed`` are regenerated through
    the synthetic generator (memoised, so repeated references share one
    materialisation — and hence one content fingerprint); records
    carrying inline ``claims`` / ``dependency`` arrays are wrapped
    directly.
    """
    requests: List[EstimationRequest] = []
    problems: Dict[tuple, DenseProblem] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise DataError(
                    f"{path}:{line_number}: invalid JSON ({error})"
                ) from error
            if "request_id" not in record:
                schema = record.get("schema")
                if schema != SERVE_TRACE_SCHEMA:
                    raise DataError(
                        f"{path}:{line_number}: unsupported trace schema "
                        f"{schema!r} (expected {SERVE_TRACE_SCHEMA!r})"
                    )
                continue
            if "claims" in record:
                problem = DenseProblem.from_arrays(
                    np.asarray(record["claims"], dtype=np.int8),
                    np.asarray(record["dependency"], dtype=np.int8),
                )
            else:
                key = (
                    int(record["generator_seed"]),
                    int(record.get("n_sources", 20)),
                    int(record.get("n_assertions", 50)),
                )
                problem = problems.get(key)
                if problem is None:
                    problem = generate_dataset(
                        GeneratorConfig(
                            n_sources=key[1], n_assertions=key[2]
                        ),
                        seed=key[0],
                    ).problem.without_truth()
                    problems[key] = problem
            config = (
                EMConfig(**record["em"]) if record.get("em") is not None else None
            )
            requests.append(
                EstimationRequest(
                    request_id=str(record["request_id"]),
                    problem=problem,
                    algorithm=str(record.get("algorithm", "em-ext")),
                    config=config,
                    seed=record.get("seed"),
                    timeout_seconds=record.get("timeout_seconds"),
                    warm_start=bool(record.get("warm_start", False)),
                )
            )
    if not requests:
        raise DataError(f"{path}: trace contains no requests")
    return requests


def results_bitwise_equal(a, b) -> bool:
    """Whether two results are payload-identical, bit for bit.

    Compares scores, decisions and — for estimation results — the
    fitted parameters, log-likelihood and convergence report through
    their byte representations, so NaNs with matching bit patterns
    compare equal (two runs of the same deterministic code path agree
    or differ exactly).
    """
    if type(a) is not type(b) or a.algorithm != b.algorithm:
        return False
    if a.scores.tobytes() != b.scores.tobytes():
        return False
    if a.decisions.tobytes() != b.decisions.tobytes():
        return False
    if isinstance(a, EstimationResult):
        if a.converged != b.converged or a.n_iterations != b.n_iterations:
            return False
        if (
            np.float64(a.log_likelihood).tobytes()
            != np.float64(b.log_likelihood).tobytes()
        ):
            return False
        if (a.parameters is None) != (b.parameters is None):
            return False
        if a.parameters is not None:
            for name in ("a", "b", "f", "g"):
                if (
                    getattr(a.parameters, name).tobytes()
                    != getattr(b.parameters, name).tobytes()
                ):
                    return False
            if (
                np.float64(a.parameters.z).tobytes()
                != np.float64(b.parameters.z).tobytes()
            ):
                return False
    return True


def _nearest_rank_ms(latencies: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``latencies`` (seconds), in ms."""
    ordered = sorted(latencies)
    if not ordered:
        return float("nan")
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1] * 1000.0


@dataclass
class ReplayReport:
    """What one trace replay did and how fast it was."""

    mode: str
    n_requests: int
    n_ok: int
    n_errors: int
    wall_seconds: float
    throughput_rps: float
    latency_p50_ms: float
    latency_p99_ms: float
    path_counts: Dict[str, int] = field(default_factory=dict)
    n_verified: int = 0
    n_mismatches: int = 0
    mismatched_ids: List[str] = field(default_factory=list)
    responses: List[EstimationResponse] = field(default_factory=list)

    def summary(self) -> str:
        """One human line for the CLI."""
        paths = ", ".join(
            f"{name}={count}" for name, count in sorted(self.path_counts.items())
        )
        line = (
            f"{self.mode}: {self.n_ok}/{self.n_requests} ok in "
            f"{self.wall_seconds:.3f}s ({self.throughput_rps:.1f} req/s, "
            f"p50 {self.latency_p50_ms:.1f}ms, p99 {self.latency_p99_ms:.1f}ms; "
            f"{paths})"
        )
        if self.n_verified:
            line += (
                f"; verified {self.n_verified} responses, "
                f"{self.n_mismatches} mismatched"
            )
        return line

    def to_row(self) -> Dict[str, object]:
        """JSON-friendly benchmark row (no response payloads)."""
        return {
            "mode": self.mode,
            "n_requests": self.n_requests,
            "n_ok": self.n_ok,
            "n_errors": self.n_errors,
            "wall_seconds": self.wall_seconds,
            "throughput_rps": self.throughput_rps,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "path_counts": dict(sorted(self.path_counts.items())),
            "n_verified": self.n_verified,
            "n_mismatches": self.n_mismatches,
        }


def replay_trace(
    requests: Sequence[EstimationRequest],
    *,
    mode: str = MODE_BATCHED,
    service_config: Optional[ServiceConfig] = None,
    verify: bool = False,
) -> ReplayReport:
    """Replay ``requests`` closed-loop and measure the service.

    All requests "arrive" at replay start; per-request latency is
    submission-to-answer (queue wait plus service time).  ``"batched"``
    drives an :class:`~repro.serve.EstimationService`;
    ``"serial"`` is the per-request direct-fit baseline the speedup is
    measured against.  ``verify=True`` re-fits every answered request
    directly and compares bit-for-bit (``warm_start`` requests are
    skipped — their starting point is service history, which a cold
    direct fit does not see).
    """
    if mode not in (MODE_BATCHED, MODE_SERIAL):
        raise ValidationError(
            f"mode must be {MODE_BATCHED!r} or {MODE_SERIAL!r}, got {mode!r}"
        )
    started = time.perf_counter()
    if mode == MODE_BATCHED:
        service = EstimationService(service_config)
        responses = service.serve(list(requests))
    else:
        responses = []
        for request in requests:
            fit_started = time.perf_counter()
            try:
                result = fit_request(request)
            except Exception as error:
                responses.append(
                    error_response(
                        request,
                        error,
                        path=PATH_SERIAL,
                        queued_seconds=fit_started - started,
                        service_seconds=time.perf_counter() - fit_started,
                    )
                )
                continue
            responses.append(
                ok_response(
                    request,
                    result,
                    path=PATH_SERIAL,
                    queued_seconds=fit_started - started,
                    service_seconds=time.perf_counter() - fit_started,
                )
            )
    wall = time.perf_counter() - started
    latencies = [response.latency_seconds for response in responses]
    path_counts: Dict[str, int] = {}
    for response in responses:
        path_counts[response.path] = path_counts.get(response.path, 0) + 1
    report = ReplayReport(
        mode=mode,
        n_requests=len(responses),
        n_ok=sum(1 for response in responses if response.ok),
        n_errors=sum(1 for response in responses if not response.ok),
        wall_seconds=wall,
        throughput_rps=len(responses) / wall if wall > 0 else float("inf"),
        latency_p50_ms=_nearest_rank_ms(latencies, 50.0),
        latency_p99_ms=_nearest_rank_ms(latencies, 99.0),
        path_counts=path_counts,
        responses=list(responses),
    )
    if verify:
        by_id = {request.request_id: request for request in requests}
        for response in responses:
            if not response.ok:
                continue
            request = by_id[response.request_id]
            if request.warm_start:
                continue
            report.n_verified += 1
            if not results_bitwise_equal(response.result, fit_request(request)):
                report.n_mismatches += 1
                report.mismatched_ids.append(response.request_id)
    return report


__all__ = [
    "MODE_BATCHED",
    "MODE_SERIAL",
    "SERVE_TRACE_SCHEMA",
    "ReplayReport",
    "generate_trace",
    "load_trace",
    "replay_trace",
    "results_bitwise_equal",
]
