"""The adaptive micro-batcher: pack compatible requests into lane packs.

The lane engine (:mod:`repro.engine.batched`) turns B same-shape dense
EM problems into one stacked ``(B, n, m)`` tensor program whose
per-lane results are bit-for-bit the serial fits.  The batcher's job is
to find those B's inside a drained queue: it groups pending requests by
everything the stacked program requires to be uniform — dense storage,
the batchable algorithm, the ``(n, m)`` shape and the (hashable, frozen)
:class:`~repro.core.em_ext.EMConfig` — and chunks each group to the
configured lane budget.  Whatever cannot ride a pack (CSR problems,
non-EM-Ext algorithms, shapes nobody else shares) is returned as serial
leftovers with the reason attached, so the service can count
``serve.fallbacks`` per cause.

Grouping preserves submission order inside each group and never
reorders responses: the service reassembles responses by submission
position regardless of which pack answered them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.data.protocol import FORMAT_DENSE
from repro.resilience.supervisor import Deadline
from repro.serve.request import EstimationRequest

#: The one algorithm the lane engine can stack.
BATCHABLE_ALGORITHM = "em-ext"

#: Serial-fallback reasons (counter suffixes under ``serve.fallbacks``).
FALLBACK_ALGORITHM = "algorithm"
FALLBACK_FORMAT = "format"
FALLBACK_SINGLETON = "singleton"


@dataclass
class PendingRequest:
    """A queued request with its admission bookkeeping.

    ``deadline`` starts ticking at submission (it is constructed when
    the request enters the queue), so queue time counts against the
    request's ``timeout_seconds`` — exactly what a caller who set a
    timeout expects.
    """

    request: EstimationRequest
    position: int
    submitted_at: float = 0.0
    deadline: Optional[Deadline] = None
    #: Warm-start parameters resolved at drain time (``None`` = cold).
    warm_parameters: object = None
    extras: dict = field(default_factory=dict)


def batch_key(request: EstimationRequest) -> Optional[Tuple]:
    """The lane-compatibility key of a request, or ``None`` if unbatchable.

    Two requests may share a lane pack iff they agree on this key: the
    stacked backend needs one shape and one smoothing/epsilon/iteration
    policy for all lanes, and :class:`~repro.core.em_ext.EMConfig` is a
    frozen (hence hashable) dataclass carrying exactly that policy.
    """
    if request.algorithm != BATCHABLE_ALGORITHM:
        return None
    if request.problem.format != FORMAT_DENSE:
        return None
    return (
        request.problem.n_sources,
        request.problem.n_assertions,
        request.effective_config,
    )


def plan_batches(
    pending: Sequence[PendingRequest],
    *,
    max_batch_size: int,
) -> Tuple[List[List[PendingRequest]], List[Tuple[PendingRequest, str]]]:
    """Split ``pending`` into lane packs and serial leftovers.

    Returns ``(packs, serial)`` where each pack holds ≥ 2 compatible
    requests (≤ ``max_batch_size``) in submission order, and ``serial``
    pairs each leftover with its fallback reason.  A compatibility
    group of size 1 — including the size-1 tail chunk of a larger
    group — goes serial: a one-lane tensor program only adds stacking
    overhead over the scalar fit it replicates.
    """
    groups: Dict[Tuple, List[PendingRequest]] = {}
    serial: List[Tuple[PendingRequest, str]] = []
    order: List[Tuple] = []
    for item in pending:
        key = batch_key(item.request)
        if key is None:
            reason = (
                FALLBACK_ALGORITHM
                if item.request.algorithm != BATCHABLE_ALGORITHM
                else FALLBACK_FORMAT
            )
            serial.append((item, reason))
            continue
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(item)
    packs: List[List[PendingRequest]] = []
    for key in order:
        members = groups[key]
        for start in range(0, len(members), max_batch_size):
            chunk = members[start : start + max_batch_size]
            if len(chunk) >= 2:
                packs.append(chunk)
            else:
                serial.append((chunk[0], FALLBACK_SINGLETON))
    return packs, serial


__all__ = [
    "BATCHABLE_ALGORITHM",
    "FALLBACK_ALGORITHM",
    "FALLBACK_FORMAT",
    "FALLBACK_SINGLETON",
    "PendingRequest",
    "batch_key",
    "plan_batches",
]
