"""Request/response vocabulary of the estimation service.

A request is one estimation job — a
:class:`~repro.data.protocol.Problem` plus the algorithm and options a
direct caller would have passed to ``fit`` — and a response is the
service's answer for it, tagged with how it was produced.  The tags
matter because the service's central promise is *path transparency*:
whether a request was drained through a batched lane pack, fitted
serially, or answered from the result cache, the payload is bit-for-bit
what the direct fit would have returned (see
:mod:`repro.serve.service` for the one documented opt-in exception,
``warm_start``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.em_ext import EMConfig
from repro.core.result import FactFindingResult
from repro.data.protocol import Problem
from repro.utils.errors import ValidationError
from repro.utils.rng import SeedLike

#: Response ``path`` tags: how the service produced the payload.
PATH_BATCHED = "batched"
PATH_SERIAL = "serial"
PATH_CACHE = "cache"
PATH_REJECTED = "rejected"

#: Response ``status`` tags.
STATUS_OK = "ok"
STATUS_ERROR = "error"


@dataclass(frozen=True)
class EstimationRequest:
    """One estimation job submitted to the service.

    Attributes
    ----------
    request_id:
        Caller-chosen identifier, echoed on the response.
    problem:
        The sensing problem, in either storage format.  CSR problems
        are always fitted serially (the lane engine is dense-only).
    algorithm:
        Registry name of the fact-finder (``"em-ext"`` is the only
        batchable one; anything else takes the serial path).
    config:
        EM hyper-parameters for the EM family; ``None`` means the
        library defaults (:class:`~repro.core.em_ext.EMConfig`).
    seed:
        Forwarded to the algorithm exactly as a direct caller would.
    timeout_seconds:
        Per-request wall budget, measured from *submission*: a request
        still queued when it expires is answered with a structured
        ``DeadlineExceeded`` error instead of being fitted.
    warm_start:
        Opt in to seeding the fit from the service's last answer for
        an identical problem (by content fingerprint).  This is the
        one knob that trades the replay-a-direct-fit contract for
        latency: the response then equals a direct fit *with the same
        initial parameters*, which may be a different fixed point than
        the cold-started one.
    """

    request_id: str
    problem: Problem
    algorithm: str = "em-ext"
    config: Optional[EMConfig] = None
    seed: SeedLike = None
    timeout_seconds: Optional[float] = None
    warm_start: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.request_id, str) or not self.request_id:
            raise ValidationError(
                f"request_id must be a non-empty string, got {self.request_id!r}"
            )
        if not isinstance(self.algorithm, str) or not self.algorithm:
            raise ValidationError(
                f"algorithm must be a non-empty string, got {self.algorithm!r}"
            )
        if self.timeout_seconds is not None and not self.timeout_seconds > 0:
            raise ValidationError(
                f"timeout_seconds must be positive, got {self.timeout_seconds}"
            )

    @property
    def effective_config(self) -> EMConfig:
        """The request's EM configuration with defaults applied."""
        return self.config if self.config is not None else EMConfig()


@dataclass
class EstimationResponse:
    """The service's answer for one request.

    ``status`` is ``"ok"`` with a ``result`` payload, or ``"error"``
    with the failure mirrored as ``error`` (message) and ``error_type``
    (exception class name) — the same exception a direct fit would have
    raised, or the service's own admission errors
    (``CircuitOpenError``, ``DeadlineExceeded``).

    ``queued_seconds`` is time spent waiting in the queue before the
    drain picked the request up; ``service_seconds`` is time from
    pick-up to answer (for batched requests: the shared chunk's wall
    time — lanes are not separable).
    """

    request_id: str
    status: str
    path: str
    result: Optional[FactFindingResult] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    queued_seconds: float = 0.0
    service_seconds: float = 0.0
    extras: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the request produced a result."""
        return self.status == STATUS_OK

    @property
    def latency_seconds(self) -> float:
        """Submission-to-answer wall time (queued + service)."""
        return self.queued_seconds + self.service_seconds


def ok_response(
    request: EstimationRequest,
    result: FactFindingResult,
    *,
    path: str,
    queued_seconds: float = 0.0,
    service_seconds: float = 0.0,
) -> EstimationResponse:
    """A successful response for ``request``."""
    return EstimationResponse(
        request_id=request.request_id,
        status=STATUS_OK,
        path=path,
        result=result,
        queued_seconds=queued_seconds,
        service_seconds=service_seconds,
    )


def error_response(
    request: EstimationRequest,
    error: BaseException,
    *,
    path: str,
    queued_seconds: float = 0.0,
    service_seconds: float = 0.0,
) -> EstimationResponse:
    """A failure response carrying ``error`` in structured form."""
    return EstimationResponse(
        request_id=request.request_id,
        status=STATUS_ERROR,
        path=path,
        error=str(error),
        error_type=type(error).__name__,
        queued_seconds=queued_seconds,
        service_seconds=service_seconds,
    )


__all__ = [
    "PATH_BATCHED",
    "PATH_CACHE",
    "PATH_REJECTED",
    "PATH_SERIAL",
    "STATUS_ERROR",
    "STATUS_OK",
    "EstimationRequest",
    "EstimationResponse",
    "error_response",
    "ok_response",
]
