"""The in-process estimation service: queue → micro-batcher → lanes.

:class:`EstimationService` is the request-serving surface the ROADMAP's
"heavy traffic" north star calls for, built entirely out of layers the
library already has:

* the **lane engine** (:func:`repro.core.em_ext._batch_lane_outcomes`)
  amortises compatible EM-Ext requests into one stacked tensor pass —
  each lane's answer is bit-for-bit the direct ``fit``;
* the **supervision layer** (PR 7) provides admission control: a
  per-algorithm :class:`~repro.resilience.supervisor.CircuitBreaker`
  refuses requests for algorithms that keep failing, per-request
  :class:`~repro.resilience.supervisor.Deadline` budgets reject
  requests that went stale in the queue, and an optional drain budget
  bounds one drain's wall clock;
* the **observability layer** (PR 8) gets a ``serve.batch.drain`` span
  per drain, a ``serve.request`` span per request, a queue-depth
  gauge, a batch-occupancy histogram and cache hit-rate counters — all
  no-ops unless a session is active.

Contract: every response is *path-transparent* — batched, serial and
cached answers are bit-for-bit what ``EstimationRequest``'s direct fit
would return.  The one opt-in deviation is ``warm_start=True``, where
the response equals a direct fit *with the warm initial parameters*
(service history chooses the starting point; see DESIGN notes in
``docs/ARCHITECTURE.md``).

Timeout semantics are deliberately simple: a request's deadline is
checked once, when the drain picks it up.  A request that expired in
the queue is answered with ``DeadlineExceeded`` without being fitted
(and without poisoning its algorithm's breaker); one that made the cut
runs to completion.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import observability
from repro.baselines import ALGORITHM_REGISTRY, make_fact_finder
from repro.core.em_ext import EMExtEstimator, _batch_lane_outcomes
from repro.core.result import FactFindingResult
from repro.resilience.supervisor import (
    BreakerConfig,
    CircuitBreaker,
    Deadline,
)
from repro.serve.batcher import (
    BATCHABLE_ALGORITHM,
    PendingRequest,
    plan_batches,
)
from repro.serve.fingerprint import (
    FingerprintCache,
    problem_fingerprint,
    request_fingerprint,
)
from repro.serve.request import (
    PATH_BATCHED,
    PATH_CACHE,
    PATH_REJECTED,
    PATH_SERIAL,
    EstimationRequest,
    EstimationResponse,
    error_response,
    ok_response,
)
from repro.utils.errors import (
    DeadlineExceeded,
    ServiceOverloaded,
    ValidationError,
)

#: EM-family baselines whose constructors accept ``seed`` (and, for the
#: masked independence pair, ``smoothing``).
_SEEDED_SMOOTHED_ALGORITHMS = ("em", "em-social")
_SEEDED_ALGORITHMS = ("em-pooled",)


@dataclass(frozen=True)
class ServiceConfig:
    """Policy knobs of an :class:`EstimationService`.

    Attributes
    ----------
    max_batch_size:
        Lane budget per micro-batch; larger compatibility groups are
        chunked.
    max_queue_depth:
        Pending requests admitted before :meth:`EstimationService.submit`
        raises :class:`~repro.utils.errors.ServiceOverloaded`.
    default_timeout_seconds:
        Per-request deadline applied when a request does not carry its
        own ``timeout_seconds`` (``None`` = no default).
    drain_budget_seconds:
        Optional wall budget for one :meth:`EstimationService.drain`;
        work that does not fit is answered with ``DeadlineExceeded``
        errors instead of running long.
    breaker:
        Trip/recovery policy of the per-algorithm circuit breakers.
    result_cache_slots:
        LRU capacity of the exact-replay result cache (``0`` disables).
        Cached payloads are shared objects — treat results as
        read-only, as everywhere else in the library.
    warm_cache_slots:
        LRU capacity of the warm-start parameter cache consulted by
        ``warm_start=True`` requests (``0`` disables).
    """

    max_batch_size: int = 32
    max_queue_depth: int = 256
    default_timeout_seconds: Optional[float] = None
    drain_budget_seconds: Optional[float] = None
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    result_cache_slots: int = 256
    warm_cache_slots: int = 64

    def __post_init__(self) -> None:
        for name in ("max_batch_size", "max_queue_depth"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ValidationError(
                    f"{name} must be a positive integer, got {value!r}"
                )
        for name in ("default_timeout_seconds", "drain_budget_seconds"):
            value = getattr(self, name)
            if value is not None and not value > 0:
                raise ValidationError(
                    f"{name} must be positive or None, got {value!r}"
                )
        for name in ("result_cache_slots", "warm_cache_slots"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise ValidationError(
                    f"{name} must be a non-negative integer, got {value!r}"
                )


class EstimationService:
    """Queue estimation requests and drain them through lane packs.

    Examples
    --------
    >>> from repro.serve import EstimationRequest, EstimationService
    >>> from repro.synthetic import generate_dataset
    >>> service = EstimationService()
    >>> problem = generate_dataset(seed=7).problem.without_truth()
    >>> service.submit(EstimationRequest("req-1", problem, seed=0))
    >>> [r.status for r in service.drain()]
    ['ok']
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self._queue: List[PendingRequest] = []
        self._next_position = 0
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._result_cache = (
            FingerprintCache(
                self.config.result_cache_slots, metric_prefix="serve.cache"
            )
            if self.config.result_cache_slots
            else None
        )
        self._warm_cache = (
            FingerprintCache(
                self.config.warm_cache_slots, metric_prefix="serve.warm"
            )
            if self.config.warm_cache_slots
            else None
        )
        self.n_submitted = 0
        self.n_completed = 0
        self.n_rejected = 0
        self.n_batched = 0
        self.n_serial = 0
        self.n_cache_hits = 0

    # -- admission ---------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Requests waiting for the next drain."""
        return len(self._queue)

    def submit(self, request: EstimationRequest) -> None:
        """Queue one request, or refuse it loudly.

        Raises :class:`~repro.utils.errors.ServiceOverloaded` when the
        queue is at ``max_queue_depth`` — backpressure surfaces at the
        door instead of inflating every queued request's latency — and
        :class:`~repro.utils.errors.ValidationError` for an unknown
        algorithm (that is a usage error, not a runtime fault, so it
        never reaches the algorithm's breaker).
        """
        if request.algorithm not in ALGORITHM_REGISTRY:
            raise ValidationError(
                f"unknown algorithm {request.algorithm!r}; available: "
                f"{sorted(ALGORITHM_REGISTRY)}"
            )
        if len(self._queue) >= self.config.max_queue_depth:
            observability.count("serve.overloaded")
            raise ServiceOverloaded(
                f"queue is full ({len(self._queue)} pending, limit "
                f"{self.config.max_queue_depth}); drain before submitting more",
                queue_depth=len(self._queue),
                max_queue_depth=self.config.max_queue_depth,
            )
        timeout = (
            request.timeout_seconds
            if request.timeout_seconds is not None
            else self.config.default_timeout_seconds
        )
        self._queue.append(
            PendingRequest(
                request=request,
                position=self._next_position,
                submitted_at=time.monotonic(),
                deadline=Deadline.after(timeout) if timeout is not None else None,
            )
        )
        self._next_position += 1
        self.n_submitted += 1
        observability.count("serve.requests")
        observability.set_gauge("serve.queue.depth", len(self._queue))

    # -- draining ----------------------------------------------------------

    def drain(self) -> List[EstimationResponse]:
        """Answer everything queued, in submission order.

        One drain = one ``serve.batch.drain`` span: admission decisions
        (breaker, staleness, cache) resolve per request, survivors are
        packed by the micro-batcher, packs run as stacked lanes and
        leftovers run serially.  Responses come back ordered by
        submission position no matter which path answered them.
        """
        pending, self._queue = self._queue, []
        observability.set_gauge("serve.queue.depth", 0)
        if not pending:
            return []
        budget = (
            Deadline.after(self.config.drain_budget_seconds)
            if self.config.drain_budget_seconds is not None
            else None
        )
        with observability.span("serve.batch.drain", n_pending=len(pending)):
            drain_start = time.monotonic()
            responses: Dict[int, EstimationResponse] = {}
            to_run: List[PendingRequest] = []
            for item in pending:
                response = self._admit(item, drain_start)
                if response is not None:
                    responses[item.position] = response
                else:
                    to_run.append(item)
            packs, serial = plan_batches(
                to_run, max_batch_size=self.config.max_batch_size
            )
            for pack in packs:
                for position, response in self._run_pack(
                    pack, drain_start, budget
                ):
                    responses[position] = response
            for item, reason in serial:
                observability.count("serve.fallbacks")
                observability.count(f"serve.fallbacks.{reason}")
                responses[item.position] = self._run_serial(
                    item, drain_start, budget
                )
        return [responses[item.position] for item in pending]

    def serve(
        self, requests: Sequence[EstimationRequest]
    ) -> List[EstimationResponse]:
        """Submit-and-drain convenience over an arbitrary request list.

        Drains whenever the queue fills, so the list may exceed
        ``max_queue_depth``; responses match the input order.
        """
        responses: List[EstimationResponse] = []
        for request in requests:
            try:
                self.submit(request)
            except ServiceOverloaded:
                responses.extend(self.drain())
                self.submit(request)
        responses.extend(self.drain())
        return responses

    # -- telemetry ---------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """JSON-friendly service counters and breaker states."""
        return {
            "queue_depth": self.queue_depth,
            "n_submitted": self.n_submitted,
            "n_completed": self.n_completed,
            "n_rejected": self.n_rejected,
            "n_batched": self.n_batched,
            "n_serial": self.n_serial,
            "n_cache_hits": self.n_cache_hits,
            "breakers": {
                name: breaker.snapshot()
                for name, breaker in sorted(self._breakers.items())
            },
        }

    # -- internals ---------------------------------------------------------

    def _breaker(self, algorithm: str) -> CircuitBreaker:
        breaker = self._breakers.get(algorithm)
        if breaker is None:
            breaker = CircuitBreaker(self.config.breaker)
            self._breakers[algorithm] = breaker
        return breaker

    def _admit(
        self, item: PendingRequest, drain_start: float
    ) -> Optional[EstimationResponse]:
        """Resolve a request without fitting, if admission can.

        Returns a response for refused (breaker open), stale (deadline
        spent in the queue) and cache-answered requests; ``None`` means
        the request goes on to execution.  Refusals and staleness never
        touch the breaker — the algorithm was not called.
        """
        request = item.request
        queued = max(0.0, drain_start - item.submitted_at)
        breaker = self._breaker(request.algorithm)
        if not breaker.allow():
            with observability.span(
                "serve.request", request_id=request.request_id, path=PATH_REJECTED
            ):
                observability.count("serve.rejected.breaker")
                self.n_rejected += 1
                return error_response(
                    request,
                    breaker.call_refused_error(f"algorithm {request.algorithm!r}"),
                    path=PATH_REJECTED,
                    queued_seconds=queued,
                )
        if item.deadline is not None and item.deadline.expired():
            with observability.span(
                "serve.request", request_id=request.request_id, path=PATH_REJECTED
            ):
                observability.count("serve.rejected.timeout")
                self.n_rejected += 1
                try:
                    item.deadline.check(
                        f"request {request.request_id}", queued_seconds=queued
                    )
                except DeadlineExceeded as error:
                    return error_response(
                        request,
                        error,
                        path=PATH_REJECTED,
                        queued_seconds=queued,
                    )
        if self._result_cache is not None:
            fingerprint = request_fingerprint(request)
            item.extras["fingerprint"] = fingerprint
            if fingerprint is not None:
                cached = self._result_cache.get(fingerprint)
                if cached is not None:
                    with observability.span(
                        "serve.request",
                        request_id=request.request_id,
                        path=PATH_CACHE,
                    ):
                        self.n_cache_hits += 1
                        self.n_completed += 1
                        return ok_response(
                            request,
                            cached,
                            path=PATH_CACHE,
                            queued_seconds=queued,
                        )
        if request.warm_start and self._warm_cache is not None:
            item.warm_parameters = self._warm_cache.get(
                problem_fingerprint(request.problem)
            )
        return None

    def _record_success(
        self, item: PendingRequest, result: FactFindingResult
    ) -> None:
        """Post-fit bookkeeping shared by the batched and serial paths."""
        self._breaker(item.request.algorithm).record_success()
        self.n_completed += 1
        fingerprint = item.extras.get("fingerprint")
        if self._result_cache is not None and fingerprint is not None:
            self._result_cache.put(fingerprint, result)
        parameters = getattr(result, "parameters", None)
        if (
            self._warm_cache is not None
            and item.request.algorithm == BATCHABLE_ALGORITHM
            and parameters is not None
        ):
            self._warm_cache.put(
                problem_fingerprint(item.request.problem), parameters
            )

    def _run_pack(
        self,
        pack: List[PendingRequest],
        drain_start: float,
        budget: Optional[Deadline],
    ) -> List[Tuple[int, EstimationResponse]]:
        """Run one compatibility group as stacked lanes of a tensor pass."""
        observability.observe_value("serve.batch.occupancy", float(len(pack)))
        config = pack[0].request.effective_config
        started = time.monotonic()
        try:
            outcomes = _batch_lane_outcomes(
                [item.request.problem for item in pack],
                [item.request.seed for item in pack],
                config,
                initial_parameters=[item.warm_parameters for item in pack],
                budget=budget,
            )
        except DeadlineExceeded as error:
            # The drain budget cut the whole pack; the algorithm did
            # nothing wrong, so breakers are left alone.
            observability.count("serve.drain_budget_exhausted")
            elapsed = time.monotonic() - started
            return [
                (
                    item.position,
                    error_response(
                        item.request,
                        error,
                        path=PATH_BATCHED,
                        queued_seconds=max(0.0, drain_start - item.submitted_at),
                        service_seconds=elapsed,
                    ),
                )
                for item in pack
            ]
        elapsed = time.monotonic() - started
        self.n_batched += len(pack)
        observability.count("serve.batched", len(pack))
        answered: List[Tuple[int, EstimationResponse]] = []
        for item, (result, _events, error) in zip(pack, outcomes):
            queued = max(0.0, drain_start - item.submitted_at)
            with observability.span(
                "serve.request",
                request_id=item.request.request_id,
                path=PATH_BATCHED,
                lanes=len(pack),
            ):
                if error is not None:
                    self._breaker(item.request.algorithm).record_failure()
                    response = error_response(
                        item.request,
                        error,
                        path=PATH_BATCHED,
                        queued_seconds=queued,
                        service_seconds=elapsed,
                    )
                else:
                    assert result is not None
                    self._record_success(item, result)
                    response = ok_response(
                        item.request,
                        result,
                        path=PATH_BATCHED,
                        queued_seconds=queued,
                        service_seconds=elapsed,
                    )
            answered.append((item.position, response))
        return answered

    def _run_serial(
        self,
        item: PendingRequest,
        drain_start: float,
        budget: Optional[Deadline],
    ) -> EstimationResponse:
        """Fit one request directly — the fallback (and reference) path."""
        request = item.request
        queued = max(0.0, drain_start - item.submitted_at)
        self.n_serial += 1
        with observability.span(
            "serve.request", request_id=request.request_id, path=PATH_SERIAL
        ):
            started = time.monotonic()
            if budget is not None and budget.expired():
                observability.count("serve.drain_budget_exhausted")
                try:
                    budget.check("serve.drain", request_id=request.request_id)
                except DeadlineExceeded as error:
                    return error_response(
                        request,
                        error,
                        path=PATH_SERIAL,
                        queued_seconds=queued,
                    )
            try:
                result = fit_request(
                    request, initial_parameters=item.warm_parameters
                )
            except Exception as error:  # mirrored, not raised: fault isolation
                self._breaker(request.algorithm).record_failure()
                return error_response(
                    request,
                    error,
                    path=PATH_SERIAL,
                    queued_seconds=queued,
                    service_seconds=time.monotonic() - started,
                )
            self._record_success(item, result)
            return ok_response(
                request,
                result,
                path=PATH_SERIAL,
                queued_seconds=queued,
                service_seconds=time.monotonic() - started,
            )


def fit_request(
    request: EstimationRequest, *, initial_parameters=None
) -> FactFindingResult:
    """The direct fit a request stands for — the service's parity oracle.

    This is the exact construction the service's serial path uses and
    the reference every other path must match bit-for-bit; the trace
    replayer's ``--verify`` mode and the serve test-wall both compare
    against it.  ``initial_parameters`` only applies to EM-Ext (the
    warm-start contract).
    """
    name = request.algorithm
    if name == BATCHABLE_ALGORITHM:
        return EMExtEstimator(
            request.effective_config,
            seed=request.seed,
            initial_parameters=initial_parameters,
        ).fit(request.problem)
    if name in _SEEDED_SMOOTHED_ALGORITHMS:
        kwargs = {"seed": request.seed}
        if request.config is not None:
            kwargs["smoothing"] = request.config.smoothing
        return make_fact_finder(name, **kwargs).fit(request.problem)
    if name in _SEEDED_ALGORITHMS:
        return make_fact_finder(name, seed=request.seed).fit(request.problem)
    return make_fact_finder(name).fit(request.problem)


__all__ = [
    "EstimationService",
    "ServiceConfig",
    "fit_request",
]
