"""Content fingerprints and the equality-keyed serving caches.

The kernel layer's :class:`~repro.kernels.tables.ParamsKeyedCache` keys
on object *identity* because θ objects are immutable and fresh every
M-step.  The serving layer faces the opposite situation: two requests
carrying structurally identical problems are different objects, and
identity keying would never hit.  So the service keys on *content*:

* :func:`problem_fingerprint` digests a problem's storage layout,
  shape and matrix bytes — two problems share a fingerprint iff their
  ``SC``/``D`` cells are byte-identical in the same layout;
* :func:`request_fingerprint` extends that with everything else that
  determines a fit's output (algorithm, EM configuration, seed), so a
  fingerprint hit may replay a cached result *bit-for-bit* in place of
  recomputing it.

A request seeded with a live ``numpy.random.Generator`` has no stable
fingerprint (the generator mutates as it is consumed), and a
``warm_start`` request's output depends on service history; both are
excluded from result caching (:func:`request_fingerprint` returns
``None``).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Optional

import numpy as np

from repro.data.protocol import FORMAT_DENSE, Problem
from repro.observability import count
from repro.utils.validation import check_positive_int

_HASH_SEPARATOR = b"\x00repro.serve\x00"


def _digest(parts) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(_HASH_SEPARATOR)
        digest.update(part if isinstance(part, bytes) else str(part).encode())
    return digest.hexdigest()


def problem_fingerprint(problem: Problem) -> str:
    """A stable content digest of a problem's claim and dependency cells.

    The digest covers the storage format, the shape and the matrix
    bytes (dense: the int8 cell arrays; CSR: the index and data arrays
    of both matrices).  Identifiers and truth labels are deliberately
    excluded — they never influence a fit.  Dense and CSR views of the
    same cells fingerprint differently; coerce first when cross-format
    identity matters.
    """
    parts = [problem.format, problem.n_sources, problem.n_assertions]
    if problem.format == FORMAT_DENSE:
        parts.append(np.ascontiguousarray(problem.claims.values).tobytes())
        parts.append(np.ascontiguousarray(problem.dependency.values).tobytes())
    else:
        for matrix in (problem.claims, problem.dependency):
            parts.append(np.ascontiguousarray(matrix.indptr).tobytes())
            parts.append(np.ascontiguousarray(matrix.indices).tobytes())
            parts.append(np.ascontiguousarray(matrix.data).tobytes())
    return _digest(parts)


def _seed_token(seed) -> Optional[str]:
    """Canonical text of a seed, or ``None`` when it has no stable one."""
    if seed is None:
        return "none"
    if isinstance(seed, (int, np.integer)):
        return f"int:{int(seed)}"
    return None


def request_fingerprint(request) -> Optional[str]:
    """Full digest of a request's fit-determining inputs, if it has one.

    Returns ``None`` for requests whose output is not a pure function
    of the digestible inputs: generator-seeded requests (the generator
    is stateful) and ``warm_start`` requests (the starting point comes
    from service history).
    """
    if request.warm_start:
        return None
    seed_token = _seed_token(request.seed)
    if seed_token is None:
        return None
    return _digest(
        [
            problem_fingerprint(request.problem),
            request.algorithm,
            repr(request.effective_config),
            seed_token,
        ]
    )


class FingerprintCache:
    """Equality-keyed LRU cache with hit/miss counters.

    The serving counterpart of the kernels' identity-keyed LRU: keys
    are fingerprint strings, eviction is least-recently-used, and every
    lookup lands on a ``<metric_prefix>.hits`` / ``.misses`` counter so
    the cache's effectiveness shows up in the metrics snapshot
    alongside the kernel caches'.
    """

    def __init__(
        self, n_slots: int = 256, *, metric_prefix: str = "serve.cache"
    ) -> None:
        check_positive_int(n_slots, "n_slots")
        self._n_slots = int(n_slots)
        self._hits_metric = f"{metric_prefix}.hits"
        self._misses_metric = f"{metric_prefix}.misses"
        self._slots: "OrderedDict[str, object]" = OrderedDict()

    def get(self, key: str):
        """The cached value for ``key``, or ``None`` on a miss."""
        value = self._slots.get(key)
        if value is None:
            count(self._misses_metric)
            return None
        self._slots.move_to_end(key)
        count(self._hits_metric)
        return value

    def put(self, key: str, value) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry if full."""
        self._slots[key] = value
        self._slots.move_to_end(key)
        while len(self._slots) > self._n_slots:
            self._slots.popitem(last=False)

    def __len__(self) -> int:
        return len(self._slots)

    def clear(self) -> None:
        self._slots.clear()


__all__ = [
    "FingerprintCache",
    "problem_fingerprint",
    "request_fingerprint",
]
