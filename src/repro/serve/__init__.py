"""``repro.serve``: the adaptive micro-batching estimation service.

The request-serving surface over the library's estimators: queue
:class:`EstimationRequest` objects into an :class:`EstimationService`,
drain them through the adaptive micro-batcher (compatible EM-Ext
requests share one stacked lane pass; everything else falls back to
serial fits), and get :class:`EstimationResponse` payloads that are
bit-for-bit what the direct fits would have returned.  Traces make the
workload reproducible end-to-end: :func:`generate_trace` writes a
seeded request stream, :func:`replay_trace` measures it (and can verify
the parity contract response by response).

See the "Serving" section of ``docs/ARCHITECTURE.md`` for the
queue → micro-batcher → lanes → response walk-through.
"""

from repro.serve.batcher import (
    BATCHABLE_ALGORITHM,
    PendingRequest,
    batch_key,
    plan_batches,
)
from repro.serve.fingerprint import (
    FingerprintCache,
    problem_fingerprint,
    request_fingerprint,
)
from repro.serve.request import (
    PATH_BATCHED,
    PATH_CACHE,
    PATH_REJECTED,
    PATH_SERIAL,
    STATUS_ERROR,
    STATUS_OK,
    EstimationRequest,
    EstimationResponse,
)
from repro.serve.service import EstimationService, ServiceConfig, fit_request
from repro.serve.trace import (
    MODE_BATCHED,
    MODE_SERIAL,
    SERVE_TRACE_SCHEMA,
    ReplayReport,
    generate_trace,
    load_trace,
    replay_trace,
    results_bitwise_equal,
)

__all__ = [
    "BATCHABLE_ALGORITHM",
    "EstimationRequest",
    "EstimationResponse",
    "EstimationService",
    "FingerprintCache",
    "MODE_BATCHED",
    "MODE_SERIAL",
    "PATH_BATCHED",
    "PATH_CACHE",
    "PATH_REJECTED",
    "PATH_SERIAL",
    "PendingRequest",
    "ReplayReport",
    "SERVE_TRACE_SCHEMA",
    "STATUS_ERROR",
    "STATUS_OK",
    "ServiceConfig",
    "batch_key",
    "fit_request",
    "generate_trace",
    "load_trace",
    "plan_batches",
    "problem_fingerprint",
    "replay_trace",
    "request_fingerprint",
    "results_bitwise_equal",
]
