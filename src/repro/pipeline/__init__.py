"""Apollo-style fact-finding pipeline: ingest → cluster → build → rank → grade."""

from repro.pipeline.apollo import ApolloPipeline, ApolloReport, RankedAssertion
from repro.pipeline.build import (
    BuiltProblem,
    build_problem_from_clusters,
    infer_follow_edges,
)
from repro.pipeline.cluster import (
    STOP_TOKENS,
    ClusterResult,
    TokenClusterer,
    jaccard,
    tokenize,
)
from repro.pipeline.grading import GradingReport, SimulatedGrader, grade_top_k
from repro.pipeline.ingest import IngestResult, IngestedTweet, ingest_tweets

__all__ = [
    "ApolloPipeline",
    "ApolloReport",
    "BuiltProblem",
    "ClusterResult",
    "GradingReport",
    "IngestResult",
    "IngestedTweet",
    "RankedAssertion",
    "STOP_TOKENS",
    "SimulatedGrader",
    "TokenClusterer",
    "build_problem_from_clusters",
    "grade_top_k",
    "infer_follow_edges",
    "ingest_tweets",
    "jaccard",
    "tokenize",
]
