"""Ingestion stage of the Apollo-style pipeline.

Takes raw tweets (anything shaped like :class:`repro.datasets.Tweet`),
normalises user ids into a compact ``0..n-1`` range, orders by time,
and hands a clean record stream to the clustering stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.datasets.schema import Tweet
from repro.utils.errors import DataError


@dataclass(frozen=True)
class IngestedTweet:
    """A tweet after ingestion: compact user index, original ids retained."""

    order: int
    tweet_id: int
    user_index: int
    original_user: int
    time: float
    text: str
    retweet_of: Optional[int]


@dataclass
class IngestResult:
    """Output of :func:`ingest_tweets`."""

    tweets: List[IngestedTweet]
    user_ids: List[int]

    @property
    def n_users(self) -> int:
        """Distinct users seen."""
        return len(self.user_ids)

    def user_index(self, original_user: int) -> int:
        """Map an original user id to its compact index."""
        try:
            return self._index[original_user]
        except AttributeError:
            self._index: Dict[int, int] = {
                uid: k for k, uid in enumerate(self.user_ids)
            }
            return self._index[original_user]


def ingest_tweets(tweets: Iterable[Tweet]) -> IngestResult:
    """Normalise and time-order a raw tweet stream.

    Raises :class:`DataError` on duplicate tweet ids or empty text,
    which indicate a broken upstream crawl.
    """
    materialised = sorted(tweets, key=lambda t: (t.time, t.tweet_id))
    seen_ids = set()
    user_ids: List[int] = []
    user_index: Dict[int, int] = {}
    records: List[IngestedTweet] = []
    for order, tweet in enumerate(materialised):
        if tweet.tweet_id in seen_ids:
            raise DataError(f"duplicate tweet id {tweet.tweet_id}")
        seen_ids.add(tweet.tweet_id)
        if not tweet.text or not tweet.text.strip():
            raise DataError(f"tweet {tweet.tweet_id} has empty text")
        if tweet.user not in user_index:
            user_index[tweet.user] = len(user_ids)
            user_ids.append(tweet.user)
        records.append(
            IngestedTweet(
                order=order,
                tweet_id=tweet.tweet_id,
                user_index=user_index[tweet.user],
                original_user=tweet.user,
                time=tweet.time,
                text=tweet.text,
                retweet_of=tweet.retweet_of,
            )
        )
    return IngestResult(tweets=records, user_ids=user_ids)


__all__ = ["IngestResult", "IngestedTweet", "ingest_tweets"]
