"""Matrix construction stage: clustered tweets → sensing problem.

Combines the ingestion and clustering outputs with the follow graph to
produce the ``(SC, D)`` matrices through the shared dependency
extractor.  The retweet relation contributes follow edges on the fly:
if a user retweeted another, the retweeter is treated as following the
original author (the paper's empirical dependency network is built from
exactly such retweet behaviours).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.data.dense import DenseProblem
from repro.data.protocol import FORMATS, FORMAT_DENSE, Problem
from repro.network.dependency import extract_dependency
from repro.network.events import EventLog, Post
from repro.network.graph import FollowGraph
from repro.pipeline.cluster import ClusterResult
from repro.pipeline.ingest import IngestResult
from repro.utils.errors import ValidationError
from repro.utils.validation import check_in_choices


@dataclass
class BuiltProblem:
    """A sensing problem plus the id maps back to raw data."""

    problem: Problem
    user_ids: List[int]
    representatives: List[str]
    log: EventLog
    graph: FollowGraph


def infer_follow_edges(ingest: IngestResult) -> List[Tuple[int, int]]:
    """Derive follower → followee edges from observed retweet behaviour."""
    by_tweet_id = {t.tweet_id: t for t in ingest.tweets}
    edges = []
    for tweet in ingest.tweets:
        if tweet.retweet_of is None:
            continue
        parent = by_tweet_id.get(tweet.retweet_of)
        if parent is None or parent.user_index == tweet.user_index:
            continue
        edges.append((tweet.user_index, parent.user_index))
    return edges


def build_problem_from_clusters(
    ingest: IngestResult,
    clusters: ClusterResult,
    *,
    follow_edges: Optional[Iterable[Tuple[int, int]]] = None,
    policy: str = "direct",
    output_format: str = FORMAT_DENSE,
) -> BuiltProblem:
    """Assemble the sensing problem from pipeline stage outputs.

    ``follow_edges`` uses *compact user indices* (see
    :meth:`IngestResult.user_index`); when omitted, edges are inferred
    from retweet behaviour alone.  ``output_format`` selects the
    storage format of the built problem (``"dense"`` — the historical
    default — or ``"csr"`` for crawl-scale corpora).  The raw user ids
    are attached as ``source_ids`` (``u{id}``), so they survive format
    conversions and serialisation.
    """
    check_in_choices(output_format, "output_format", FORMATS)
    if len(clusters.assignments) != len(ingest.tweets):
        raise ValidationError(
            f"cluster assignments ({len(clusters.assignments)}) do not match "
            f"ingested tweets ({len(ingest.tweets)})"
        )
    known_ids = {tweet.tweet_id for tweet in ingest.tweets}
    posts = [
        Post(
            post_id=tweet.tweet_id,
            source=tweet.user_index,
            assertion=cluster_id,
            time=tweet.time,
            # A retweet whose parent fell outside the ingested window
            # degrades to an original post (the influence edge is gone).
            retweet_of=(
                tweet.retweet_of if tweet.retweet_of in known_ids else None
            ),
            text=tweet.text,
        )
        for tweet, cluster_id in zip(ingest.tweets, clusters.assignments)
    ]
    log = EventLog(posts=posts)
    graph = FollowGraph(ingest.n_users)
    if follow_edges is None:
        follow_edges = infer_follow_edges(ingest)
    for follower, followee in follow_edges:
        if follower != followee and not graph.follows(follower, followee):
            graph.add_follow(follower, followee)
    claims, dependency = extract_dependency(
        log,
        graph,
        n_assertions=clusters.n_clusters,
        policy=policy,
        source_ids=[f"u{user_id}" for user_id in ingest.user_ids],
    )
    problem: Problem = DenseProblem(claims=claims, dependency=dependency)
    if output_format != FORMAT_DENSE:
        problem = problem.csr_view()
    return BuiltProblem(
        problem=problem,
        user_ids=ingest.user_ids,
        representatives=clusters.representatives,
        log=log,
        graph=graph,
    )


__all__ = ["BuiltProblem", "build_problem_from_clusters", "infer_follow_edges"]
