"""Assertion clustering: group tweets that make the same statement.

Apollo's fact-finding front end groups tweets into assertion clusters
before any truth estimation; the binary sensing model then treats each
cluster as one assertion.  This module implements a light-weight,
deterministic token-overlap clusterer:

* normalise text — strip the ``RT @user:`` prefix, lowercase, drop
  punctuation, drop a small stop/filler list;
* greedily assign each tweet to the best existing cluster by Jaccard
  similarity against the cluster's token profile, or open a new cluster
  when no similarity reaches the threshold;
* an inverted token index keeps candidate lookup near-linear.

Retweets short-circuit: a tweet whose ``retweet_of`` parent is already
clustered joins the parent's cluster directly (a retweet *is* the same
assertion by construction).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from repro.pipeline.ingest import IngestedTweet
from repro.utils.errors import ValidationError

_RT_PREFIX = re.compile(r"^rt @\w+:\s*")
_NON_WORD = re.compile(r"[^a-z0-9#' ]+")

#: Tokens carrying no assertion content (includes the simulator's fillers).
STOP_TOKENS: FrozenSet[str] = frozenset(
    {
        "a", "an", "and", "at", "by", "for", "in", "is", "it", "near", "of",
        "on", "say", "says", "that", "the", "this", "to", "was", "with",
        "breaking", "confirmed", "unconfirmed", "just", "heard", "reports",
        "developing", "sources", "claim", "happening", "now",
    }
)


def tokenize(text: str) -> FrozenSet[str]:
    """Normalise tweet text into its content-token set."""
    lowered = text.lower().strip()
    lowered = _RT_PREFIX.sub("", lowered)
    lowered = _NON_WORD.sub(" ", lowered)
    tokens = {tok for tok in lowered.split() if tok and tok not in STOP_TOKENS}
    return frozenset(tokens)


def jaccard(a: FrozenSet[str], b: FrozenSet[str]) -> float:
    """Jaccard similarity of two token sets (0 when either is empty)."""
    if not a or not b:
        return 0.0
    intersection = len(a & b)
    if intersection == 0:
        return 0.0
    return intersection / (len(a) + len(b) - intersection)


@dataclass
class ClusterResult:
    """Output of :class:`TokenClusterer`.

    ``assignments[i]`` is the cluster id of the i-th input tweet;
    ``representatives`` holds the first (earliest) tweet text of each
    cluster, which Apollo uses as the assertion's display form.
    """

    assignments: List[int]
    representatives: List[str]
    token_profiles: List[Set[str]] = field(default_factory=list)

    @property
    def n_clusters(self) -> int:
        """Number of assertion clusters discovered."""
        return len(self.representatives)


class TokenClusterer:
    """Greedy token-overlap clusterer with an inverted index."""

    def __init__(self, threshold: float = 0.65):
        if not 0.0 < threshold <= 1.0:
            raise ValidationError(f"threshold must be in (0, 1], got {threshold}")
        self.threshold = threshold

    def cluster(self, tweets: Sequence[IngestedTweet]) -> ClusterResult:
        """Assign every tweet to an assertion cluster."""
        assignments: List[int] = []
        representatives: List[str] = []
        profiles: List[Set[str]] = []
        token_index: Dict[str, Set[int]] = {}
        by_tweet_id: Dict[int, int] = {}

        for tweet in tweets:
            cluster_id = self._retweet_cluster(tweet, by_tweet_id)
            if cluster_id is None:
                tokens = tokenize(tweet.text)
                cluster_id = self._best_cluster(tokens, profiles, token_index)
                if cluster_id is None:
                    cluster_id = len(representatives)
                    representatives.append(tweet.text)
                    profiles.append(set(tokens))
                    for token in tokens:
                        token_index.setdefault(token, set()).add(cluster_id)
                else:
                    # Refine the profile toward the cluster consensus.
                    profile = profiles[cluster_id]
                    new_tokens = tokens - profile
                    profile.update(new_tokens)
                    for token in new_tokens:
                        token_index.setdefault(token, set()).add(cluster_id)
            assignments.append(cluster_id)
            by_tweet_id[tweet.tweet_id] = cluster_id
        return ClusterResult(
            assignments=assignments,
            representatives=representatives,
            token_profiles=profiles,
        )

    @staticmethod
    def _retweet_cluster(
        tweet: IngestedTweet, by_tweet_id: Dict[int, int]
    ) -> Optional[int]:
        if tweet.retweet_of is None:
            return None
        return by_tweet_id.get(tweet.retweet_of)

    def _best_cluster(
        self,
        tokens: FrozenSet[str],
        profiles: List[Set[str]],
        token_index: Dict[str, Set[int]],
    ) -> Optional[int]:
        candidates: Set[int] = set()
        for token in tokens:
            candidates |= token_index.get(token, set())
        best_id = None
        best_score = self.threshold
        for cluster_id in candidates:
            score = jaccard(tokens, frozenset(profiles[cluster_id]))
            if score > best_score or (score == best_score and best_id is None):
                best_id = cluster_id
                best_score = score
        return best_id


__all__ = ["ClusterResult", "STOP_TOKENS", "TokenClusterer", "jaccard", "tokenize"]
