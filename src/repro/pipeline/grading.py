"""The Section V-C grading protocol, with simulated graders.

The paper's protocol: collect the top-100 assertions of every
algorithm, merge and anonymise them, have human graders mark each as
True / False / Opinion, then de-anonymise and report per algorithm the
ratio ``#True / (#True + #False + #Opinion)``.

The simulation has real ground truth (DESIGN.md §6), so the
:class:`SimulatedGrader` grades from the dataset's labels; an optional
``noise`` knob flips a fraction of verifiable grades to model imperfect
human research.  The merge/anonymise/de-anonymise choreography is
reproduced faithfully — the grader sees one shuffled pool of assertion
ids with no algorithm attribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

from repro.core.result import FactFindingResult
from repro.datasets.schema import AssertionLabel
from repro.utils.errors import ValidationError
from repro.utils.rng import RandomState, SeedLike
from repro.utils.validation import check_positive_int, check_probability


class SimulatedGrader:
    """Grades assertion ids against ground-truth labels.

    ``noise`` is the probability a verifiable assertion's grade flips
    (True↔False); opinions are always recognised as opinions, matching
    the paper's observation that subjectivity is easy to spot.
    """

    def __init__(
        self,
        labels: Sequence[AssertionLabel],
        *,
        noise: float = 0.0,
        seed: SeedLike = None,
    ):
        self.labels = list(labels)
        self.noise = check_probability(noise, "noise")
        self._rng = RandomState(seed)

    def grade(self, assertion_ids: Sequence[int]) -> Dict[int, AssertionLabel]:
        """Grade a (merged, anonymised) pool of assertion ids."""
        grades: Dict[int, AssertionLabel] = {}
        for assertion_id in assertion_ids:
            if not 0 <= assertion_id < len(self.labels):
                raise ValidationError(
                    f"assertion id {assertion_id} outside the labelled range "
                    f"[0, {len(self.labels)})"
                )
            label = self.labels[assertion_id]
            if label.is_verifiable and self._rng.random() < self.noise:
                label = (
                    AssertionLabel.FALSE
                    if label is AssertionLabel.TRUE
                    else AssertionLabel.TRUE
                )
            grades[assertion_id] = label
        return grades


@dataclass(frozen=True)
class GradingReport:
    """Per-algorithm outcome of one grading round (one Figure 11 group)."""

    algorithm: str
    n_true: int
    n_false: int
    n_opinion: int

    @property
    def n_graded(self) -> int:
        """Total graded assertions for this algorithm."""
        return self.n_true + self.n_false + self.n_opinion

    @property
    def true_ratio(self) -> float:
        """The Figure 11 metric: ``#True / (#True + #False + #Opinion)``."""
        if self.n_graded == 0:
            return 0.0
        return self.n_true / self.n_graded


def grade_top_k(
    results: Mapping[str, FactFindingResult],
    grader: SimulatedGrader,
    *,
    k: int = 100,
    seed: SeedLike = None,
) -> Dict[str, GradingReport]:
    """Run the full Section V-C protocol over algorithm results.

    1. take each algorithm's top-``k`` assertions;
    2. merge into one pool and shuffle (anonymisation — the grader can
       carry no per-algorithm bias because it sees ids only once, in
       random order);
    3. grade the pool;
    4. de-anonymise: score each algorithm from the shared grades.
    """
    check_positive_int(k, "k")
    rng = RandomState(seed)
    top_lists = {
        name: [int(i) for i in result.top_k(k)] for name, result in results.items()
    }
    pool = sorted({i for ids in top_lists.values() for i in ids})
    shuffled = list(pool)
    rng.shuffle(shuffled)
    grades = grader.grade(shuffled)
    reports: Dict[str, GradingReport] = {}
    for name, ids in top_lists.items():
        counts = {label: 0 for label in AssertionLabel}
        for assertion_id in ids:
            counts[grades[assertion_id]] += 1
        reports[name] = GradingReport(
            algorithm=name,
            n_true=counts[AssertionLabel.TRUE],
            n_false=counts[AssertionLabel.FALSE],
            n_opinion=counts[AssertionLabel.OPINION],
        )
    return reports


__all__ = ["GradingReport", "SimulatedGrader", "grade_top_k"]
