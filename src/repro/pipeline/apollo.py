"""End-to-end Apollo-style fact-finding pipeline.

The paper integrates its estimator into the Apollo fact-finding tool;
this module reproduces that integration surface: feed raw tweets (and
optionally a follow network), get back ranked assertions with
representative texts.

Stages: ingest → cluster → build (SC, D) → fact-find → rank.
Every stage is the standalone module it names, so each can be used and
tested in isolation; the pipeline is only the composition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.baselines import make_fact_finder
from repro.core.result import FactFindingResult
from repro.datasets.schema import Tweet
from repro.pipeline.build import BuiltProblem, build_problem_from_clusters
from repro.pipeline.cluster import TokenClusterer
from repro.pipeline.ingest import ingest_tweets
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class RankedAssertion:
    """One row of an Apollo report: an assertion and its credibility."""

    assertion_id: int
    score: float
    decision: int
    representative_text: str
    n_supporters: int


@dataclass
class ApolloReport:
    """The pipeline's output: the built problem plus the ranked output."""

    algorithm: str
    built: BuiltProblem
    result: FactFindingResult
    ranked: List[RankedAssertion]

    def top(self, k: int) -> List[RankedAssertion]:
        """The ``k`` most credible assertions."""
        return self.ranked[:k]


class ApolloPipeline:
    """Configurable fact-finding pipeline over raw tweets.

    Parameters
    ----------
    algorithm:
        Registry name of the fact-finder (default the paper's
        ``"em-ext"``).
    cluster_threshold:
        Jaccard threshold of the assertion clusterer.
    policy:
        Dependency ancestry policy (``"direct"`` or ``"transitive"``).
    seed:
        Seed forwarded to stochastic fact-finders.
    """

    def __init__(
        self,
        algorithm: str = "em-ext",
        *,
        cluster_threshold: float = 0.65,
        policy: str = "direct",
        seed: SeedLike = None,
        **algorithm_kwargs,
    ):
        self.algorithm = algorithm
        self.clusterer = TokenClusterer(threshold=cluster_threshold)
        self.policy = policy
        self._seed = seed
        self._algorithm_kwargs = algorithm_kwargs

    def run(
        self,
        tweets: Iterable[Tweet],
        *,
        follow_edges: Optional[Iterable[Tuple[int, int]]] = None,
    ) -> ApolloReport:
        """Execute the full pipeline on a raw tweet stream.

        ``follow_edges`` uses *original* user ids; when omitted, the
        dependency network is inferred from retweet behaviour, which is
        how the paper builds it.
        """
        ingest = ingest_tweets(tweets)
        clusters = self.clusterer.cluster(ingest.tweets)
        compact_edges = None
        if follow_edges is not None:
            known = set(ingest.user_ids)
            compact_edges = [
                (ingest.user_index(a), ingest.user_index(b))
                for a, b in follow_edges
                if a in known and b in known and a != b
            ]
        built = build_problem_from_clusters(
            ingest, clusters, follow_edges=compact_edges, policy=self.policy
        )
        finder = self._make_finder()
        result = finder.fit(built.problem)
        supporters = built.problem.claims.claims_per_assertion()
        ranked = [
            RankedAssertion(
                assertion_id=int(j),
                score=float(result.scores[j]),
                decision=int(result.decisions[j]),
                representative_text=built.representatives[j],
                n_supporters=int(supporters[j]),
            )
            for j in result.ranking()
        ]
        return ApolloReport(
            algorithm=self.algorithm, built=built, result=result, ranked=ranked
        )

    def _make_finder(self):
        kwargs = dict(self._algorithm_kwargs)
        if self.algorithm in ("em", "em-social", "em-ext"):
            kwargs.setdefault("seed", self._seed)
        return make_fact_finder(self.algorithm, **kwargs)


__all__ = ["ApolloPipeline", "ApolloReport", "RankedAssertion"]
