"""Closed-form analytic bounds on the Bayes risk.

The exact bound (Equation 3) costs :math:`2^n` evaluations and the
Gibbs approximation costs a sampling run.  Two textbook closed forms
bracket the same quantity in microseconds and are exact companions to
the paper's machinery:

* the **Bhattacharyya upper bound**: from
  :math:`\\min(x, y) \\le \\sqrt{xy}`,

  .. math::
      E^{opt}(error) \\le \\sqrt{z (1-z)} \\prod_i
          \\Big( \\sqrt{p_i q_i} + \\sqrt{(1-p_i)(1-q_i)} \\Big)

  where :math:`p_i, q_i` are source *i*'s claim rates given a true /
  false assertion (``a``/``b`` or ``f``/``g`` depending on the cell's
  dependency flag) — the product is the per-column Bhattacharyya
  coefficient of the two class-conditional claim distributions;
* a **lower bound** from :math:`\\min(x,y) \\ge
  \\tfrac12\\,(x+y)(1 - |x-y|/(x+y))` aggregated with the same
  coefficient via the standard inequality
  :math:`E \\ge \\tfrac12 (1 - \\sqrt{1 - 4 z (1-z) \\rho^2})` with ρ the
  Bhattacharyya coefficient.

Both collapse to 0 for perfectly informative sources and to
``min(z, 1-z)`` for useless ones, and they sandwich the exact bound for
every parameter setting (property-tested).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.bounds.exact import _emission_rates, _unique_columns
from repro.core.model import SourceParameters
from repro.data.coerce import as_dependency_array
from repro.utils.errors import ValidationError


def bhattacharyya_coefficient(
    d_column: np.ndarray, params: SourceParameters
) -> float:
    """Bhattacharyya coefficient ρ of the two class-conditional claim
    distributions for one dependency column.

    ρ = 1 means the distributions coincide (useless sources); ρ = 0
    means they are disjoint (perfect discrimination).
    """
    rate_true, rate_false = _emission_rates(d_column, params)
    per_source = np.sqrt(rate_true * rate_false) + np.sqrt(
        (1.0 - rate_true) * (1.0 - rate_false)
    )
    return float(np.prod(per_source))


def bhattacharyya_bounds(
    dependency: np.ndarray, params: SourceParameters
) -> Tuple[float, float]:
    """Closed-form ``(lower, upper)`` bracket of the exact Bayes risk.

    Accepts one column or a full D matrix (averaged over columns, as
    :func:`repro.bounds.exact.exact_bound` does), in any spelling
    :func:`repro.data.as_dependency_array` understands — including a
    whole sensing problem in either storage format.
    """
    dep = as_dependency_array(dependency)
    if dep.ndim == 1:
        columns = dep[None, :]
        weights = np.ones(1)
    elif dep.ndim == 2:
        unique_cols, counts = _unique_columns(dep)
        columns = unique_cols
        weights = counts / dep.shape[1]
    else:
        raise ValidationError(f"dependency must be 1-D or 2-D, got {dep.shape}")
    z = params.z
    prior_product = z * (1.0 - z)
    lower = 0.0
    upper = 0.0
    for column, weight in zip(columns, weights):
        rho = bhattacharyya_coefficient(column, params)
        upper += weight * np.sqrt(prior_product) * rho
        inner = max(0.0, 1.0 - 4.0 * prior_product * rho**2)
        lower += weight * 0.5 * (1.0 - np.sqrt(inner))
    return float(lower), float(min(upper, min(z, 1.0 - z)))


__all__ = ["bhattacharyya_bounds", "bhattacharyya_coefficient"]
