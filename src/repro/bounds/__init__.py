"""Fundamental error bounds (Section III) and related confidence bounds.

* :func:`exact_bound` / :func:`exact_column_bound` — Equation (3) by
  full enumeration;
* :func:`gibbs_bound` / :func:`gibbs_column_bound` — Algorithm 1's
  Gibbs-sampling approximation (Equation 6);
* :func:`bound_cascade` — deadline-aware degradation ladder
  (exact → gibbs → analytic) that always returns a finite bound plus
  a :class:`DegradationReport`;
* :func:`parameter_confidence` — Cramér–Rao style intervals on fitted
  source parameters (related-work extension).
"""

from repro.bounds.analytic import bhattacharyya_bounds, bhattacharyya_coefficient
from repro.bounds.cascade import (
    CASCADE_TIERS,
    CascadeOutcome,
    DegradationReport,
    TierAttempt,
    bound_cascade,
    estimate_exact_seconds,
)
from repro.bounds.cramer_rao import (
    ParameterConfidence,
    fisher_information,
    parameter_confidence,
)
from repro.bounds.exact import (
    MAX_EXACT_SOURCES,
    BoundResult,
    bound_from_pattern_table,
    exact_bound,
    exact_column_bound,
)
from repro.bounds.gibbs import GibbsConfig, gibbs_bound, gibbs_column_bound

__all__ = [
    "BoundResult",
    "CASCADE_TIERS",
    "CascadeOutcome",
    "DegradationReport",
    "GibbsConfig",
    "MAX_EXACT_SOURCES",
    "ParameterConfidence",
    "TierAttempt",
    "bhattacharyya_bounds",
    "bhattacharyya_coefficient",
    "bound_cascade",
    "bound_from_pattern_table",
    "estimate_exact_seconds",
    "exact_bound",
    "exact_column_bound",
    "fisher_information",
    "gibbs_bound",
    "gibbs_column_bound",
    "parameter_confidence",
]
