"""Tractable approximation of the error bound (Section III-B, Algorithm 1).

Exact enumeration of the bound is exponential in the number of sources.
The paper instead samples claim patterns with a Gibbs chain whose
stationary distribution is the marginal

.. math::
    p(SC_j) = P(SC_j | C_j = 1; D, θ)\\, z
            + P(SC_j | C_j = 0; D, θ)\\,(1 - z),

and averages a per-sample error statistic (Equation 6).

Two estimator modes are offered (DESIGN.md §5.1):

* ``"posterior-mean"`` (default) — averages the per-sample posterior
  error ``min(joint_1, joint_0) / (joint_1 + joint_0)``; this is the
  mathematically consistent reading of Equation 6 whose expectation is
  exactly the Bayes risk, because the sample's own probability cancels
  the sampling density.
* ``"ratio"`` — the literal accumulation of Algorithm 1's pseudocode,
  ``Σ min / Σ (joint_1 + joint_0)``.  Kept for fidelity and comparison;
  it is biased (its limit is ``E_p[min]/E_p[p]``, not ``Σ min``).

Implementation note: a problem has one bound per *distinct* dependency
column, so the sampler runs one chain per unique column.  Chains are
advanced by the blocked vectorised sweeps of
:class:`repro.kernels.gibbs.BlockedGibbsChains` — each sweep draws the
latent truth from its exact conditional and then redraws the whole
claim block at once, so a sweep is a handful of ndarray operations with
no Python loop over sources.  All rate clamps, log tables and column
weights are hoisted into :class:`~repro.kernels.gibbs.GibbsTables`,
built once per run.  (The historical per-source scan sampler survives
as :mod:`repro.kernels.reference` for the benchmark harness; the two
kernels target the same marginal and agree within Monte-Carlo error,
but draw different random streams.)

Passing ``parallel`` (a :class:`~repro.parallel.ParallelConfig`)
switches to the *sharded* sampler: each distinct dependency column gets
its own chain with a ``SeedSequence``-spawned child seed, the chains
run independently (possibly in worker processes) and the per-column
bounds are merged by column multiplicity.  Because the shard
decomposition and child seeds depend only on the problem and the master
seed — never on ``n_jobs`` — a sharded run is bit-for-bit identical for
any worker count (the joint default sampler, which advances all chains
under one RNG, remains the byte-stable single-process path).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # deferred to keep the bounds import-light
    from repro.resilience.supervisor import Deadline

from repro import observability
from repro.bounds.exact import BoundResult, _emission_rates, _unique_columns
from repro.core.model import SourceParameters
from repro.data.coerce import as_dependency_array
from repro.kernels.gibbs import RATE_EPS, BlockedGibbsChains, GibbsTables
from repro.parallel.config import ParallelConfig
from repro.parallel.executor import parallel_map
from repro.utils.errors import ValidationError
from repro.utils.rng import RandomState, SeedLike, spawn_rngs
from repro.utils.validation import check_in_choices, check_positive_int

_MODES = ("posterior-mean", "ratio")

#: Re-exported for backwards compatibility; the clamp itself now lives
#: with the kernel (:data:`repro.kernels.gibbs.RATE_EPS`).
_RATE_EPS = RATE_EPS


@dataclass(frozen=True)
class GibbsConfig:
    """Sampler hyper-parameters.

    The chains run at least ``min_sweeps`` and at most ``max_sweeps``
    full sweeps after ``burn_in``; every ``check_interval`` sweeps the
    running aggregate estimate is compared with its previous checkpoint
    and sampling stops once the change falls below ``tolerance``
    (Algorithm 1's "while Err not convergent").

    Field types are validated strictly at construction: the integer
    fields reject booleans (``True`` is a valid Python ``int`` but a
    sweep count of ``True`` is always a caller bug), ``tolerance`` must
    be a real number and ``collect_trace`` an actual bool.
    """

    burn_in: int = 100
    min_sweeps: int = 400
    max_sweeps: int = 20000
    check_interval: int = 200
    tolerance: float = 5e-4
    mode: str = "posterior-mean"
    collect_trace: bool = False

    def __post_init__(self) -> None:
        for name in ("burn_in", "min_sweeps", "max_sweeps", "check_interval"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
                raise ValidationError(
                    f"{name} must be an integer, got {value!r} ({type(value).__name__})"
                )
        for name in ("min_sweeps", "max_sweeps", "check_interval"):
            check_positive_int(getattr(self, name), name)
        if self.burn_in < 0:
            raise ValidationError(f"burn_in must be non-negative, got {self.burn_in}")
        if self.min_sweeps > self.max_sweeps:
            raise ValidationError("min_sweeps must not exceed max_sweeps")
        if isinstance(self.tolerance, bool) or not isinstance(
            self.tolerance, (int, float, np.floating, np.integer)
        ):
            raise ValidationError(
                f"tolerance must be a number, got {self.tolerance!r} "
                f"({type(self.tolerance).__name__})"
            )
        if not self.tolerance > 0:
            raise ValidationError(f"tolerance must be positive, got {self.tolerance}")
        check_in_choices(self.mode, "mode", _MODES)
        if not isinstance(self.collect_trace, bool):
            raise ValidationError(
                f"collect_trace must be a bool, got {self.collect_trace!r}"
            )


def _accumulate_bound(chains, weights: np.ndarray, config: GibbsConfig) -> BoundResult:
    """Advance chains, accumulate Equation (6), stop on convergence.

    ``chains`` is any object with ``sweep()``/``joints()``/``n_chains``
    — the blocked kernel in production, the frozen scan sampler in the
    benchmark harness.  The accumulation (the estimator itself) is
    identical for both.
    """
    for _ in range(config.burn_in):
        chains.sweep()

    k = chains.n_chains
    err_sum = np.zeros(k)  # Σ min/(joint1+joint0) per chain
    fp_sum = np.zeros(k)
    fn_sum = np.zeros(k)
    ratio_min = np.zeros(k)  # literal Algorithm 1 accumulators
    ratio_total = np.zeros(k)
    n_samples = 0
    previous_estimate = None
    trace = [] if config.collect_trace else None

    while n_samples < config.max_sweeps:
        chains.sweep()
        joint_true, joint_false = chains.joints()
        total_mass = joint_true + joint_false
        n_samples += 1
        positive = total_mass > 0
        smaller = np.minimum(joint_true, joint_false)
        contribution = np.where(positive, smaller / np.where(positive, total_mass, 1.0), 0.0)
        err_sum += contribution
        if trace is not None:
            # The per-sweep statistic whose running mean is the bound:
            # weight-averaged posterior error of this sweep's samples.
            trace.append(float(np.sum(weights * contribution)))
        decide_true = joint_true > joint_false
        fp_sum += np.where(decide_true, contribution, 0.0)
        fn_sum += np.where(decide_true, 0.0, contribution)
        ratio_min += smaller
        ratio_total += total_mass
        if n_samples >= config.min_sweeps and n_samples % config.check_interval == 0:
            estimate = _aggregate(
                config.mode, err_sum, ratio_min, ratio_total, n_samples, weights
            )
            if (
                previous_estimate is not None
                and abs(estimate - previous_estimate) < config.tolerance
            ):
                break
            previous_estimate = estimate

    total = _aggregate(config.mode, err_sum, ratio_min, ratio_total, n_samples, weights)
    share = fp_sum + fn_sum
    safe_share = np.where(share > 0, share, 1.0)
    per_chain_total = _per_chain(
        config.mode, err_sum, ratio_min, ratio_total, n_samples
    )
    fp = float(np.sum(weights * per_chain_total * fp_sum / safe_share))
    fn = float(np.sum(weights * per_chain_total * fn_sum / safe_share))
    # Guard against the all-zero-share edge case: split evenly.
    degenerate = share <= 0
    if degenerate.any():
        leftover = float(np.sum(weights[degenerate] * per_chain_total[degenerate]))
        fp += leftover / 2.0
        fn += leftover / 2.0
    return BoundResult(
        total=fp + fn if config.mode == "posterior-mean" else total,
        false_positive=fp if config.mode == "posterior-mean" else total * _safe_frac(fp, fp + fn),
        false_negative=fn if config.mode == "posterior-mean" else total * _safe_frac(fn, fp + fn),
        method="gibbs",
        n_samples=n_samples,
        estimate_trace=tuple(trace) if trace is not None else None,
    )


def _run_sampler(
    tables: GibbsTables,
    weights: np.ndarray,
    config: GibbsConfig,
    rng: np.random.Generator,
    deadline: Optional["Deadline"] = None,
) -> BoundResult:
    """Run the blocked chains for prebuilt tables to convergence."""
    with observability.span(
        "bound.gibbs.sample",
        n_chains=tables.n_chains,
        n_sources=tables.n_sources,
    ):
        start = time.perf_counter() if observability.enabled() else None
        chains = BlockedGibbsChains(tables, rng, deadline=deadline)
        result = _accumulate_bound(chains, weights, config)
        if start is not None:
            elapsed = time.perf_counter() - start
            observability.count("bounds.gibbs.sampler_runs")
            observability.count("bounds.gibbs.samples", result.n_samples or 0)
            if elapsed > 0:
                observability.observe_value(
                    "bounds.gibbs.sweeps_per_second", chains.n_sweeps / elapsed
                )
    return result


def _safe_frac(part: float, whole: float) -> float:
    return part / whole if whole > 0 else 0.5


def _per_chain(
    mode: str,
    err_sum: np.ndarray,
    ratio_min: np.ndarray,
    ratio_total: np.ndarray,
    n_samples: int,
) -> np.ndarray:
    if mode == "posterior-mean":
        return err_sum / max(n_samples, 1)
    with np.errstate(invalid="ignore", divide="ignore"):
        ratio = ratio_min / ratio_total
    return np.where(ratio_total > 0, ratio, 0.0)


def _aggregate(
    mode: str,
    err_sum: np.ndarray,
    ratio_min: np.ndarray,
    ratio_total: np.ndarray,
    n_samples: int,
    weights: np.ndarray,
) -> float:
    return float(
        np.sum(weights * _per_chain(mode, err_sum, ratio_min, ratio_total, n_samples))
    )


def _column_worker(payload):
    """Run one column's chain to convergence (pool entry point).

    The payload carries an already-built single-row
    :class:`~repro.kernels.gibbs.GibbsTables` — clamping and log-taking
    happened once in the parent, not per worker.  The parent's
    ``Deadline`` travels in the payload: its absolute start instant is
    meaningful across processes on one machine, so every shard honours
    the *remaining* budget, not a fresh one.

    With ``collect`` set (the parent had an observability session open)
    the shard runs under its own session and ships its span trees and
    metrics snapshot back for in-order replay — the parent's session is
    not shared with workers.  Returns ``(result, spans, metrics)``.
    """
    tables, config, rng, deadline, collect = payload
    if collect:
        with observability.observe() as session:
            result = _run_sampler(tables, np.ones(1), config, rng, deadline)
        return result, session.export_spans(), session.metrics.snapshot()
    return _run_sampler(tables, np.ones(1), config, rng, deadline), None, None


def merge_column_bounds(
    results: Sequence[BoundResult], weights: np.ndarray
) -> BoundResult:
    """Combine per-column Gibbs bounds by column multiplicity.

    Both estimator modes split each column's total into additive
    FP/FN shares, so the merged bound is the weighted sum of the
    shares.  ``n_samples`` reports the longest chain; per-column
    convergence traces do not concatenate meaningfully and are dropped
    (use the joint sampler for trace diagnostics).
    """
    if len(results) != len(weights):
        raise ValidationError(
            f"{len(results)} column results but {len(weights)} weights"
        )
    fp = float(sum(w * r.false_positive for w, r in zip(weights, results)))
    fn = float(sum(w * r.false_negative for w, r in zip(weights, results)))
    n_samples = max((r.n_samples or 0) for r in results)
    return BoundResult(
        total=fp + fn,
        false_positive=fp,
        false_negative=fn,
        method="gibbs",
        n_samples=n_samples,
    )


def _sharded_bound(
    tables: GibbsTables,
    weights: np.ndarray,
    config: GibbsConfig,
    seed: SeedLike,
    parallel: ParallelConfig,
    deadline: Optional["Deadline"] = None,
) -> BoundResult:
    """One independent chain per distinct column, fanned out and merged."""
    n_columns = tables.n_chains
    rngs = spawn_rngs(seed, n_columns)
    collect = observability.enabled()
    payloads: List[tuple] = [
        (tables.row(index), config, rngs[index], deadline, collect)
        for index in range(n_columns)
    ]
    with observability.span("bound.gibbs.sharded", n_columns=n_columns):
        outcomes = parallel_map(_column_worker, payloads, config=parallel)
        results = []
        for result, spans, metrics in outcomes:
            results.append(result)
            if spans:
                observability.graft(spans)
            observability.merge_metrics(metrics)
    return merge_column_bounds(results, weights)


def gibbs_bound(
    dependency: np.ndarray,
    params: SourceParameters,
    *,
    config: Optional[GibbsConfig] = None,
    seed: SeedLike = None,
    parallel: Optional[ParallelConfig] = None,
    deadline: Optional["Deadline"] = None,
) -> BoundResult:
    """Gibbs-approximated bound for a D matrix (or one column).

    As with :func:`repro.bounds.exact.exact_bound`, identical dependency
    columns share a chain.  By default all chains advance together under
    one RNG; with ``parallel`` each chain runs independently under a
    ``SeedSequence``-spawned child seed (possibly in worker processes),
    which makes the result invariant to ``n_jobs`` — see the module
    docstring.

    ``dependency`` may be a raw array or column, a
    ``DependencyMatrix``, a scipy sparse matrix, or a whole sensing
    problem in either format (its D matrix is used) — see
    :func:`repro.data.as_dependency_array`.

    ``deadline`` (a :class:`repro.resilience.supervisor.Deadline`) is
    checked cooperatively at every sweep; the check never touches the
    random stream, so a run under a never-expiring deadline is
    bit-identical to a run without one.
    """
    config = config or GibbsConfig()
    dep = as_dependency_array(dependency)
    if dep.ndim == 1:
        columns = dep[None, :]
        weights = np.ones(1)
    elif dep.ndim == 2:
        unique_cols, counts = _unique_columns(dep)
        columns = unique_cols
        weights = counts / dep.shape[1]
    else:
        raise ValidationError(f"dependency must be 1-D or 2-D, got {dep.shape}")
    rate_true = np.empty((columns.shape[0], params.n_sources))
    rate_false = np.empty_like(rate_true)
    for index, column in enumerate(columns):
        rate_true[index], rate_false[index] = _emission_rates(column, params)
    tables = GibbsTables.build(rate_true, rate_false, params.z)
    if parallel is not None:
        return _sharded_bound(tables, weights, config, seed, parallel, deadline)
    return _run_sampler(tables, weights, config, RandomState(seed), deadline)


def gibbs_column_bound(
    d_column: np.ndarray,
    params: SourceParameters,
    *,
    config: Optional[GibbsConfig] = None,
    seed: SeedLike = None,
    deadline: Optional["Deadline"] = None,
) -> BoundResult:
    """Approximate the bound for a single dependency column."""
    column = np.asarray(d_column)
    if column.ndim != 1:
        raise ValidationError(f"d_column must be 1-D, got shape {column.shape}")
    return gibbs_bound(column, params, config=config, seed=seed, deadline=deadline)


__all__ = [
    "GibbsConfig",
    "gibbs_bound",
    "gibbs_column_bound",
    "merge_column_bounds",
]
