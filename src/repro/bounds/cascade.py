"""Graceful degradation ladder over the three bound evaluators.

The library knows three ways to evaluate the fundamental error bound,
spanning a huge cost spectrum:

========  =======================================  ==================
tier      evaluator                                cost
========  =======================================  ==================
exact     :func:`repro.bounds.exact.exact_bound`   ``O(2^n · K)``
gibbs     :func:`repro.bounds.gibbs.gibbs_bound`   sampling run
analytic  :func:`~repro.bounds.analytic.
          bhattacharyya_bounds` (upper bracket)    closed form
========  =======================================  ==================

:func:`bound_cascade` picks the best tier a
:class:`~repro.resilience.supervisor.Deadline` can afford and falls
*down* the ladder when a tier blows its budget
(:class:`~repro.utils.errors.DeadlineExceeded` /
:class:`~repro.utils.errors.MemoryBudgetError`) or fails outright —
the caller always gets a finite bound plus a truthful
:class:`DegradationReport` saying which tier actually ran and why the
better ones did not.

Two properties the chaos suite pins down:

* **transparent when unconstrained** — with no deadline and no faults
  the cascade calls the top tier verbatim (same arguments, same code
  path), so its bound is bit-for-bit the tier's own output;
* **always answers** — the analytic floor sanitises non-finite inputs
  and, as a last resort, returns the prior bound ``min(z, 1-z)``
  (the Bayes risk of ignoring the sources entirely), which is finite
  for every parameter setting the library can construct.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro import observability
from repro.bounds.analytic import bhattacharyya_bounds
from repro.bounds.exact import (
    MAX_EXACT_SOURCES,
    BoundResult,
    _unique_columns,
    exact_bound,
)
from repro.bounds.gibbs import GibbsConfig, gibbs_bound
from repro.core.model import SourceParameters
from repro.data.coerce import as_dependency_array
from repro.kernels.enumeration import table_bytes_estimate
from repro.resilience.supervisor import Deadline
from repro.utils.errors import (
    DeadlineExceeded,
    MemoryBudgetError,
    ValidationError,
)
from repro.utils.rng import SeedLike

#: Ladder order, best tier first.
CASCADE_TIERS = ("exact", "gibbs", "analytic")

#: Conservative Gray-code throughput (pattern·column evaluations per
#: second) used to predict whether the exact tier fits the remaining
#: wall budget.  Deliberately pessimistic — a wrong "too slow" costs
#: accuracy, a wrong "fast enough" costs the whole budget before the
#: cooperative check can fire.
EXACT_PATTERNS_PER_SECOND = 2e6

#: Rate clamp for the sanitised analytic floor.
_ANALYTIC_EPS = 1e-9


def estimate_exact_seconds(n_sources: int, n_columns: int) -> float:
    """Predicted wall cost of the exact tier's ``O(2^n · K)`` sweep."""
    return (float(2**n_sources) * max(n_columns, 1)) / EXACT_PATTERNS_PER_SECOND


@dataclass(frozen=True)
class TierAttempt:
    """What happened to one tier of the cascade.

    ``status`` is ``"ok"`` (this tier produced the bound),
    ``"skipped"`` (the cost model ruled it out before it ran) or
    ``"failed"`` (it started and blew its budget or raised).
    ``reason`` is the human-readable why; ``elapsed_seconds`` is the
    wall time the attempt consumed (0 for skips).
    """

    tier: str
    status: str
    reason: str = ""
    elapsed_seconds: float = 0.0


@dataclass(frozen=True)
class DegradationReport:
    """Truthful record of which cascade tier ran and why.

    Attributes
    ----------
    requested:
        The tier the cascade aimed for (the best tier the problem size
        admits — ``"exact"`` up to :data:`MAX_EXACT_SOURCES` sources,
        ``"gibbs"`` beyond).
    tier:
        The tier that actually produced the returned bound.
    degraded:
        ``True`` when ``tier != requested`` — the caller received a
        looser bound than it asked for.
    attempts:
        One :class:`TierAttempt` per tier considered, ladder order.
    """

    requested: str
    tier: str
    attempts: Tuple[TierAttempt, ...] = field(default_factory=tuple)

    @property
    def degraded(self) -> bool:
        return self.tier != self.requested

    def summary(self) -> str:
        """One-line digest for logs and the CLI."""
        parts = [
            f"{a.tier}={a.status}" + (f" ({a.reason})" if a.reason else "")
            for a in self.attempts
        ]
        return f"tier={self.tier} requested={self.requested}: " + "; ".join(parts)


def _record_attempt(attempts: list, attempt: TierAttempt) -> None:
    """Append a tier attempt and mirror it into the metrics registry.

    The ``cascade.attempts.<tier>.<status>`` counters are incremented
    at exactly the points :class:`TierAttempt` records are created, so
    a :class:`DegradationReport` and the registry can never disagree
    (pinned in ``tests/observability/test_ledger_agreement.py``).
    """
    attempts.append(attempt)
    observability.count(f"cascade.attempts.{attempt.tier}.{attempt.status}")


@dataclass(frozen=True)
class CascadeOutcome:
    """The bound the cascade produced plus its degradation report."""

    bound: BoundResult
    report: DegradationReport


def _sanitised_params(params: SourceParameters) -> SourceParameters:
    """Non-finite rates → 0.5 (uninformative), everything clamped."""

    def clean(values: np.ndarray) -> np.ndarray:
        arr = np.asarray(values, dtype=np.float64)
        arr = np.where(np.isfinite(arr), arr, 0.5)
        return np.clip(arr, _ANALYTIC_EPS, 1.0 - _ANALYTIC_EPS)

    z = params.z if np.isfinite(params.z) else 0.5
    z = float(np.clip(z, _ANALYTIC_EPS, 1.0 - _ANALYTIC_EPS))
    return SourceParameters(
        a=clean(params.a), b=clean(params.b), f=clean(params.f),
        g=clean(params.g), z=z,
    )


def _prior_floor(params: SourceParameters) -> BoundResult:
    """``min(z, 1-z)``: the Bayes risk of ignoring the sources."""
    z = params.z if np.isfinite(params.z) else 0.5
    z = float(np.clip(z, 0.0, 1.0))
    total = min(z, 1.0 - z)
    # Deciding by the prior alone errs entirely on the minority side:
    # z < 0.5 means "always say false", so every error is a missed
    # true assertion (a false negative), and vice versa.
    fp = total if z >= 0.5 else 0.0
    return BoundResult(
        total=total,
        false_positive=fp,
        false_negative=total - fp,
        method="analytic",
    )


def analytic_tier(
    dependency,
    params: SourceParameters,
    *,
    deadline: Optional[Deadline] = None,
    config: Optional[GibbsConfig] = None,
    seed: SeedLike = None,
) -> BoundResult:
    """The cascade's closed-form floor — never raises, always finite.

    Evaluates the Bhattacharyya upper bracket on a sanitised copy of
    the problem (non-finite dependency cells → independent, non-finite
    rates → uninformative 0.5) and falls back to the prior bound
    ``min(z, 1-z)`` when even that fails.  The FP/FN split of the
    bracket is not identified by the closed form, so it is divided
    evenly — the *total* is the quantity the bracket bounds.
    """
    floor = _prior_floor(params)
    try:
        dep = np.asarray(as_dependency_array(dependency), dtype=np.float64)
        dep = (np.where(np.isfinite(dep), dep, 0.0) > 0.5).astype(np.float64)
        _, upper = bhattacharyya_bounds(dep, _sanitised_params(params))
        if not np.isfinite(upper):
            return floor
        total = float(min(upper, floor.total))
        return BoundResult(
            total=total,
            false_positive=total / 2.0,
            false_negative=total / 2.0,
            method="analytic",
        )
    except Exception:
        return floor


def _exact_tier(dependency, params, *, deadline, config, seed):
    return exact_bound(dependency, params, deadline=deadline)


def _gibbs_tier(dependency, params, *, deadline, config, seed):
    return gibbs_bound(
        dependency, params, config=config, seed=seed, deadline=deadline
    )


_DEFAULT_RUNNERS: Dict[str, Callable[..., BoundResult]] = {
    "exact": _exact_tier,
    "gibbs": _gibbs_tier,
    "analytic": analytic_tier,
}


def _problem_size(dependency) -> Tuple[Optional[int], Optional[int], str]:
    """``(n_sources, n_unique_columns, coercion_error)`` for the cost model."""
    try:
        dep = as_dependency_array(dependency)
    except Exception as error:
        return None, None, f"{type(error).__name__}: {error}"
    if dep.ndim == 1:
        return int(dep.shape[0]), 1, ""
    if dep.ndim == 2:
        try:
            unique_cols, _ = _unique_columns(dep)
            return int(dep.shape[0]), int(unique_cols.shape[0]), ""
        except Exception:
            return int(dep.shape[0]), int(dep.shape[1]), ""
    return None, None, f"dependency must be 1-D or 2-D, got {dep.shape}"


def bound_cascade(
    dependency,
    params: SourceParameters,
    *,
    deadline: Optional[Deadline] = None,
    config: Optional[GibbsConfig] = None,
    seed: SeedLike = None,
    runners: Optional[Dict[str, Callable[..., BoundResult]]] = None,
) -> CascadeOutcome:
    """Evaluate the bound at the best tier the budget affords.

    Tier selection is two-stage.  A *cost model* first rules tiers out
    without running them: the exact tier is skipped above
    :data:`MAX_EXACT_SOURCES` sources, when its predicted ``2^n · K``
    sweep (at :data:`EXACT_PATTERNS_PER_SECOND`) exceeds the remaining
    wall budget, or when its low-table footprint
    (:func:`~repro.kernels.enumeration.table_bytes_estimate`) exceeds
    the deadline's memory budget.  Surviving tiers then *run* under the
    deadline; one that raises
    :class:`~repro.utils.errors.DeadlineExceeded`,
    :class:`~repro.utils.errors.MemoryBudgetError` or any other error
    is recorded as failed and the cascade falls to the next tier.  The
    analytic floor cannot fail, so the cascade always returns a finite
    bound.

    With no deadline and no faults the selected tier runs verbatim —
    same function, same arguments — so the cascade is bit-for-bit
    transparent (property-tested in ``tests/resilience``).

    ``runners`` overrides individual tier evaluators (chaos tests
    inject faulty tiers this way); unlisted tiers keep their defaults.

    Returns a :class:`CascadeOutcome`; ``outcome.report.summary()`` is
    the one-line story of what happened.
    """
    if deadline is not None and not isinstance(deadline, Deadline):
        raise ValidationError(
            f"deadline must be a Deadline or None, got {type(deadline).__name__}"
        )
    tier_runners = dict(_DEFAULT_RUNNERS)
    if runners:
        unknown = set(runners) - set(CASCADE_TIERS)
        if unknown:
            raise ValidationError(
                f"unknown cascade tiers {sorted(unknown)}; "
                f"choose from {list(CASCADE_TIERS)}"
            )
        tier_runners.update(runners)

    n, k, size_error = _problem_size(dependency)
    requested = (
        "exact"
        if n is not None and n <= MAX_EXACT_SOURCES
        else ("gibbs" if n is not None else "analytic")
    )

    attempts: list = []
    with observability.span("bound.cascade", requested=requested):
        for tier in CASCADE_TIERS:
            skip_reason = _skip_reason(tier, n, k, size_error, deadline)
            if skip_reason:
                _record_attempt(
                    attempts,
                    TierAttempt(tier=tier, status="skipped", reason=skip_reason),
                )
                continue
            started = time.monotonic()
            with observability.span("cascade.tier", tier=tier):
                try:
                    bound = tier_runners[tier](
                        dependency, params, deadline=deadline, config=config, seed=seed
                    )
                except DeadlineExceeded as error:
                    _record_attempt(
                        attempts,
                        TierAttempt(
                            tier=tier,
                            status="failed",
                            reason=f"deadline exceeded in {error.context or tier}",
                            elapsed_seconds=time.monotonic() - started,
                        ),
                    )
                    continue
                except MemoryBudgetError as error:
                    _record_attempt(
                        attempts,
                        TierAttempt(
                            tier=tier,
                            status="failed",
                            reason=f"memory budget: {error}",
                            elapsed_seconds=time.monotonic() - started,
                        ),
                    )
                    continue
                except Exception as error:
                    _record_attempt(
                        attempts,
                        TierAttempt(
                            tier=tier,
                            status="failed",
                            reason=f"{type(error).__name__}: {error}",
                            elapsed_seconds=time.monotonic() - started,
                        ),
                    )
                    continue
            elapsed = time.monotonic() - started
            if not np.isfinite(bound.total):
                _record_attempt(
                    attempts,
                    TierAttempt(
                        tier=tier,
                        status="failed",
                        reason=f"non-finite bound {bound.total!r}",
                        elapsed_seconds=elapsed,
                    ),
                )
                continue
            _record_attempt(
                attempts, TierAttempt(tier=tier, status="ok", elapsed_seconds=elapsed)
            )
            return CascadeOutcome(
                bound=bound,
                report=DegradationReport(
                    requested=requested, tier=tier, attempts=tuple(attempts)
                ),
            )

        # Every tier failed — even the sanitised analytic runner
        # (possible only via an injected runner).  Fall back to the
        # prior floor so the cascade keeps its always-answers contract.
        bound = _prior_floor(params)
        _record_attempt(
            attempts,
            TierAttempt(
                tier="analytic", status="ok", reason="prior floor min(z, 1-z)"
            ),
        )
        return CascadeOutcome(
            bound=bound,
            report=DegradationReport(
                requested=requested, tier="analytic", attempts=tuple(attempts)
            ),
        )


def _skip_reason(
    tier: str,
    n: Optional[int],
    k: Optional[int],
    size_error: str,
    deadline: Optional[Deadline],
) -> str:
    """Why the cost model rules ``tier`` out before running it ('' = run)."""
    if tier == "analytic":
        return ""
    if size_error:
        return f"input coercion failed ({size_error})"
    if deadline is not None and deadline.expired():
        return "no wall budget remaining"
    if tier == "exact":
        assert n is not None and k is not None
        if n > MAX_EXACT_SOURCES:
            return f"{n} sources exceeds MAX_EXACT_SOURCES={MAX_EXACT_SOURCES}"
        if deadline is not None:
            predicted = estimate_exact_seconds(n, k)
            if predicted > deadline.remaining():
                return (
                    f"predicted {predicted:.1f}s exceeds remaining "
                    f"{deadline.remaining():.1f}s budget"
                )
            if deadline.memory_bytes is not None:
                needed = table_bytes_estimate(n, k)
                if needed > deadline.memory_bytes:
                    return (
                        f"low table needs ~{needed / 1e6:.0f} MB but memory "
                        f"budget is {deadline.memory_bytes / 1e6:.0f} MB"
                    )
    return ""


__all__ = [
    "CASCADE_TIERS",
    "CascadeOutcome",
    "DegradationReport",
    "EXACT_PATTERNS_PER_SECOND",
    "TierAttempt",
    "analytic_tier",
    "bound_cascade",
    "estimate_exact_seconds",
]
