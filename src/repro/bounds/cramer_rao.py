"""Cramér–Rao style confidence bounds on estimated source parameters.

A reproduction of the *related-work* machinery the paper cites (Wang et
al., SECON 2012 [17]): rather than bounding assertion
misclassification, these bounds quantify the confidence of the
*parameter* estimates an EM fact-finder produces.

For the dependency-aware model each source parameter is a Bernoulli
rate estimated from its cell partition; treating the E-step posteriors
as soft counts, the observed Fisher information of a rate ``p``
estimated from effective trial mass ``k`` is ``k / (p (1 - p))``, giving
the asymptotic variance ``p (1 - p) / k``.  This is the standard
complete-data information; it slightly understates the variance when
posteriors are soft, so intervals are conservative labels of *at least*
this much uncertainty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.model import SourceParameters
from repro.data.coerce import coerce_problem
from repro.data.protocol import FORMAT_DENSE, Problem
from repro.utils.errors import ValidationError

#: Two-sided normal quantiles for common confidence levels.
_Z_SCORES = {0.90: 1.6448536269514722, 0.95: 1.959963984540054, 0.99: 2.5758293035489004}


@dataclass(frozen=True)
class ParameterConfidence:
    """Per-source standard errors and confidence intervals for θ.

    Every array is ``(n_sources,)``; intervals are clipped to ``[0, 1]``.
    """

    standard_errors: Dict[str, np.ndarray]
    lower: Dict[str, np.ndarray]
    upper: Dict[str, np.ndarray]
    confidence: float

    def interval_width(self, parameter: str) -> np.ndarray:
        """Width of the confidence interval for ``parameter`` per source."""
        if parameter not in self.lower:
            raise ValidationError(
                f"unknown parameter {parameter!r}; expected one of "
                f"{sorted(self.lower)}"
            )
        return self.upper[parameter] - self.lower[parameter]


def fisher_information(
    problem: Problem,
    params: SourceParameters,
    posterior: np.ndarray,
) -> Dict[str, np.ndarray]:
    """Observed (complete-data) Fisher information of each rate parameter.

    The effective trial mass of each parameter is the posterior-weighted
    number of cells in its partition, e.g. for ``a_i`` the mass is
    :math:`\\sum_{j: D_{ij}=0} Z_j`.  Accepts a problem in either
    storage format (CSR input is densified under the memory budget).
    """
    problem = coerce_problem(problem, needs=FORMAT_DENSE)
    posterior = np.asarray(posterior, dtype=np.float64)
    if posterior.shape != (problem.n_assertions,):
        raise ValidationError(
            f"posterior must have shape ({problem.n_assertions},), "
            f"got {posterior.shape}"
        )
    dep = problem.dependency.values.astype(np.float64)
    indep = 1.0 - dep
    z_mass = posterior
    y_mass = 1.0 - posterior
    masses = {
        "a": indep @ z_mass,
        "f": dep @ z_mass,
        "b": indep @ y_mass,
        "g": dep @ y_mass,
    }
    information = {}
    for name, mass in masses.items():
        rate = getattr(params, name)
        variance_unit = np.clip(rate * (1.0 - rate), 1e-12, None)
        information[name] = mass / variance_unit
    return information


def parameter_confidence(
    problem: Problem,
    params: SourceParameters,
    posterior: np.ndarray,
    *,
    confidence: float = 0.95,
) -> ParameterConfidence:
    """Cramér–Rao confidence intervals for the fitted source parameters."""
    if confidence not in _Z_SCORES:
        raise ValidationError(
            f"confidence must be one of {sorted(_Z_SCORES)}, got {confidence}"
        )
    z_score = _Z_SCORES[confidence]
    information = fisher_information(problem, params, posterior)
    standard_errors = {}
    lower = {}
    upper = {}
    for name, info in information.items():
        rate = getattr(params, name)
        with np.errstate(divide="ignore"):
            se = np.where(info > 0, np.sqrt(1.0 / np.clip(info, 1e-300, None)), np.inf)
        standard_errors[name] = se
        lower[name] = np.clip(rate - z_score * se, 0.0, 1.0)
        upper[name] = np.clip(rate + z_score * se, 0.0, 1.0)
    return ParameterConfidence(
        standard_errors=standard_errors,
        lower=lower,
        upper=upper,
        confidence=confidence,
    )


__all__ = ["ParameterConfidence", "fisher_information", "parameter_confidence"]
