"""Exact fundamental error bound (Section III, Equation 3).

The bound is the Bayes risk of the *optimal* estimator that knows the
true parameter set θ and the dependency indicators D: for every one of
the :math:`2^n` possible claim patterns the optimal estimator picks the
truth value with the larger joint probability, and the expected error is
the total probability mass of the smaller joints,

.. math::
    E^{opt}(error) = \\sum_{SC_j \\in A}
        \\min\\{P(SC_j | C_j = 1; D, θ) z,\\;
               P(SC_j | C_j = 0; D, θ) (1 - z)\\}.

The :math:`2^n` sweep runs through the Gray-code split-table kernel of
:mod:`repro.kernels.enumeration` — ``O(2^n · K)`` for ``K`` distinct
dependency columns instead of the historical ``O(2^n · n · K)`` chunked
matrix products — so ``n`` up to the mid-20s is practical (matching the
paper's Figure 3 range of 5–25 sources).  Beyond
:data:`MAX_EXACT_SOURCES` the call is refused — use the Gibbs
approximation in :mod:`repro.bounds.gibbs`.  Degenerate rates (exact
0/1, impossible patterns) take a careful chunked fallback that reasons
about the infinities explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.core.model import SourceParameters
from repro.data.coerce import as_dependency_array
from repro.kernels.dedup import unique_columns
from repro.kernels.enumeration import gray_pattern_masses, pattern_block
from repro.observability import span
from repro.utils.errors import ValidationError

if TYPE_CHECKING:  # deferred to keep the bounds import-light
    from repro.resilience.supervisor import Deadline

#: Refuse exact enumeration above this source count (2^30 patterns).
MAX_EXACT_SOURCES = 30

#: Patterns evaluated per vectorised chunk (degenerate fallback path).
_CHUNK = 1 << 16


@dataclass(frozen=True)
class BoundResult:
    """An error bound with its false-positive / false-negative split.

    Attributes
    ----------
    total:
        The expected misclassification probability of the optimal
        estimator.
    false_positive:
        The portion of ``total`` caused by *false* assertions being
        judged true.
    false_negative:
        The portion caused by *true* assertions being judged false.
    method:
        ``"exact"`` or ``"gibbs"``.
    n_samples:
        Number of Gibbs samples consumed (``None`` for the exact bound).
    estimate_trace:
        Per-sweep error statistic of the Gibbs run (only when the
        sampler was configured with ``collect_trace=True``); feed it to
        :mod:`repro.eval.diagnostics` for ESS/autocorrelation checks.
    """

    total: float
    false_positive: float
    false_negative: float
    method: str
    n_samples: Optional[int] = None
    estimate_trace: Optional[tuple] = None

    def __post_init__(self) -> None:
        recomposed = self.false_positive + self.false_negative
        if not np.isclose(recomposed, self.total, atol=1e-9):
            raise ValidationError(
                "false_positive + false_negative must equal total: "
                f"{self.false_positive} + {self.false_negative} != {self.total}"
            )

    @property
    def optimal_accuracy(self) -> float:
        """``1 - total``: the accuracy ceiling no fact-finder can beat."""
        return 1.0 - self.total


def _emission_rates(
    d_column: np.ndarray, params: SourceParameters
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-source claim rates ``(rate_if_true, rate_if_false)`` for a column."""
    d = np.asarray(d_column, dtype=np.float64)
    if d.ndim != 1:
        raise ValidationError(f"d_column must be 1-D, got shape {d.shape}")
    if d.size != params.n_sources:
        raise ValidationError(
            f"d_column has {d.size} entries but parameters describe "
            f"{params.n_sources} sources"
        )
    if d.size and not np.isin(d, (0, 1)).all():
        raise ValidationError("d_column must contain only 0/1 entries")
    rate_true = d * params.f + (1.0 - d) * params.a
    rate_false = d * params.g + (1.0 - d) * params.b
    return rate_true, rate_false


def _is_degenerate(rate_true: np.ndarray, rate_false: np.ndarray) -> bool:
    """True when any rate sits exactly on 0/1 (impossible patterns exist)."""
    return bool(
        ((rate_true == 0) | (rate_true == 1)).any()
        or ((rate_false == 0) | (rate_false == 1)).any()
    )


def _masses_to_result(fp_mass: float, fn_mass: float) -> BoundResult:
    return BoundResult(
        total=fp_mass + fn_mass,
        false_positive=fp_mass,
        false_negative=fn_mass,
        method="exact",
    )


def exact_column_bound(
    d_column: np.ndarray,
    params: SourceParameters,
    *,
    deadline: Optional["Deadline"] = None,
) -> BoundResult:
    """Exact Bayes-risk bound for a single assertion column.

    Enumerates all :math:`2^n` claim patterns.  Errors where the optimal
    estimator decides "true" contribute to the false-positive share
    (the assertion was actually false), and vice versa; ties are decided
    as "false", matching the strict ``>`` comparison of Algorithm 1.

    ``deadline`` (a :class:`repro.resilience.supervisor.Deadline`) is
    checked cooperatively inside the enumeration; on expiry the raised
    :class:`~repro.utils.errors.DeadlineExceeded` records how many
    patterns were swept.
    """
    rate_true, rate_false = _emission_rates(d_column, params)
    n = rate_true.size
    if n > MAX_EXACT_SOURCES:
        raise ValidationError(
            f"exact bound needs 2^{n} pattern evaluations; refusing n > "
            f"{MAX_EXACT_SOURCES}. Use gibbs_column_bound instead."
        )
    degenerate = _is_degenerate(rate_true, rate_false)
    with span("bound.exact_column", n_sources=n, degenerate=degenerate):
        if degenerate:
            return _degenerate_column_bound(
                rate_true, rate_false, params.z, deadline=deadline
            )
        with np.errstate(divide="ignore"):
            log_z, log_1z = np.log(params.z), np.log1p(-params.z)
        fp_mass, fn_mass = gray_pattern_masses(
            np.log(rate_true)[:, None],
            np.log1p(-rate_true)[:, None],
            np.log(rate_false)[:, None],
            np.log1p(-rate_false)[:, None],
            log_z,
            log_1z,
            deadline=deadline,
        )
        return _masses_to_result(float(fp_mass[0]), float(fn_mass[0]))


def _degenerate_column_bound(
    rate_true: np.ndarray,
    rate_false: np.ndarray,
    z: float,
    *,
    deadline: Optional["Deadline"] = None,
) -> BoundResult:
    """Chunked enumeration handling rates exactly at 0/1.

    Impossible patterns (a claim where the rate is 0, silence where it
    is 1) carry ``-inf`` log joints; the matrix products stay NaN-free
    by masking the infinities out and re-applying them per pattern.
    """
    n = rate_true.size
    with np.errstate(divide="ignore"):
        log_r1, log_1r1 = np.log(rate_true), np.log1p(-rate_true)
        log_r0, log_1r0 = np.log(rate_false), np.log1p(-rate_false)
        log_z, log_1z = np.log(z), np.log1p(-z)

    fp_mass = 0.0
    fn_mass = 0.0
    total_patterns = 1 << n
    for start in range(0, total_patterns, _CHUNK):
        if deadline is not None:
            deadline.check(
                "exact degenerate enumeration",
                patterns_done=start,
                patterns_total=total_patterns,
            )
        stop = min(start + _CHUNK, total_patterns)
        patterns = pattern_block(start, stop, n)
        with np.errstate(invalid="ignore"):
            log_joint_true = (
                patterns @ _finite(log_r1) + (1.0 - patterns) @ _finite(log_1r1)
            )
            log_joint_false = (
                patterns @ _finite(log_r0) + (1.0 - patterns) @ _finite(log_1r0)
            )
        # Re-apply -inf contributions masked out by _finite: a pattern is
        # impossible if it claims where the rate is 0 or stays silent
        # where the rate is 1.
        log_joint_true += _impossible_penalty(patterns, rate_true)
        log_joint_false += _impossible_penalty(patterns, rate_false)
        joint_true = np.exp(log_joint_true + log_z)
        joint_false = np.exp(log_joint_false + log_1z)
        decide_true = joint_true > joint_false
        fp_mass += float(joint_false[decide_true].sum())
        fn_mass += float(joint_true[~decide_true].sum())
    return _masses_to_result(fp_mass, fn_mass)


def _finite(log_values: np.ndarray) -> np.ndarray:
    """Replace -inf with 0 so the matrix product stays NaN-free."""
    return np.where(np.isfinite(log_values), log_values, 0.0)


def _impossible_penalty(patterns: np.ndarray, rates: np.ndarray) -> np.ndarray:
    """-inf for patterns that hit a zero-probability cell, else 0."""
    zero_rate = rates == 0.0
    one_rate = rates == 1.0
    if not zero_rate.any() and not one_rate.any():
        return np.zeros(patterns.shape[0])
    impossible = (patterns[:, zero_rate] == 1).any(axis=1) | (
        patterns[:, one_rate] == 0
    ).any(axis=1)
    return np.where(impossible, -np.inf, 0.0)


def exact_bound(
    dependency: np.ndarray,
    params: SourceParameters,
    *,
    deadline: Optional["Deadline"] = None,
) -> BoundResult:
    """Exact bound averaged over all assertion columns of a D matrix.

    Columns with identical dependency patterns share a bound, so the
    computation groups unique columns first and then evaluates *all*
    unique columns together inside the Gray-code sweep — one wide
    incremental update per pattern instead of one enumeration per
    column, which is what keeps the paper's n = 25 sweeps tractable.

    ``dependency`` may be a raw array or column, a
    ``DependencyMatrix``, a scipy sparse matrix, or a whole sensing
    problem in either format (its D matrix is used) — see
    :func:`repro.data.as_dependency_array`.
    """
    dep = as_dependency_array(dependency)
    if dep.ndim == 1:
        return exact_column_bound(dep, params, deadline=deadline)
    if dep.ndim != 2:
        raise ValidationError(f"dependency must be 1-D or 2-D, got {dep.shape}")
    unique_cols, counts = _unique_columns(dep)
    n = params.n_sources
    if n > MAX_EXACT_SOURCES:
        raise ValidationError(
            f"exact bound needs 2^{n} pattern evaluations; refusing n > "
            f"{MAX_EXACT_SOURCES}. Use gibbs_bound instead."
        )
    k = unique_cols.shape[0]
    with span(
        "bound.exact", n_sources=n, n_columns=int(dep.shape[1]), n_unique=k
    ):
        rate_true = np.empty((n, k))
        rate_false = np.empty((n, k))
        degenerate = False
        for index, column in enumerate(unique_cols):
            rate_true[:, index], rate_false[:, index] = _emission_rates(column, params)
            degenerate = degenerate or _is_degenerate(
                rate_true[:, index], rate_false[:, index]
            )
        if degenerate:
            # Rare corner (rates exactly 0/1): fall back to the careful
            # per-column path that handles impossible patterns explicitly.
            total = fp = fn = 0.0
            m = dep.shape[1]
            for column, count in zip(unique_cols, counts):
                result = exact_column_bound(column, params, deadline=deadline)
                weight = count / m
                total += weight * result.total
                fp += weight * result.false_positive
                fn += weight * result.false_negative
            return BoundResult(
                total=total, false_positive=fp, false_negative=fn, method="exact"
            )

        log_z, log_1z = float(np.log(params.z)), float(np.log1p(-params.z))
        fp_mass, fn_mass = gray_pattern_masses(
            np.log(rate_true),
            np.log1p(-rate_true),
            np.log(rate_false),
            np.log1p(-rate_false),
            log_z,
            log_1z,
            deadline=deadline,
        )
        weights = counts / dep.shape[1]
        fp = float(np.sum(weights * fp_mass))
        fn = float(np.sum(weights * fn_mass))
        return _masses_to_result(fp, fn)


def bound_from_pattern_table(
    p_given_true: np.ndarray,
    p_given_false: np.ndarray,
    z: float = 0.5,
) -> BoundResult:
    """Equation (3) evaluated directly on a per-pattern likelihood table.

    This is the paper's Table I walk-through form: the caller supplies
    :math:`P(SC_j | C_j = 1)` and :math:`P(SC_j | C_j = 0)` for every
    claim pattern (any joint, factorised or not), plus the prior ``z``.
    """
    p_true = np.asarray(p_given_true, dtype=np.float64)
    p_false = np.asarray(p_given_false, dtype=np.float64)
    if p_true.shape != p_false.shape or p_true.ndim != 1:
        raise ValidationError(
            "pattern tables must be 1-D arrays of equal length, got "
            f"{p_true.shape} vs {p_false.shape}"
        )
    for name, table in (("p_given_true", p_true), ("p_given_false", p_false)):
        if table.size and (table.min() < 0 or not np.isclose(table.sum(), 1.0, atol=1e-6)):
            raise ValidationError(f"{name} must be a probability distribution")
    joint_true = p_true * z
    joint_false = p_false * (1.0 - z)
    decide_true = joint_true > joint_false
    fp = float(joint_false[decide_true].sum())
    fn = float(joint_true[~decide_true].sum())
    return BoundResult(
        total=fp + fn, false_positive=fp, false_negative=fn, method="exact"
    )


def _unique_columns(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Unique columns of a 2-D matrix with their multiplicities.

    Thin alias for :func:`repro.kernels.dedup.unique_columns`, kept
    under the historical private name for the other bound modules.
    """
    return unique_columns(matrix)


__all__ = [
    "BoundResult",
    "MAX_EXACT_SOURCES",
    "bound_from_pattern_table",
    "exact_bound",
    "exact_column_bound",
]
