"""Voting: the simplest fact-finder (Section V-C baseline).

Ranks assertions by the raw number of sources that made them — the more
sources repeat a statement, the more it is believed.  This is exactly
the estimator that dependency structure defeats: a cascade of
unverified retweets looks identical to broad independent corroboration.
"""

from __future__ import annotations

from repro.baselines.base import FactFinder, threshold_decisions
from repro.core.result import FactFindingResult
from repro.data.protocol import Problem


class Voting(FactFinder):
    """Score each assertion by its support count."""

    algorithm_name = "voting"

    def fit(self, problem: Problem) -> FactFindingResult:
        """Count supporters per assertion."""
        problem = self.coerce(problem)
        scores = problem.claims.claims_per_assertion().astype(float)
        return FactFindingResult(
            algorithm=self.algorithm_name,
            scores=scores,
            decisions=threshold_decisions(scores),
            extras={"max_support": float(scores.max()) if scores.size else 0.0},
        )


__all__ = ["Voting"]
