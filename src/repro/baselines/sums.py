"""Sums and Average·Log iterative fact-finders (Pasternack & Roth 2010).

Both algorithms alternate between assertion *belief* and source *trust*
scores over the bipartite source-claim graph, in the spirit of
Kleinberg's hubs-and-authorities:

* **Sums** — ``B(c) = Σ_{s claims c} T(s)`` and
  ``T(s) = Σ_{c claimed by s} B(c)``, each normalised by its maximum per
  iteration so the iteration converges to the principal eigenvector
  direction instead of diverging.
* **Average·Log** — a variant that trusts prolific sources more
  carefully: ``T(s) = log(|claims(s)|) · mean_{c claimed by s} B(c)``.
  A source with a single claim gets zero trust (log 1 = 0), which is
  the published behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import FactFinder, threshold_decisions
from repro.core.result import FactFindingResult
from repro.data.protocol import Problem
from repro.utils.errors import ValidationError
from repro.utils.validation import check_positive_int


class _IterativeBipartite(FactFinder):
    """Shared fixed-point loop for Sums-style algorithms."""

    def __init__(self, max_iterations: int = 100, tolerance: float = 1e-8):
        check_positive_int(max_iterations, "max_iterations")
        if not tolerance > 0:
            raise ValidationError(f"tolerance must be positive, got {tolerance}")
        self.max_iterations = max_iterations
        self.tolerance = tolerance

    def _trust_update(self, sc: np.ndarray, belief: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def fit(self, problem: Problem) -> FactFindingResult:
        """Iterate belief/trust to a fixed point and score assertions."""
        problem = self.coerce(problem)
        sc = problem.claims.values.astype(np.float64)
        n, m = sc.shape
        belief = np.ones(m)
        trust = np.ones(n)
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            new_belief = sc.T @ trust
            new_belief = _safe_normalise(new_belief)
            new_trust = self._trust_update(sc, new_belief)
            new_trust = _safe_normalise(new_trust)
            delta = max(
                float(np.max(np.abs(new_belief - belief))) if m else 0.0,
                float(np.max(np.abs(new_trust - trust))) if n else 0.0,
            )
            belief, trust = new_belief, new_trust
            if delta < self.tolerance:
                break
        return FactFindingResult(
            algorithm=self.algorithm_name,
            scores=belief,
            decisions=threshold_decisions(belief),
            extras={"trust": trust, "n_iterations": iterations},
        )


def _safe_normalise(vector: np.ndarray) -> np.ndarray:
    top = float(vector.max()) if vector.size else 0.0
    if top <= 0:
        return np.zeros_like(vector)
    return vector / top


class Sums(_IterativeBipartite):
    """Pasternack & Roth's Sums (hubs-and-authorities) fact-finder."""

    algorithm_name = "sums"

    def _trust_update(self, sc: np.ndarray, belief: np.ndarray) -> np.ndarray:
        return sc @ belief


class AverageLog(_IterativeBipartite):
    """The Average·Log variant: trust = log(claim count) × mean belief."""

    algorithm_name = "average-log"

    def _trust_update(self, sc: np.ndarray, belief: np.ndarray) -> np.ndarray:
        counts = sc.sum(axis=1)
        totals = sc @ belief
        with np.errstate(invalid="ignore", divide="ignore"):
            means = np.where(counts > 0, totals / counts, 0.0)
        weights = np.where(counts > 0, np.log(np.maximum(counts, 1.0)), 0.0)
        return weights * means


__all__ = ["AverageLog", "Sums"]
