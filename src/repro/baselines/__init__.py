"""Baseline fact-finders the paper evaluates against (Section V).

Provides the six baselines plus a registry that also exposes the
paper's own EM-Ext under the common :class:`FactFinder` interface, so
the evaluation harness can iterate over algorithms by name.
"""

from typing import Dict, List, Type

from repro.baselines.base import FactFinder, threshold_decisions
from repro.baselines.em_independent import EMIndependent, EMSocial, IndependentParameters
from repro.baselines.pooled import PooledEMExt
from repro.baselines.sums import AverageLog, Sums
from repro.baselines.truthfinder import TruthFinder
from repro.baselines.voting import Voting
from repro.core.em_ext import EMExtEstimator
from repro.utils.errors import ValidationError

#: Registry of all algorithm classes keyed by ``algorithm_name``.
ALGORITHM_REGISTRY: Dict[str, Type[FactFinder]] = {
    cls.algorithm_name: cls
    for cls in (
        Voting,
        Sums,
        AverageLog,
        TruthFinder,
        EMIndependent,
        EMSocial,
        EMExtEstimator,
        PooledEMExt,
    )
}

#: The seven algorithms of the empirical evaluation (Figure 11), in the
#: order the paper lists them.
EMPIRICAL_ALGORITHMS: List[str] = [
    "voting",
    "sums",
    "average-log",
    "truthfinder",
    "em",
    "em-social",
    "em-ext",
]

#: The four algorithms of the synthetic estimator simulations (Figures
#: 7–10); "optimal" is the transformed error bound, handled separately
#: by the harness.
SIMULATION_ALGORITHMS: List[str] = ["em", "em-social", "em-ext"]


def make_fact_finder(name: str, **kwargs) -> FactFinder:
    """Instantiate a registered algorithm by name.

    Keyword arguments are forwarded to the algorithm constructor (e.g.
    ``seed=...`` for the EM family).
    """
    if name not in ALGORITHM_REGISTRY:
        raise ValidationError(
            f"unknown algorithm {name!r}; available: {sorted(ALGORITHM_REGISTRY)}"
        )
    return ALGORITHM_REGISTRY[name](**kwargs)


__all__ = [
    "ALGORITHM_REGISTRY",
    "AverageLog",
    "EMIndependent",
    "EMPIRICAL_ALGORITHMS",
    "EMSocial",
    "FactFinder",
    "IndependentParameters",
    "PooledEMExt",
    "SIMULATION_ALGORITHMS",
    "Sums",
    "TruthFinder",
    "Voting",
    "make_fact_finder",
    "threshold_decisions",
]
