"""Independence-assuming EM fact-finders: EM (IPSN 2012) and EM-Social (IPSN 2014).

Both baselines model every source as a two-parameter binary channel
(claim rate given true, claim rate given false) and assume claims are
conditionally independent given the assertion truth:

* **EM** (Wang et al., IPSN 2012) runs on the raw source-claim matrix —
  dependency indicators are ignored entirely.  Under cascades this
  over-counts repeated information, which is why its false-positive
  rate grows with the number of sources (paper Figure 7).
* **EM-Social** (Wang et al., IPSN 2014) *removes* dependent claims —
  cells with ``SC = 1`` and ``D = 1`` are masked out of the likelihood,
  as if the repeating source had said nothing.  This avoids the
  over-counting but throws away whatever information the repeats carry,
  which is the gap EM-Ext closes.

Both are implemented on one masked-EM engine; EM is the special case of
an all-ones mask.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.baselines.base import FactFinder
from repro.core.matrix import SensingProblem
from repro.core.model import DEFAULT_EPSILON
from repro.core.result import EstimationResult
from repro.core.model import ParameterTrace
from repro.utils.errors import ValidationError
from repro.utils.rng import RandomState, SeedLike, spawn_rngs
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class IndependentParameters:
    """θ of the two-parameter independence model: per-source (t, b) and prior z."""

    t: np.ndarray
    b: np.ndarray
    z: float

    def clamp(self, epsilon: float = DEFAULT_EPSILON) -> "IndependentParameters":
        """Push every probability into ``[ε, 1-ε]``."""
        return IndependentParameters(
            t=np.clip(self.t, epsilon, 1.0 - epsilon),
            b=np.clip(self.b, epsilon, 1.0 - epsilon),
            z=float(np.clip(self.z, epsilon, 1.0 - epsilon)),
        )

    def max_difference(self, other: "IndependentParameters") -> float:
        """Largest absolute parameter change (convergence criterion)."""
        deltas = [abs(self.z - other.z)]
        if self.t.size:
            deltas.append(float(np.max(np.abs(self.t - other.t))))
            deltas.append(float(np.max(np.abs(self.b - other.b))))
        return max(deltas)


class _MaskedIndependentEM(FactFinder):
    """EM on the independence model with an optional cell mask.

    Masked cells contribute to neither the likelihood nor the M-step
    counts — they are treated as *missing*, not as non-claims.
    """

    def __init__(
        self,
        max_iterations: int = 200,
        tolerance: float = 1e-6,
        epsilon: float = DEFAULT_EPSILON,
        n_restarts: int = 1,
        init_strategy: str = "support",
        smoothing: float = 0.0,
        seed: SeedLike = None,
    ):
        check_positive_int(max_iterations, "max_iterations")
        check_positive_int(n_restarts, "n_restarts")
        if not tolerance > 0:
            raise ValidationError(f"tolerance must be positive, got {tolerance}")
        if not 0 < epsilon < 0.5:
            raise ValidationError(f"epsilon must be in (0, 0.5), got {epsilon}")
        if init_strategy not in ("support", "random"):
            raise ValidationError(
                f"init_strategy must be 'support' or 'random', got {init_strategy!r}"
            )
        if smoothing < 0:
            raise ValidationError(f"smoothing must be non-negative, got {smoothing}")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.epsilon = epsilon
        self.n_restarts = n_restarts
        self.init_strategy = init_strategy
        self.smoothing = smoothing
        self._seed = seed

    # Subclasses define which cells participate.
    def _mask(self, problem: SensingProblem) -> np.ndarray:
        raise NotImplementedError

    def fit(self, problem: SensingProblem) -> EstimationResult:
        """Run (multi-restart) masked EM and return the best fixed point."""
        sc = problem.claims.values.astype(np.float64)
        mask = self._mask(problem).astype(np.float64)
        if mask.shape != sc.shape:
            raise ValidationError(
                f"mask shape {mask.shape} does not match claims {sc.shape}"
            )
        best: Optional[EstimationResult] = None
        rngs = spawn_rngs(RandomState(self._seed), self.n_restarts)
        for index, rng in enumerate(rngs):
            if index == 0 and self.init_strategy == "support":
                init = self._support_initialisation(sc, mask)
            else:
                init = IndependentParameters(
                    t=rng.uniform(0.4, 0.8, size=sc.shape[0]),
                    b=rng.uniform(0.05, 0.35, size=sc.shape[0]),
                    z=float(rng.uniform(0.3, 0.7)),
                ).clamp(self.epsilon)
            candidate = self._run_once(sc, mask, init)
            if best is None or candidate.log_likelihood > best.log_likelihood:
                best = candidate
        assert best is not None
        return best

    def _support_initialisation(
        self, sc: np.ndarray, mask: np.ndarray
    ) -> IndependentParameters:
        """Vote-count warm start (mirrors EM-Ext's support initialisation)."""
        support = (sc * mask).sum(axis=0)
        top = float(support.max()) if support.size else 0.0
        if top > 0:
            posterior = 0.2 + 0.6 * support / top
        else:
            posterior = np.full(sc.shape[1], 0.5)
        neutral = IndependentParameters(
            t=np.full(sc.shape[0], 0.55), b=np.full(sc.shape[0], 0.45), z=0.5
        )
        return self._m_step(sc, mask, posterior, neutral)

    def _run_once(
        self, sc: np.ndarray, mask: np.ndarray, params: IndependentParameters
    ) -> EstimationResult:
        trace = ParameterTrace()
        converged = False
        posterior = self._posterior(sc, mask, params)
        for _ in range(self.max_iterations):
            new_params = self._m_step(sc, mask, posterior, params)
            delta = new_params.max_difference(params)
            params = new_params
            posterior = self._posterior(sc, mask, params)
            trace.record(self._log_likelihood(sc, mask, params), delta)
            if delta < self.tolerance:
                converged = True
                break
        decisions = (posterior >= 0.5).astype(np.int8)
        return EstimationResult(
            algorithm=self.algorithm_name,
            scores=posterior,
            decisions=decisions,
            parameters=None,
            log_likelihood=(
                trace.log_likelihoods[-1]
                if trace.n_iterations
                else self._log_likelihood(sc, mask, params)
            ),
            converged=converged,
            n_iterations=trace.n_iterations,
            trace=trace,
            extras={
                "t": params.t,
                "b": params.b,
                "z": params.z,
            },
        )

    @staticmethod
    def _column_log_likelihoods(
        sc: np.ndarray, mask: np.ndarray, params: IndependentParameters
    ):
        log_t, log_1t = np.log(params.t), np.log1p(-params.t)
        log_b, log_1b = np.log(params.b), np.log1p(-params.b)
        log_true = mask * (sc * log_t[:, None] + (1 - sc) * log_1t[:, None])
        log_false = mask * (sc * log_b[:, None] + (1 - sc) * log_1b[:, None])
        return log_true.sum(axis=0), log_false.sum(axis=0)

    def _posterior(
        self, sc: np.ndarray, mask: np.ndarray, params: IndependentParameters
    ) -> np.ndarray:
        log_true, log_false = self._column_log_likelihoods(sc, mask, params)
        joint_true = log_true + np.log(params.z)
        joint_false = log_false + np.log1p(-params.z)
        top = np.maximum(joint_true, joint_false)
        num = np.exp(joint_true - top)
        return num / (num + np.exp(joint_false - top))

    def _log_likelihood(
        self, sc: np.ndarray, mask: np.ndarray, params: IndependentParameters
    ) -> float:
        log_true, log_false = self._column_log_likelihoods(sc, mask, params)
        joint_true = log_true + np.log(params.z)
        joint_false = log_false + np.log1p(-params.z)
        top = np.maximum(joint_true, joint_false)
        return float(
            (top + np.log(np.exp(joint_true - top) + np.exp(joint_false - top))).sum()
        )

    def _m_step(
        self,
        sc: np.ndarray,
        mask: np.ndarray,
        posterior: np.ndarray,
        previous: IndependentParameters,
    ) -> IndependentParameters:
        z_post = posterior
        y_post = 1.0 - posterior

        def _ratio(weight: np.ndarray, fallback: np.ndarray) -> np.ndarray:
            numerator = (sc * mask) @ weight
            denominator = mask @ weight
            # Hierarchical shrinkage toward the pooled rate (see
            # EMConfig.smoothing in repro.core.em_ext).
            pooled_den = float(denominator.sum())
            pooled = float(numerator.sum()) / pooled_den if pooled_den > 0 else 0.5
            numerator = numerator + self.smoothing * pooled
            denominator = denominator + self.smoothing
            with np.errstate(invalid="ignore", divide="ignore"):
                ratio = numerator / denominator
            return np.where(denominator > 0, ratio, fallback)

        t = _ratio(z_post, previous.t)
        b = _ratio(y_post, previous.b)
        z = float(z_post.mean()) if z_post.size else previous.z
        return IndependentParameters(t=t, b=b, z=z).clamp(self.epsilon)


class EMIndependent(_MaskedIndependentEM):
    """EM (IPSN 2012): ignore dependencies, use every cell."""

    algorithm_name = "em"

    def _mask(self, problem: SensingProblem) -> np.ndarray:
        return np.ones(problem.claims.shape)


class EMSocial(_MaskedIndependentEM):
    """EM-Social (IPSN 2014): ignore dependent cells entirely.

    "Claims repeated by dependent sources do not offer value": every
    cell flagged dependent — the repeated claim *and* the silence where
    the source saw the assertion from an ancestor — is excluded from the
    likelihood.  Excluding only the claims while keeping dependent
    silences as independent evidence would bias the estimator toward
    "false" (the silences say "my reliable source didn't repeat it"),
    which is information the IPSN 2014 model explicitly refuses to use.
    """

    algorithm_name = "em-social"

    def _mask(self, problem: SensingProblem) -> np.ndarray:
        return 1.0 - problem.dependency.values.astype(np.float64)


__all__ = ["EMIndependent", "EMSocial", "IndependentParameters"]
