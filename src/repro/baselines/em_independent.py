"""Independence-assuming EM fact-finders: EM (IPSN 2012) and EM-Social (IPSN 2014).

Both baselines model every source as a two-parameter binary channel
(claim rate given true, claim rate given false) and assume claims are
conditionally independent given the assertion truth:

* **EM** (Wang et al., IPSN 2012) runs on the raw source-claim matrix —
  dependency indicators are ignored entirely.  Under cascades this
  over-counts repeated information, which is why its false-positive
  rate grows with the number of sources (paper Figure 7).
* **EM-Social** (Wang et al., IPSN 2014) *removes* dependent claims —
  cells with ``SC = 1`` and ``D = 1`` are masked out of the likelihood,
  as if the repeating source had said nothing.  This avoids the
  over-counting but throws away whatever information the repeats carry,
  which is the gap EM-Ext closes.

Both ride the shared estimation engine: the masked independence model
is :class:`~repro.engine.backends.MaskedDenseBackend`, driven by the
same :class:`~repro.engine.driver.EMDriver` (restarts, convergence,
tracing, telemetry) the dependency-aware estimators use; EM is the
special case of an all-ones mask.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.baselines.base import FactFinder
from repro.core.model import DEFAULT_EPSILON
from repro.core.result import EstimationResult
from repro.data.dense import DenseProblem
from repro.data.protocol import Problem
from repro.engine.backends import MaskedDenseBackend
from repro.engine.driver import EMDriver, IterationCallback
from repro.engine.initialisation import support_initialisation
from repro.utils.errors import ValidationError
from repro.utils.rng import SeedLike
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class IndependentParameters:
    """θ of the two-parameter independence model: per-source (t, b) and prior z."""

    t: np.ndarray
    b: np.ndarray
    z: float

    def clamp(self, epsilon: float = DEFAULT_EPSILON) -> "IndependentParameters":
        """Push every probability into ``[ε, 1-ε]``."""
        return IndependentParameters(
            t=np.clip(self.t, epsilon, 1.0 - epsilon),
            b=np.clip(self.b, epsilon, 1.0 - epsilon),
            z=float(np.clip(self.z, epsilon, 1.0 - epsilon)),
        )

    def max_difference(self, other: "IndependentParameters") -> float:
        """Largest absolute parameter change (convergence criterion)."""
        deltas = [abs(self.z - other.z)]
        if self.t.size:
            deltas.append(float(np.max(np.abs(self.t - other.t))))
            deltas.append(float(np.max(np.abs(self.b - other.b))))
        return max(deltas)


class _MaskedIndependentEM(FactFinder):
    """EM on the independence model with an optional cell mask.

    Masked cells contribute to neither the likelihood nor the M-step
    counts — they are treated as *missing*, not as non-claims.
    """

    def __init__(
        self,
        max_iterations: int = 200,
        tolerance: float = 1e-6,
        epsilon: float = DEFAULT_EPSILON,
        n_restarts: int = 1,
        init_strategy: str = "support",
        smoothing: float = 0.0,
        seed: SeedLike = None,
        callbacks: Sequence[IterationCallback] = (),
    ):
        check_positive_int(max_iterations, "max_iterations")
        check_positive_int(n_restarts, "n_restarts")
        if not tolerance > 0:
            raise ValidationError(f"tolerance must be positive, got {tolerance}")
        if not 0 < epsilon < 0.5:
            raise ValidationError(f"epsilon must be in (0, 0.5), got {epsilon}")
        if init_strategy not in ("support", "random"):
            raise ValidationError(
                f"init_strategy must be 'support' or 'random', got {init_strategy!r}"
            )
        if smoothing < 0:
            raise ValidationError(f"smoothing must be non-negative, got {smoothing}")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.epsilon = epsilon
        self.n_restarts = n_restarts
        self.init_strategy = init_strategy
        self.smoothing = smoothing
        self._seed = seed
        self.callbacks = tuple(callbacks)

    # Subclasses define which cells participate.
    def _mask(self, problem: DenseProblem) -> np.ndarray:
        raise NotImplementedError

    def fit(self, problem: Problem) -> EstimationResult:
        """Run (multi-restart) masked EM and return the best fixed point."""
        problem = self.coerce(problem)
        sc = problem.claims.values.astype(np.float64)
        mask = self._mask(problem).astype(np.float64)
        backend = MaskedDenseBackend(
            sc, mask, smoothing=self.smoothing, epsilon=self.epsilon
        )
        driver = EMDriver(
            max_iterations=self.max_iterations,
            tolerance=self.tolerance,
            n_restarts=self.n_restarts,
            callbacks=self.callbacks,
        )

        def _init(index: int, rng: np.random.Generator) -> IndependentParameters:
            if index == 0 and self.init_strategy == "support":
                return support_initialisation(backend)
            return backend.random_params(rng)

        outcome = driver.fit(backend, _init, self._seed)
        params = outcome.parameters
        return EstimationResult(
            algorithm=self.algorithm_name,
            scores=outcome.posterior,
            decisions=outcome.decisions,
            parameters=None,
            log_likelihood=outcome.log_likelihood,
            converged=outcome.converged,
            n_iterations=outcome.n_iterations,
            trace=outcome.trace,
            health=outcome.health,
            extras={
                "t": params.t,
                "b": params.b,
                "z": params.z,
            },
        )


class EMIndependent(_MaskedIndependentEM):
    """EM (IPSN 2012): ignore dependencies, use every cell."""

    algorithm_name = "em"

    def _mask(self, problem: DenseProblem) -> np.ndarray:
        return np.ones(problem.claims.shape)


class EMSocial(_MaskedIndependentEM):
    """EM-Social (IPSN 2014): ignore dependent cells entirely.

    "Claims repeated by dependent sources do not offer value": every
    cell flagged dependent — the repeated claim *and* the silence where
    the source saw the assertion from an ancestor — is excluded from the
    likelihood.  Excluding only the claims while keeping dependent
    silences as independent evidence would bias the estimator toward
    "false" (the silences say "my reliable source didn't repeat it"),
    which is information the IPSN 2014 model explicitly refuses to use.
    """

    algorithm_name = "em-social"

    def _mask(self, problem: DenseProblem) -> np.ndarray:
        return 1.0 - problem.dependency.values.astype(np.float64)


__all__ = ["EMIndependent", "EMSocial", "IndependentParameters"]
