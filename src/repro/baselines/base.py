"""Common fact-finder interface shared by all algorithms.

The evaluation section of the paper compares seven algorithms — EM-Ext,
EM (IPSN 2012), EM-Social (IPSN 2014), Voting, Sums, Average·Log and
TruthFinder.  All implement this interface: ``fit(problem)`` returns a
:class:`~repro.core.result.FactFindingResult` whose ``scores`` rank
assertions by credibility and whose ``decisions`` label them.

Heuristic rankers have no natural probability scale, so their binary
decisions come from :func:`threshold_decisions` — min-max normalise the
scores and cut at 0.5.  The paper's empirical protocol (top-100
ranking) never consults heuristic decisions, only scores; decisions are
provided so the synthetic accuracy metrics remain well defined for
every algorithm.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Tuple

import numpy as np

from repro.core.result import FactFindingResult
from repro.data.coerce import coerce_problem
from repro.data.protocol import FORMAT_DENSE, Problem


class FactFinder(ABC):
    """Abstract base class for all fact-finding algorithms.

    Every fact finder accepts any :class:`~repro.data.protocol.Problem`
    — the :attr:`accepts` declaration names the storage formats its
    numerics run on, and :meth:`coerce` (called at the top of each
    ``fit``) converts the input through the data layer, densifying
    under the memory budget where needed.
    """

    #: Short machine-readable identifier (also the registry key).
    algorithm_name: str = "abstract"

    #: Storage formats this algorithm's numerics accept, in preference
    #: order.  The default — dense only — matches the heuristic rankers
    #: and masked-EM baselines, which index raw ndarrays.
    accepts: Tuple[str, ...] = (FORMAT_DENSE,)

    def coerce(self, problem: Problem) -> Problem:
        """``problem`` in a format this algorithm accepts (or raise)."""
        return coerce_problem(problem, needs=self.accepts)

    @abstractmethod
    def fit(self, problem: Problem) -> FactFindingResult:
        """Estimate assertion credibility from claims (and dependencies)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(algorithm_name={self.algorithm_name!r})"


def threshold_decisions(scores: np.ndarray) -> np.ndarray:
    """Binary labels from heuristic scores: min-max normalise, cut at 0.5.

    Degenerate score vectors (all equal) yield all-true labels, because
    a ranker with no discrimination has no basis to reject anything.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.size == 0:
        return np.zeros(0, dtype=np.int8)
    low, high = float(scores.min()), float(scores.max())
    if high == low:
        return np.ones(scores.size, dtype=np.int8)
    normalised = (scores - low) / (high - low)
    return (normalised >= 0.5).astype(np.int8)


__all__ = ["FactFinder", "threshold_decisions"]
