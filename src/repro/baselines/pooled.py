"""Pooled (homogeneous) dependency-aware EM — an ablation baseline.

The paper's model spends four parameters per source.  This baseline
collapses the population to one shared (a, b, f, g, z): the M-step sums
counts over *all* sources before taking ratios, so the model has five
parameters total regardless of population size.

It answers a question every deployment faces: is per-source reliability
modelling worth `4n` extra parameters on this data?  On synthetic
workloads with heterogeneous sources the per-source EM-Ext wins; at
extreme sparsity the pooled model's stability can close the gap
(see ``benchmarks/test_ablations.py``).

Implementation-wise this is the engine's pluggable-backend design at
work: a :class:`~repro.engine.backends.DenseBackend` subclass that
overrides only the M-step (pooled scalar ratios instead of per-source
ones), driven by the same :class:`~repro.engine.driver.EMDriver` and
support warm start as every other estimator.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import FactFinder
from repro.core.model import DEFAULT_EPSILON, SourceParameters
from repro.core.result import EstimationResult
from repro.data.protocol import Problem
from repro.engine.backends import DenseBackend
from repro.engine.driver import EMDriver
from repro.engine.initialisation import support_initialisation
from repro.utils.errors import ValidationError
from repro.utils.validation import check_positive_int


class _PooledDenseBackend(DenseBackend):
    """Dense backend whose M-step pools counts over the whole population."""

    def m_step(
        self, posterior: np.ndarray, previous: SourceParameters
    ) -> SourceParameters:
        z_mass = posterior
        y_mass = 1.0 - posterior

        def _pooled(mask: np.ndarray, weight: np.ndarray) -> float:
            denominator = float((mask @ weight).sum())
            if denominator <= 0:
                return 0.5
            return float(((self.sc * mask) @ weight).sum() / denominator)

        z = float(posterior.mean()) if posterior.size else 0.5
        return SourceParameters.from_scalars(
            self.n_sources,
            a=_pooled(self.indep, z_mass),
            b=_pooled(self.indep, y_mass),
            f=_pooled(self.dep, z_mass),
            g=_pooled(self.dep, y_mass),
            z=z,
        ).clamp(self.epsilon)


class PooledEMExt(FactFinder):
    """Dependency-aware EM with population-level (pooled) parameters."""

    algorithm_name = "em-pooled"

    def __init__(
        self,
        max_iterations: int = 200,
        tolerance: float = 1e-6,
        epsilon: float = DEFAULT_EPSILON,
        seed=None,
    ):
        check_positive_int(max_iterations, "max_iterations")
        if not tolerance > 0:
            raise ValidationError(f"tolerance must be positive, got {tolerance}")
        if not 0 < epsilon < 0.5:
            raise ValidationError(f"epsilon must be in (0, 0.5), got {epsilon}")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.epsilon = epsilon
        # Deterministic algorithm; `seed` accepted for registry symmetry.
        self._seed = seed

    def fit(self, problem: Problem) -> EstimationResult:
        """Run pooled EM from a dependency-discounted support start."""
        problem = self.coerce(problem)
        backend = _PooledDenseBackend(problem, epsilon=self.epsilon)
        params = support_initialisation(backend)
        driver = EMDriver(
            max_iterations=self.max_iterations, tolerance=self.tolerance
        )
        outcome = driver.run(backend, params)
        return EstimationResult(
            algorithm=self.algorithm_name,
            scores=outcome.posterior,
            decisions=outcome.decisions,
            parameters=outcome.parameters,
            log_likelihood=outcome.log_likelihood,
            converged=outcome.converged,
            n_iterations=outcome.n_iterations,
            trace=outcome.trace,
        )


__all__ = ["PooledEMExt"]
