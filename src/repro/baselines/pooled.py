"""Pooled (homogeneous) dependency-aware EM — an ablation baseline.

The paper's model spends four parameters per source.  This baseline
collapses the population to one shared (a, b, f, g, z): the M-step sums
counts over *all* sources before taking ratios, so the model has five
parameters total regardless of population size.

It answers a question every deployment faces: is per-source reliability
modelling worth `4n` extra parameters on this data?  On synthetic
workloads with heterogeneous sources the per-source EM-Ext wins; at
extreme sparsity the pooled model's stability can close the gap
(see ``benchmarks/test_ablations.py``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import FactFinder
from repro.core.likelihood import data_log_likelihood, posterior_truth
from repro.core.matrix import SensingProblem
from repro.core.model import DEFAULT_EPSILON, ParameterTrace, SourceParameters
from repro.core.result import EstimationResult
from repro.utils.errors import ValidationError
from repro.utils.validation import check_positive_int


class PooledEMExt(FactFinder):
    """Dependency-aware EM with population-level (pooled) parameters."""

    algorithm_name = "em-pooled"

    def __init__(
        self,
        max_iterations: int = 200,
        tolerance: float = 1e-6,
        epsilon: float = DEFAULT_EPSILON,
        seed=None,
    ):
        check_positive_int(max_iterations, "max_iterations")
        if not tolerance > 0:
            raise ValidationError(f"tolerance must be positive, got {tolerance}")
        if not 0 < epsilon < 0.5:
            raise ValidationError(f"epsilon must be in (0, 0.5), got {epsilon}")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.epsilon = epsilon
        # Deterministic algorithm; `seed` accepted for registry symmetry.
        self._seed = seed

    def fit(self, problem: SensingProblem) -> EstimationResult:
        """Run pooled EM from a dependency-discounted support start."""
        sc = problem.claims.values.astype(np.float64)
        dep = problem.dependency.values.astype(np.float64)
        indep = 1.0 - dep
        support = (sc * indep).sum(axis=0)
        top = float(support.max()) if support.size else 0.0
        if top > 0:
            posterior = 0.2 + 0.6 * support / top
        else:
            posterior = np.full(problem.n_assertions, 0.5)
        params = self._m_step(problem, sc, dep, indep, posterior)
        posterior = posterior_truth(problem, params)
        trace = ParameterTrace()
        converged = False
        for _ in range(self.max_iterations):
            new_params = self._m_step(problem, sc, dep, indep, posterior)
            delta = new_params.max_difference(params)
            params = new_params
            posterior = posterior_truth(problem, params)
            trace.record(data_log_likelihood(problem, params), delta)
            if delta < self.tolerance:
                converged = True
                break
        return EstimationResult(
            algorithm=self.algorithm_name,
            scores=posterior,
            decisions=(posterior >= 0.5).astype(np.int8),
            parameters=params,
            log_likelihood=(
                trace.log_likelihoods[-1]
                if trace.n_iterations
                else data_log_likelihood(problem, params)
            ),
            converged=converged,
            n_iterations=trace.n_iterations,
            trace=trace,
        )

    def _m_step(
        self,
        problem: SensingProblem,
        sc: np.ndarray,
        dep: np.ndarray,
        indep: np.ndarray,
        posterior: np.ndarray,
    ) -> SourceParameters:
        z_mass = posterior
        y_mass = 1.0 - posterior

        def _pooled(mask: np.ndarray, weight: np.ndarray) -> float:
            denominator = float((mask @ weight).sum())
            if denominator <= 0:
                return 0.5
            return float(((sc * mask) @ weight).sum() / denominator)

        z = float(posterior.mean()) if posterior.size else 0.5
        return SourceParameters.from_scalars(
            problem.n_sources,
            a=_pooled(indep, z_mass),
            b=_pooled(indep, y_mass),
            f=_pooled(dep, z_mass),
            g=_pooled(dep, y_mass),
            z=z,
        ).clamp(self.epsilon)


__all__ = ["PooledEMExt"]
