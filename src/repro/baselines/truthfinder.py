"""TruthFinder (Yin, Han & Yu, TKDE 2008).

An iterative algorithm exploiting the mutual reinforcement between
source trustworthiness and claim confidence:

* a source's trustworthiness ``t(s)`` is the average confidence of the
  claims it makes;
* a claim's confidence aggregates the trustworthiness of its sources in
  log-odds-like space, ``σ(c) = Σ_s τ(s)`` with
  ``τ(s) = -ln(1 - t(s))``, then squashes with a dampened logistic
  ``conf(c) = 1 / (1 + exp(-γ σ(c)))``.

The dampening factor ``γ`` compensates for the fact that sources are
not actually independent — which is precisely the phenomenon the paper
models explicitly.  Defaults (``γ = 0.3``, initial trust ``0.9``) follow
the original publication.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import FactFinder, threshold_decisions
from repro.core.result import FactFindingResult
from repro.data.protocol import Problem
from repro.utils.errors import ValidationError
from repro.utils.validation import check_positive_int, check_probability

#: Cap on τ(s) = -ln(1 - t(s)) so a fully trusted source stays finite.
_MAX_TAU = 50.0


class TruthFinder(FactFinder):
    """Yin et al.'s TruthFinder, adapted to the binary-assertion setting."""

    algorithm_name = "truthfinder"

    def __init__(
        self,
        dampening: float = 0.3,
        initial_trust: float = 0.9,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
    ):
        if not dampening > 0:
            raise ValidationError(f"dampening must be positive, got {dampening}")
        self.dampening = dampening
        self.initial_trust = check_probability(initial_trust, "initial_trust")
        check_positive_int(max_iterations, "max_iterations")
        self.max_iterations = max_iterations
        if not tolerance > 0:
            raise ValidationError(f"tolerance must be positive, got {tolerance}")
        self.tolerance = tolerance

    def fit(self, problem: Problem) -> FactFindingResult:
        """Iterate trust/confidence until the trust vector stabilises."""
        problem = self.coerce(problem)
        sc = problem.claims.values.astype(np.float64)
        n, m = sc.shape
        trust = np.full(n, self.initial_trust)
        confidence = np.zeros(m)
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            tau = -np.log(np.clip(1.0 - trust, np.exp(-_MAX_TAU), 1.0))
            sigma = sc.T @ tau
            confidence = 1.0 / (1.0 + np.exp(-self.dampening * sigma))
            counts = sc.sum(axis=1)
            totals = sc @ confidence
            with np.errstate(invalid="ignore", divide="ignore"):
                new_trust = np.where(counts > 0, totals / counts, self.initial_trust)
            delta = float(np.max(np.abs(new_trust - trust))) if n else 0.0
            trust = new_trust
            if delta < self.tolerance:
                break
        return FactFindingResult(
            algorithm=self.algorithm_name,
            scores=confidence,
            decisions=threshold_decisions(confidence),
            extras={"trust": trust, "n_iterations": iterations},
        )


__all__ = ["TruthFinder"]
