"""Dense (ndarray) adapter of the sensing-problem protocol.

Terminology from Section II-A of the paper:

* an **assertion** :math:`C_j` is any statement that evaluates to true
  or false;
* a **claim** :math:`S_iC_j = 1` is the act of source :math:`S_i`
  reporting assertion :math:`C_j`;
* the **source-claim matrix** ``SC`` collects all claims
  (``SC[i, j] = 1`` iff source ``i`` asserted ``j``);
* the **dependency indicator** ``D[i, j] = 1`` marks cells where an
  ancestor of source ``i`` (someone ``i`` follows, directly or
  transitively, depending on the extraction policy) made assertion
  ``j`` before source ``i`` would have.

The paper only defines ``D`` on cells where a claim exists; the EM
M-step however partitions *non*-claims by dependency too (the sets
:math:`S_iC_0^{D_0}` and :math:`S_iC_0^{D_1}`), so this library defines
``D`` on every cell: a non-claim cell is dependent when the source *had
the opportunity* to repeat the assertion from an ancestor.  See
DESIGN.md §5.2.

:class:`DenseProblem` (historically exported as ``SensingProblem``) is
the dense adapter of the :class:`~repro.data.protocol.Problem`
protocol; :meth:`DenseProblem.csr_view` converts to the CSR adapter
without touching the stored values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.protocol import FORMAT_DENSE
from repro.utils.errors import ValidationError
from repro.utils.validation import (
    check_binary_matrix,
    check_id_list,
    check_same_shape,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.data.csr import CsrProblem


class SourceClaimMatrix:
    """An ``n_sources × n_assertions`` binary claim matrix.

    Thin, validated wrapper over an int8 numpy array with the counting
    helpers the estimators and reports need.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        *,
        source_ids: Optional[Sequence[str]] = None,
        assertion_ids: Optional[Sequence[str]] = None,
    ) -> None:
        self._matrix = check_binary_matrix(matrix, "source-claim matrix")
        n, m = self._matrix.shape
        self.source_ids = check_id_list(source_ids, n, "source_ids", prefix="S")
        self.assertion_ids = check_id_list(
            assertion_ids, m, "assertion_ids", prefix="C"
        )

    @staticmethod
    def _check_ids(
        ids: Optional[Sequence[str]], expected: int, name: str
    ) -> List[str]:
        prefix = "S" if name == "source_ids" else "C"
        return check_id_list(ids, expected, name, prefix=prefix)

    @classmethod
    def from_claims(
        cls,
        claims: Iterable[Tuple[int, int]],
        n_sources: int,
        n_assertions: int,
        **kwargs: Any,
    ) -> "SourceClaimMatrix":
        """Build a matrix from an iterable of ``(source, assertion)`` pairs."""
        matrix = np.zeros((n_sources, n_assertions), dtype=np.int8)
        for i, j in claims:
            if not (0 <= i < n_sources and 0 <= j < n_assertions):
                raise ValidationError(
                    f"claim ({i}, {j}) outside matrix of shape "
                    f"({n_sources}, {n_assertions})"
                )
            matrix[i, j] = 1
        return cls(matrix, **kwargs)

    # -- array-ish interface -------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        """The underlying int8 array (not a copy; treat as read-only)."""
        return self._matrix

    @property
    def shape(self) -> Tuple[int, int]:
        """``(n_sources, n_assertions)``."""
        return self._matrix.shape

    @property
    def n_sources(self) -> int:
        """Number of sources (rows)."""
        return self._matrix.shape[0]

    @property
    def n_assertions(self) -> int:
        """Number of assertions (columns)."""
        return self._matrix.shape[1]

    def __getitem__(self, key: Any) -> Any:
        return self._matrix[key]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SourceClaimMatrix)
            and self.shape == other.shape
            and bool(np.array_equal(self._matrix, other._matrix))
        )

    def __repr__(self) -> str:
        return (
            f"SourceClaimMatrix(n_sources={self.n_sources}, "
            f"n_assertions={self.n_assertions}, n_claims={self.n_claims})"
        )

    # -- statistics -----------------------------------------------------------

    @property
    def n_claims(self) -> int:
        """Total number of claims (ones) in the matrix."""
        return int(self._matrix.sum())

    @property
    def density(self) -> float:
        """Fraction of cells that are claims."""
        if self._matrix.size == 0:
            return 0.0
        return self.n_claims / self._matrix.size

    def claims_per_source(self) -> np.ndarray:
        """Row sums: how many assertions each source reported."""
        return self._matrix.sum(axis=1)

    def claims_per_assertion(self) -> np.ndarray:
        """Column sums: how many sources reported each assertion."""
        return self._matrix.sum(axis=0)

    def supporters(self, assertion: int) -> np.ndarray:
        """Indices of sources that reported ``assertion``."""
        return np.flatnonzero(self._matrix[:, assertion])

    def silent_assertions(self) -> np.ndarray:
        """Indices of assertions nobody reported."""
        return np.flatnonzero(self.claims_per_assertion() == 0)


class DependencyMatrix:
    """Binary dependency indicators ``D`` with the same shape as ``SC``."""

    def __init__(self, matrix: np.ndarray) -> None:
        self._matrix = check_binary_matrix(matrix, "dependency matrix")

    @classmethod
    def independent(cls, n_sources: int, n_assertions: int) -> "DependencyMatrix":
        """All-zero indicators: every claim is independent (the IPSN'12 world)."""
        return cls(np.zeros((n_sources, n_assertions), dtype=np.int8))

    @property
    def values(self) -> np.ndarray:
        """The underlying int8 array (not a copy; treat as read-only)."""
        return self._matrix

    @property
    def shape(self) -> Tuple[int, int]:
        """``(n_sources, n_assertions)``."""
        return self._matrix.shape

    def __getitem__(self, key: Any) -> Any:
        return self._matrix[key]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DependencyMatrix)
            and self.shape == other.shape
            and bool(np.array_equal(self._matrix, other._matrix))
        )

    def __repr__(self) -> str:
        n_dep = int(self._matrix.sum())
        return f"DependencyMatrix(shape={self.shape}, n_dependent_cells={n_dep})"

    @property
    def dependent_fraction(self) -> float:
        """Fraction of cells flagged as dependent."""
        if self._matrix.size == 0:
            return 0.0
        return float(self._matrix.mean())


@dataclass
class DenseProblem:
    """A complete fact-finding input: claims, dependencies, and metadata.

    ``truth`` (the per-assertion ground-truth labels) is optional — it
    is present for synthetic data, absent for field data — and is never
    consulted by estimators; only the evaluation harness reads it.

    This is the dense adapter of the
    :class:`~repro.data.protocol.Problem` protocol; the historical name
    ``SensingProblem`` remains as an alias.
    """

    claims: SourceClaimMatrix
    dependency: DependencyMatrix
    truth: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if isinstance(self.claims, np.ndarray):
            self.claims = SourceClaimMatrix(self.claims)
        if isinstance(self.dependency, np.ndarray):
            self.dependency = DependencyMatrix(self.dependency)
        check_same_shape(
            self.claims.values, self.dependency.values, ("claims", "dependency")
        )
        if self.truth is not None:
            truth = np.asarray(self.truth)
            if truth.shape != (self.claims.n_assertions,):
                raise ValidationError(
                    f"truth must have shape ({self.claims.n_assertions},), "
                    f"got {truth.shape}"
                )
            if truth.size and not np.isin(truth, (0, 1)).all():
                raise ValidationError("truth must contain only 0/1 labels")
            self.truth = truth.astype(np.int8)

    @classmethod
    def independent(
        cls, claims: np.ndarray, truth: Optional[np.ndarray] = None
    ) -> "DenseProblem":
        """Wrap a raw claim matrix with all-independent indicators."""
        matrix = SourceClaimMatrix(claims)
        return cls(
            claims=matrix,
            dependency=DependencyMatrix.independent(*matrix.shape),
            truth=truth,
        )

    @classmethod
    def from_arrays(
        cls,
        claims: np.ndarray,
        dependency: np.ndarray,
        *,
        truth: Optional[np.ndarray] = None,
        source_ids: Optional[Sequence[str]] = None,
        assertion_ids: Optional[Sequence[str]] = None,
    ) -> "DenseProblem":
        """Build from raw arrays, attaching identifiers in one call."""
        return cls(
            claims=SourceClaimMatrix(
                np.asarray(claims),
                source_ids=source_ids,
                assertion_ids=assertion_ids,
            ),
            dependency=DependencyMatrix(np.asarray(dependency)),
            truth=truth,
        )

    # -- protocol surface ---------------------------------------------------

    @property
    def format(self) -> str:
        """Storage-format tag (always ``"dense"`` here)."""
        return FORMAT_DENSE

    @property
    def n_sources(self) -> int:
        """Number of sources."""
        return self.claims.n_sources

    @property
    def n_assertions(self) -> int:
        """Number of assertions."""
        return self.claims.n_assertions

    @property
    def n_claims(self) -> int:
        """Total number of claims (ones in ``SC``)."""
        return self.claims.n_claims

    @property
    def source_ids(self) -> List[str]:
        """Per-row source identifiers (held by the claim matrix)."""
        return self.claims.source_ids

    @property
    def assertion_ids(self) -> List[str]:
        """Per-column assertion identifiers (held by the claim matrix)."""
        return self.claims.assertion_ids

    @property
    def has_truth(self) -> bool:
        """Whether ground-truth labels are attached."""
        return self.truth is not None

    def dense_view(self, *, budget: Optional[int] = None) -> "DenseProblem":
        """Identity: a dense problem is its own dense view."""
        return self

    def csr_view(self) -> "CsrProblem":
        """This problem as a CSR adapter sharing ids and truth.

        Requires scipy (the ``repro[sparse]`` extra).  The conversion
        compresses the int8 arrays to CSR; values, ids and truth
        round-trip exactly (``csr_view().dense_view() == problem``).
        """
        from repro.data.csr import CsrProblem

        return CsrProblem.from_dense(self)

    def without_truth(self) -> "DenseProblem":
        """A copy with ground truth stripped (what an estimator may see)."""
        return DenseProblem(claims=self.claims, dependency=self.dependency)

    def dependent_claim_fraction(self) -> float:
        """Fraction of *claims* (ones in SC) that are dependent."""
        sc = self.claims.values
        n_claims = sc.sum()
        if n_claims == 0:
            return 0.0
        return float((sc & self.dependency.values).sum() / n_claims)

    def __eq__(self, other: object) -> bool:
        """Exact identity: values, ids, and truth all match."""
        if not isinstance(other, DenseProblem):
            return False
        if self.truth is None or other.truth is None:
            truth_equal = self.truth is None and other.truth is None
        else:
            truth_equal = bool(np.array_equal(self.truth, other.truth))
        return (
            self.claims == other.claims
            and self.source_ids == other.source_ids
            and self.assertion_ids == other.assertion_ids
            and self.dependency == other.dependency
            and truth_equal
        )


#: Historical name of :class:`DenseProblem`, kept for compatibility
#: (and because the paper-facing docs say "sensing problem").
SensingProblem = DenseProblem


__all__ = [
    "DenseProblem",
    "DependencyMatrix",
    "SensingProblem",
    "SourceClaimMatrix",
]
