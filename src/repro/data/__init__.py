"""``repro.data`` — the format-polymorphic problem layer.

One sensing problem, two physical layouts, one protocol:

* :class:`~repro.data.protocol.Problem` — the structural interface
  every consumer annotates against;
* :class:`~repro.data.dense.DenseProblem` (alias ``SensingProblem``)
  and :class:`~repro.data.csr.CsrProblem` (alias
  ``SparseSensingProblem``) — the two adapters, both carrying
  ``source_ids`` / ``assertion_ids`` and optional ``truth``;
* :meth:`~repro.data.dense.DenseProblem.csr_view` /
  :meth:`~repro.data.csr.CsrProblem.dense_view` — lossless
  conversions, densification guarded by the memory budget
  (:mod:`repro.data.memory`, default 1 GiB →
  :class:`~repro.utils.errors.MemoryBudgetError` instead of a silent
  multi-GB allocation);
* :func:`~repro.data.coerce.coerce_problem` — capability negotiation:
  consumers declare the formats they accept, the layer converts or
  refuses loudly.

See docs/ARCHITECTURE.md ("Data layer") for the full contract.
"""

from repro.data.coerce import Needs, as_dependency_array, coerce_problem
from repro.data.csr import CsrProblem, SparseSensingProblem
from repro.data.dense import (
    DenseProblem,
    DependencyMatrix,
    SensingProblem,
    SourceClaimMatrix,
)
from repro.data.memory import (
    BYTES_PER_DENSE_CELL,
    DEFAULT_DENSE_BUDGET_BYTES,
    check_densify,
    dense_budget,
    estimate_dense_bytes,
    get_dense_budget,
    set_dense_budget,
)
from repro.data.protocol import FORMATS, FORMAT_CSR, FORMAT_DENSE, Problem
from repro.utils.errors import MemoryBudgetError

__all__ = [
    "BYTES_PER_DENSE_CELL",
    "CsrProblem",
    "DEFAULT_DENSE_BUDGET_BYTES",
    "DenseProblem",
    "DependencyMatrix",
    "FORMATS",
    "FORMAT_CSR",
    "FORMAT_DENSE",
    "MemoryBudgetError",
    "Needs",
    "Problem",
    "SensingProblem",
    "SourceClaimMatrix",
    "SparseSensingProblem",
    "as_dependency_array",
    "check_densify",
    "coerce_problem",
    "dense_budget",
    "estimate_dense_bytes",
    "get_dense_budget",
    "set_dense_budget",
]
