"""The densification memory budget.

Converting a CSR problem to dense allocates two ``(n, m)`` int8 arrays.
For small synthetic matrices that is microscopic; for the paper's Paris
Attack crawl (38 844 × 23 513, Table III) it is ~1.8 GB — almost always
a bug, not an intent.  Every densification in the data layer therefore
runs through :func:`check_densify`, which compares the *estimated*
allocation against a configurable budget and raises
:class:`~repro.utils.errors.MemoryBudgetError` before touching memory.

The budget defaults to 1 GiB, can be overridden globally
(:func:`set_dense_budget`, or the ``REPRO_DENSE_BUDGET_BYTES``
environment variable read at import), per call site (the ``budget=``
parameter on the views and :func:`~repro.data.coerce.coerce_problem`),
or lexically (:func:`dense_budget`, a context manager).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.utils.errors import MemoryBudgetError, ValidationError

#: Default densification budget: 1 GiB covers every matrix in the
#: paper's synthetic evaluation with orders of magnitude to spare while
#: refusing the Table III crawl (~1.8 GB dense).
DEFAULT_DENSE_BUDGET_BYTES = 1 << 30

#: Bytes per cell of a materialised dense problem: one int8 claim
#: matrix plus one int8 dependency matrix.
BYTES_PER_DENSE_CELL = 2


def _initial_budget() -> int:
    raw = os.environ.get("REPRO_DENSE_BUDGET_BYTES")
    if raw is None:
        return DEFAULT_DENSE_BUDGET_BYTES
    try:
        value = int(raw)
    except ValueError as error:
        raise ValidationError(
            f"REPRO_DENSE_BUDGET_BYTES must be an integer, got {raw!r}"
        ) from error
    if value <= 0:
        raise ValidationError(
            f"REPRO_DENSE_BUDGET_BYTES must be positive, got {value}"
        )
    return value


_budget_bytes: int = _initial_budget()


def get_dense_budget() -> int:
    """The currently effective densification budget in bytes."""
    return _budget_bytes


def set_dense_budget(budget_bytes: int) -> int:
    """Set the global densification budget; returns the previous value."""
    global _budget_bytes
    if not isinstance(budget_bytes, int) or isinstance(budget_bytes, bool):
        raise ValidationError(
            f"budget_bytes must be an integer byte count, got {budget_bytes!r}"
        )
    if budget_bytes <= 0:
        raise ValidationError(
            f"budget_bytes must be positive, got {budget_bytes}"
        )
    previous = _budget_bytes
    _budget_bytes = budget_bytes
    return previous


@contextmanager
def dense_budget(budget_bytes: int) -> Iterator[int]:
    """Temporarily override the global densification budget."""
    previous = set_dense_budget(budget_bytes)
    try:
        yield budget_bytes
    finally:
        set_dense_budget(previous)


def estimate_dense_bytes(n_sources: int, n_assertions: int) -> int:
    """Estimated allocation for densifying an ``(n, m)`` problem."""
    return BYTES_PER_DENSE_CELL * int(n_sources) * int(n_assertions)


def check_densify(
    n_sources: int,
    n_assertions: int,
    budget: Optional[int] = None,
) -> int:
    """Guard one densification against the budget.

    Returns the estimated byte count when it fits; raises
    :class:`~repro.utils.errors.MemoryBudgetError` otherwise.  An
    explicit ``budget`` overrides the global one for this call only.
    """
    effective = _budget_bytes if budget is None else budget
    if not isinstance(effective, int) or isinstance(effective, bool) or effective <= 0:
        raise ValidationError(
            f"budget must be a positive integer byte count, got {effective!r}"
        )
    required = estimate_dense_bytes(n_sources, n_assertions)
    if required > effective:
        raise MemoryBudgetError(
            f"densifying a {n_sources} x {n_assertions} problem needs "
            f"~{required / 1e9:.2f} GB but the budget is "
            f"{effective / 1e9:.2f} GB; keep it sparse, raise the budget "
            "(repro.data.set_dense_budget / REPRO_DENSE_BUDGET_BYTES) or "
            "pass an explicit budget= to the view",
            required_bytes=required,
            budget_bytes=effective,
        )
    return required


__all__ = [
    "BYTES_PER_DENSE_CELL",
    "DEFAULT_DENSE_BUDGET_BYTES",
    "check_densify",
    "dense_budget",
    "estimate_dense_bytes",
    "get_dense_budget",
    "set_dense_budget",
]
