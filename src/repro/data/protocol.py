"""The format-polymorphic problem protocol.

One sensing problem — the source-claim matrix ``SC``, the dependency
indicators ``D``, optional per-assertion ground truth and the
source/assertion identifiers — can live in two physical layouts:

* **dense** (:class:`~repro.data.dense.DenseProblem`): two int8
  ndarrays, the natural form for the paper's synthetic studies
  (Figs. 3–10, tens of sources);
* **csr** (:class:`~repro.data.csr.CsrProblem`): two scipy CSR
  matrices with int8 data, the only viable form for field-scale crawls
  (Table III: 38 844 × 23 513 would be ~1.8 GB dense).

:class:`Problem` is the structural protocol both satisfy.  Consumers
that work on either layout annotate against the protocol; consumers
with a layout requirement go through
:func:`~repro.data.coerce.coerce_problem`, which converts via the
zero-copy views (guarded by the densification memory budget of
:mod:`repro.data.memory`) or refuses loudly.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

#: Format tag of :class:`~repro.data.dense.DenseProblem`.
FORMAT_DENSE = "dense"

#: Format tag of :class:`~repro.data.csr.CsrProblem`.
FORMAT_CSR = "csr"

#: Every format tag the data layer knows, in preference-neutral order.
FORMATS: Tuple[str, ...] = (FORMAT_DENSE, FORMAT_CSR)


@runtime_checkable
class Problem(Protocol):
    """Structural interface of a sensing problem in any storage format.

    The protocol is deliberately small: identity (shape, ids, truth)
    plus the two view conversions.  Numerical access stays on the
    concrete adapters — estimators that need raw arrays first coerce to
    the layout they support.
    """

    @property
    def format(self) -> str:
        """Storage-format tag: :data:`FORMAT_DENSE` or :data:`FORMAT_CSR`."""
        ...

    @property
    def n_sources(self) -> int:
        """Number of sources (matrix rows)."""
        ...

    @property
    def n_assertions(self) -> int:
        """Number of assertions (matrix columns)."""
        ...

    @property
    def n_claims(self) -> int:
        """Total number of claims (ones in ``SC``)."""
        ...

    @property
    def source_ids(self) -> List[str]:
        """Per-row source identifiers."""
        ...

    @property
    def assertion_ids(self) -> List[str]:
        """Per-column assertion identifiers."""
        ...

    @property
    def truth(self) -> Optional[np.ndarray]:
        """Optional per-assertion 0/1 ground-truth labels."""
        ...

    @property
    def has_truth(self) -> bool:
        """Whether ground-truth labels are attached."""
        ...

    def dense_view(self, *, budget: Optional[int] = None) -> "Problem":
        """This problem in dense form (identity on dense problems)."""
        ...

    def csr_view(self) -> "Problem":
        """This problem in CSR form (identity on CSR problems)."""
        ...

    def without_truth(self) -> "Problem":
        """A copy with ground truth stripped, same format and ids."""
        ...

    def dependent_claim_fraction(self) -> float:
        """Fraction of claims flagged as dependent."""
        ...


__all__ = ["FORMATS", "FORMAT_CSR", "FORMAT_DENSE", "Problem"]
