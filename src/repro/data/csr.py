"""CSR (scipy sparse) adapter of the sensing-problem protocol.

A dense ``(n, m)`` cell matrix for the paper's Paris Attack crawl
(38 844 × 23 513) needs ~1.8 GB even as int8; the actual content is
~41k claims and a few hundred thousand dependent cells.
:class:`CsrProblem` stores both matrices as CSR with **int8 data**
(satellite of DESIGN.md §9: the float64 data arrays of the original
sparse container were pure waste — values are 0/1 by validation, and
the numeric backends cast to float64 exactly once, at the BLAS
boundary).

Unlike the historical ``SparseSensingProblem`` it also carries
``source_ids`` / ``assertion_ids``, so converting dense → CSR → dense
is lossless (metadata included).

scipy is an optional dependency, imported lazily with a clear error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

import numpy as np

from repro.data.dense import DenseProblem
from repro.data.memory import check_densify
from repro.data.protocol import FORMAT_CSR
from repro.utils.errors import ValidationError
from repro.utils.validation import check_id_list


def _sparse_module() -> Any:
    try:
        from scipy import sparse
    except ImportError as error:  # pragma: no cover - environment-specific
        raise ImportError(
            "sparse problems require scipy; install repro[sparse]"
        ) from error
    return sparse


@dataclass
class CsrProblem:
    """CSR-backed adapter of the :class:`~repro.data.protocol.Problem` protocol.

    ``claims`` and ``dependency`` are ``scipy.sparse.csr_matrix`` with
    int8 0/1 data and identical shape; ``truth`` is optional
    per-assertion labels, exactly as in the dense adapter.  Inputs of
    any numeric dtype are accepted and validated as 0/1 before being
    compacted to int8.

    The historical name ``SparseSensingProblem`` remains as an alias.
    """

    claims: Any
    dependency: Any
    truth: Optional[np.ndarray] = None
    source_ids: Optional[List[str]] = field(default=None)
    assertion_ids: Optional[List[str]] = field(default=None)

    def __post_init__(self) -> None:
        sparse = _sparse_module()
        self.claims = self._as_int8_csr(sparse, self.claims, "claims")
        self.dependency = self._as_int8_csr(sparse, self.dependency, "dependency")
        if self.claims.shape != self.dependency.shape:
            raise ValidationError(
                f"claims {self.claims.shape} and dependency "
                f"{self.dependency.shape} must share a shape"
            )
        n, m = self.claims.shape
        self.source_ids = check_id_list(self.source_ids, n, "source_ids", prefix="S")
        self.assertion_ids = check_id_list(
            self.assertion_ids, m, "assertion_ids", prefix="C"
        )
        if self.truth is not None:
            truth = np.asarray(self.truth)
            if truth.shape != (m,):
                raise ValidationError(
                    f"truth must have shape ({m},), got {truth.shape}"
                )
            if truth.size and not np.isin(truth, (0, 1)).all():
                raise ValidationError("truth must contain only 0/1 labels")
            self.truth = truth.astype(np.int8)

    @staticmethod
    def _as_int8_csr(sparse: Any, matrix: Any, name: str) -> Any:
        """Validate 0/1 content and compact the data array to int8."""
        csr = sparse.csr_matrix(matrix)
        if csr.nnz and not np.isin(csr.data, (0, 1)).all():
            raise ValidationError(f"{name} must contain only 0/1 entries")
        csr = csr.astype(np.int8)
        csr.eliminate_zeros()
        return csr

    # -- protocol surface ---------------------------------------------------

    @property
    def format(self) -> str:
        """Storage-format tag (always ``"csr"`` here)."""
        return FORMAT_CSR

    @property
    def n_sources(self) -> int:
        """Number of sources (rows)."""
        return int(self.claims.shape[0])

    @property
    def n_assertions(self) -> int:
        """Number of assertions (columns)."""
        return int(self.claims.shape[1])

    @property
    def n_claims(self) -> int:
        """Total number of claims."""
        return int(self.claims.nnz)

    @property
    def has_truth(self) -> bool:
        """Whether ground-truth labels are attached."""
        return self.truth is not None

    def without_truth(self) -> "CsrProblem":
        """A copy without ground truth (what an estimator may see)."""
        return CsrProblem(
            claims=self.claims,
            dependency=self.dependency,
            source_ids=list(self.source_ids or []),
            assertion_ids=list(self.assertion_ids or []),
        )

    @classmethod
    def from_dense(cls, problem: DenseProblem) -> "CsrProblem":
        """Convert a dense problem, carrying ids and truth along."""
        return cls(
            claims=problem.claims.values,
            dependency=problem.dependency.values,
            truth=problem.truth,
            source_ids=list(problem.source_ids),
            assertion_ids=list(problem.assertion_ids),
        )

    def dense_view(self, *, budget: Optional[int] = None) -> DenseProblem:
        """Materialise as a dense problem, guarded by the memory budget.

        Raises :class:`~repro.utils.errors.MemoryBudgetError` when the
        estimated allocation exceeds the effective budget (global
        default 1 GiB; override via ``budget=`` or
        :func:`repro.data.set_dense_budget`).
        """
        check_densify(self.n_sources, self.n_assertions, budget)
        return DenseProblem.from_arrays(
            np.asarray(self.claims.todense(), dtype=np.int8),
            np.asarray(self.dependency.todense(), dtype=np.int8),
            truth=self.truth,
            source_ids=list(self.source_ids or []),
            assertion_ids=list(self.assertion_ids or []),
        )

    def csr_view(self) -> "CsrProblem":
        """Identity: a CSR problem is its own CSR view."""
        return self

    def to_dense(self) -> DenseProblem:
        """Historical spelling of :meth:`dense_view` (same guard)."""
        return self.dense_view()

    def dependent_claim_fraction(self) -> float:
        """Fraction of claims that are dependent."""
        if self.claims.nnz == 0:
            return 0.0
        overlap = self.claims.multiply(self.dependency)
        return float(overlap.nnz / self.claims.nnz)

    def __eq__(self, other: object) -> bool:
        """Exact identity: stored values, ids, and truth all match."""
        if not isinstance(other, CsrProblem):
            return False
        if self.claims.shape != other.claims.shape:
            return False
        if self.truth is None or other.truth is None:
            truth_equal = self.truth is None and other.truth is None
        else:
            truth_equal = bool(np.array_equal(self.truth, other.truth))
        return (
            truth_equal
            and self.source_ids == other.source_ids
            and self.assertion_ids == other.assertion_ids
            and (self.claims != other.claims).nnz == 0
            and (self.dependency != other.dependency).nnz == 0
        )


#: Historical name of :class:`CsrProblem`, kept for compatibility.
SparseSensingProblem = CsrProblem


__all__ = ["CsrProblem", "SparseSensingProblem"]
