"""Capability negotiation between problems and their consumers.

A consumer declares the storage formats it accepts (``needs``) and
:func:`coerce_problem` either hands the problem back unchanged, converts
it through the zero-copy views (densification guarded by the memory
budget of :mod:`repro.data.memory`), or refuses with an actionable
error.  This is the single choke point that lets every estimator,
bound, and harness in the library accept *any*
:class:`~repro.data.protocol.Problem` while computing on the one layout
it supports.

:func:`as_dependency_array` is the same negotiation for the bound
functions, which take a bare dependency matrix rather than a problem.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple, Union

import numpy as np

from repro.data.memory import check_densify
from repro.data.protocol import FORMAT_CSR, FORMAT_DENSE, FORMATS, Problem
from repro.utils.errors import ValidationError

#: A consumer's format requirement: one tag or an ordered preference list.
Needs = Union[str, Sequence[str]]


def _normalise_needs(needs: Needs) -> Tuple[str, ...]:
    tags = (needs,) if isinstance(needs, str) else tuple(needs)
    if not tags:
        raise ValidationError("needs must name at least one problem format")
    for tag in tags:
        if tag not in FORMATS:
            raise ValidationError(
                f"unknown problem format {tag!r}; expected one of {FORMATS}"
            )
    return tags


def coerce_problem(
    problem: Problem,
    *,
    needs: Needs,
    budget: Optional[int] = None,
) -> Problem:
    """Return ``problem`` in a format the consumer accepts.

    Parameters
    ----------
    problem:
        Any object satisfying the :class:`~repro.data.protocol.Problem`
        protocol (``DenseProblem`` or ``CsrProblem``).
    needs:
        One format tag (``"dense"`` / ``"csr"``) or an ordered
        preference sequence.  If the problem's own format is listed it
        is returned unchanged; otherwise it is converted to the first
        listed format.
    budget:
        Optional per-call densification budget in bytes, overriding the
        global one when a dense conversion is required.

    Raises
    ------
    ValidationError
        If ``problem`` does not implement the protocol or ``needs``
        names an unknown format.
    MemoryBudgetError
        If a required densification would blow the memory budget.
    """
    tags = _normalise_needs(needs)
    if not _is_problem(problem):
        raise ValidationError(
            "expected a sensing problem (DenseProblem or CsrProblem), got "
            f"{type(problem).__name__}; wrap raw matrices with "
            "repro.data.DenseProblem or repro.data.CsrProblem first"
        )
    fmt = problem.format
    if fmt in tags:
        return problem
    target = tags[0]
    if target == FORMAT_DENSE:
        return problem.dense_view(budget=budget)
    return problem.csr_view()


def _is_problem(obj: Any) -> bool:
    """Duck-typed protocol check.

    A scipy CSR matrix also carries ``.format == "csr"``, so the tag
    alone cannot identify a problem — the conversion surface can.
    """
    return (
        getattr(obj, "format", None) in FORMATS
        and hasattr(obj, "dense_view")
        and hasattr(obj, "csr_view")
    )


def _is_scipy_sparse(obj: Any) -> bool:
    """Duck-typed scipy-sparse check that never imports scipy."""
    return hasattr(obj, "toarray") and hasattr(obj, "nnz") and hasattr(obj, "shape")


def as_dependency_array(
    dependency: Any,
    *,
    budget: Optional[int] = None,
) -> np.ndarray:
    """A dense ndarray of dependency indicators from any spelling.

    Accepts a :class:`~repro.data.protocol.Problem` (its dependency
    matrix is extracted), a ``DependencyMatrix``, a scipy sparse
    matrix, or anything ``np.asarray`` understands.  Sparse inputs are
    densified under the memory budget — the bound computations
    (:mod:`repro.bounds`) enumerate dependency *columns* and are dense
    by nature, so this is the honest conversion point.
    """
    if _is_problem(dependency):
        dependency = dependency.dependency  # Problem → its D matrix
    values = getattr(dependency, "values", None)
    if isinstance(values, np.ndarray):  # DependencyMatrix / SourceClaimMatrix
        return values
    if _is_scipy_sparse(dependency):
        n, m = dependency.shape
        check_densify(n, m, budget)
        return np.asarray(dependency.todense())
    return np.asarray(dependency)


__all__ = ["Needs", "as_dependency_array", "coerce_problem"]
