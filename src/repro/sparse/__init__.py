"""Sparse substrate for full-scale field data (requires scipy)."""

from repro.sparse.em import SparseEMExt
from repro.sparse.extract import extract_dependency_sparse
from repro.sparse.problem import CsrProblem, SparseSensingProblem

__all__ = [
    "CsrProblem",
    "SparseEMExt",
    "SparseSensingProblem",
    "extract_dependency_sparse",
]
