"""Sparse dependency-aware EM for full-scale field data.

Mathematically identical to :class:`repro.core.em_ext.EMExtEstimator`;
all numerical work is delegated to the shared estimation engine's
:class:`~repro.engine.backends.CSRBackend`, which reorganises every
E- and M-step quantity into sparse mat-vecs touching only stored
entries (see its docstring for the base + corrections decomposition of
the likelihood).  Hierarchical smoothing and the staged initialisation
are the engine's shared implementations, so dense and sparse
estimators cannot drift apart.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.em_ext import EMConfig
from repro.core.result import EstimationResult
from repro.data.coerce import coerce_problem
from repro.data.protocol import FORMAT_CSR, Problem
from repro.engine.backends import CSRBackend
from repro.engine.driver import EMDriver, IterationCallback
from repro.engine.initialisation import staged_initialisation, support_initialisation
from repro.utils.errors import ValidationError


class SparseEMExt:
    """Dependency-aware EM over a :class:`SparseSensingProblem`.

    Supports the ``"staged"`` and ``"support"`` initialisation
    strategies (``"random"`` would need per-cell randomness that defeats
    the sparse representation's purpose and is rejected).  The
    estimator is deterministic, so ``n_restarts`` is ignored.
    """

    algorithm_name = "em-ext-sparse"

    #: Storage formats the numerics run on (data-layer declaration).
    accepts = (FORMAT_CSR,)

    def __init__(
        self,
        config: Optional[EMConfig] = None,
        *,
        callbacks: Sequence[IterationCallback] = (),
    ):
        self.config = config or EMConfig()
        self.callbacks = tuple(callbacks)
        if self.config.init_strategy == "random":
            raise ValidationError(
                "SparseEMExt supports init_strategy 'staged' or 'support' only"
            )

    def fit(self, problem: Problem) -> EstimationResult:
        """Run EM and return the standard estimation result.

        Dense input is converted to CSR first (always cheap — the CSR
        form is never larger than the dense one), so the sparse
        estimator is usable on any problem the data layer knows.
        """
        problem = coerce_problem(problem, needs=FORMAT_CSR)
        backend = CSRBackend(
            problem,
            smoothing=self.config.smoothing,
            epsilon=self.config.epsilon,
        )
        if self.config.init_strategy == "staged":
            params = staged_initialisation(backend, tolerance=self.config.tolerance)
        else:
            params = support_initialisation(backend)
        driver = EMDriver(
            max_iterations=self.config.max_iterations,
            tolerance=self.config.tolerance,
            callbacks=self.callbacks,
        )
        outcome = driver.run(backend, params)
        return EstimationResult(
            algorithm=self.algorithm_name,
            scores=outcome.posterior,
            decisions=outcome.decisions,
            parameters=outcome.parameters,
            log_likelihood=outcome.log_likelihood,
            converged=outcome.converged,
            n_iterations=outcome.n_iterations,
            trace=outcome.trace,
        )


__all__ = ["SparseEMExt"]
