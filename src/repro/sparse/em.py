"""Sparse dependency-aware EM for full-scale field data.

Mathematically identical to :class:`repro.core.em_ext.EMExtEstimator`;
reorganised so every E- and M-step quantity is a sparse mat-vec.

E-step decomposition (per assertion column ``j``, truth value true):

.. math::
    \\log P(SC_j | C_j = 1) = \\underbrace{\\sum_i \\log(1 - a_i)}_{base}
        + \\sum_{i: D_{ij}=1} \\big(\\log(1-f_i) - \\log(1-a_i)\\big)
        + \\sum_{i: SC_{ij}=1, D_{ij}=0} \\big(\\log a_i - \\log(1-a_i)\\big)
        + \\sum_{i: SC_{ij}=1, D_{ij}=1} \\big(\\log f_i - \\log(1-f_i)\\big)

i.e. one scalar plus three sparse-matrix transpose products.  The
false-branch term is identical with ``(b, g)``.

M-step ratios become, e.g.

.. math::
    a_i = \\frac{(SC \\odot (1-D))\\, Z}{(\\mathbf{1} - D)\\, Z}
        = \\frac{(SC - SC \\odot D)\\, Z}{\\sum_j Z_j - D\\, Z}

which again touch only stored entries.  Hierarchical smoothing and the
staged initialisation mirror the dense estimator.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.em_ext import EMConfig
from repro.core.model import SourceParameters
from repro.core.result import EstimationResult
from repro.sparse.problem import SparseSensingProblem
from repro.utils.errors import ValidationError


class SparseEMExt:
    """Dependency-aware EM over a :class:`SparseSensingProblem`.

    Supports the ``"staged"`` and ``"support"`` initialisation
    strategies (``"random"`` would need per-cell randomness that defeats
    the sparse representation's purpose and is rejected).
    """

    algorithm_name = "em-ext-sparse"

    def __init__(self, config: Optional[EMConfig] = None):
        self.config = config or EMConfig()
        if self.config.init_strategy == "random":
            raise ValidationError(
                "SparseEMExt supports init_strategy 'staged' or 'support' only"
            )

    def fit(self, problem: SparseSensingProblem) -> EstimationResult:
        """Run EM and return the standard estimation result."""
        sc = problem.claims
        dep = problem.dependency
        sc_dep = sc.multiply(dep).tocsr()  # dependent claims
        sc_indep = (sc - sc_dep).tocsr()  # independent claims
        posterior = self._initial_posterior(sc_indep, problem.n_assertions)
        params = self._neutral(problem.n_sources)
        if self.config.init_strategy == "staged":
            posterior, params = self._staged(sc_indep, sc_dep, dep, posterior, params)
        else:
            params = self._m_step(sc_indep, sc_dep, dep, posterior, params)
        posterior, _ = self._e_step(sc_indep, sc_dep, dep, params)
        converged = False
        n_iterations = 0
        log_likelihoods = []
        for n_iterations in range(1, self.config.max_iterations + 1):
            new_params = self._m_step(sc_indep, sc_dep, dep, posterior, params)
            delta = new_params.max_difference(params)
            params = new_params
            posterior, log_likelihood = self._e_step(sc_indep, sc_dep, dep, params)
            log_likelihoods.append(log_likelihood)
            if delta < self.config.tolerance:
                converged = True
                break
        decisions = (posterior >= 0.5).astype(np.int8)
        return EstimationResult(
            algorithm=self.algorithm_name,
            scores=posterior,
            decisions=decisions,
            parameters=params,
            log_likelihood=log_likelihoods[-1] if log_likelihoods else float("nan"),
            converged=converged,
            n_iterations=n_iterations,
        )

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _neutral(n_sources: int) -> SourceParameters:
        return SourceParameters.from_scalars(
            n_sources, a=0.55, b=0.45, f=0.55, g=0.45, z=0.5
        )

    def _initial_posterior(self, sc_indep, n_assertions: int) -> np.ndarray:
        support = np.asarray(sc_indep.sum(axis=0)).ravel()
        top = float(support.max()) if support.size else 0.0
        if top > 0:
            return 0.2 + 0.6 * support / top
        return np.full(n_assertions, 0.5)

    def _staged(
        self, sc_indep, sc_dep, dep, posterior: np.ndarray, params: SourceParameters
    ) -> Tuple[np.ndarray, SourceParameters]:
        """Stage one: independence model over independent cells only."""
        eps = self.config.epsilon
        n = params.n_sources
        t_rate = np.full(n, 0.55)
        b_rate = np.full(n, 0.45)
        z = 0.5
        dep_row_counts = np.asarray(dep.sum(axis=1)).ravel()
        for _ in range(40):
            t_rate = self._masked_rate(sc_indep, dep, dep_row_counts, posterior, t_rate)
            b_rate = self._masked_rate(
                sc_indep, dep, dep_row_counts, 1.0 - posterior, b_rate
            )
            z = float(np.clip(posterior.mean(), eps, 1 - eps)) if posterior.size else z
            log_true, log_false = self._masked_column_loglik(
                sc_indep, dep, t_rate, b_rate
            )
            new_posterior = _posterior(log_true, log_false, z)
            if (
                posterior.size
                and np.max(np.abs(new_posterior - posterior)) < self.config.tolerance
            ):
                posterior = new_posterior
                break
            posterior = new_posterior
        staged = SourceParameters(a=t_rate, b=b_rate, f=t_rate, g=b_rate, z=z)
        params = self._m_step(sc_indep, sc_dep, dep, posterior, staged)
        return posterior, params

    def _masked_rate(
        self, sc_indep, dep, dep_row_counts, weight: np.ndarray, previous: np.ndarray
    ) -> np.ndarray:
        eps = self.config.epsilon
        smoothing = self.config.smoothing
        numerator = np.asarray(sc_indep @ weight).ravel()
        total = float(weight.sum())
        denominator = total - np.asarray(dep @ weight).ravel()
        pooled_den = float(denominator.sum())
        pooled = float(numerator.sum()) / pooled_den if pooled_den > 0 else 0.5
        numerator = numerator + smoothing * pooled
        denominator = denominator + smoothing
        with np.errstate(invalid="ignore", divide="ignore"):
            ratio = numerator / denominator
        return np.clip(np.where(denominator > 0, ratio, previous), eps, 1 - eps)

    def _masked_column_loglik(self, sc_indep, dep, t_rate, b_rate):
        log_t, log_1t = np.log(t_rate), np.log1p(-t_rate)
        log_b, log_1b = np.log(b_rate), np.log1p(-b_rate)
        base_true = float(log_1t.sum())
        base_false = float(log_1b.sum())
        # Remove dependent (masked) cells from the base, add claims.
        dep_t = dep.T
        sc_t = sc_indep.T
        log_true = base_true - np.asarray(dep_t @ log_1t).ravel() + np.asarray(
            sc_t @ (log_t - log_1t)
        ).ravel()
        log_false = base_false - np.asarray(dep_t @ log_1b).ravel() + np.asarray(
            sc_t @ (log_b - log_1b)
        ).ravel()
        return log_true, log_false

    def _e_step(self, sc_indep, sc_dep, dep, params: SourceParameters):
        log_a, log_1a = np.log(params.a), np.log1p(-params.a)
        log_b, log_1b = np.log(params.b), np.log1p(-params.b)
        log_f, log_1f = np.log(params.f), np.log1p(-params.f)
        log_g, log_1g = np.log(params.g), np.log1p(-params.g)
        dep_t = dep.T
        indep_t = sc_indep.T
        dep_claims_t = sc_dep.T
        log_true = (
            float(log_1a.sum())
            + np.asarray(dep_t @ (log_1f - log_1a)).ravel()
            + np.asarray(indep_t @ (log_a - log_1a)).ravel()
            + np.asarray(dep_claims_t @ (log_f - log_1f)).ravel()
        )
        log_false = (
            float(log_1b.sum())
            + np.asarray(dep_t @ (log_1g - log_1b)).ravel()
            + np.asarray(indep_t @ (log_b - log_1b)).ravel()
            + np.asarray(dep_claims_t @ (log_g - log_1g)).ravel()
        )
        posterior = _posterior(log_true, log_false, params.z)
        joint_true = log_true + np.log(params.z)
        joint_false = log_false + np.log1p(-params.z)
        top = np.maximum(joint_true, joint_false)
        log_likelihood = float(
            (top + np.log(np.exp(joint_true - top) + np.exp(joint_false - top))).sum()
        )
        return posterior, log_likelihood

    def _m_step(
        self, sc_indep, sc_dep, dep, posterior: np.ndarray, previous: SourceParameters
    ) -> SourceParameters:
        smoothing = self.config.smoothing
        eps = self.config.epsilon
        z_mass = posterior
        y_mass = 1.0 - posterior
        z_total = float(z_mass.sum())
        y_total = float(y_mass.sum())

        def _ratio(matrix, weight, weight_total, fallback):
            numerator = np.asarray(matrix @ weight).ravel()
            dep_weight = np.asarray(dep @ weight).ravel()
            if matrix is sc_dep:
                denominator = dep_weight
            else:
                denominator = weight_total - dep_weight
            pooled_den = float(denominator.sum())
            pooled = float(numerator.sum()) / pooled_den if pooled_den > 0 else 0.5
            numerator = numerator + smoothing * pooled
            denominator = denominator + smoothing
            with np.errstate(invalid="ignore", divide="ignore"):
                # The subtracted denominator can undershoot the
                # numerator by float rounding; clip to stay a rate.
                ratio = np.clip(numerator / denominator, 0.0, 1.0)
            return np.where(denominator > 0, ratio, fallback)

        a = _ratio(sc_indep, z_mass, z_total, previous.a)
        f = _ratio(sc_dep, z_mass, z_total, previous.f)
        b = _ratio(sc_indep, y_mass, y_total, previous.b)
        g = _ratio(sc_dep, y_mass, y_total, previous.g)
        z = float(posterior.mean()) if posterior.size else previous.z
        return SourceParameters(a=a, b=b, f=f, g=g, z=z).clamp(eps)


def _posterior(log_true: np.ndarray, log_false: np.ndarray, z: float) -> np.ndarray:
    joint_true = log_true + np.log(z)
    joint_false = log_false + np.log1p(-z)
    top = np.maximum(joint_true, joint_false)
    numerator = np.exp(joint_true - top)
    return numerator / (numerator + np.exp(joint_false - top))


__all__ = ["SparseEMExt"]
