"""Sparse dependency extraction: event log + follow graph → CSR matrices.

The dense extractor (:mod:`repro.network.dependency`) materialises an
``(n, m)`` first-report-time matrix — ~7 GB for the Paris Attack crawl.
This extractor touches only the cells that can possibly be non-zero:

* claims — one per (source, assertion) pair present in the log;
* dependent cells — only (follower-of-claimer, claimed-assertion)
  pairs, found by walking each assertion's claimer list.

Semantics match the dense extractor exactly (verified by tests): a
claim is dependent when an ancestor reported the assertion strictly
earlier; a non-claim cell is dependent when any ancestor reported the
assertion at all.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.csr import CsrProblem
from repro.network.events import EventLog
from repro.network.graph import FollowGraph
from repro.utils.errors import ValidationError
from repro.utils.validation import check_in_choices

_POLICIES = ("direct", "transitive")


def extract_dependency_sparse(
    log: EventLog,
    graph: FollowGraph,
    *,
    n_assertions: int,
    policy: str = "direct",
    truth=None,
    source_ids: Optional[Sequence[str]] = None,
    assertion_ids: Optional[Sequence[str]] = None,
) -> CsrProblem:
    """Build a :class:`~repro.data.csr.CsrProblem` from an event stream.

    ``source_ids`` / ``assertion_ids`` attach the original identifiers
    (user names, assertion keys) so they survive format conversions and
    serialisation; omitted axes get the ``S{i}``/``C{j}`` defaults.
    """
    check_in_choices(policy, "policy", _POLICIES)
    from scipy import sparse

    n_sources = graph.n_sources
    if log.n_sources > n_sources:
        raise ValidationError(
            f"log references source {log.n_sources - 1} but the graph has "
            f"only {n_sources} sources"
        )
    if log.n_assertions > n_assertions:
        raise ValidationError(
            f"log references assertion {log.n_assertions - 1} but "
            f"n_assertions={n_assertions}"
        )
    transitive = policy == "transitive"

    # First report time per (source, assertion) — dict-of-dicts, sparse.
    first_time: Dict[int, Dict[int, float]] = defaultdict(dict)
    claimers: Dict[int, List[int]] = defaultdict(list)
    for post in log:
        cell = first_time[post.assertion]
        previous = cell.get(post.source)
        if previous is None:
            cell[post.source] = post.time
            claimers[post.assertion].append(post.source)
        elif post.time < previous:
            cell[post.source] = post.time

    claim_rows: List[int] = []
    claim_cols: List[int] = []
    dep_rows: List[int] = []
    dep_cols: List[int] = []

    ancestor_cache: Dict[int, frozenset] = {}

    def _ancestors(source: int) -> frozenset:
        cached = ancestor_cache.get(source)
        if cached is None:
            cached = frozenset(graph.ancestors(source, transitive=transitive))
            ancestor_cache[source] = cached
        return cached

    for assertion, times in first_time.items():
        # Candidate dependent sources: followers of any claimer.
        exposed: Dict[int, float] = {}
        for claimer in claimers[assertion]:
            claimer_time = times[claimer]
            for follower in graph.followers(claimer):
                earliest = exposed.get(follower)
                if earliest is None or claimer_time < earliest:
                    exposed[follower] = claimer_time
        if transitive:
            # Under transitive ancestry exposure reaches every source
            # that can see a claimer through a follow chain: the
            # claimers' descendants in the follower direction.
            candidates = set()
            frontier = list(times)
            seen = set(frontier)
            while frontier:
                node = frontier.pop()
                for follower in graph.followers(node):
                    if follower not in seen:
                        seen.add(follower)
                        frontier.append(follower)
                    candidates.add(follower)
            candidates |= set(times)
            exposed = {}
            for candidate in candidates:
                ancestor_times = [
                    times[a] for a in _ancestors(candidate) if a in times
                ]
                if ancestor_times:
                    exposed[candidate] = min(ancestor_times)
        for source, own_time in times.items():
            claim_rows.append(source)
            claim_cols.append(assertion)
            earliest = exposed.get(source)
            if earliest is not None and earliest < own_time:
                dep_rows.append(source)
                dep_cols.append(assertion)
        for source, earliest in exposed.items():
            if source not in times:
                dep_rows.append(source)
                dep_cols.append(assertion)

    shape = (n_sources, n_assertions)
    claims = sparse.csr_matrix(
        (np.ones(len(claim_rows), dtype=np.int8), (claim_rows, claim_cols)),
        shape=shape,
    )
    dependency = sparse.csr_matrix(
        (np.ones(len(dep_rows), dtype=np.int8), (dep_rows, dep_cols)),
        shape=shape,
    )
    return CsrProblem(
        claims=claims,
        dependency=dependency,
        truth=truth,
        source_ids=list(source_ids) if source_ids is not None else None,
        assertion_ids=list(assertion_ids) if assertion_ids is not None else None,
    )


__all__ = ["extract_dependency_sparse"]
