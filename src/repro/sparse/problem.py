"""Sparse sensing-problem container (compatibility adapter).

The CSR container now lives in the format-polymorphic data layer
(:mod:`repro.data.csr`); this module re-exports it under its
historical import path.  ``SparseSensingProblem`` is
:class:`repro.data.CsrProblem` — same validation, plus the id
metadata and the budget-guarded :meth:`~repro.data.csr.CsrProblem.dense_view`
that the old container lacked.
"""

from __future__ import annotations

from repro.data.csr import CsrProblem, SparseSensingProblem

__all__ = ["CsrProblem", "SparseSensingProblem"]
