"""Sparse sensing problems for full-scale field data.

A dense ``(n, m)`` cell matrix for the paper's Paris Attack crawl
(38 844 × 23 513) needs ~7 GB; the actual content is ~41k claims and a
few hundred thousand dependent cells.  This module stores both matrices
as CSR and feeds the sparse EM (:mod:`repro.sparse.em`).

scipy is an optional dependency, imported lazily with a clear error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.matrix import SensingProblem
from repro.utils.errors import ValidationError


def _sparse_module():
    try:
        from scipy import sparse
    except ImportError as error:  # pragma: no cover - environment-specific
        raise ImportError(
            "sparse problems require scipy; install repro[sparse]"
        ) from error
    return sparse


@dataclass
class SparseSensingProblem:
    """CSR-backed counterpart of :class:`SensingProblem`.

    ``claims`` and ``dependency`` are ``scipy.sparse.csr_matrix`` with
    0/1 entries and identical shape; ``truth`` is optional per-assertion
    labels, exactly as in the dense container.
    """

    claims: "object"
    dependency: "object"
    truth: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        sparse = _sparse_module()
        self.claims = sparse.csr_matrix(self.claims, dtype=np.float64)
        self.dependency = sparse.csr_matrix(self.dependency, dtype=np.float64)
        if self.claims.shape != self.dependency.shape:
            raise ValidationError(
                f"claims {self.claims.shape} and dependency "
                f"{self.dependency.shape} must share a shape"
            )
        for name, matrix in (("claims", self.claims), ("dependency", self.dependency)):
            if matrix.nnz and not np.isin(matrix.data, (0.0, 1.0)).all():
                raise ValidationError(f"{name} must contain only 0/1 entries")
        self.claims.eliminate_zeros()
        self.dependency.eliminate_zeros()
        if self.truth is not None:
            truth = np.asarray(self.truth)
            if truth.shape != (self.claims.shape[1],):
                raise ValidationError(
                    f"truth must have shape ({self.claims.shape[1]},), "
                    f"got {truth.shape}"
                )
            if truth.size and not np.isin(truth, (0, 1)).all():
                raise ValidationError("truth must contain only 0/1 labels")
            self.truth = truth.astype(np.int8)

    @property
    def n_sources(self) -> int:
        """Number of sources (rows)."""
        return self.claims.shape[0]

    @property
    def n_assertions(self) -> int:
        """Number of assertions (columns)."""
        return self.claims.shape[1]

    @property
    def n_claims(self) -> int:
        """Total number of claims."""
        return int(self.claims.nnz)

    @property
    def has_truth(self) -> bool:
        """Whether ground-truth labels are attached."""
        return self.truth is not None

    def without_truth(self) -> "SparseSensingProblem":
        """A copy without ground truth (what an estimator may see)."""
        return SparseSensingProblem(claims=self.claims, dependency=self.dependency)

    @classmethod
    def from_dense(cls, problem: SensingProblem) -> "SparseSensingProblem":
        """Convert a dense problem (mostly for tests and small data)."""
        return cls(
            claims=problem.claims.values,
            dependency=problem.dependency.values,
            truth=problem.truth,
        )

    def to_dense(self) -> SensingProblem:
        """Materialise as a dense problem (refuse absurd sizes)."""
        cells = self.n_sources * self.n_assertions
        if cells > 50_000_000:
            raise ValidationError(
                f"refusing to densify {self.n_sources} x {self.n_assertions} "
                "cells; use the sparse estimator instead"
            )
        return SensingProblem(
            claims=np.asarray(self.claims.todense(), dtype=np.int8),
            dependency=np.asarray(self.dependency.todense(), dtype=np.int8),
            truth=self.truth,
        )

    def dependent_claim_fraction(self) -> float:
        """Fraction of claims that are dependent."""
        if self.claims.nnz == 0:
            return 0.0
        overlap = self.claims.multiply(self.dependency)
        return float(overlap.nnz / self.claims.nnz)


__all__ = ["SparseSensingProblem"]
