"""Catalogue of the five Table III datasets.

The specs carry the exact period, evaluation day, and scale targets the
paper reports; :func:`simulate_dataset` produces a seeded simulation of
any of them at an optional sub-scale (the full Paris Attack crawl has
~41k claims; benchmarks typically run the evaluation-day slice at
``scale≈0.1``).
"""

from __future__ import annotations

from typing import Dict, List

from repro.datasets.twitter_sim import DatasetSpec, TwitterDataset, TwitterSimulator
from repro.utils.errors import ValidationError
from repro.utils.rng import SeedLike

#: Table III, verbatim targets.
DATASET_SPECS: Dict[str, DatasetSpec] = {
    "ukraine": DatasetSpec(
        name="Ukraine",
        theme="ukraine",
        location="Ukraine",
        start_time="Feb 20 12:15:28 2015",
        end_time="Mar 31 23:10:12 2015",
        evaluation_day="Mar 14 2015",
        n_assertions=3703,
        n_sources=5403,
        n_claims=7192,
        n_original_claims=4242,
    ),
    "kirkuk": DatasetSpec(
        name="Kirkuk",
        theme="kirkuk",
        location="Kirkuk",
        start_time="Jan 31 01:47:25 2015",
        end_time="Apr 02 02:41:15 2015",
        evaluation_day="Mar 10 2015",
        n_assertions=2795,
        n_sources=4816,
        n_claims=6188,
        n_original_claims=3079,
    ),
    "superbug": DatasetSpec(
        name="Superbug",
        theme="superbug",
        location="LA",
        start_time="Feb 19 17:42:39 2015",
        end_time="Apr 09 18:29:01 2015",
        evaluation_day="Mar 4 2015",
        n_assertions=2873,
        n_sources=7764,
        n_claims=9426,
        n_original_claims=5831,
    ),
    "la_marathon": DatasetSpec(
        name="LA Marathon",
        theme="la_marathon",
        location="LA",
        start_time="Mar 12 01:38:29 2015",
        end_time="Mar 18 02:14:42 2015",
        evaluation_day="Mar 15 2015",
        n_assertions=3537,
        n_sources=5174,
        n_claims=7148,
        n_original_claims=4332,
    ),
    "paris_attack": DatasetSpec(
        name="Paris Attack",
        theme="paris_attack",
        location="Paris",
        start_time="Nov 14 18:17:14 2015",
        end_time="Nov 24 17:28:02 2015",
        evaluation_day="Nov 14 2015",
        n_assertions=23513,
        n_sources=38844,
        n_claims=41249,
        n_original_claims=38794,
    ),
}

#: Dataset order used by Figure 11 and Table III.
DATASET_ORDER: List[str] = [
    "ukraine",
    "kirkuk",
    "superbug",
    "la_marathon",
    "paris_attack",
]


def get_spec(name: str) -> DatasetSpec:
    """Look up a Table III dataset spec by key."""
    if name not in DATASET_SPECS:
        raise ValidationError(
            f"unknown dataset {name!r}; available: {DATASET_ORDER}"
        )
    return DATASET_SPECS[name]


def simulate_dataset(
    name: str, *, scale: float = 1.0, seed: SeedLike = None
) -> TwitterDataset:
    """Simulate one Table III dataset at ``scale`` with a fixed seed."""
    return TwitterSimulator(get_spec(name), scale=scale, seed=seed).simulate()


def benchmark_scale(name: str, target_assertions: int = 400) -> float:
    """A scale that keeps the dataset around ``target_assertions`` clusters.

    Used by the Figure 11 benchmark so the seven-algorithm sweep stays
    interactive while preserving each dataset's relative proportions.
    """
    spec = get_spec(name)
    return min(1.0, target_assertions / spec.n_assertions)


__all__ = [
    "DATASET_ORDER",
    "DATASET_SPECS",
    "benchmark_scale",
    "get_spec",
    "simulate_dataset",
]
