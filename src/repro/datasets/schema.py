"""Record types for the (simulated) Twitter datasets.

The empirical evaluation (Section V-C) runs on five Twitter crawls that
are no longer publicly retrievable; the library re-creates them as
seeded simulations matched to Table III's scale (DESIGN.md §6).  These
records define the dataset surface: tweets, assertion labels, and the
Table III summary row.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

from repro.utils.errors import ValidationError


class AssertionLabel(Enum):
    """Ground-truth category of an assertion, as the paper's graders used.

    ``TRUE``/``FALSE`` are verifiable assertions; ``OPINION`` covers
    subjective assessments and non-sensing posts, which count against an
    algorithm's precision in the Figure 11 metric.
    """

    TRUE = "true"
    FALSE = "false"
    OPINION = "opinion"

    @property
    def is_verifiable(self) -> bool:
        """Whether the label is a verifiable true/false judgement."""
        return self is not AssertionLabel.OPINION


@dataclass(frozen=True)
class Tweet:
    """One (simulated) tweet.

    ``time`` is in fractional days since the dataset's start time;
    ``assertion`` is the ground-truth cluster id (hidden from
    text-level pipeline runs, which must re-cluster from ``text``).
    """

    tweet_id: int
    user: int
    time: float
    text: str
    assertion: int
    retweet_of: Optional[int] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValidationError(f"tweet time must be non-negative, got {self.time}")
        if self.retweet_of is not None and self.retweet_of == self.tweet_id:
            raise ValidationError(f"tweet {self.tweet_id} cannot retweet itself")

    @property
    def is_retweet(self) -> bool:
        """Whether the tweet repeats an earlier tweet."""
        return self.retweet_of is not None


@dataclass(frozen=True)
class DatasetSummary:
    """One row of Table III."""

    name: str
    start_time: str
    end_time: str
    evaluation_day: str
    n_assertions: int
    n_sources: int
    n_total_claims: int
    n_original_claims: int
    location: str

    def as_row(self) -> Tuple:
        """The row in Table III's column order."""
        return (
            self.name,
            self.start_time,
            self.end_time,
            self.evaluation_day,
            self.n_assertions,
            self.n_sources,
            self.n_total_claims,
            self.n_original_claims,
            self.location,
        )

    @staticmethod
    def header() -> Tuple[str, ...]:
        """Column names matching Table III."""
        return (
            "Dataset",
            "Total Start Time (UTC)",
            "Total End Time (UTC)",
            "Evaluation Day",
            "#Assertions",
            "#Sources",
            "#Total Claims",
            "#Original Claims",
            "Locations",
        )


__all__ = ["AssertionLabel", "DatasetSummary", "Tweet"]
