"""Cascade analytics for (simulated) crawls.

The phenomena the paper studies — rumours spreading further per
original post than verified facts, cascades concentrating in the
unreliable fringe — are properties of the retweet *cascades*.  These
helpers measure them, both to validate the simulator against its
design goals and to analyse any tweet stream fed to the pipeline.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.datasets.schema import AssertionLabel, Tweet
from repro.utils.errors import DataError


@dataclass(frozen=True)
class Cascade:
    """One retweet tree: a root tweet and all its (transitive) repeats."""

    root_id: int
    assertion: int
    size: int
    depth: int
    users: int


@dataclass(frozen=True)
class CascadeSummary:
    """Aggregate cascade statistics of a tweet stream."""

    n_cascades: int
    n_singletons: int
    mean_size: float
    max_size: int
    mean_depth: float
    retweet_fraction: float

    @staticmethod
    def empty() -> "CascadeSummary":
        """Summary of a stream with no tweets."""
        return CascadeSummary(
            n_cascades=0, n_singletons=0, mean_size=0.0, max_size=0,
            mean_depth=0.0, retweet_fraction=0.0,
        )


def extract_cascades(tweets: Sequence[Tweet]) -> List[Cascade]:
    """Group tweets into retweet cascades (roots = non-retweets).

    A retweet whose parent is missing from the stream is treated as its
    own root (consistent with the pipeline's windowing behaviour).
    """
    by_id: Dict[int, Tweet] = {t.tweet_id: t for t in tweets}
    if len(by_id) != len(tweets):
        raise DataError("duplicate tweet ids in stream")

    def _root_and_depth(tweet: Tweet) -> tuple:
        depth = 0
        current = tweet
        seen = {tweet.tweet_id}
        while current.retweet_of is not None and current.retweet_of in by_id:
            current = by_id[current.retweet_of]
            if current.tweet_id in seen:
                raise DataError("retweet cycle detected")
            seen.add(current.tweet_id)
            depth += 1
        return current.tweet_id, depth

    members: Dict[int, List[Tweet]] = defaultdict(list)
    depths: Dict[int, int] = defaultdict(int)
    for tweet in tweets:
        root_id, depth = _root_and_depth(tweet)
        members[root_id].append(tweet)
        depths[root_id] = max(depths[root_id], depth)
    cascades = []
    for root_id, group in members.items():
        root = by_id[root_id]
        cascades.append(
            Cascade(
                root_id=root_id,
                assertion=root.assertion,
                size=len(group),
                depth=depths[root_id],
                users=len({t.user for t in group}),
            )
        )
    return sorted(cascades, key=lambda c: (-c.size, c.root_id))


def summarize_cascades(tweets: Sequence[Tweet]) -> CascadeSummary:
    """Aggregate cascade statistics of a tweet stream."""
    if not tweets:
        return CascadeSummary.empty()
    cascades = extract_cascades(tweets)
    sizes = np.array([c.size for c in cascades])
    depths = np.array([c.depth for c in cascades])
    n_retweets = sum(1 for t in tweets if t.is_retweet)
    return CascadeSummary(
        n_cascades=len(cascades),
        n_singletons=int((sizes == 1).sum()),
        mean_size=float(sizes.mean()),
        max_size=int(sizes.max()),
        mean_depth=float(depths.mean()),
        retweet_fraction=n_retweets / len(tweets),
    )


def virality_by_label(
    tweets: Sequence[Tweet], labels: Sequence[AssertionLabel]
) -> Dict[AssertionLabel, float]:
    """Mean retweets per original post, split by assertion label.

    This is the quantity the simulator's virality knobs control and the
    quantity that defeats counting-based fact-finders when it differs
    across labels.
    """
    originals: Dict[AssertionLabel, int] = defaultdict(int)
    retweets: Dict[AssertionLabel, int] = defaultdict(int)
    for tweet in tweets:
        if not 0 <= tweet.assertion < len(labels):
            raise DataError(
                f"tweet {tweet.tweet_id} references unlabelled assertion "
                f"{tweet.assertion}"
            )
        label = labels[tweet.assertion]
        if tweet.is_retweet:
            retweets[label] += 1
        else:
            originals[label] += 1
    return {
        label: (retweets[label] / originals[label]) if originals[label] else 0.0
        for label in AssertionLabel
    }


__all__ = [
    "Cascade",
    "CascadeSummary",
    "extract_cascades",
    "summarize_cascades",
    "virality_by_label",
]
