"""Themed vocabularies for rendering simulated tweet text.

Each of the five Table III datasets gets a small template vocabulary so
the simulator can render every assertion as a canonical sentence and
every tweet as a noisy variant of it.  The Apollo pipeline's clustering
stage (:mod:`repro.pipeline.cluster`) then has realistic material to
re-discover assertion groups from text alone.

The vocabularies are fictional paraphrases of the event domains the
paper describes; no real tweet content is reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.utils.errors import ValidationError


@dataclass(frozen=True)
class Vocabulary:
    """Sentence ingredients for one dataset theme."""

    subjects: List[str]
    verbs: List[str]
    objects: List[str]
    places: List[str]
    hashtags: List[str]

    def render_assertion(self, rng: np.random.Generator) -> str:
        """Compose one canonical assertion sentence."""
        parts = [
            str(rng.choice(self.subjects)),
            str(rng.choice(self.verbs)),
            str(rng.choice(self.objects)),
            "at" if rng.random() < 0.5 else "near",
            str(rng.choice(self.places)),
            str(rng.choice(self.hashtags)),
        ]
        return " ".join(parts)


#: Mild filler tokens sprinkled into original tweets so text-level
#: clustering faces realistic (but solvable) noise.
FILLERS = (
    "BREAKING:",
    "confirmed",
    "unconfirmed",
    "just heard",
    "reports say",
    "developing",
    "sources claim",
    "happening now",
)

VOCABULARIES: Dict[str, Vocabulary] = {
    "ukraine": Vocabulary(
        subjects=["president", "spokesman", "delegation", "ministry", "convoy"],
        verbs=["postponed", "cancelled", "denied", "confirmed", "scheduled"],
        objects=["treaty signing", "press briefing", "state visit", "negotiation", "ceasefire talks"],
        places=["Moscow", "Kiev", "Minsk", "the Kremlin", "Astana"],
        hashtags=["#ukraine", "#russia", "#putin", "#kremlinwatch"],
    ),
    "kirkuk": Vocabulary(
        subjects=["kurdish forces", "peshmerga units", "militants", "coalition jets", "local police"],
        verbs=["attacked", "recaptured", "shelled", "secured", "withdrew from"],
        objects=["oil facilities", "checkpoints", "a supply route", "village outskirts", "a military base"],
        places=["Kirkuk", "the southern front", "the refinery district", "highway 80", "the citadel"],
        hashtags=["#kirkuk", "#iraq", "#peshmerga", "#frontline"],
    ),
    "superbug": Vocabulary(
        subjects=["hospital officials", "health department", "doctors", "the CDC team", "nurses"],
        verbs=["reported", "quarantined", "screened", "traced", "disinfected"],
        objects=["new infections", "contaminated scopes", "exposed patients", "an outbreak ward", "test results"],
        places=["the medical center", "UCLA campus", "the endoscopy unit", "Los Angeles", "the ICU"],
        hashtags=["#superbug", "#CRE", "#outbreak", "#LAhealth"],
    ),
    "la_marathon": Vocabulary(
        subjects=["runners", "spectators", "organizers", "paramedics", "volunteers"],
        verbs=["crowded", "cheered along", "closed", "rerouted", "cooled down at"],
        objects=["the start corral", "mile marker 18", "a water station", "the finish chute", "the elite pack"],
        places=["Dodger Stadium", "Echo Park", "Sunset Blvd", "Santa Monica Pier", "Ocean Avenue"],
        hashtags=["#LAmarathon", "#running", "#LA2015", "#finishline"],
    ),
    "paris_attack": Vocabulary(
        subjects=["police units", "witnesses", "officials", "emergency crews", "residents"],
        verbs=["evacuated", "sealed off", "reported gunfire at", "searched", "sheltered in"],
        objects=["the concert hall", "a cafe terrace", "the stadium gates", "metro entrances", "an apartment block"],
        places=["the 11th arrondissement", "Bataclan", "Saint-Denis", "Place de la Republique", "boulevard Voltaire"],
        hashtags=["#paris", "#parisattacks", "#porteouverte", "#prayforparis"],
    ),
}


def get_vocabulary(theme: str) -> Vocabulary:
    """Look up the vocabulary for a dataset theme."""
    if theme not in VOCABULARIES:
        raise ValidationError(
            f"unknown vocabulary theme {theme!r}; available: {sorted(VOCABULARIES)}"
        )
    return VOCABULARIES[theme]


def render_tweet_text(
    canonical: str, rng: np.random.Generator, *, retweet_user: int = None
) -> str:
    """Render one tweet's text from its assertion's canonical sentence.

    Originals get optional filler prefixes; retweets get the standard
    ``RT @user:`` prefix and otherwise repeat the canonical text —
    matching how retweet text actually behaves.
    """
    if retweet_user is not None:
        return f"RT @user{retweet_user}: {canonical}"
    if rng.random() < 0.4:
        return f"{rng.choice(FILLERS)} {canonical}"
    return canonical


__all__ = ["FILLERS", "VOCABULARIES", "Vocabulary", "get_vocabulary", "render_tweet_text"]
