"""Table III reproduction: summarise simulated datasets side by side."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.datasets.catalog import DATASET_ORDER, get_spec, simulate_dataset
from repro.datasets.schema import DatasetSummary
from repro.utils.rng import SeedLike


def summarize_catalog(
    names: Optional[Iterable[str]] = None,
    *,
    scale: float = 1.0,
    seed: SeedLike = 2015,
) -> List[DatasetSummary]:
    """Simulate and summarise the catalogue datasets (Table III rows)."""
    names = list(names) if names is not None else DATASET_ORDER
    summaries = []
    for index, name in enumerate(names):
        dataset = simulate_dataset(name, scale=scale, seed=(seed, index))
        summaries.append(dataset.summary())
    return summaries


def target_row(name: str) -> DatasetSummary:
    """The paper's Table III row (the simulation's calibration target)."""
    spec = get_spec(name)
    return DatasetSummary(
        name=spec.name,
        start_time=spec.start_time,
        end_time=spec.end_time,
        evaluation_day=spec.evaluation_day,
        n_assertions=spec.n_assertions,
        n_sources=spec.n_sources,
        n_total_claims=spec.n_claims,
        n_original_claims=spec.n_original_claims,
        location=spec.location,
    )


def relative_errors(measured: DatasetSummary, target: DatasetSummary) -> Dict[str, float]:
    """Relative count deviations of a simulation from its Table III target."""

    def _rel(a: int, b: int) -> float:
        return abs(a - b) / max(b, 1)

    return {
        "n_assertions": _rel(measured.n_assertions, target.n_assertions),
        "n_sources": _rel(measured.n_sources, target.n_sources),
        "n_total_claims": _rel(measured.n_total_claims, target.n_total_claims),
        "n_original_claims": _rel(
            measured.n_original_claims, target.n_original_claims
        ),
    }


def format_table(summaries: Iterable[DatasetSummary]) -> str:
    """Render summaries as a fixed-width text table (Table III layout)."""
    rows = [DatasetSummary.header()] + [
        tuple(str(v) for v in s.as_row()) for s in summaries
    ]
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    lines = []
    for index, row in enumerate(rows):
        line = "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("-" * len(line))
    return "\n".join(lines)


__all__ = ["format_table", "relative_errors", "summarize_catalog", "target_row"]
