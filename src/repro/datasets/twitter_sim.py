"""Simulated Twitter platform re-creating the Table III datasets.

The paper's five 2015 crawls are unavailable offline, so the library
re-creates each as a seeded platform simulation matched to the table's
scale (sources, assertions, total claims, original claims) and period
(DESIGN.md §6).  The simulation reproduces the *mechanisms* the paper
studies rather than the literal content:

* a preferential-attachment follow graph (few celebrities, many
  lurkers);
* heavy-tailed source activity and assertion popularity;
* per-source reliability — reliable sources rarely originate false
  assertions;
* retweet cascades with label-dependent virality — false rumours spread
  further per original than verified facts, which is exactly the
  correlated-error phenomenon that defeats independence-assuming
  fact-finders;
* a minority of unverifiable "opinion" assertions, which count against
  precision in the Figure 11 metric.

The full-scale simulation reproduces Table III; the evaluation-day
slice (what Section V-C actually feeds the algorithms) is extracted
with :meth:`TwitterDataset.evaluation_slice`.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.data.dense import DenseProblem
from repro.data.protocol import FORMATS, FORMAT_DENSE, Problem
from repro.datasets.schema import AssertionLabel, DatasetSummary, Tweet
from repro.datasets.vocab import get_vocabulary, render_tweet_text
from repro.network.dependency import extract_dependency
from repro.network.events import EventLog, Post
from repro.network.generators import preferential_attachment
from repro.network.graph import FollowGraph
from repro.utils.errors import ValidationError
from repro.utils.rng import RandomState, SeedLike, derive_seed

_TIME_FORMAT = "%b %d %H:%M:%S %Y"

#: Ratio of the simulated source pool to the Table III distinct-source
#: target; with heavy-tailed activity, sampling the claim volume from a
#: pool this much larger lands near the target distinct count.
_POOL_RATIO = 2.6

#: Fraction of assertions whose event window opens on the evaluation day.
_EVAL_DAY_SHARE = 0.45


@dataclass(frozen=True)
class DatasetSpec:
    """Target shape of one Table III dataset."""

    name: str
    theme: str
    location: str
    start_time: str
    end_time: str
    evaluation_day: str
    n_assertions: int
    n_sources: int
    n_claims: int
    n_original_claims: int
    true_fraction: float = 0.45
    opinion_fraction: float = 0.20

    def __post_init__(self) -> None:
        if self.n_original_claims > self.n_claims:
            raise ValidationError(
                f"{self.name}: original claims ({self.n_original_claims}) "
                f"exceed total claims ({self.n_claims})"
            )
        if not 0 < self.true_fraction < 1 or not 0 <= self.opinion_fraction < 1:
            raise ValidationError(f"{self.name}: invalid label fractions")
        if self.true_fraction + self.opinion_fraction >= 1:
            raise ValidationError(
                f"{self.name}: true + opinion fractions must leave room for false"
            )

    @property
    def duration_days(self) -> float:
        """Length of the crawl period in days."""
        start = datetime.strptime(self.start_time, _TIME_FORMAT)
        end = datetime.strptime(self.end_time, _TIME_FORMAT)
        return (end - start).total_seconds() / 86400.0

    @property
    def evaluation_offset_days(self) -> float:
        """Days from the start time to 00:00 of the evaluation day."""
        start = datetime.strptime(self.start_time, _TIME_FORMAT)
        eval_day = datetime.strptime(self.evaluation_day, "%b %d %Y")
        offset = (eval_day - start).total_seconds() / 86400.0
        return max(0.0, offset)


@dataclass
class EvaluationSlice:
    """The evaluation-day sub-problem Section V-C feeds the algorithms.

    ``labels`` holds one :class:`AssertionLabel` per column of
    ``problem``; ``problem.truth`` is the binary projection (opinion →
    false) used only by synthetic-style metrics.  ``source_ids`` /
    ``assertion_ids`` map the slice's compact indices back to the full
    dataset's ids; the problem itself carries the string forms
    (``u{sid}`` / ``a{aid}``), so the mapping survives format
    conversions and serialisation.
    """

    problem: Problem
    labels: List[AssertionLabel]
    source_ids: List[int]
    assertion_ids: List[int]

    @property
    def n_sources(self) -> int:
        """Sources active on the evaluation day."""
        return self.problem.n_sources

    @property
    def n_assertions(self) -> int:
        """Assertions reported on the evaluation day."""
        return self.problem.n_assertions


@dataclass
class TwitterDataset:
    """One simulated crawl: tweets, labels, follow graph, and metadata."""

    spec: DatasetSpec
    scale: float
    tweets: List[Tweet]
    labels: List[AssertionLabel]
    graph: FollowGraph
    assertion_texts: List[str]

    @property
    def n_assertions(self) -> int:
        """Number of assertion clusters in the simulation."""
        return len(self.labels)

    def summary(self) -> DatasetSummary:
        """The measured Table III row of this simulation."""
        sources = {t.user for t in self.tweets}
        assertions = {t.assertion for t in self.tweets}
        claims: Set[Tuple[int, int]] = set()
        original_claims: Set[Tuple[int, int]] = set()
        for tweet in self.tweets:
            key = (tweet.user, tweet.assertion)
            claims.add(key)
            if not tweet.is_retweet:
                original_claims.add(key)
        return DatasetSummary(
            name=self.spec.name,
            start_time=self.spec.start_time,
            end_time=self.spec.end_time,
            evaluation_day=self.spec.evaluation_day,
            n_assertions=len(assertions),
            n_sources=len(sources),
            n_total_claims=len(claims),
            n_original_claims=len(original_claims),
            location=self.spec.location,
        )

    def event_log(self, tweets: Optional[Sequence[Tweet]] = None) -> EventLog:
        """Convert (a subset of) the tweets into an event log."""
        tweets = self.tweets if tweets is None else list(tweets)
        posts = [
            Post(
                post_id=t.tweet_id,
                source=t.user,
                assertion=t.assertion,
                time=t.time,
                retweet_of=t.retweet_of,
                text=t.text,
            )
            for t in tweets
        ]
        known = {t.tweet_id for t in tweets}
        posts = [
            p if (p.retweet_of is None or p.retweet_of in known) else Post(
                post_id=p.post_id,
                source=p.source,
                assertion=p.assertion,
                time=p.time,
                retweet_of=None,
                text=p.text,
            )
            for p in posts
        ]
        return EventLog(posts=posts)

    def evaluation_tweets(self) -> List[Tweet]:
        """Tweets posted during the evaluation day."""
        day_start = self.spec.evaluation_offset_days
        day_end = day_start + 1.0
        return [t for t in self.tweets if day_start <= t.time < day_end]

    def evaluation_slice(
        self, *, policy: str = "direct", output_format: str = FORMAT_DENSE
    ) -> EvaluationSlice:
        """Build the evaluation-day sensing problem (Section V-C input).

        ``output_format`` selects the storage format of the slice's
        problem (``"dense"`` by default, ``"csr"`` for crawl-scale
        runs).
        """
        if output_format not in FORMATS:
            raise ValidationError(
                f"output_format must be one of {FORMATS}, got {output_format!r}"
            )
        tweets = self.evaluation_tweets()
        if not tweets:
            raise ValidationError(
                f"{self.spec.name}: no tweets on the evaluation day; "
                "regenerate with another seed or larger scale"
            )
        source_ids = sorted({t.user for t in tweets})
        assertion_ids = sorted({t.assertion for t in tweets})
        source_index = {sid: k for k, sid in enumerate(source_ids)}
        assertion_index = {aid: k for k, aid in enumerate(assertion_ids)}
        day_start = self.spec.evaluation_offset_days
        posts = []
        for order, tweet in enumerate(sorted(tweets, key=lambda t: (t.time, t.tweet_id))):
            posts.append(
                Post(
                    post_id=order,
                    source=source_index[tweet.user],
                    assertion=assertion_index[tweet.assertion],
                    time=tweet.time - day_start,
                    text=tweet.text,
                )
            )
        log = EventLog(posts=posts)
        subgraph = FollowGraph(len(source_ids))
        for follower, followee in self.graph.edges():
            if follower in source_index and followee in source_index:
                subgraph.add_follow(source_index[follower], source_index[followee])
        claims, dependency = extract_dependency(
            log,
            subgraph,
            n_assertions=len(assertion_ids),
            policy=policy,
            source_ids=[f"u{sid}" for sid in source_ids],
            assertion_ids=[f"a{aid}" for aid in assertion_ids],
        )
        labels = [self.labels[aid] for aid in assertion_ids]
        truth = np.array(
            [1 if label is AssertionLabel.TRUE else 0 for label in labels],
            dtype=np.int8,
        )
        problem: Problem = DenseProblem(
            claims=claims, dependency=dependency, truth=truth
        )
        if output_format != FORMAT_DENSE:
            problem = problem.csr_view()
        return EvaluationSlice(
            problem=problem,
            labels=labels,
            source_ids=source_ids,
            assertion_ids=assertion_ids,
        )


class TwitterSimulator:
    """Seeded platform simulation targeting one :class:`DatasetSpec`."""

    def __init__(self, spec: DatasetSpec, *, scale: float = 1.0, seed: SeedLike = None):
        if not 0 < scale <= 1.0:
            raise ValidationError(f"scale must be in (0, 1], got {scale}")
        self.spec = spec
        self.scale = scale
        self._rng = RandomState(seed)

    def simulate(self) -> TwitterDataset:
        """Run the simulation and return the dataset."""
        rng = RandomState(derive_seed(self._rng))
        spec = self.spec
        m = max(20, int(round(spec.n_assertions * self.scale)))
        n_pool = max(50, int(round(spec.n_sources * self.scale * _POOL_RATIO)))
        n_originals = max(m, int(round(spec.n_original_claims * self.scale)))
        n_retweets = max(
            0, int(round((spec.n_claims - spec.n_original_claims) * self.scale))
        )

        labels = self._draw_labels(rng, m)
        vocabulary = get_vocabulary(spec.theme)
        assertion_texts = [vocabulary.render_assertion(rng) for _ in range(m)]
        graph = preferential_attachment(n_pool, links_per_source=3, seed=derive_seed(rng))
        activity = rng.lognormal(0.0, 0.9, size=n_pool)
        # Reliability correlates with activity: prolific accounts (news
        # desks, beat reporters) verify before posting far more often
        # than drive-by accounts.  This is also what gives per-source
        # estimators traction — the sources with enough claims to be
        # learnable are the ones whose reliability matters most.
        activity_rank = np.argsort(np.argsort(activity)) / max(n_pool - 1, 1)
        reliable = rng.random(n_pool) < (0.35 + 0.55 * activity_rank)
        popularity = rng.lognormal(0.0, 1.2, size=m)
        onsets, durations, on_eval_day = self._draw_windows(rng, m)
        # Breaking-news burst: evaluation-day assertions attract a
        # disproportionate share of the crawl's attention, which is why
        # the paper evaluates on those days in the first place.
        popularity = popularity * np.where(on_eval_day, 3.0, 1.0)

        tweets = self._originals(
            rng, m, n_originals, labels, popularity, activity, reliable,
            onsets, durations, assertion_texts,
        )
        tweets = self._retweets(
            rng, tweets, n_retweets, labels, popularity, graph, assertion_texts,
            reliable, activity,
        )
        tweets.sort(key=lambda t: t.time)
        renumbered = []
        id_map: Dict[int, int] = {}
        for new_id, tweet in enumerate(tweets):
            id_map[tweet.tweet_id] = new_id
            renumbered.append(
                Tweet(
                    tweet_id=new_id,
                    user=tweet.user,
                    time=tweet.time,
                    text=tweet.text,
                    assertion=tweet.assertion,
                    retweet_of=(
                        id_map[tweet.retweet_of]
                        if tweet.retweet_of is not None
                        else None
                    ),
                )
            )
        return TwitterDataset(
            spec=spec,
            scale=self.scale,
            tweets=renumbered,
            labels=labels,
            graph=graph,
            assertion_texts=assertion_texts,
        )

    # -- internals ---------------------------------------------------------------

    def _draw_labels(self, rng: np.random.Generator, m: int) -> List[AssertionLabel]:
        spec = self.spec
        false_fraction = 1.0 - spec.true_fraction - spec.opinion_fraction
        codes = rng.choice(
            3, size=m, p=[spec.true_fraction, false_fraction, spec.opinion_fraction]
        )
        mapping = (AssertionLabel.TRUE, AssertionLabel.FALSE, AssertionLabel.OPINION)
        return [mapping[int(c)] for c in codes]

    def _draw_windows(
        self, rng: np.random.Generator, m: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        spec = self.spec
        duration_days = max(spec.duration_days, 1.0)
        eval_offset = min(spec.evaluation_offset_days, duration_days - 1.0)
        onsets = np.empty(m)
        on_eval_day = rng.random(m) < _EVAL_DAY_SHARE
        onsets[on_eval_day] = eval_offset + rng.random(int(on_eval_day.sum())) * 0.8
        onsets[~on_eval_day] = rng.random(int((~on_eval_day).sum())) * duration_days * 0.95
        durations = rng.uniform(0.3, 2.0, size=m)
        return onsets, durations, on_eval_day

    def _originals(
        self,
        rng: np.random.Generator,
        m: int,
        n_originals: int,
        labels: List[AssertionLabel],
        popularity: np.ndarray,
        activity: np.ndarray,
        reliable: np.ndarray,
        onsets: np.ndarray,
        durations: np.ndarray,
        assertion_texts: List[str],
    ) -> List[Tweet]:
        # Rumours surface as bursts of parallel original posts from
        # unreliable accounts (the astroturf pattern), so false
        # assertions get a slightly *larger* share of originals — raw
        # support counts cannot separate them from verified news.
        label_factor = np.array(
            [
                1.3 if lab is AssertionLabel.TRUE
                else 0.7 if lab is AssertionLabel.FALSE
                else 1.0
                for lab in labels
            ]
        )
        weights = popularity * label_factor
        extra = n_originals - m
        counts = np.ones(m, dtype=np.int64)
        if extra > 0:
            counts += rng.multinomial(extra, weights / weights.sum())

        n_pool = activity.size
        source_weights = {
            AssertionLabel.TRUE: activity * np.where(reliable, 1.0, 0.55),
            AssertionLabel.FALSE: activity * np.where(reliable, 0.18, 1.0),
            AssertionLabel.OPINION: activity * np.where(reliable, 0.8, 1.0),
        }
        for key, w in source_weights.items():
            source_weights[key] = w / w.sum()

        tweets: List[Tweet] = []
        claimed: Set[Tuple[int, int]] = set()
        tweet_id = 0
        spec_duration = max(self.spec.duration_days, 1.0)
        for assertion in range(m):
            probabilities = source_weights[labels[assertion]]
            for _ in range(int(counts[assertion])):
                user = None
                for _attempt in range(6):
                    candidate = int(rng.choice(n_pool, p=probabilities))
                    if (candidate, assertion) not in claimed:
                        user = candidate
                        break
                if user is None:
                    continue
                claimed.add((user, assertion))
                delay = rng.exponential(durations[assertion] / 3.0)
                time = float(
                    np.clip(onsets[assertion] + delay, 0.0, spec_duration)
                )
                tweets.append(
                    Tweet(
                        tweet_id=tweet_id,
                        user=user,
                        time=time,
                        text=render_tweet_text(assertion_texts[assertion], rng),
                        assertion=assertion,
                    )
                )
                tweet_id += 1
        return tweets

    @staticmethod
    def _retweet_acceptance(label: AssertionLabel, is_reliable: bool) -> float:
        """Probability a candidate repeats a seen post.

        Reliable users verify before repeating (the paper's
        middle-ground behaviour between blind repetition and
        independent observation): they propagate confirmed facts and
        almost never rumours.  Unreliable users amplify whatever is
        viral — rumours most of all.
        """
        if is_reliable:
            if label is AssertionLabel.TRUE:
                return 0.9
            if label is AssertionLabel.FALSE:
                return 0.08
            return 0.4
        if label is AssertionLabel.TRUE:
            return 0.5
        if label is AssertionLabel.FALSE:
            return 0.9
        return 0.75

    def _retweets(
        self,
        rng: np.random.Generator,
        tweets: List[Tweet],
        n_retweets: int,
        labels: List[AssertionLabel],
        popularity: np.ndarray,
        graph: FollowGraph,
        assertion_texts: List[str],
        reliable: np.ndarray,
        activity: np.ndarray,
    ) -> List[Tweet]:
        if n_retweets == 0 or not tweets:
            return tweets
        m = len(labels)
        # Verified news earns the larger cascades (reliable accounts
        # verify, then repeat); rumours still cascade, but through the
        # unreliable fringe.  Dependent claims therefore carry real
        # information — the middle ground the paper's model occupies.
        virality = popularity * np.array(
            [
                2.5 if lab is AssertionLabel.FALSE
                else 1.3 if lab is AssertionLabel.OPINION
                else 1.0
                for lab in labels
            ]
        )
        posts_by_assertion: Dict[int, List[Tweet]] = {}
        claimed: Set[Tuple[int, int]] = set()
        for tweet in tweets:
            posts_by_assertion.setdefault(tweet.assertion, []).append(tweet)
            claimed.add((tweet.user, tweet.assertion))
        candidates = [a for a in range(m) if a in posts_by_assertion]
        weights = virality[candidates]
        weights = weights / weights.sum()
        tweet_id = max(t.tweet_id for t in tweets) + 1
        spec_duration = max(self.spec.duration_days, 1.0)
        produced = 0
        attempts = 0
        max_attempts = n_retweets * 8
        while produced < n_retweets and attempts < max_attempts:
            attempts += 1
            assertion = int(rng.choice(candidates, p=weights))
            pool = posts_by_assertion[assertion]
            parent = pool[int(rng.integers(0, len(pool)))]
            followers = sorted(graph.followers(parent.user))
            retweeter = None
            label = labels[assertion]
            if followers:
                # Active accounts retweet more: they are the hub
                # repeaters whose dependent behaviour a per-source
                # estimator can actually learn.
                follower_weights = activity[followers]
                order = rng.choice(
                    len(followers),
                    size=min(8, len(followers)),
                    replace=False,
                    p=follower_weights / follower_weights.sum(),
                )
                followers = [followers[i] for i in order]
            for follower in followers[:8]:
                if (follower, assertion) in claimed:
                    continue
                if rng.random() < self._retweet_acceptance(label, bool(reliable[follower])):
                    retweeter = follower
                    break
            if retweeter is None:
                # Discovery retweet: a random source finds the post (and
                # starts following its author, so the dependency
                # extractor can see the influence edge).
                candidate = int(rng.integers(0, graph.n_sources))
                if candidate == parent.user or (candidate, assertion) in claimed:
                    continue
                if rng.random() >= self._retweet_acceptance(
                    label, bool(reliable[candidate])
                ):
                    continue
                graph.add_follow(candidate, parent.user)
                retweeter = candidate
            claimed.add((retweeter, assertion))
            time = float(
                np.clip(parent.time + rng.exponential(0.08), 0.0, spec_duration)
            )
            if time <= parent.time:
                time = parent.time + 1e-6
            retweet = Tweet(
                tweet_id=tweet_id,
                user=retweeter,
                time=time,
                text=render_tweet_text(
                    assertion_texts[assertion], rng, retweet_user=parent.user
                ),
                assertion=assertion,
                retweet_of=parent.tweet_id,
            )
            tweets.append(retweet)
            posts_by_assertion[assertion].append(retweet)
            tweet_id += 1
            produced += 1
        return tweets


__all__ = [
    "DatasetSpec",
    "EvaluationSlice",
    "TwitterDataset",
    "TwitterSimulator",
]
