"""Simulated Twitter datasets matched to the paper's Table III."""

from repro.datasets.cascades import (
    Cascade,
    CascadeSummary,
    extract_cascades,
    summarize_cascades,
    virality_by_label,
)
from repro.datasets.catalog import (
    DATASET_ORDER,
    DATASET_SPECS,
    benchmark_scale,
    get_spec,
    simulate_dataset,
)
from repro.datasets.schema import AssertionLabel, DatasetSummary, Tweet
from repro.datasets.summary import (
    format_table,
    relative_errors,
    summarize_catalog,
    target_row,
)
from repro.datasets.twitter_sim import (
    DatasetSpec,
    EvaluationSlice,
    TwitterDataset,
    TwitterSimulator,
)
from repro.datasets.vocab import VOCABULARIES, Vocabulary, get_vocabulary

__all__ = [
    "AssertionLabel",
    "Cascade",
    "CascadeSummary",
    "DATASET_ORDER",
    "DATASET_SPECS",
    "DatasetSpec",
    "DatasetSummary",
    "EvaluationSlice",
    "Tweet",
    "TwitterDataset",
    "TwitterSimulator",
    "VOCABULARIES",
    "Vocabulary",
    "benchmark_scale",
    "extract_cascades",
    "format_table",
    "get_spec",
    "get_vocabulary",
    "relative_errors",
    "simulate_dataset",
    "summarize_cascades",
    "summarize_catalog",
    "target_row",
    "virality_by_label",
]
