"""Public API surface checks.

Every name a package advertises in ``__all__`` must resolve, and the
top-level package must re-export the documented entry points — these
tests catch broken re-exports before a user does.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.baselines",
    "repro.bounds",
    "repro.core",
    "repro.data",
    "repro.datasets",
    "repro.engine",
    "repro.eval",
    "repro.extensions",
    "repro.io",
    "repro.network",
    "repro.observability",
    "repro.parallel",
    "repro.pipeline",
    "repro.resilience",
    "repro.serve",
    "repro.sparse",
    "repro.synthetic",
    "repro.utils",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), package_name
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name}"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_is_sorted_and_unique(package_name):
    package = importlib.import_module(package_name)
    names = list(package.__all__)
    assert names == sorted(names), package_name
    assert len(names) == len(set(names)), package_name


def test_top_level_quickstart_names():
    import repro

    for name in (
        "EMExtEstimator", "SensingProblem", "SourceParameters",
        "generate_dataset", "exact_bound", "gibbs_bound",
        "simulate_dataset", "ApolloPipeline", "make_fact_finder",
        "DenseProblem", "CsrProblem", "coerce_problem", "MemoryBudgetError",
    ):
        assert hasattr(repro, name), name


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(part.isdigit() for part in parts)


def test_cli_module_importable():
    from repro.cli import main

    assert callable(main)
