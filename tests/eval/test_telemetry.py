"""End-to-end telemetry: the harness records engine iteration timings."""

import numpy as np
import pytest

from repro.engine import TelemetryRecorder
from repro.eval import run_simulation, summarize_telemetry
from repro.eval.diagnostics import TelemetrySummary
from repro.eval.experiments import _estimator_sweep
from repro.synthetic import GeneratorConfig
from repro.utils.errors import ValidationError


@pytest.fixture(scope="module")
def small_config():
    return GeneratorConfig(n_sources=10, n_assertions=12, n_trees=(3, 5))


class TestHarnessTelemetry:
    def test_run_simulation_records_iteration_timings(self, small_config):
        recorder = TelemetryRecorder()
        result = run_simulation(
            small_config,
            algorithms=("em", "em-ext"),
            n_trials=2,
            seed=0,
            include_optimal=False,
            telemetry=recorder,
        )
        assert result.n_trials == 2
        # Both EM-family algorithms ran 2 trials each through the shared
        # driver; every iteration produced a timed event.
        assert recorder.n_iterations > 0
        assert all(e.duration_seconds > 0.0 for e in recorder.events)
        assert all(np.isfinite(e.log_likelihood) for e in recorder.events)
        assert recorder.total_seconds > 0.0
        assert recorder.mean_iteration_seconds > 0.0

    def test_no_telemetry_by_default(self, small_config):
        # Smoke check: omitting the recorder must not change behaviour.
        result = run_simulation(
            small_config,
            algorithms=("em",),
            n_trials=1,
            seed=0,
            include_optimal=False,
        )
        assert result.series["em"].accuracy


class TestExperimentTelemetry:
    def test_estimator_sweep_path(self, small_config):
        """The figure-7-style experiment path feeds the recorder."""
        recorder = TelemetryRecorder()
        sweep = _estimator_sweep(
            "n_sources",
            [10],
            lambda value: GeneratorConfig(
                n_sources=int(value), n_assertions=12, n_trees=(3, 5)
            ),
            n_trials=1,
            seed=0,
            include_optimal=False,
            telemetry=recorder,
        )
        assert len(sweep.points) == 1
        assert recorder.n_iterations > 0


class TestSummarizeTelemetry:
    def test_summary_statistics(self, small_config):
        recorder = TelemetryRecorder()
        run_simulation(
            small_config,
            algorithms=("em-ext",),
            n_trials=1,
            seed=0,
            include_optimal=False,
            telemetry=recorder,
        )
        summary = summarize_telemetry(recorder.events)
        assert isinstance(summary, TelemetrySummary)
        assert summary.n_iterations == recorder.n_iterations
        assert summary.total_seconds == pytest.approx(recorder.total_seconds)
        assert summary.max_iteration_seconds >= summary.mean_iteration_seconds
        assert summary.iterations_per_second > 0.0
        assert summary.final_delta >= 0.0

    def test_empty_events_rejected(self):
        with pytest.raises(ValidationError):
            summarize_telemetry([])
