"""Tests for sampler/EM/calibration diagnostics."""

import numpy as np
import pytest

from repro.core import EMConfig, EMExtEstimator
from repro.eval import (
    autocorrelation,
    calibration_curve,
    effective_sample_size,
    em_diagnostics,
    expected_calibration_error,
    gelman_rubin,
)
from repro.utils.errors import ValidationError


class TestAutocorrelation:
    def test_lag_zero_is_one(self, rng):
        series = rng.random(100)
        assert autocorrelation(series, 0) == 1.0

    def test_iid_near_zero(self, rng):
        series = rng.random(5000)
        assert abs(autocorrelation(series, 1)) < 0.05

    def test_persistent_series_high(self):
        series = np.repeat([0.0, 1.0], 50)
        assert autocorrelation(series, 1) > 0.9

    def test_constant_series(self):
        assert autocorrelation(np.ones(10), 1) == 0.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            autocorrelation(np.arange(3), 5)
        with pytest.raises(ValidationError):
            autocorrelation(np.arange(10), -1)


class TestEffectiveSampleSize:
    def test_iid_close_to_n(self, rng):
        series = rng.random(2000)
        assert effective_sample_size(series) > 1200

    def test_correlated_much_smaller(self, rng):
        noise = rng.normal(size=2000)
        series = np.cumsum(noise) * 0.01 + noise * 0.001  # near random walk
        assert effective_sample_size(series) < 200

    def test_too_short(self):
        with pytest.raises(ValidationError):
            effective_sample_size(np.arange(3))


class TestGelmanRubin:
    def test_identical_chains_one(self, rng):
        chain = rng.random(500)
        assert gelman_rubin([chain, chain.copy()]) == pytest.approx(1.0, abs=0.01)

    def test_disjoint_chains_large(self, rng):
        a = rng.random(500)
        b = rng.random(500) + 10.0
        assert gelman_rubin([a, b]) > 2.0

    def test_needs_two_chains(self, rng):
        with pytest.raises(ValidationError):
            gelman_rubin([rng.random(100)])


class TestEMDiagnostics:
    def test_healthy_run(self, synthetic_dataset):
        result = EMExtEstimator(EMConfig(max_iterations=300), seed=0).fit(
            synthetic_dataset.problem.without_truth()
        )
        report = em_diagnostics(result)
        assert report.converged
        assert report.log_likelihood_increased
        assert report.healthy
        assert report.posterior_entropy >= 0.0

    def test_starved_run_flags_nonconvergence(self, synthetic_dataset):
        result = EMExtEstimator(EMConfig(max_iterations=1), seed=0).fit(
            synthetic_dataset.problem.without_truth()
        )
        report = em_diagnostics(result)
        assert not report.converged

    def test_requires_trace(self):
        from repro.core import EstimationResult

        result = EstimationResult(
            algorithm="x", scores=np.array([0.5]), decisions=np.array([1])
        )
        with pytest.raises(ValidationError):
            em_diagnostics(result)


class TestCalibration:
    def test_perfectly_calibrated(self, rng):
        scores = rng.random(20_000)
        truth = (rng.random(20_000) < scores).astype(int)
        assert expected_calibration_error(scores, truth) < 0.03

    def test_overconfident_detected(self):
        scores = np.full(1000, 0.95)
        truth = np.zeros(1000, dtype=int)
        truth[:500] = 1  # actual accuracy 0.5
        assert expected_calibration_error(scores, truth) > 0.4

    def test_curve_bins(self):
        scores = np.array([0.05, 0.15, 0.95])
        truth = np.array([0, 0, 1])
        bins = calibration_curve(scores, truth, n_bins=10)
        assert len(bins) == 3
        assert bins[-1].empirical_accuracy == 1.0
        assert sum(b.count for b in bins) == 3

    def test_validation(self):
        with pytest.raises(ValidationError):
            calibration_curve(np.array([1.5]), np.array([1]))
        with pytest.raises(ValidationError):
            calibration_curve(np.array([0.5]), np.array([1, 0]))
        with pytest.raises(ValidationError):
            calibration_curve(np.array([0.5]), np.array([1]), n_bins=0)
