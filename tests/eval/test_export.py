"""Tests for CSV export of experiment results."""

import csv

import pytest

from repro.eval import (
    bound_comparison_to_csv,
    empirical_to_csv,
    sweep_to_csv,
    timing_to_csv,
)
from repro.eval.experiments import BoundComparisonRow, EmpiricalCell, TimingRow
from repro.eval.harness import AlgorithmSeries, SimulationResult, SweepResult
from repro.eval.metrics import ClassificationMetrics
from repro.synthetic import GeneratorConfig
from repro.utils.errors import ValidationError


def _read(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


def _sim_result(accuracies):
    series = {}
    for name, accuracy in accuracies.items():
        algorithm_series = AlgorithmSeries()
        algorithm_series.record(
            ClassificationMetrics(
                accuracy=accuracy, false_positive_rate=0.1,
                false_negative_rate=0.2, n_assertions=10, n_true=5, n_false=5,
            )
        )
        series[name] = algorithm_series
    return SimulationResult(config=GeneratorConfig(), n_trials=1, series=series)


def test_bound_comparison_export(tmp_path):
    rows = [
        BoundComparisonRow(
            value=5, exact_total=0.1, exact_false_positive=0.04,
            exact_false_negative=0.06, gibbs_total=0.11,
            gibbs_false_positive=0.05, gibbs_false_negative=0.06,
        )
    ]
    path = tmp_path / "fig3.csv"
    assert bound_comparison_to_csv(rows, path, x_label="n") == 1
    content = _read(path)
    assert content[0][0] == "n"
    assert float(content[1][1]) == 0.1
    assert float(content[1][3]) == pytest.approx(0.01)


def test_timing_export_handles_missing_exact(tmp_path):
    rows = [
        TimingRow(n_sources=5, exact_seconds=0.5, gibbs_seconds=0.1),
        TimingRow(n_sources=30, exact_seconds=None, gibbs_seconds=0.2),
    ]
    path = tmp_path / "fig6.csv"
    assert timing_to_csv(rows, path) == 2
    content = _read(path)
    assert content[2][1] == ""  # missing exact stays empty, not "None"


def test_sweep_export_long_format(tmp_path):
    sweep = SweepResult(
        parameter="n",
        values=[10.0, 20.0],
        points=[
            _sim_result({"em-ext": 0.8, "em": 0.7}),
            _sim_result({"em-ext": 0.9, "em": 0.75}),
        ],
    )
    path = tmp_path / "fig7.csv"
    count = sweep_to_csv(sweep, path)
    assert count == 4  # 2 values x 2 algorithms
    content = _read(path)
    assert content[0][:2] == ["n", "algorithm"]
    values = {(row[0], row[1]): float(row[2]) for row in content[1:]}
    assert values[("20.0", "em-ext")] == 0.9


def test_sweep_export_requires_algorithms(tmp_path):
    sweep = SweepResult(parameter="n", values=[], points=[])
    with pytest.raises(ValidationError):
        sweep_to_csv(sweep, tmp_path / "x.csv")


def test_empirical_export(tmp_path):
    cells = [
        EmpiricalCell(dataset="ukraine", algorithm="em-ext", true_ratio=0.5),
        EmpiricalCell(dataset="kirkuk", algorithm="em-ext", true_ratio=0.6),
    ]
    path = tmp_path / "fig11.csv"
    assert empirical_to_csv(cells, path) == 2
    content = _read(path)
    assert content[1] == ["ukraine", "em-ext", "0.5"]
