"""Tests for evaluation metrics."""

import numpy as np
import pytest

from repro.core import FactFindingResult
from repro.eval import brier_score, classification_metrics, precision_at_k, score_result
from repro.utils.errors import ValidationError


class TestClassificationMetrics:
    def test_perfect(self):
        metrics = classification_metrics(np.array([1, 0, 1]), np.array([1, 0, 1]))
        assert metrics.accuracy == 1.0
        assert metrics.false_positive_rate == 0.0
        assert metrics.false_negative_rate == 0.0
        assert metrics.error_rate == 0.0

    def test_hand_computed(self):
        decisions = np.array([1, 1, 0, 0, 1])
        truth = np.array([1, 0, 1, 0, 0])
        metrics = classification_metrics(decisions, truth)
        assert metrics.accuracy == pytest.approx(2 / 5)
        # Of 3 false assertions, 2 were judged true.
        assert metrics.false_positive_rate == pytest.approx(2 / 3)
        # Of 2 true assertions, 1 was judged false.
        assert metrics.false_negative_rate == pytest.approx(1 / 2)
        assert metrics.n_true == 2
        assert metrics.n_false == 3

    def test_all_true_truth(self):
        metrics = classification_metrics(np.array([1, 0]), np.array([1, 1]))
        assert metrics.false_positive_rate == 0.0  # no false assertions exist
        assert metrics.false_negative_rate == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            classification_metrics(np.array([]), np.array([]))

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            classification_metrics(np.array([1]), np.array([1, 0]))


class TestScoreResult:
    def test_wraps_decisions(self):
        result = FactFindingResult(
            algorithm="t", scores=np.array([0.9, 0.1]), decisions=np.array([1, 0])
        )
        metrics = score_result(result, np.array([1, 1]))
        assert metrics.accuracy == 0.5


class TestPrecisionAtK:
    def test_basic(self):
        result = FactFindingResult(
            algorithm="t",
            scores=np.array([0.9, 0.8, 0.1]),
            decisions=np.array([1, 1, 0]),
        )
        truth = np.array([1, 0, 1])
        assert precision_at_k(result, truth, 1) == 1.0
        assert precision_at_k(result, truth, 2) == 0.5

    def test_invalid_k(self):
        result = FactFindingResult(
            algorithm="t", scores=np.array([0.5]), decisions=np.array([1])
        )
        with pytest.raises(ValidationError):
            precision_at_k(result, np.array([1]), 0)


class TestBrierScore:
    def test_perfect_posterior(self):
        result = FactFindingResult(
            algorithm="t", scores=np.array([1.0, 0.0]), decisions=np.array([1, 0])
        )
        assert brier_score(result, np.array([1, 0])) == 0.0

    def test_uninformative_posterior(self):
        result = FactFindingResult(
            algorithm="t", scores=np.array([0.5, 0.5]), decisions=np.array([1, 1])
        )
        assert brier_score(result, np.array([1, 0])) == pytest.approx(0.25)

    def test_unnormalised_scores_rescaled(self):
        result = FactFindingResult(
            algorithm="t", scores=np.array([10.0, 0.0]), decisions=np.array([1, 0])
        )
        assert brier_score(result, np.array([1, 0])) == 0.0
