"""Tests for the repeated-trial harness."""

import numpy as np
import pytest

from repro.eval import OPTIMAL_KEY, run_simulation, run_sweep
from repro.synthetic import GeneratorConfig
from repro.utils.errors import ValidationError


class TestRunSimulation:
    def test_basic_structure(self):
        result = run_simulation(
            GeneratorConfig(), algorithms=("em-ext",), n_trials=2, seed=0
        )
        assert result.n_trials == 2
        assert set(result.series) == {"em-ext", OPTIMAL_KEY}
        assert len(result.series["em-ext"].accuracy) == 2

    def test_without_optimal(self):
        result = run_simulation(
            GeneratorConfig(), algorithms=("voting",), n_trials=1,
            include_optimal=False, seed=0,
        )
        assert OPTIMAL_KEY not in result.series

    def test_invalid_trials(self):
        with pytest.raises(ValidationError):
            run_simulation(GeneratorConfig(), n_trials=0)

    def test_deterministic(self):
        a = run_simulation(GeneratorConfig(), algorithms=("em-ext",), n_trials=2, seed=3,
                           include_optimal=False)
        b = run_simulation(GeneratorConfig(), algorithms=("em-ext",), n_trials=2, seed=3,
                           include_optimal=False)
        assert a.series["em-ext"].accuracy == b.series["em-ext"].accuracy

    def test_optimal_dominates_estimators_on_average(self):
        result = run_simulation(
            GeneratorConfig(), algorithms=("em-ext",), n_trials=4, seed=1
        )
        assert result.mean_accuracy(OPTIMAL_KEY) >= result.mean_accuracy("em-ext") - 0.02

    def test_summary_structure(self):
        result = run_simulation(
            GeneratorConfig(), algorithms=("voting",), n_trials=1,
            include_optimal=False, seed=0,
        )
        summary = result.summary()
        assert set(summary["voting"]) == {
            "accuracy", "false_positive_rate", "false_negative_rate",
        }


class TestAlgorithmSeries:
    def test_mean_and_std(self):
        from repro.eval import AlgorithmSeries
        from repro.eval.metrics import ClassificationMetrics

        series = AlgorithmSeries()
        for accuracy in (0.5, 0.7):
            series.record(
                ClassificationMetrics(
                    accuracy=accuracy, false_positive_rate=0.1,
                    false_negative_rate=0.2, n_assertions=10, n_true=5, n_false=5,
                )
            )
        assert series.mean() == pytest.approx(0.6)
        assert series.std() == pytest.approx(0.1)

    def test_empty_series_nan(self):
        from repro.eval import AlgorithmSeries

        assert np.isnan(AlgorithmSeries().mean())


class TestRunSweep:
    def test_curves(self):
        sweep = run_sweep(
            "n_sources",
            [10, 20],
            lambda n: GeneratorConfig(n_sources=int(n), n_trees=(5, 5)),
            algorithms=("voting",),
            n_trials=1,
            include_optimal=False,
            seed=0,
        )
        assert sweep.values == [10.0, 20.0]
        assert len(sweep.curve("voting")) == 2
        assert sweep.algorithms() == ["voting"]
