"""Tests for the per-figure experiment definitions (smoke-scale)."""

import pytest

from repro.bounds import GibbsConfig
from repro.eval import (
    TABLE1_EXPECTED_BOUND,
    figure11_matrix,
    figure3_bound_vs_sources,
    figure6_bound_timing,
    table1_walkthrough,
)
from repro.eval.experiments import (
    EmpiricalCell,
    bound_comparison_sweep,
    bound_trials,
    estimator_trials,
    figure11_empirical,
    full_trials,
)
from repro.synthetic import GeneratorConfig


class TestTable1:
    def test_exact_reproduction(self):
        result = table1_walkthrough()
        assert result.total == pytest.approx(TABLE1_EXPECTED_BOUND, abs=1e-8)
        assert result.false_positive + result.false_negative == pytest.approx(
            result.total
        )


class TestTrialCounts:
    def test_defaults_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_TRIALS", raising=False)
        assert not full_trials()
        assert bound_trials() == 4
        assert estimator_trials() == 6

    def test_env_enables_paper_counts(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_TRIALS", "1")
        assert full_trials()
        assert bound_trials() == 20
        assert estimator_trials() == 300


class TestBoundComparison:
    def test_sweep_structure(self):
        rows = bound_comparison_sweep(
            values=[5, 10],
            config_factory=lambda n: GeneratorConfig(
                n_sources=int(n), n_trees=(3, 3), n_assertions=20
            ),
            n_trials=2,
            seed=0,
            gibbs_config=GibbsConfig(min_sweeps=300, max_sweeps=900),
        )
        assert [r.value for r in rows] == [5.0, 10.0]
        for row in rows:
            assert 0 <= row.exact_total <= 0.5
            assert row.absolute_difference < 0.05

    def test_figure3_smoke(self):
        rows = figure3_bound_vs_sources(
            n_trials=1, gibbs_config=GibbsConfig(min_sweeps=300, max_sweeps=600)
        )
        assert len(rows) == 4  # CI grid stops at n = 20
        assert rows[0].value == 5.0


class TestTiming:
    def test_figure6_smoke(self):
        rows = figure6_bound_timing(n_values=(5, 12), seed=0)
        assert rows[0].exact_seconds is not None
        assert rows[1].gibbs_seconds > 0

    def test_exact_skipped_beyond_cutoff(self):
        rows = figure6_bound_timing(n_values=(5, 24), exact_cutoff=20, seed=0)
        assert rows[1].exact_seconds is None


class TestFigure11:
    def test_smoke_single_dataset(self):
        cells = figure11_empirical(
            datasets=("la_marathon",),
            algorithms=("voting", "em-ext"),
            n_seeds=1,
            target_assertions=150,
            seed=0,
        )
        assert len(cells) == 2
        for cell in cells:
            assert 0.0 <= cell.true_ratio <= 1.0

    def test_matrix_pivot(self):
        cells = [
            EmpiricalCell(dataset="d1", algorithm="a", true_ratio=0.5),
            EmpiricalCell(dataset="d2", algorithm="a", true_ratio=0.7),
        ]
        matrix = figure11_matrix(cells)
        assert matrix == {"a": {"d1": 0.5, "d2": 0.7}}
