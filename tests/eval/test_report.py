"""Tests for text report rendering."""

from repro.eval import (
    format_bound_comparison,
    format_empirical,
    format_sweep,
    format_timing,
)
from repro.eval.experiments import BoundComparisonRow, EmpiricalCell, TimingRow
from repro.eval.harness import AlgorithmSeries, SimulationResult, SweepResult
from repro.eval.metrics import ClassificationMetrics
from repro.synthetic import GeneratorConfig


def _sim_result(accuracy_by_algorithm):
    series = {}
    for name, accuracy in accuracy_by_algorithm.items():
        s = AlgorithmSeries()
        s.record(
            ClassificationMetrics(
                accuracy=accuracy, false_positive_rate=0.1,
                false_negative_rate=0.1, n_assertions=10, n_true=5, n_false=5,
            )
        )
        series[name] = s
    return SimulationResult(config=GeneratorConfig(), n_trials=1, series=series)


def test_format_bound_comparison():
    rows = [
        BoundComparisonRow(
            value=5, exact_total=0.1, exact_false_positive=0.05,
            exact_false_negative=0.05, gibbs_total=0.11,
            gibbs_false_positive=0.05, gibbs_false_negative=0.06,
        )
    ]
    text = format_bound_comparison(rows, x_label="n")
    assert "n" in text.splitlines()[0]
    assert "0.1000" in text
    assert "0.0100" in text  # |diff|


def test_format_timing():
    text = format_timing(
        [TimingRow(n_sources=5, exact_seconds=0.5, gibbs_seconds=0.1),
         TimingRow(n_sources=30, exact_seconds=None, gibbs_seconds=0.2)]
    )
    assert "0.500" in text
    assert "-" in text


def test_format_sweep():
    sweep = SweepResult(
        parameter="n",
        values=[10.0, 20.0],
        points=[_sim_result({"em-ext": 0.8}), _sim_result({"em-ext": 0.9})],
    )
    text = format_sweep(sweep)
    assert "em-ext" in text
    assert "0.9000" in text


def test_format_empirical():
    cells = [
        EmpiricalCell(dataset="ukraine", algorithm="voting", true_ratio=0.4),
        EmpiricalCell(dataset="ukraine", algorithm="em-ext", true_ratio=0.5),
    ]
    text = format_empirical(cells)
    assert "ukraine" in text
    assert "0.500" in text
