"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import RandomState, derive_seed, spawn_rngs


class TestRandomState:
    def test_none_returns_generator(self):
        assert isinstance(RandomState(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = RandomState(42).random(5)
        b = RandomState(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(RandomState(1).random(5), RandomState(2).random(5))

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert RandomState(generator) is generator


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        children = spawn_rngs(0, 3)
        draws = [c.random(4).tolist() for c in children]
        assert draws[0] != draws[1] != draws[2]

    def test_deterministic_given_seed(self):
        first = [c.random(3).tolist() for c in spawn_rngs(11, 2)]
        second = [c.random(3).tolist() for c in spawn_rngs(11, 2)]
        assert first == second

    def test_spawn_from_generator(self):
        children = spawn_rngs(np.random.default_rng(5), 2)
        assert len(children) == 2


class TestDeriveSeed:
    def test_returns_int_in_range(self):
        seed = derive_seed(np.random.default_rng(0))
        assert isinstance(seed, int)
        assert 0 <= seed < 2**63

    def test_advances_generator(self):
        generator = np.random.default_rng(0)
        assert derive_seed(generator) != derive_seed(generator)
