"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.errors import ValidationError
from repro.utils.validation import (
    check_binary_matrix,
    check_in_choices,
    check_nonnegative_int,
    check_positive_int,
    check_probability,
    check_probability_array,
    check_same_shape,
)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_valid_inclusive(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, float("nan")])
    def test_invalid(self, value):
        with pytest.raises(ValidationError):
            check_probability(value, "p")

    def test_exclusive_rejects_bounds(self):
        with pytest.raises(ValidationError):
            check_probability(0.0, "p", inclusive=False)
        with pytest.raises(ValidationError):
            check_probability(1.0, "p", inclusive=False)

    def test_exclusive_accepts_interior(self):
        assert check_probability(0.5, "p", inclusive=False) == 0.5


class TestCheckProbabilityArray:
    def test_valid(self):
        out = check_probability_array([0.1, 0.9], "p")
        assert out.dtype == np.float64

    def test_out_of_range(self):
        with pytest.raises(ValidationError):
            check_probability_array([0.5, 1.5], "p")

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            check_probability_array([0.5, float("nan")], "p")

    def test_empty_allowed(self):
        assert check_probability_array([], "p").size == 0


class TestCheckBinaryMatrix:
    def test_valid(self):
        out = check_binary_matrix(np.array([[0, 1], [1, 0]]), "m")
        assert out.dtype == np.int8

    def test_non_binary(self):
        with pytest.raises(ValidationError):
            check_binary_matrix(np.array([[0, 2]]), "m")

    def test_wrong_ndim(self):
        with pytest.raises(ValidationError):
            check_binary_matrix(np.array([0, 1]), "m")


class TestShapesAndInts:
    def test_same_shape_ok(self):
        check_same_shape(np.zeros((2, 3)), np.ones((2, 3)), ("a", "b"))

    def test_same_shape_mismatch(self):
        with pytest.raises(ValidationError):
            check_same_shape(np.zeros((2, 3)), np.ones((3, 2)), ("a", "b"))

    def test_positive_int(self):
        assert check_positive_int(3, "k") == 3
        with pytest.raises(ValidationError):
            check_positive_int(0, "k")
        with pytest.raises(ValidationError):
            check_positive_int(2.5, "k")

    def test_nonnegative_int(self):
        assert check_nonnegative_int(0, "k") == 0
        with pytest.raises(ValidationError):
            check_nonnegative_int(-1, "k")

    def test_in_choices(self):
        assert check_in_choices("a", "opt", ("a", "b")) == "a"
        with pytest.raises(ValidationError):
            check_in_choices("c", "opt", ("a", "b"))
