"""Tests for the exception hierarchy."""

import pytest

from repro.utils.errors import (
    ConvergenceError,
    DataError,
    ReproError,
    ValidationError,
)


def test_all_derive_from_repro_error():
    for exc in (ValidationError, DataError, ConvergenceError):
        assert issubclass(exc, ReproError)


def test_validation_error_is_value_error():
    assert issubclass(ValidationError, ValueError)


def test_convergence_error_carries_diagnostics():
    error = ConvergenceError("no convergence", iterations=17, residual=0.25)
    assert error.iterations == 17
    assert error.residual == 0.25


def test_catching_base_class():
    with pytest.raises(ReproError):
        raise DataError("broken stream")
