"""Tests for the Gibbs-sampling bound approximation (Algorithm 1)."""

import numpy as np
import pytest

from repro.bounds import GibbsConfig, exact_bound, exact_column_bound, gibbs_bound, gibbs_column_bound
from repro.core import SourceParameters
from repro.utils.errors import ValidationError


@pytest.fixture
def params10():
    return SourceParameters.random(10, seed=4, informative=True)


class TestGibbsConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"burn_in": -1},
            {"min_sweeps": 0},
            {"min_sweeps": 100, "max_sweeps": 50},
            {"check_interval": 0},
            {"tolerance": 0.0},
            {"mode": "wrong"},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValidationError):
            GibbsConfig(**kwargs)


class TestConvergenceToExact:
    def test_single_column(self, params10):
        d_column = np.array([0, 1, 0, 1, 0, 0, 1, 0, 0, 0])
        exact = exact_column_bound(d_column, params10)
        approx = gibbs_column_bound(
            d_column,
            params10,
            config=GibbsConfig(min_sweeps=3000, max_sweeps=8000, tolerance=1e-4),
            seed=0,
        )
        # The paper reports max deviation ~0.013; we allow similar slack.
        assert abs(approx.total - exact.total) < 0.02

    def test_matrix_bound(self, params10, rng):
        dependency = (rng.random((10, 30)) < 0.3).astype(int)
        exact = exact_bound(dependency, params10)
        approx = gibbs_bound(
            dependency,
            params10,
            config=GibbsConfig(min_sweeps=2000, max_sweeps=6000),
            seed=1,
        )
        assert abs(approx.total - exact.total) < 0.02

    def test_fp_fn_sum_to_total(self, params10):
        d_column = np.zeros(10, dtype=int)
        result = gibbs_column_bound(d_column, params10, seed=2)
        assert result.false_positive + result.false_negative == pytest.approx(
            result.total, abs=1e-9
        )

    def test_posterior_mean_beats_literal_ratio(self, params10):
        """The literal Algorithm 1 ratio is biased; the default is not."""
        d_column = np.array([0, 1, 0, 1, 0, 0, 1, 0, 0, 0])
        exact = exact_column_bound(d_column, params10).total
        config_kwargs = {"min_sweeps": 4000, "max_sweeps": 8000, "tolerance": 1e-5}
        consistent = gibbs_column_bound(
            d_column, params10,
            config=GibbsConfig(mode="posterior-mean", **config_kwargs), seed=3,
        ).total
        literal = gibbs_column_bound(
            d_column, params10,
            config=GibbsConfig(mode="ratio", **config_kwargs), seed=3,
        ).total
        assert abs(consistent - exact) <= abs(literal - exact) + 5e-3


class TestMechanics:
    def test_deterministic_given_seed(self, params10):
        d_column = np.zeros(10, dtype=int)
        config = GibbsConfig(min_sweeps=500, max_sweeps=500)
        a = gibbs_column_bound(d_column, params10, config=config, seed=9)
        b = gibbs_column_bound(d_column, params10, config=config, seed=9)
        assert a.total == b.total

    def test_reports_sample_count(self, params10):
        config = GibbsConfig(min_sweeps=400, max_sweeps=400)
        result = gibbs_column_bound(np.zeros(10, dtype=int), params10, config=config, seed=0)
        assert result.n_samples == 400
        assert result.method == "gibbs"

    def test_early_stop_on_convergence(self, params10):
        config = GibbsConfig(
            min_sweeps=200, max_sweeps=50_000, check_interval=100, tolerance=0.05
        )
        result = gibbs_column_bound(np.zeros(10, dtype=int), params10, config=config, seed=0)
        assert result.n_samples < 50_000

    def test_column_shape_validation(self, params10):
        with pytest.raises(ValidationError):
            gibbs_column_bound(np.zeros((2, 5)), params10)

    def test_three_dimensional_rejected(self, params10):
        with pytest.raises(ValidationError):
            gibbs_bound(np.zeros((2, 2, 2)), params10)

    def test_degenerate_parameters_survive(self):
        """Rates at exactly 0/1 must not break the chain."""
        params = SourceParameters.from_scalars(4, a=1.0, b=0.0, f=1.0, g=0.0, z=0.5)
        result = gibbs_column_bound(
            np.zeros(4, dtype=int), params,
            config=GibbsConfig(min_sweeps=300, max_sweeps=600), seed=0,
        )
        assert result.total == pytest.approx(0.0, abs=1e-6)
