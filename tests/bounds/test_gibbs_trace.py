"""Tests wiring the Gibbs sampler's trace into the diagnostics module."""

import numpy as np
import pytest

from repro.bounds import GibbsConfig, gibbs_column_bound
from repro.core import SourceParameters
from repro.eval import autocorrelation, effective_sample_size


@pytest.fixture
def params():
    return SourceParameters.random(8, seed=3, informative=True)


def test_trace_absent_by_default(params):
    result = gibbs_column_bound(
        np.zeros(8, dtype=int), params,
        config=GibbsConfig(min_sweeps=300, max_sweeps=300), seed=0,
    )
    assert result.estimate_trace is None


def test_trace_collected_when_requested(params):
    result = gibbs_column_bound(
        np.zeros(8, dtype=int), params,
        config=GibbsConfig(min_sweeps=500, max_sweeps=500, collect_trace=True),
        seed=0,
    )
    assert result.estimate_trace is not None
    assert len(result.estimate_trace) == result.n_samples
    # The trace's mean IS the reported bound in posterior-mean mode.
    assert float(np.mean(result.estimate_trace)) == pytest.approx(
        result.total, abs=1e-12
    )


def test_trace_supports_chain_diagnostics(params):
    result = gibbs_column_bound(
        np.zeros(8, dtype=int), params,
        config=GibbsConfig(min_sweeps=2000, max_sweeps=2000, collect_trace=True),
        seed=1,
    )
    trace = np.asarray(result.estimate_trace)
    # The chain mixes: a healthy effective sample size and decaying
    # autocorrelation.
    assert effective_sample_size(trace) > 100
    assert autocorrelation(trace, 1) < 0.9


def test_trace_values_are_posterior_errors(params):
    result = gibbs_column_bound(
        np.zeros(8, dtype=int), params,
        config=GibbsConfig(min_sweeps=400, max_sweeps=400, collect_trace=True),
        seed=2,
    )
    trace = np.asarray(result.estimate_trace)
    assert (trace >= 0).all()
    assert (trace <= 0.5 + 1e-12).all()
