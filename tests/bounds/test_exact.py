"""Tests for the exact error bound (Equation 3, Table I)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds import BoundResult, bound_from_pattern_table, exact_bound, exact_column_bound
from repro.core import SourceParameters
from repro.eval.experiments import (
    TABLE1_EXPECTED_BOUND,
    TABLE1_P_GIVEN_FALSE,
    TABLE1_P_GIVEN_TRUE,
    table1_walkthrough,
)
from repro.utils.errors import ValidationError


class TestTable1:
    def test_paper_walkthrough_exact_value(self):
        """Table I's bound reproduces to the paper's 8 decimals."""
        result = table1_walkthrough()
        assert result.total == pytest.approx(TABLE1_EXPECTED_BOUND, abs=1e-8)

    def test_tables_are_distributions(self):
        assert TABLE1_P_GIVEN_TRUE.sum() == pytest.approx(1.0, abs=1e-6)
        assert TABLE1_P_GIVEN_FALSE.sum() == pytest.approx(1.0, abs=1e-6)

    def test_pattern_table_validation(self):
        with pytest.raises(ValidationError):
            bound_from_pattern_table(np.array([0.5, 0.4]), np.array([0.5, 0.5]))
        with pytest.raises(ValidationError):
            bound_from_pattern_table(np.array([0.5, 0.5]), np.array([0.5]))


class TestExactColumnBound:
    def test_matches_bruteforce(self, small_params):
        d_column = np.array([1, 0, 0])
        result = exact_column_bound(d_column, small_params)
        # Brute force over all 8 patterns.
        expected = 0.0
        from repro.core.likelihood import pattern_log_joint

        for pattern in itertools.product((0, 1), repeat=3):
            log_true, log_false = pattern_log_joint(
                np.array(pattern), d_column, small_params
            )
            expected += min(np.exp(log_true), np.exp(log_false))
        assert result.total == pytest.approx(expected)

    def test_fp_fn_decomposition(self, small_params):
        result = exact_column_bound(np.array([0, 0, 0]), small_params)
        assert result.false_positive + result.false_negative == pytest.approx(
            result.total
        )
        assert result.false_positive >= 0 and result.false_negative >= 0

    def test_bound_below_prior_minimum(self, small_params):
        """Bayes risk never exceeds min(z, 1-z) (guessing the prior)."""
        result = exact_column_bound(np.array([0, 1, 0]), small_params)
        assert result.total <= min(small_params.z, 1 - small_params.z) + 1e-12

    def test_useless_sources_hit_prior_bound(self):
        """With a = b the data is useless: the bound is min(z, 1-z)."""
        params = SourceParameters.from_scalars(3, a=0.4, b=0.4, f=0.4, g=0.4, z=0.3)
        result = exact_column_bound(np.array([0, 0, 0]), params)
        assert result.total == pytest.approx(0.3)

    def test_perfect_sources_have_zero_error(self):
        params = SourceParameters.from_scalars(2, a=1.0, b=0.0, f=1.0, g=0.0, z=0.5)
        result = exact_column_bound(np.array([0, 0]), params)
        assert result.total == pytest.approx(0.0, abs=1e-12)

    def test_more_sources_lower_bound(self):
        """Extra informative sources cannot hurt the optimal estimator."""
        totals = []
        for n in (1, 3, 5, 9):
            params = SourceParameters.from_scalars(n, a=0.6, b=0.3, f=0.5, g=0.4, z=0.5)
            totals.append(exact_column_bound(np.zeros(n), params).total)
        assert totals == sorted(totals, reverse=True)

    def test_refuses_too_many_sources(self):
        params = SourceParameters.from_scalars(31, a=0.6, b=0.3, f=0.5, g=0.4, z=0.5)
        with pytest.raises(ValidationError):
            exact_column_bound(np.zeros(31), params)

    def test_source_count_mismatch(self, small_params):
        with pytest.raises(ValidationError):
            exact_column_bound(np.zeros(4), small_params)

    def test_invalid_d_column(self, small_params):
        with pytest.raises(ValidationError):
            exact_column_bound(np.array([0, 2, 0]), small_params)


class TestExactMatrixBound:
    def test_averages_columns(self, small_params):
        d1 = np.array([0, 0, 0])
        d2 = np.array([1, 1, 0])
        matrix = np.column_stack([d1, d2, d1])
        combined = exact_bound(matrix, small_params)
        separate = (
            2 * exact_column_bound(d1, small_params).total
            + exact_column_bound(d2, small_params).total
        ) / 3
        assert combined.total == pytest.approx(separate)

    def test_one_dimensional_input(self, small_params):
        column = exact_bound(np.array([0, 1, 0]), small_params)
        assert column.method == "exact"

    def test_relabelling_invariance(self, small_params):
        """Permuting sources (with their parameters) leaves the bound alone."""
        d_column = np.array([1, 0, 0])
        base = exact_column_bound(d_column, small_params)
        perm = np.array([2, 0, 1])
        permuted = exact_column_bound(d_column[perm], small_params.restrict(perm))
        assert permuted.total == pytest.approx(base.total)


class TestBoundResult:
    def test_rejects_inconsistent_parts(self):
        with pytest.raises(ValidationError):
            BoundResult(
                total=0.5, false_positive=0.1, false_negative=0.1, method="exact"
            )

    def test_optimal_accuracy(self):
        result = BoundResult(
            total=0.2, false_positive=0.1, false_negative=0.1, method="exact"
        )
        assert result.optimal_accuracy == pytest.approx(0.8)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_bound_in_valid_range(n, seed):
    """Property: 0 <= bound <= min(z, 1-z) for any parameters."""
    rng = np.random.default_rng(seed)
    params = SourceParameters.random(n, seed=seed, informative=False)
    d_column = (rng.random(n) < 0.5).astype(int)
    result = exact_column_bound(d_column, params)
    assert -1e-12 <= result.total <= min(params.z, 1 - params.z) + 1e-9
