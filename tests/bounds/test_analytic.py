"""Tests for the closed-form Bhattacharyya bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds import (
    bhattacharyya_bounds,
    bhattacharyya_coefficient,
    exact_bound,
    exact_column_bound,
)
from repro.core import SourceParameters
from repro.utils.errors import ValidationError


class TestCoefficient:
    def test_useless_sources_give_one(self):
        params = SourceParameters.from_scalars(4, a=0.4, b=0.4, f=0.4, g=0.4, z=0.5)
        assert bhattacharyya_coefficient(np.zeros(4), params) == pytest.approx(1.0)

    def test_perfect_sources_give_zero(self):
        params = SourceParameters.from_scalars(2, a=1.0, b=0.0, f=1.0, g=0.0, z=0.5)
        assert bhattacharyya_coefficient(np.zeros(2), params) == pytest.approx(0.0)

    def test_uses_dependent_rates_when_flagged(self):
        params = SourceParameters(
            a=np.array([0.9]), b=np.array([0.1]),  # informative independent
            f=np.array([0.5]), g=np.array([0.5]),  # useless dependent
            z=0.5,
        )
        independent = bhattacharyya_coefficient(np.array([0]), params)
        dependent = bhattacharyya_coefficient(np.array([1]), params)
        assert independent < dependent == pytest.approx(1.0)

    def test_in_unit_interval(self, small_params):
        rho = bhattacharyya_coefficient(np.array([0, 1, 0]), small_params)
        assert 0.0 <= rho <= 1.0


class TestBounds:
    def test_bracket_exact_on_fixture(self, small_params):
        d_column = np.array([1, 0, 0])
        exact = exact_column_bound(d_column, small_params).total
        lower, upper = bhattacharyya_bounds(d_column, small_params)
        assert lower - 1e-12 <= exact <= upper + 1e-12

    def test_matrix_form(self, small_params, rng):
        dependency = (rng.random((3, 20)) < 0.4).astype(int)
        exact = exact_bound(dependency, small_params).total
        lower, upper = bhattacharyya_bounds(dependency, small_params)
        assert lower - 1e-12 <= exact <= upper + 1e-12

    def test_upper_capped_at_prior(self):
        params = SourceParameters.from_scalars(2, a=0.5, b=0.5, f=0.5, g=0.5, z=0.2)
        _, upper = bhattacharyya_bounds(np.zeros(2), params)
        assert upper == pytest.approx(0.2)

    def test_invalid_shape(self, small_params):
        with pytest.raises(ValidationError):
            bhattacharyya_bounds(np.zeros((2, 2, 2)), small_params)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_bhattacharyya_sandwiches_exact(n, seed):
    """Property: lower ≤ exact ≤ upper for arbitrary θ and D."""
    rng = np.random.default_rng(seed)
    params = SourceParameters.random(n, seed=seed, informative=False)
    d_column = (rng.random(n) < 0.5).astype(int)
    exact = exact_column_bound(d_column, params).total
    lower, upper = bhattacharyya_bounds(d_column, params)
    assert lower - 1e-9 <= exact <= upper + 1e-9
