"""Tests for Cramér–Rao parameter confidence bounds."""

import numpy as np
import pytest

from repro.bounds import fisher_information, parameter_confidence
from repro.core import EMExtEstimator
from repro.utils.errors import ValidationError


@pytest.fixture
def fitted(synthetic_dataset):
    problem = synthetic_dataset.problem.without_truth()
    result = EMExtEstimator(seed=0).fit(problem)
    return problem, result


class TestFisherInformation:
    def test_keys_and_shapes(self, fitted):
        problem, result = fitted
        info = fisher_information(problem, result.parameters, result.scores)
        assert set(info) == {"a", "b", "f", "g"}
        for values in info.values():
            assert values.shape == (problem.n_sources,)
            assert (values >= 0).all()

    def test_posterior_shape_checked(self, fitted):
        problem, result = fitted
        with pytest.raises(ValidationError):
            fisher_information(problem, result.parameters, np.array([0.5]))

    def test_more_assertions_more_information(self):
        """Doubling the data doubles the (complete-data) information."""
        from repro.core import SensingProblem, SourceParameters

        sc = np.array([[1, 0], [0, 1]])
        problem1 = SensingProblem.independent(sc)
        problem2 = SensingProblem.independent(np.hstack([sc, sc]))
        params = SourceParameters.from_scalars(2, a=0.6, b=0.3, f=0.5, g=0.4, z=0.5)
        info1 = fisher_information(problem1, params, np.array([0.5, 0.5]))
        info2 = fisher_information(problem2, params, np.array([0.5] * 4))
        np.testing.assert_allclose(info2["a"], 2 * info1["a"])


class TestParameterConfidence:
    def test_intervals_contain_estimates(self, fitted):
        problem, result = fitted
        confidence = parameter_confidence(
            problem, result.parameters, result.scores, confidence=0.95
        )
        for name in ("a", "b", "f", "g"):
            estimate = getattr(result.parameters, name)
            assert (confidence.lower[name] <= estimate + 1e-12).all()
            assert (confidence.upper[name] >= estimate - 1e-12).all()

    def test_higher_confidence_wider(self, fitted):
        problem, result = fitted
        narrow = parameter_confidence(
            problem, result.parameters, result.scores, confidence=0.90
        )
        wide = parameter_confidence(
            problem, result.parameters, result.scores, confidence=0.99
        )
        assert (
            wide.interval_width("a") >= narrow.interval_width("a") - 1e-12
        ).all()

    def test_unsupported_confidence(self, fitted):
        problem, result = fitted
        with pytest.raises(ValidationError):
            parameter_confidence(problem, result.parameters, result.scores, confidence=0.5)

    def test_unknown_parameter_name(self, fitted):
        problem, result = fitted
        confidence = parameter_confidence(problem, result.parameters, result.scores)
        with pytest.raises(ValidationError):
            confidence.interval_width("q")

    def test_intervals_clipped_to_unit(self, fitted):
        problem, result = fitted
        confidence = parameter_confidence(problem, result.parameters, result.scores)
        for name in ("a", "b", "f", "g"):
            assert (confidence.lower[name] >= 0).all()
            assert (confidence.upper[name] <= 1).all()
