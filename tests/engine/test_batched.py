"""The batched engine's parity wall: lane ``b`` IS the serial run ``b``.

Everything the batched tensor path produces — parameters, posteriors,
log-likelihood traces, restart selection, health ledgers, even fault
message strings — must be **bit-for-bit** what the serial loop produces
for the same lane alone.  These tests pin that contract at every layer:
the stacked parameter container, ``run_batched_lanes`` against
``EMDriver.run``, ``restart_mode="batched"`` against the serial restart
loop, :func:`repro.core.fit_em_ext_batch` against per-problem
``EMExtEstimator.fit``, and ``run_simulation(trial_mode="batched")``
against the serial harness — plus the transparency guarantee that
observability being on or off changes no bits.
"""

import numpy as np
import pytest

from repro import observability
from repro.core import SourceParameters, fit_em_ext_batch
from repro.core.em_ext import EMConfig, EMExtEstimator
from repro.core.likelihood import column_log_likelihoods
from repro.engine import EMDriver, TelemetryRecorder
from repro.engine.backends import DenseBackend, _check_rates_finite
from repro.engine.batched import (
    _RATES_FAULT,
    _Z_FAULT,
    BatchedDenseBackend,
    BatchedSourceParameters,
    run_batched_lanes,
)
from repro.eval import run_simulation
from repro.synthetic import GeneratorConfig, generate_dataset
from repro.utils.errors import ConvergenceError, ValidationError
from repro.utils.validation import check_probability

SEED = 20160627  # the paper's conference date; any fixed seed works


def _problem(n_sources=10, n_assertions=16, seed=SEED):
    config = GeneratorConfig(
        n_sources=n_sources, n_assertions=n_assertions, n_trees=(3, 4)
    )
    return generate_dataset(config, seed=seed).problem.without_truth()


def _random_params(n_sources, seed, count):
    rngs = [np.random.default_rng((seed, index)) for index in range(count)]
    return [SourceParameters.random(n_sources, rng).clamp(1e-4) for rng in rngs]


def _assert_outcomes_bitwise(serial, batched, label=""):
    assert np.array_equal(serial.posterior, batched.posterior), f"{label} posterior"
    for name in ("a", "b", "f", "g"):
        assert np.array_equal(
            getattr(serial.parameters, name), getattr(batched.parameters, name)
        ), f"{label} rate {name}"
    assert serial.parameters.z == batched.parameters.z, f"{label} z"
    assert serial.trace.log_likelihoods == batched.trace.log_likelihoods, (
        f"{label} trace lls"
    )
    assert serial.trace.parameter_deltas == batched.trace.parameter_deltas, (
        f"{label} trace deltas"
    )
    assert serial.converged == batched.converged, f"{label} converged"
    assert serial.diverged == batched.diverged, f"{label} diverged"


def _assert_results_bitwise(serial, batched, label=""):
    assert np.array_equal(serial.scores, batched.scores), f"{label} scores"
    assert np.array_equal(serial.decisions, batched.decisions), f"{label} decisions"
    assert serial.log_likelihood == batched.log_likelihood, f"{label} ll"
    for name in ("a", "b", "f", "g"):
        assert np.array_equal(
            getattr(serial.parameters, name), getattr(batched.parameters, name)
        ), f"{label} rate {name}"
    assert serial.parameters.z == batched.parameters.z, f"{label} z"
    assert serial.n_iterations == batched.n_iterations, f"{label} iterations"
    assert serial.trace.log_likelihoods == batched.trace.log_likelihoods, (
        f"{label} trace"
    )
    assert serial.health.selected == batched.health.selected, f"{label} selection"
    assert [
        (r.index, r.status, r.n_iterations, r.error) for r in serial.health.restarts
    ] == [
        (r.index, r.status, r.n_iterations, r.error) for r in batched.health.restarts
    ], f"{label} health ledger"


class TestBatchedSourceParameters:
    def test_stack_and_lane_round_trip(self):
        params = _random_params(6, SEED, 4)
        stacked = BatchedSourceParameters.stack(params)
        assert stacked.n_lanes == 4 and stacked.n_sources == 6
        for index, original in enumerate(params):
            lane = stacked.lane(index)
            for name in ("a", "b", "f", "g"):
                assert np.array_equal(getattr(lane, name), getattr(original, name))
            assert lane.z == original.z

    def test_max_difference_matches_scalar_lanes(self):
        left = _random_params(5, SEED, 3)
        right = _random_params(5, SEED + 1, 3)
        deltas = BatchedSourceParameters.stack(left).max_difference(
            BatchedSourceParameters.stack(right)
        )
        for index in range(3):
            assert deltas[index] == left[index].max_difference(right[index])

    def test_clamp_matches_scalar_clamp(self):
        params = _random_params(5, SEED, 3)
        clamped = BatchedSourceParameters.stack(params).clamp(0.05)
        for index, original in enumerate(params):
            lane = clamped.lane(index)
            scalar = original.clamp(0.05)
            for name in ("a", "b", "f", "g"):
                assert np.array_equal(getattr(lane, name), getattr(scalar, name))

    def test_stack_validations(self):
        with pytest.raises(ValidationError):
            BatchedSourceParameters.stack([])
        mixed = [
            SourceParameters.random(4, SEED),
            SourceParameters.random(5, SEED),
        ]
        with pytest.raises(ValidationError):
            BatchedSourceParameters.stack(mixed)
        with pytest.raises(ValidationError):
            BatchedSourceParameters.stack(_random_params(4, SEED, 2)).clamp(0.7)

    def test_lane_faults_messages_and_precedence(self):
        stacked = BatchedSourceParameters.stack(_random_params(4, SEED, 3))
        rates = stacked.rates.copy()
        z = stacked.z.copy()
        rates[1, 2, 0] = np.nan
        z[2] = np.nan
        faults = BatchedSourceParameters(rates=rates, z=z).lane_faults()
        assert faults == [None, _RATES_FAULT, _Z_FAULT]
        # A lane with both faults reports the rates fault, matching the
        # serial guard order (_check_rates_finite runs first).
        z[1] = np.nan
        faults = BatchedSourceParameters(rates=rates, z=z).lane_faults()
        assert faults[1] == _RATES_FAULT
        assert BatchedSourceParameters.stack(
            _random_params(4, SEED, 3)
        ).lane_faults() is None

    def test_fault_strings_are_the_serial_exceptions_verbatim(self):
        """The pinned constants ARE the serial raise sites' messages."""
        nan = np.array([np.nan])
        ok = np.array([0.5])
        with pytest.raises(ValidationError) as rates_exc:
            _check_rates_finite(nan, ok, ok, ok)
        assert _RATES_FAULT == f"ValidationError: {rates_exc.value}"
        with pytest.raises(ValidationError) as z_exc:
            check_probability(float("nan"), "z")
        assert _Z_FAULT == f"ValidationError: {z_exc.value}"


class TestBatchedKernelParity:
    def test_column_log_likelihoods_match_core_per_lane(self):
        """The fused dual-table gather selects the serial floats."""
        problems = [_problem(seed=SEED + k) for k in range(3)]
        backends = [DenseBackend(p) for p in problems]
        params = _random_params(problems[0].n_sources, SEED, 3)
        batched = BatchedDenseBackend.from_backends(backends)
        log_true, log_false, _ = batched._column_log_likelihoods(
            BatchedSourceParameters.stack(params)
        )
        for index, (backend, p) in enumerate(zip(backends, params)):
            expected_true, expected_false = column_log_likelihoods(
                backend.sc, backend.dep, p
            )
            assert np.array_equal(log_true[index], expected_true)
            assert np.array_equal(log_false[index], expected_false)

    def test_degenerate_lane_takes_legacy_path_bitwise(self):
        """An unclamped 0/1 rate lane splices the serial legacy result."""
        problem = _problem()
        backend = DenseBackend(problem)
        params = _random_params(problem.n_sources, SEED, 3)
        a = params[1].a.copy()
        f = params[1].f.copy()
        a[0] = 0.0  # one unclamped degenerate source: log(0) tables
        f[0] = 1.0
        degenerate = SourceParameters(a=a, b=params[1].b, f=f, g=params[1].g, z=0.5)
        lanes = [params[0], degenerate, params[2]]
        batched = BatchedDenseBackend.from_backend(backend, 3)
        # The legacy path warns on 0·(-inf) products for unclamped θ —
        # identically on the serial backend; silence it on both sides so
        # the comparison is about the floats, not the warning filter.
        with np.errstate(invalid="ignore", divide="ignore"):
            log_true, log_false, _ = batched._column_log_likelihoods(
                BatchedSourceParameters.stack(lanes)
            )
            expected = [
                column_log_likelihoods(backend.sc, backend.dep, p) for p in lanes
            ]
        for index, (expected_true, expected_false) in enumerate(expected):
            assert np.array_equal(log_true[index], expected_true, equal_nan=True)
            assert np.array_equal(log_false[index], expected_false, equal_nan=True)

    def test_e_step_and_m_step_match_scalar_backend(self):
        problems = [_problem(seed=SEED + k) for k in range(3)]
        backends = [DenseBackend(p) for p in problems]
        params = _random_params(problems[0].n_sources, SEED + 7, 3)
        batched = BatchedDenseBackend.from_backends(backends)
        stacked = BatchedSourceParameters.stack(params)
        posterior, lls = batched.e_step(stacked)
        for index, (backend, p) in enumerate(zip(backends, params)):
            expected_posterior, expected_ll = backend.e_step(p)
            assert np.array_equal(posterior[index], expected_posterior)
            assert lls[index] == expected_ll
        new_params = batched.m_step(posterior, stacked)
        for index, (backend, p) in enumerate(zip(backends, params)):
            expected = backend.m_step(posterior[index], p)
            lane = new_params.lane(index)
            for name in ("a", "b", "f", "g"):
                assert np.array_equal(getattr(lane, name), getattr(expected, name))
            assert lane.z == expected.z

    @pytest.mark.parametrize("smoothing", [0.0, 0.5])
    def test_m_step_smoothing_paths_match(self, smoothing):
        problem = _problem()
        backend = DenseBackend(problem, smoothing=smoothing)
        params = _random_params(problem.n_sources, SEED, 2)
        batched = BatchedDenseBackend.from_backend(backend, 2)
        stacked = BatchedSourceParameters.stack(params)
        posterior, _ = batched.e_step(stacked)
        new_params = batched.m_step(posterior, stacked)
        for index, p in enumerate(params):
            expected = backend.m_step(posterior[index], p)
            lane = new_params.lane(index)
            for name in ("a", "b", "f", "g"):
                assert np.array_equal(getattr(lane, name), getattr(expected, name))


class TestRunBatchedLanes:
    def test_every_lane_matches_its_serial_run(self):
        """Lanes retire at different passes; each is bitwise its solo run."""
        problem = _problem()
        backend = DenseBackend(problem)
        inits = _random_params(problem.n_sources, SEED, 5)
        driver = EMDriver(max_iterations=60, tolerance=1e-6)
        lanes = run_batched_lanes(
            BatchedDenseBackend.from_backend(backend, 5),
            inits,
            max_iterations=60,
            tolerance=1e-6,
        )
        iteration_counts = set()
        for lane, init in zip(lanes, inits):
            assert lane.error is None
            serial = driver.run(backend, init)
            _assert_outcomes_bitwise(serial, lane.outcome)
            iteration_counts.add(lane.outcome.n_iterations)
        # The compaction path is only exercised when lanes actually
        # retire on different passes; 5 random starts guarantee it.
        assert len(iteration_counts) > 1

    def test_collect_events_gating_is_numerics_neutral(self):
        problem = _problem()
        backend = DenseBackend(problem)
        inits = _random_params(problem.n_sources, SEED, 3)

        def run(collect_events):
            return run_batched_lanes(
                BatchedDenseBackend.from_backend(backend, 3),
                inits,
                max_iterations=40,
                tolerance=1e-6,
                collect_events=collect_events,
            )

        with_events = run(True)
        without = run(False)
        for got, expected in zip(without, with_events):
            assert got.events == []
            assert expected.events, "collect_events=True must build events"
            _assert_outcomes_bitwise(expected.outcome, got.outcome)
            # Events carry the trace's numbers, in iteration order.
            assert [e.log_likelihood for e in expected.events] == list(
                expected.outcome.trace.log_likelihoods
            )
            assert [e.delta for e in expected.events] == list(
                expected.outcome.trace.parameter_deltas
            )

    def test_lane_count_mismatch_rejected(self):
        problem = _problem()
        backend = DenseBackend(problem)
        with pytest.raises(ValidationError):
            run_batched_lanes(
                BatchedDenseBackend.from_backend(backend, 3),
                _random_params(problem.n_sources, SEED, 2),
                max_iterations=5,
                tolerance=1e-6,
            )

    def test_from_backends_validations(self):
        with pytest.raises(ValidationError):
            BatchedDenseBackend.from_backends([])
        small = DenseBackend(_problem(n_sources=6))
        large = DenseBackend(_problem(n_sources=8))
        with pytest.raises(ValidationError):
            BatchedDenseBackend.from_backends([small, large])
        plain = DenseBackend(_problem())
        smoothed = DenseBackend(_problem(), smoothing=1.0)
        with pytest.raises(ValidationError):
            BatchedDenseBackend.from_backends([plain, smoothed])


class TestRestartModeParity:
    @pytest.mark.parametrize("n_restarts", [2, 5])
    def test_batched_restarts_match_serial(self, n_restarts):
        problem = _problem(n_sources=12, n_assertions=20)
        config = dict(n_restarts=n_restarts, init_strategy="random")
        serial = EMExtEstimator(
            EMConfig(restart_mode="serial", **config), seed=SEED
        ).fit(problem)
        batched = EMExtEstimator(
            EMConfig(restart_mode="batched", **config), seed=SEED
        ).fit(problem)
        _assert_results_bitwise(serial, batched)

    def test_smoothed_batched_restarts_match_serial(self):
        problem = _problem()
        config = dict(n_restarts=3, init_strategy="random", smoothing=1.0)
        serial = EMExtEstimator(
            EMConfig(restart_mode="serial", **config), seed=SEED
        ).fit(problem)
        batched = EMExtEstimator(
            EMConfig(restart_mode="batched", **config), seed=SEED
        ).fit(problem)
        _assert_results_bitwise(serial, batched)

    def test_fault_parity_on_poisoned_claims(self):
        """NaN claims fault every lane with the serial error, verbatim."""
        problem = _problem()
        estimator = EMExtEstimator(seed=SEED)

        def poisoned_fit(restart_mode):
            backend = DenseBackend(problem)
            backend.sc[0, 0] = np.nan
            backend.sc_indep[0, 0] = np.nan
            config = EMConfig(
                n_restarts=3, init_strategy="random", restart_mode=restart_mode
            )
            driver = EMDriver.from_config(config)
            with pytest.raises(ConvergenceError) as exc:
                driver.fit(backend, estimator._initialiser(backend), SEED)
            return str(exc.value)

        serial_message = poisoned_fit("serial")
        batched_message = poisoned_fit("batched")
        assert serial_message == batched_message
        assert "every EM restart failed" in batched_message

    def test_lane_fault_string_matches_the_serial_raise(self):
        """A poisoned lane retires with the serial m_step's message."""
        backend = DenseBackend(_problem())
        backend.sc[0, 0] = np.nan
        backend.sc_indep[0, 0] = np.nan
        inits = _random_params(backend.n_sources, SEED, 2)
        with pytest.raises(ValidationError) as exc:
            backend.m_step(backend.posterior(inits[0]), inits[0])
        serial_error = f"{type(exc.value).__name__}: {exc.value}"
        lanes = run_batched_lanes(
            backend.batched_lanes(2),
            inits,
            max_iterations=10,
            tolerance=1e-6,
        )
        for lane in lanes:
            assert lane.outcome is None
            assert lane.error == serial_error == _RATES_FAULT

    def test_restart_mode_validation(self):
        with pytest.raises(ValidationError):
            EMConfig(restart_mode="vectorised")

    def test_csr_backend_falls_back_to_serial(self):
        pytest.importorskip("scipy")
        from repro.data.coerce import coerce_problem
        from repro.data.protocol import FORMAT_CSR

        problem = _problem()
        csr = coerce_problem(problem, needs=(FORMAT_CSR,))
        # Explicit warm starts keep the problem on the CSR backend
        # (random draws would densify it), which has no batched twin.
        warm = SourceParameters.random(problem.n_sources, SEED).clamp(1e-4)
        config = dict(n_restarts=3)
        serial = EMExtEstimator(
            EMConfig(restart_mode="serial", **config),
            seed=SEED,
            initial_parameters=warm,
        ).fit(csr)
        with observability.observe(root_name="test") as session:
            batched = EMExtEstimator(
                EMConfig(restart_mode="batched", **config),
                seed=SEED,
                initial_parameters=warm,
            ).fit(csr)
        _assert_results_bitwise(serial, batched)
        counters = session.metrics.snapshot()["counters"]
        assert counters.get("engine.batched.fallbacks") == 1
        assert "engine.batched.lanes" not in counters

    def test_random_init_csr_input_densifies_and_batches(self):
        """Random restarts densify CSR input, so lanes still run."""
        pytest.importorskip("scipy")
        from repro.data.coerce import coerce_problem
        from repro.data.protocol import FORMAT_CSR

        problem = _problem()
        csr = coerce_problem(problem, needs=(FORMAT_CSR,))
        config = dict(n_restarts=3, init_strategy="random")
        serial = EMExtEstimator(
            EMConfig(restart_mode="serial", **config), seed=SEED
        ).fit(csr)
        with observability.observe(root_name="test") as session:
            batched = EMExtEstimator(
                EMConfig(restart_mode="batched", **config), seed=SEED
            ).fit(csr)
        _assert_results_bitwise(serial, batched)
        counters = session.metrics.snapshot()["counters"]
        assert counters.get("engine.batched.lanes") == 3

    def test_telemetry_stream_matches_serial(self):
        problem = _problem()
        config = dict(n_restarts=3, init_strategy="random")

        def recorded(restart_mode):
            recorder = TelemetryRecorder()
            EMExtEstimator(
                EMConfig(restart_mode=restart_mode, **config),
                seed=SEED,
                callbacks=(recorder,),
            ).fit(problem)
            return [(e.iteration, e.delta, e.log_likelihood) for e in recorder.events]

        assert recorded("serial") == recorded("batched")


class TestFitEmExtBatch:
    def test_each_result_matches_the_scalar_fit(self):
        problems = [_problem(seed=SEED + k) for k in range(4)]
        seeds = [SEED + 100 + k for k in range(4)]
        config = EMConfig(n_restarts=2, init_strategy="random")
        batched = fit_em_ext_batch(problems, seeds=seeds, config=config)
        for problem, seed, result in zip(problems, seeds, batched):
            serial = EMExtEstimator(config, seed=seed).fit(problem)
            _assert_results_bitwise(serial, result)

    def test_callbacks_replay_each_problems_stream(self):
        problems = [_problem(seed=SEED + k) for k in range(2)]
        seeds = [SEED, SEED + 1]
        config = EMConfig(n_restarts=2, init_strategy="random")
        recorder = TelemetryRecorder()
        fit_em_ext_batch(
            problems, seeds=seeds, config=config, callbacks=(recorder,)
        )
        serial_events = []
        for problem, seed in zip(problems, seeds):
            solo = TelemetryRecorder()
            EMExtEstimator(config, seed=seed, callbacks=(solo,)).fit(problem)
            serial_events.extend(
                (e.iteration, e.delta, e.log_likelihood) for e in solo.events
            )
        assert [
            (e.iteration, e.delta, e.log_likelihood) for e in recorder.events
        ] == serial_events

    def test_seed_count_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            fit_em_ext_batch([_problem()], seeds=[1, 2])


class TestHarnessTrialMode:
    CONFIG = GeneratorConfig(n_sources=10, n_assertions=16, n_trees=(3, 4))
    KWARGS = dict(
        algorithms=("em-ext",),
        n_trials=5,
        seed=SEED,
        include_optimal=False,
        em_config=EMConfig(n_restarts=2, init_strategy="random"),
    )

    @staticmethod
    def _series(result):
        return {
            name: (
                tuple(series.accuracy),
                tuple(series.false_positive_rate),
                tuple(series.false_negative_rate),
            )
            for name, series in result.series.items()
        }

    def test_batched_trials_match_serial(self):
        serial = run_simulation(self.CONFIG, **self.KWARGS)
        with observability.observe(root_name="test") as session:
            batched = run_simulation(
                self.CONFIG, trial_mode="batched", **self.KWARGS
            )
        assert self._series(serial) == self._series(batched)
        counters = session.metrics.snapshot()["counters"]
        assert counters.get("harness.batched.prefit_hits") == 5
        assert "harness.batched.ejections" not in counters

    def test_batched_trials_match_serial_with_mixed_algorithms(self):
        kwargs = dict(self.KWARGS, algorithms=("voting", "em-ext"))
        serial = run_simulation(self.CONFIG, **kwargs)
        batched = run_simulation(self.CONFIG, trial_mode="batched", **kwargs)
        assert self._series(serial) == self._series(batched)

    def test_ejected_pack_falls_back_to_the_scalar_path(self, monkeypatch):
        """A faulted prefit pack is absent; trials re-run serially."""
        from repro.core import em_ext

        def explode(*args, **kwargs):
            raise RuntimeError("lane pack lost")

        monkeypatch.setattr(em_ext, "_batch_lane_outcomes", explode)
        serial = run_simulation(self.CONFIG, **self.KWARGS)
        with observability.observe(root_name="test") as session:
            batched = run_simulation(
                self.CONFIG, trial_mode="batched", **self.KWARGS
            )
        assert self._series(serial) == self._series(batched)
        counters = session.metrics.snapshot()["counters"]
        assert counters.get("harness.batched.ejections") == 5
        assert "harness.batched.prefit_hits" not in counters

    def test_batched_mode_validations(self):
        with pytest.raises(ValidationError):
            run_simulation(self.CONFIG, trial_mode="stacked", **self.KWARGS)
        with pytest.raises(ValidationError):
            run_simulation(
                self.CONFIG, trial_mode="batched", batch_size=0, **self.KWARGS
            )
        from repro.parallel import ParallelConfig

        with pytest.raises(ValidationError):
            run_simulation(
                self.CONFIG,
                trial_mode="batched",
                parallel=ParallelConfig(n_jobs=2),
                **self.KWARGS,
            )

    def test_explicit_batch_size_packs_match_serial(self):
        serial = run_simulation(self.CONFIG, **self.KWARGS)
        batched = run_simulation(
            self.CONFIG, trial_mode="batched", batch_size=2, **self.KWARGS
        )
        assert self._series(serial) == self._series(batched)


class TestTransparency:
    """PR 8's guarantee extends to the batched engine: observability on
    or off, the numbers are bit-for-bit identical."""

    def test_observed_batched_fit_is_bitwise_unchanged(self):
        problem = _problem()
        config = EMConfig(n_restarts=3, init_strategy="random", restart_mode="batched")
        dark = EMExtEstimator(config, seed=SEED).fit(problem)
        with observability.observe(root_name="test") as session:
            observed = EMExtEstimator(config, seed=SEED).fit(problem)
        _assert_results_bitwise(dark, observed)
        counters = session.metrics.snapshot()["counters"]
        assert counters.get("engine.batched.lanes") == 3
        assert counters.get("engine.batched.lane_retirements", 0) >= 1
        histograms = session.metrics.snapshot()["histograms"]
        assert "engine.batched.occupancy" in histograms

    def test_em_iterations_counter_matches_serial_total(self):
        problem = _problem()
        config = dict(n_restarts=3, init_strategy="random")

        def iterations(restart_mode):
            with observability.observe(root_name="test") as session:
                EMExtEstimator(
                    EMConfig(restart_mode=restart_mode, **config), seed=SEED
                ).fit(problem)
            return session.metrics.snapshot()["counters"]["em.iterations"]

        assert iterations("serial") == iterations("batched")
