"""Cross-backend agreement: dense vs CSR vs streaming on the same data.

The engine's backends reorganise the same equations differently (dense
masked matmuls, CSR base-plus-corrections, streaming decayed counts);
these tests pin them to each other so the representations cannot drift.
"""

import numpy as np
import pytest

from repro.core import EMConfig, EMExtEstimator
from repro.extensions import StreamingEMExt
from repro.sparse import SparseEMExt, SparseSensingProblem
from repro.synthetic import GeneratorConfig, generate_dataset


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(GeneratorConfig(), seed=77)


class TestDenseVsSparse:
    @pytest.mark.parametrize("init_strategy", ["support", "staged"])
    @pytest.mark.parametrize("smoothing", [0.0, 0.5])
    def test_posteriors_and_parameters_agree(self, dataset, init_strategy, smoothing):
        config = EMConfig(init_strategy=init_strategy, smoothing=smoothing)
        dense = EMExtEstimator(config, seed=0).fit(dataset.problem.without_truth())
        sparse = SparseEMExt(config).fit(
            SparseSensingProblem.from_dense(dataset.problem).without_truth()
        )
        np.testing.assert_allclose(dense.scores, sparse.scores, atol=1e-12)
        for name in ("a", "b", "f", "g"):
            np.testing.assert_allclose(
                getattr(dense.parameters, name),
                getattr(sparse.parameters, name),
                atol=1e-12,
            )
        assert dense.parameters.z == pytest.approx(sparse.parameters.z, abs=1e-12)
        assert dense.n_iterations == sparse.n_iterations


class TestDenseVsStreaming:
    def test_single_batch_no_decay_matches_batch_em(self, dataset):
        """One batch with decay=1 is exactly batch support-init EM."""
        blind = dataset.problem.without_truth()
        config = EMConfig(
            init_strategy="support", max_iterations=400, tolerance=1e-12
        )
        dense = EMExtEstimator(config, seed=0).fit(blind)
        stream = StreamingEMExt(
            n_sources=blind.n_sources, decay=1.0, inner_iterations=400
        )
        result = stream.partial_fit(blind)
        # Both iterate the same fixed-point map to tight tolerances; they
        # agree to the residual of whichever loop stopped first.
        np.testing.assert_allclose(result.scores, dense.scores, atol=1e-6)
        for name in ("a", "b", "f", "g"):
            np.testing.assert_allclose(
                getattr(stream.parameters, name),
                getattr(dense.parameters, name),
                atol=1e-6,
            )
        assert stream.parameters.z == pytest.approx(dense.parameters.z, abs=1e-6)


class TestStagedDeterminism:
    def test_repeat_runs_are_identical(self, dataset):
        """Staged initialisation is deterministic for a fixed seed."""
        blind = dataset.problem.without_truth()
        first = EMExtEstimator(seed=0).fit(blind)
        second = EMExtEstimator(seed=0).fit(blind)
        np.testing.assert_array_equal(first.scores, second.scores)
        np.testing.assert_array_equal(first.parameters.a, second.parameters.a)
        np.testing.assert_array_equal(first.parameters.g, second.parameters.g)
        assert first.parameters.z == second.parameters.z
        assert first.n_iterations == second.n_iterations

    def test_sparse_staged_matches_itself(self, dataset):
        problem = SparseSensingProblem.from_dense(dataset.problem).without_truth()
        first = SparseEMExt().fit(problem)
        second = SparseEMExt().fit(problem)
        np.testing.assert_array_equal(first.scores, second.scores)
