"""Property-based invariants of the estimation engine and the bounds.

Hypothesis generates the *shape* of each case (dimensions, seeds,
knobs); the actual matrices are drawn from a seeded generator so every
failing example is replayable.  The invariants pinned here are the ones
every backend and both bound estimators must satisfy on *any* input:

* sufficient statistics are non-negative and conserve posterior mass
  across the four cell partitions;
* every M-step output is a probability;
* the Bayes-risk bound is a pair of non-negative error masses whose sum
  never exceeds the trivial ``min(z, 1-z) <= 0.5`` risk.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds import GibbsConfig, exact_bound, gibbs_bound
from repro.core import SensingProblem, SourceParameters
from repro.engine import (
    RATE_NAMES,
    DenseBackend,
    SufficientStatistics,
    ratio_update,
    stable_posterior,
)
from repro.kernels.tables import IndependenceLogTables, LogParameterTables
from repro.parallel import ParallelConfig

SETTINGS = settings(max_examples=25, deadline=None)

dims = st.tuples(st.integers(2, 6), st.integers(2, 8))
seeds = st.integers(0, 2**32 - 1)


def _problem(n_sources: int, n_assertions: int, seed: int) -> SensingProblem:
    """A random valid sensing problem (dependency implies a claim)."""
    rng = np.random.default_rng(seed)
    sc = (rng.random((n_sources, n_assertions)) < 0.6).astype(np.int8)
    dep = ((rng.random(sc.shape) < 0.3) & (sc == 1)).astype(np.int8)
    truth = (rng.random(n_assertions) < 0.5).astype(np.int8)
    return SensingProblem(claims=sc, dependency=dep, truth=truth)


class TestRatioUpdate:
    @SETTINGS
    @given(seed=seeds, n=st.integers(1, 10), smoothing=st.floats(0.0, 2.0))
    def test_output_is_a_rate_with_fallback_on_empty_partitions(
        self, seed, n, smoothing
    ):
        rng = np.random.default_rng(seed)
        # Posterior-weighted counts: numerator never exceeds denominator,
        # and some partitions are empty (zero denominator).
        denominator = rng.random(n) * rng.integers(0, 2, size=n)
        numerator = denominator * rng.random(n)
        fallback = rng.random(n)
        out = ratio_update(
            numerator, denominator, smoothing=smoothing, fallback=fallback
        )
        assert np.isfinite(out).all()
        assert (out >= 0.0).all() and (out <= 1.0).all()
        empty = (denominator + smoothing) == 0
        np.testing.assert_array_equal(out[empty], fallback[empty])


class TestSufficientStatistics:
    @SETTINGS
    @given(shape=dims, seed=seeds)
    def test_partition_counts_are_nonnegative_and_conserve_mass(self, shape, seed):
        n_sources, n_assertions = shape
        problem = _problem(n_sources, n_assertions, seed)
        backend = DenseBackend(problem)
        posterior = np.random.default_rng(seed + 1).random(n_assertions)
        counts, z_counts = backend.partition_counts(posterior)
        stats = SufficientStatistics.zeros(n_sources)
        stats.add(counts, z_counts)
        for name in RATE_NAMES:
            assert (stats.numerators[name] >= 0).all()
            assert (stats.denominators[name] >= 0).all()
            assert (
                stats.numerators[name] <= stats.denominators[name] + 1e-12
            ).all()
        # Independent and dependent cells partition each source's row,
        # so the denominators conserve the posterior mass exactly.
        true_mass = float(posterior.sum())
        np.testing.assert_allclose(
            stats.denominators["a"] + stats.denominators["f"],
            np.full(n_sources, true_mass),
        )
        np.testing.assert_allclose(
            stats.denominators["b"] + stats.denominators["g"],
            np.full(n_sources, n_assertions - true_mass),
        )
        assert z_counts == (pytest.approx(true_mass), float(n_assertions))

    @SETTINGS
    @given(shape=dims, seed=seeds)
    def test_rates_are_probabilities(self, shape, seed):
        n_sources, n_assertions = shape
        problem = _problem(n_sources, n_assertions, seed)
        backend = DenseBackend(problem)
        posterior = np.random.default_rng(seed + 1).random(n_assertions)
        counts, z_counts = backend.partition_counts(posterior)
        stats = SufficientStatistics.zeros(n_sources)
        stats.add(counts, z_counts)
        params = stats.rates(backend.neutral())
        for name in RATE_NAMES:
            rate = getattr(params, name)
            assert (rate > 0.0).all() and (rate < 1.0).all()
        assert 0.0 < params.z < 1.0

    @SETTINGS
    @given(shape=dims, seed=seeds, factor=st.floats(0.1, 1.0))
    def test_decay_scales_counts_and_copy_isolates(self, shape, seed, factor):
        n_sources, n_assertions = shape
        backend = DenseBackend(_problem(n_sources, n_assertions, seed))
        posterior = np.random.default_rng(seed + 1).random(n_assertions)
        counts, z_counts = backend.partition_counts(posterior)
        stats = SufficientStatistics.zeros(n_sources)
        stats.add(counts, z_counts)
        before = {name: stats.denominators[name].copy() for name in RATE_NAMES}
        snapshot = stats.copy()
        stats.decay(factor)
        for name in RATE_NAMES:
            np.testing.assert_allclose(
                stats.numerators[name], snapshot.numerators[name] * factor
            )
            np.testing.assert_allclose(
                stats.denominators[name], snapshot.denominators[name] * factor
            )
        assert stats.z_numerator == pytest.approx(snapshot.z_numerator * factor)
        # The snapshot must be untouched by the in-place decay.
        for name in RATE_NAMES:
            np.testing.assert_array_equal(snapshot.denominators[name], before[name])


class TestBackendAgreement:
    @SETTINGS
    @given(shape=dims, seed=seeds)
    def test_dense_and_csr_backends_compute_the_same_step(self, shape, seed):
        pytest.importorskip("scipy")
        from repro.engine import CSRBackend
        from repro.sparse import SparseSensingProblem

        n_sources, n_assertions = shape
        problem = _problem(n_sources, n_assertions, seed)
        dense = DenseBackend(problem)
        csr = CSRBackend(SparseSensingProblem.from_dense(problem))
        posterior = np.random.default_rng(seed + 1).random(n_assertions)
        dense_params = dense.m_step(posterior, dense.neutral())
        csr_params = csr.m_step(posterior, csr.neutral())
        for name in RATE_NAMES:
            np.testing.assert_allclose(
                getattr(dense_params, name), getattr(csr_params, name), atol=1e-12
            )
        assert dense_params.z == pytest.approx(csr_params.z, abs=1e-12)
        dense_post, dense_ll = dense.e_step(dense_params)
        csr_post, csr_ll = csr.e_step(csr_params)
        np.testing.assert_allclose(dense_post, csr_post, atol=1e-10)
        assert dense_ll == pytest.approx(csr_ll, abs=1e-8)


class TestStablePosterior:
    @SETTINGS
    @given(
        seed=seeds,
        m=st.integers(1, 12),
        z=st.floats(0.01, 0.99),
        scale=st.floats(1.0, 300.0),
    )
    def test_output_is_a_probability_even_for_extreme_likelihoods(
        self, seed, m, z, scale
    ):
        rng = np.random.default_rng(seed)
        log_true = rng.normal(size=m) * scale
        log_false = rng.normal(size=m) * scale
        posterior = stable_posterior(log_true, log_false, z)
        assert np.isfinite(posterior).all()
        assert (posterior >= 0.0).all() and (posterior <= 1.0).all()


class TestLogTableProperties:
    """The cached log tables are *exactly* the direct log computation.

    The whole kernel layer rests on this: a gather from the tables must
    select the very float ``np.log`` / ``np.log1p`` would have produced,
    or the bit-for-bit engine parity guarantee collapses.
    """

    @SETTINGS
    @given(seed=seeds, n=st.integers(1, 12))
    def test_parameter_tables_match_direct_logs(self, seed, n):
        params = SourceParameters.random(n, seed)
        tables = LogParameterTables.build(params)
        for view, direct in (
            (tables.log_a, np.log(params.a)),
            (tables.log_1a, np.log1p(-params.a)),
            (tables.log_b, np.log(params.b)),
            (tables.log_1b, np.log1p(-params.b)),
            (tables.log_f, np.log(params.f)),
            (tables.log_1f, np.log1p(-params.f)),
            (tables.log_g, np.log(params.g)),
            (tables.log_1g, np.log1p(-params.g)),
        ):
            assert np.array_equal(view, direct, equal_nan=True)
        assert tables.log_z == float(np.log(params.z))
        assert tables.log_1z == float(np.log1p(-params.z))
        expected_finite = bool(
            np.isfinite(tables.table_true).all()
            and np.isfinite(tables.table_false).all()
        )
        assert tables.finite == expected_finite

    @SETTINGS
    @given(
        seed=seeds,
        n=st.integers(1, 12),
        degenerate=st.booleans(),
    )
    def test_independence_tables_match_direct_logs(self, seed, n, degenerate):
        rng = np.random.default_rng(seed)
        t_rate = rng.random(n)
        b_rate = rng.random(n)
        if degenerate:
            t_rate[rng.integers(n)] = float(rng.integers(2))
        tables = IndependenceLogTables.build(t_rate, b_rate)
        with np.errstate(divide="ignore"):
            for view, direct in (
                (tables.log_t, np.log(t_rate)),
                (tables.log_1t, np.log1p(-t_rate)),
                (tables.log_b, np.log(b_rate)),
                (tables.log_1b, np.log1p(-b_rate)),
            ):
                assert np.array_equal(view, direct, equal_nan=True)
        # Masked cells (codes 0 and 1) gather an exact additive zero.
        assert np.array_equal(tables.table_true[:, :2], np.zeros((n, 2)))
        assert np.array_equal(tables.table_false[:, :2], np.zeros((n, 2)))
        expected_finite = bool(
            np.isfinite(tables.table_true).all()
            and np.isfinite(tables.table_false).all()
        )
        assert tables.finite == expected_finite


class TestBoundProperties:
    @settings(max_examples=10, deadline=None)
    @given(shape=dims, seed=seeds)
    def test_exact_bound_is_a_valid_error_probability(self, shape, seed):
        n_sources, n_assertions = shape
        problem = _problem(n_sources, n_assertions, seed)
        params = SourceParameters.random(n_sources, seed).clamp(1e-3)
        result = exact_bound(problem.dependency.values, params)
        assert result.false_positive >= 0.0
        assert result.false_negative >= 0.0
        assert result.total == pytest.approx(
            result.false_positive + result.false_negative
        )
        # The Bayes risk can never beat always guessing the prior.
        assert result.total <= min(params.z, 1.0 - params.z) + 1e-9
        assert result.optimal_accuracy == pytest.approx(1.0 - result.total)

    @settings(max_examples=8, deadline=None)
    @given(shape=dims, seed=seeds)
    def test_gibbs_bound_is_a_valid_error_probability(self, shape, seed):
        n_sources, n_assertions = shape
        problem = _problem(n_sources, n_assertions, seed)
        params = SourceParameters.random(n_sources, seed).clamp(1e-3)
        config = GibbsConfig(
            burn_in=5, min_sweeps=30, max_sweeps=60, check_interval=10
        )
        # Exercise the joint sampler and the sharded (parallel-layer)
        # sampler on the same case; both must emit a valid bound.
        for parallel in (None, ParallelConfig.serial()):
            result = gibbs_bound(
                problem.dependency.values,
                params,
                config=config,
                seed=seed,
                parallel=parallel,
            )
            assert result.false_positive >= 0.0
            assert result.false_negative >= 0.0
            assert result.total == pytest.approx(
                result.false_positive + result.false_negative
            )
            assert result.total <= 0.5 + 1e-9
