"""Seeded parity against pre-refactor reference outputs.

``tests/data/parity_reference.npz`` was captured from the estimators
*before* they were rewired onto ``repro.engine``; these tests pin the
refactored code to those outputs within 1e-10 (in practice the match
is bit-for-bit, because the engine preserves the float operation order
of each original implementation).
"""

import numpy as np
import pytest

from repro.baselines import EMIndependent, EMSocial
from repro.core import EMConfig, EMExtEstimator
from repro.extensions import StreamingEMExt
from repro.sparse import SparseEMExt, SparseSensingProblem
from repro.synthetic import GeneratorConfig, SyntheticGenerator, generate_dataset

ATOL = 1e-10


@pytest.fixture(scope="module")
def reference():
    import pathlib

    path = pathlib.Path(__file__).parent.parent / "data" / "parity_reference.npz"
    return np.load(path)


@pytest.fixture(scope="module")
def blind():
    return generate_dataset(GeneratorConfig(), seed=1234).problem.without_truth()


def _close(actual, expected):
    np.testing.assert_allclose(actual, expected, rtol=0.0, atol=ATOL)


class TestDenseEMExtParity:
    def test_staged_default(self, reference, blind):
        result = EMExtEstimator(seed=0).fit(blind)
        _close(result.scores, reference["em_ext_staged_scores"])
        _close(result.parameters.a, reference["em_ext_staged_a"])
        _close(result.parameters.b, reference["em_ext_staged_b"])
        _close(result.parameters.f, reference["em_ext_staged_f"])
        _close(result.parameters.g, reference["em_ext_staged_g"])
        _close(result.parameters.z, reference["em_ext_staged_z"][0])
        _close(result.log_likelihood, reference["em_ext_staged_ll"][0])
        assert result.n_iterations == int(reference["em_ext_staged_iters"][0])

    def test_support_init_with_smoothing(self, reference, blind):
        config = EMConfig(init_strategy="support", smoothing=1.0)
        result = EMExtEstimator(config, seed=0).fit(blind)
        _close(result.scores, reference["em_ext_support_scores"])
        _close(result.parameters.a, reference["em_ext_support_a"])
        _close(result.parameters.z, reference["em_ext_support_z"][0])

    def test_random_restarts(self, reference, blind):
        config = EMConfig(init_strategy="random", n_restarts=3)
        result = EMExtEstimator(config, seed=3).fit(blind)
        _close(result.scores, reference["em_ext_random_scores"])
        _close(result.log_likelihood, reference["em_ext_random_ll"][0])


class TestIndependentParity:
    def test_em(self, reference, blind):
        result = EMIndependent(seed=0, smoothing=0.5).fit(blind)
        _close(result.scores, reference["em_indep_scores"])
        _close(result.extras["t"], reference["em_indep_t"])
        _close(result.extras["z"], reference["em_indep_z"][0])

    def test_em_social(self, reference, blind):
        result = EMSocial(seed=0).fit(blind)
        _close(result.scores, reference["em_social_scores"])
        _close(result.extras["t"], reference["em_social_t"])


class TestSparseParity:
    def test_smoothed_staged(self, reference):
        problem = SparseSensingProblem.from_dense(
            generate_dataset(GeneratorConfig(), seed=1234).problem
        ).without_truth()
        result = SparseEMExt(EMConfig(smoothing=0.5)).fit(problem)
        _close(result.scores, reference["sparse_scores"])
        _close(result.parameters.a, reference["sparse_a"])
        _close(result.parameters.z, reference["sparse_z"][0])
        _close(result.log_likelihood, reference["sparse_ll"][0])


class TestStreamingParity:
    def test_three_decayed_batches(self, reference):
        generator = SyntheticGenerator(GeneratorConfig(), seed=21)
        stream = StreamingEMExt(n_sources=20, decay=0.9)
        for dataset in generator.generate_many(3):
            result = stream.partial_fit(dataset.problem.without_truth())
        _close(result.scores, reference["stream_scores"])
        _close(stream.parameters.a, reference["stream_a"])
        _close(stream.parameters.b, reference["stream_b"])
        _close(stream.parameters.f, reference["stream_f"])
        _close(stream.parameters.g, reference["stream_g"])
        _close(stream.parameters.z, reference["stream_z"][0])
