"""Unit tests for the generic EM driver (restarts, telemetry, early stop)."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.engine import EMDriver, IterationEvent, TelemetryRecorder


@dataclass(frozen=True)
class ScalarParams:
    """One-parameter toy model: EM halves the distance to a target."""

    value: float

    def max_difference(self, other: "ScalarParams") -> float:
        return abs(self.value - other.value)


class HalvingBackend:
    """Toy backend converging geometrically to ``target``."""

    def __init__(self, target: float = 1.0):
        self.target = target

    def posterior(self, params: ScalarParams) -> np.ndarray:
        return np.array([params.value])

    def m_step(self, posterior: np.ndarray, params: ScalarParams) -> ScalarParams:
        return ScalarParams(value=(params.value + self.target) / 2.0)

    def e_step(self, params: ScalarParams):
        # Log likelihood improves as we approach the target.
        return np.array([params.value]), -abs(params.value - self.target)


class TestRun:
    def test_converges_within_tolerance(self):
        driver = EMDriver(max_iterations=100, tolerance=1e-6)
        outcome = driver.run(HalvingBackend(), ScalarParams(0.0))
        assert outcome.converged
        assert outcome.parameters.value == pytest.approx(1.0, abs=1e-5)
        assert outcome.n_iterations == outcome.trace.n_iterations
        assert outcome.log_likelihood == pytest.approx(0.0, abs=1e-5)

    def test_iteration_cap(self):
        driver = EMDriver(max_iterations=3, tolerance=1e-12)
        outcome = driver.run(HalvingBackend(), ScalarParams(0.0))
        assert not outcome.converged
        assert outcome.n_iterations == 3

    def test_decisions_threshold(self):
        driver = EMDriver(max_iterations=50, tolerance=1e-6)
        outcome = driver.run(HalvingBackend(target=0.9), ScalarParams(0.0))
        assert outcome.decisions.tolist() == [1]


class TestTelemetry:
    def test_recorder_sees_every_iteration(self):
        recorder = TelemetryRecorder()
        driver = EMDriver(max_iterations=100, tolerance=1e-6, callbacks=(recorder,))
        outcome = driver.run(HalvingBackend(), ScalarParams(0.0))
        assert recorder.n_iterations == outcome.n_iterations
        assert all(isinstance(e, IterationEvent) for e in recorder.events)
        assert all(e.duration_seconds >= 0.0 for e in recorder.events)
        # Deltas halve every iteration; the trace and events must agree.
        deltas = [e.delta for e in recorder.events]
        np.testing.assert_allclose(deltas, outcome.trace.parameter_deltas)
        assert recorder.total_seconds >= 0.0
        recorder.clear()
        assert len(recorder) == 0

    def test_early_stop_callback(self):
        def stop_after_two(event: IterationEvent):
            return event.iteration >= 1

        driver = EMDriver(
            max_iterations=100, tolerance=1e-12, callbacks=(stop_after_two,)
        )
        outcome = driver.run(HalvingBackend(), ScalarParams(0.0))
        assert outcome.n_iterations == 2
        assert not outcome.converged


class TestFit:
    def test_best_restart_wins(self):
        starts = [0.0, 0.99, -5.0]

        def initialiser(index, rng):
            return ScalarParams(starts[index])

        # One iteration only: the restart starting nearest the target has
        # the highest likelihood.
        driver = EMDriver(max_iterations=1, tolerance=1e-15, n_restarts=3)
        outcome = driver.fit(HalvingBackend(), initialiser, seed=0)
        assert outcome.parameters.value == pytest.approx((0.99 + 1.0) / 2.0)

    def test_restart_rngs_are_independent(self):
        seen = []

        def initialiser(index, rng):
            seen.append(float(rng.random()))
            return ScalarParams(0.0)

        driver = EMDriver(max_iterations=1, tolerance=1e-6, n_restarts=3)
        driver.fit(HalvingBackend(), initialiser, seed=0)
        assert len(seen) == 3
        assert len(set(seen)) == 3
