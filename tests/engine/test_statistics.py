"""Unit tests for the engine's shared M-step kernel and accumulator."""

import numpy as np
import pytest

from repro.core import SourceParameters
from repro.engine import RATE_NAMES, SufficientStatistics, ratio_update


class TestRatioUpdate:
    def test_plain_ratio(self):
        out = ratio_update(
            np.array([1.0, 3.0]),
            np.array([2.0, 4.0]),
            fallback=np.array([0.9, 0.9]),
        )
        np.testing.assert_allclose(out, [0.5, 0.75])

    def test_empty_partition_keeps_fallback(self):
        out = ratio_update(
            np.array([0.0, 3.0]),
            np.array([0.0, 4.0]),
            fallback=np.array([0.123, 0.9]),
        )
        assert out[0] == 0.123
        assert out[1] == 0.75

    def test_smoothing_shrinks_toward_pooled_rate(self):
        numerator = np.array([0.0, 10.0])
        denominator = np.array([10.0, 10.0])
        pooled = 0.5  # 10 claims over 20 cells
        out = ratio_update(
            numerator, denominator, smoothing=2.0, fallback=np.zeros(2)
        )
        np.testing.assert_allclose(
            out, [(0.0 + 2.0 * pooled) / 12.0, (10.0 + 2.0 * pooled) / 12.0]
        )

    def test_zero_smoothing_is_exact_identity(self):
        """s=0 must reproduce the unsmoothed ratio bit-for-bit."""
        rng = np.random.default_rng(5)
        numerator = rng.random(50)
        denominator = numerator + rng.random(50)
        plain = numerator / denominator
        out = ratio_update(numerator, denominator, fallback=np.zeros(50))
        np.testing.assert_array_equal(out, plain)

    def test_clip_ratio_bounds_overshoot(self):
        out = ratio_update(
            np.array([1.0 + 1e-12]),
            np.array([1.0]),
            fallback=np.array([0.5]),
            clip_ratio=True,
        )
        assert out[0] == 1.0


class TestSufficientStatistics:
    def _counts(self, n, value):
        return {
            name: (np.full(n, value), np.full(n, 2.0 * value))
            for name in RATE_NAMES
        }

    def test_zeros_shape(self):
        stats = SufficientStatistics.zeros(4)
        for name in RATE_NAMES:
            assert stats.numerators[name].shape == (4,)
            assert stats.denominators[name].shape == (4,)
        assert stats.z_denominator == 0.0

    def test_add_then_rates(self):
        stats = SufficientStatistics.zeros(3)
        stats.add(self._counts(3, 1.0), (1.5, 3.0))
        fallback = SourceParameters.from_scalars(3, a=0.9, b=0.9, f=0.9, g=0.9, z=0.9)
        params = stats.rates(fallback, epsilon=1e-6)
        np.testing.assert_allclose(params.a, 0.5)
        assert params.z == pytest.approx(0.5)

    def test_decay_discounts_history(self):
        stats = SufficientStatistics.zeros(2)
        stats.add(self._counts(2, 4.0), (4.0, 8.0))
        stats.decay(0.5)
        np.testing.assert_allclose(stats.numerators["a"], 2.0)
        np.testing.assert_allclose(stats.denominators["f"], 4.0)
        assert stats.z_numerator == pytest.approx(2.0)

    def test_merged_rates_does_not_mutate(self):
        stats = SufficientStatistics.zeros(2)
        stats.add(self._counts(2, 4.0), (4.0, 8.0))
        before = stats.numerators["a"].copy()
        fallback = SourceParameters.from_scalars(2, a=0.5, b=0.5, f=0.5, g=0.5, z=0.5)
        merged = stats.merged_rates(
            self._counts(2, 1.0), (1.0, 2.0), 0.5, fallback, 1e-6
        )
        np.testing.assert_array_equal(stats.numerators["a"], before)
        # (4·0.5 + 1) / (8·0.5 + 2) = 0.5
        np.testing.assert_allclose(merged.a, 0.5)

    def test_empty_accumulator_returns_fallback(self):
        stats = SufficientStatistics.zeros(2)
        fallback = SourceParameters.from_scalars(2, a=0.7, b=0.3, f=0.6, g=0.4, z=0.8)
        params = stats.rates(fallback, epsilon=1e-6)
        np.testing.assert_allclose(params.a, 0.7)
        assert params.z == pytest.approx(0.8)
